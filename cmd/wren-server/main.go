// Command wren-server runs one partition server over real TCP sockets.
//
// A 1-DC, 2-partition deployment on one machine:
//
//	wren-server -dc 0 -partition 0 -dcs 1 -partitions 2 \
//	    -listen 127.0.0.1:7000 -peers 0/0=127.0.0.1:7000,0/1=127.0.0.1:7001 &
//	wren-server -dc 0 -partition 1 -dcs 1 -partitions 2 \
//	    -listen 127.0.0.1:7001 -peers 0/0=127.0.0.1:7000,0/1=127.0.0.1:7001 &
//	wren-cli -dcs 1 -partitions 2 -coordinator 0 \
//	    -peers 0/0=127.0.0.1:7000,0/1=127.0.0.1:7001
//
// The -peers list must name every partition of every DC as dc/partition=addr.
// The -protocol flag selects wren (default), cure or hcure, so the same
// binary can serve as the baseline in networked comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wren/internal/core"
	"wren/internal/cure"
	"wren/internal/peers"
	"wren/internal/transport"
	"wren/internal/transport/tcp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wren-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wren-server", flag.ContinueOnError)
	var (
		dc         = fs.Int("dc", 0, "this server's DC index")
		partition  = fs.Int("partition", 0, "this server's partition index")
		dcs        = fs.Int("dcs", 1, "total number of DCs")
		partitions = fs.Int("partitions", 1, "partitions per DC")
		listen     = fs.String("listen", "127.0.0.1:7000", "TCP listen address")
		peersFlag  = fs.String("peers", "", "comma-separated dc/partition=host:port for every server")
		protocol   = fs.String("protocol", "wren", "protocol: wren, cure or hcure")
		applyMs    = fs.Duration("apply-interval", 5*time.Millisecond, "ΔR apply/replication period")
		gossipMs   = fs.Duration("gossip-interval", 5*time.Millisecond, "ΔG stabilization period")
		gcEvery    = fs.Duration("gc-interval", 500*time.Millisecond, "GC period (negative disables)")
		shards     = fs.Int("store-shards", 0, "version-store lock stripes (0 = default 64, rounded up to a power of two)")
		storeBack  = fs.String("store-backend", "memory", "storage engine: memory, wal or sst")
		dataDir    = fs.String("data-dir", "", "root data directory for durable backends (server writes under dc<m>-p<n>)")
		fsync      = fs.String("fsync", "", "durable-backend fsync policy: always, interval (default) or never")
		txlogOn    = fs.Bool("txlog", true, "durable transaction-lifecycle log: commit records ahead of acks + replication cursor (durable backends only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	peerMap, err := peers.Parse(*peersFlag)
	if err != nil {
		return err
	}

	net, err := tcp.New(tcp.Config{
		Self:       transport.ServerID(*dc, *partition),
		ListenAddr: *listen,
		Peers:      peerMap,
	})
	if err != nil {
		return err
	}
	defer net.Close()

	var stop func()
	switch strings.ToLower(*protocol) {
	case "wren":
		srv, err := core.NewServer(core.ServerConfig{
			DC: *dc, Partition: *partition,
			NumDCs: *dcs, NumPartitions: *partitions,
			Network:        net,
			ApplyInterval:  *applyMs,
			GossipInterval: *gossipMs,
			GCInterval:     *gcEvery,
			StoreShards:    *shards,
			StoreBackend:   *storeBack,
			DataDir:        *dataDir,
			FsyncPolicy:    *fsync,
			DisableTxLog:   !*txlogOn,
		})
		if err != nil {
			return err
		}
		srv.Start()
		stop = srv.Stop
	case "cure", "hcure":
		srv, err := cure.NewServer(cure.ServerConfig{
			DC: *dc, Partition: *partition,
			NumDCs: *dcs, NumPartitions: *partitions,
			Network:        net,
			UseHLC:         strings.ToLower(*protocol) == "hcure",
			ApplyInterval:  *applyMs,
			GossipInterval: *gossipMs,
			GCInterval:     *gcEvery,
			StoreShards:    *shards,
			StoreBackend:   *storeBack,
			DataDir:        *dataDir,
			FsyncPolicy:    *fsync,
			DisableTxLog:   !*txlogOn,
		})
		if err != nil {
			return err
		}
		srv.Start()
		stop = srv.Stop
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}

	fmt.Printf("wren-server: %s server dc%d/p%d listening on %s (%d DCs x %d partitions)\n",
		*protocol, *dc, *partition, net.Addr(), *dcs, *partitions)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("wren-server: shutting down")
	stop()
	return nil
}
