// Command wren-bench regenerates the figures of the paper's evaluation
// (§V) at full scale:
//
//	wren-bench -figure 3a          # throughput vs latency, default workload
//	wren-bench -figure all         # every figure in sequence
//	wren-bench -figure 6a -threads 8
//	wren-bench -ablation blocking-commit
//	wren-bench -quick -figure 3a   # reduced topology for a fast look
//	wren-bench -read-path          # read-path suite -> BENCH_read_path.json
//	wren-bench -engines memory,wal,sst   # engine sweep -> BENCH_engines.json
//	wren-bench -txlog              # commit-ack latency sweep -> BENCH_txlog.json
//	wren-bench -chaos              # client-link loss sweep -> BENCH_chaos.json
//	wren-bench -clients            # session multiplexing sweep -> BENCH_clients.json
//
// Figures: 3a, 3b, 4a, 4b, 5a, 5b, 6a, 6b, 7a, 7b.
// Ablations: blocking-commit, gossip-interval, snapshot-age.
//
// -read-path runs the contention-free read-path suite (reads-only, 95:5
// and 50:50 mixes at several goroutine counts) with runtime mutex
// profiling enabled, and writes a machine-readable report (default
// BENCH_read_path.json) so successive PRs leave a comparable perf
// trajectory. The run fails if the mutex profile shows contention on a
// plain mutex inside the server read handlers.
//
// -engines sweeps the storage backends (memory vs wal vs sst) under a
// read-heavy and a write-heavy mix on the same Wren topology, fails if
// any engine finishes a sweep with a recorded write-path failure, and
// writes BENCH_engines.json.
//
// -txlog prices the durable transaction-lifecycle log: the same
// write-only closed loop with commit-record logging on vs off, under each
// fsync policy, reporting client-observed commit-ack latency percentiles
// (the log writes PREPARE and COMMIT records before the ack, so the ack
// now carries the logging cost). Writes BENCH_txlog.json.
//
// -chaos drives the same closed loop through the fault-injecting chaos
// transport at increasing client-link loss (0%, 1%, 5%), with the bounded
// client retry policy recovering dropped frames, and reports the
// throughput/latency cost of each loss level. Writes BENCH_chaos.json.
//
// -clients sweeps concurrent session counts twice per point — legacy
// one-endpoint-per-session vs all sessions pipelining over the DC's
// shared connection pool — and reports throughput, latency, admission
// sheds, and the number of requests that never resolved (which must be
// zero: a shed or timed-out request retries or errors, never vanishes).
// Writes BENCH_clients.json; the run fails on unresolved requests or an
// unhealthy engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"
	"time"

	"wren/internal/bench"
	"wren/internal/cluster"
	"wren/internal/store/backend"
	"wren/internal/ycsb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wren-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wren-bench", flag.ContinueOnError)
	var (
		figure     = fs.String("figure", "", "figure to regenerate: 3a 3b 4a 4b 5a 5b 6a 6b 7a 7b all")
		ablation   = fs.String("ablation", "", "ablation to run: blocking-commit gossip-interval gossip-topology snapshot-age")
		dcs        = fs.Int("dcs", 3, "number of DCs")
		partitions = fs.Int("partitions", 8, "partitions per DC")
		threads    = fs.String("threads", "1,2,4,8,16", "comma-separated per-process thread counts for sweeps")
		fixed      = fs.Int("fixed-threads", 4, "thread count for ratio/traffic/visibility figures")
		warmup     = fs.Duration("warmup", time.Second, "warmup before each measurement window")
		measure    = fs.Duration("measure", 4*time.Second, "measurement window per load point")
		keys       = fs.Int("keys", 1000, "keys per partition")
		skew       = fs.Duration("skew", 2*time.Millisecond, "max clock skew per server")
		shards     = fs.Int("store-shards", 0, "version-store lock stripes per server (0 = default 64)")
		storeBack  = fs.String("store-backend", "memory", "storage engine: memory, wal or sst")
		dataDir    = fs.String("data-dir", "", "root data directory for durable backends; each benchmark cluster uses a fresh subdirectory (empty = per-cluster temp dir)")
		fsync      = fs.String("fsync", "", "durable-backend fsync policy: always, interval (default) or never")
		seed       = fs.Int64("seed", 1, "random seed")
		quick      = fs.Bool("quick", false, "reduced topology and windows for a fast run")
		readPath   = fs.Bool("read-path", false, "run the read-path suite and emit a JSON report")
		jsonOut    = fs.String("out", "BENCH_read_path.json", "output path for the -read-path JSON report")
		engines    = fs.String("engines", "", "comma-separated storage engines to sweep (e.g. memory,wal,sst); emits -engines-out")
		enginesOut = fs.String("engines-out", "BENCH_engines.json", "output path for the -engines JSON report")
		txlogSweep = fs.Bool("txlog", false, "run the commit-ack latency sweep (txlog on vs off, per fsync policy); emits -txlog-out")
		txlogOut   = fs.String("txlog-out", "BENCH_txlog.json", "output path for the -txlog JSON report")
		chaosSweep = fs.Bool("chaos", false, "run the client-link loss sweep through the chaos transport; emits -chaos-out")
		chaosOut   = fs.String("chaos-out", "BENCH_chaos.json", "output path for the -chaos JSON report")
		clientsSwp = fs.Bool("clients", false, "run the session-multiplexing sweep (pooled vs unpooled sessions); emits -clients-out")
		clientsOut = fs.String("clients-out", "BENCH_clients.json", "output path for the -clients JSON report")
		poolLinks  = fs.Int("pool-links", bench.DefaultClientPoolLinks, "connection-pool links per DC for the -clients pooled rows")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *figure == "" && *ablation == "" && !*readPath && *engines == "" && !*txlogSweep && !*chaosSweep && !*clientsSwp {
		fs.Usage()
		return fmt.Errorf("one of -figure, -ablation, -read-path, -engines, -txlog, -chaos or -clients is required")
	}

	o := bench.DefaultOptions()
	o.DCs = *dcs
	o.Partitions = *partitions
	o.FixedThreads = *fixed
	o.Warmup = *warmup
	o.Measure = *measure
	o.KeysPerPartition = *keys
	o.ClockSkew = *skew
	o.StoreShards = *shards
	o.StoreBackend = *storeBack
	o.DataDir = *dataDir
	o.FsyncPolicy = *fsync
	o.Seed = *seed
	var err error
	o.Threads, err = parseThreads(*threads)
	if err != nil {
		return err
	}
	if *quick {
		q := bench.SmokeOptions()
		q.DCs = min(o.DCs, 3)
		o.Partitions = q.Partitions
		o.Threads = q.Threads
		o.FixedThreads = q.FixedThreads
		o.Warmup = q.Warmup
		o.Measure = q.Measure
		o.KeysPerPartition = q.KeysPerPartition
	}

	if *clientsSwp {
		points := bench.ClientsPoints
		if *quick {
			points = bench.ClientsQuickPoints
		}
		return runClientsSweep(o, points, *poolLinks, *clientsOut)
	}
	if *chaosSweep {
		return runChaosSweep(o, *chaosOut)
	}
	if *txlogSweep {
		return runTxLogSweep(o, *txlogOut)
	}
	if *engines != "" {
		list, err := parseEngines(*engines)
		if err != nil {
			return err
		}
		return runEngines(o, list, *enginesOut)
	}
	if *readPath {
		return runReadPath(o, *jsonOut)
	}
	if *ablation != "" {
		return runAblation(o, *ablation)
	}
	if *figure == "all" {
		for _, f := range []string{"3a", "3b", "4a", "4b", "5a", "5b", "6a", "6b", "7a", "7b"} {
			if err := runFigure(o, f); err != nil {
				return fmt.Errorf("figure %s: %w", f, err)
			}
		}
		return nil
	}
	return runFigure(o, *figure)
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid thread count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts given")
	}
	return out, nil
}

func runFigure(o bench.Options, figure string) error {
	start := time.Now()
	defer func() { fmt.Printf("[%s done in %v]\n\n", figure, time.Since(start).Round(time.Second)) }()

	switch figure {
	case "3a", "3b":
		series, err := bench.SweepProtocols(o, ycsb.Mix95, clamp(4, o.Partitions))
		if err != nil {
			return err
		}
		title := "Figure 3a: throughput vs latency (95:5, p=4, 3 DCs)"
		if figure == "3b" {
			title = "Figure 3b: mean blocking time (Wren never blocks)"
		}
		fmt.Print(bench.FormatSeries(title, series))
	case "4a":
		series, err := bench.SweepProtocols(o, ycsb.Mix90, clamp(4, o.Partitions))
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSeries("Figure 4a: throughput vs latency (90:10)", series))
	case "4b":
		series, err := bench.SweepProtocols(o, ycsb.Mix50, clamp(4, o.Partitions))
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSeries("Figure 4b: throughput vs latency (50:50)", series))
	case "5a":
		series, err := bench.SweepProtocols(o, ycsb.Mix95, clamp(2, o.Partitions))
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSeries("Figure 5a: throughput vs latency (p=2)", series))
	case "5b":
		series, err := bench.SweepProtocols(o, ycsb.Mix95, clamp(8, o.Partitions))
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatSeries("Figure 5b: throughput vs latency (p=8)", series))
	case "6a":
		counts := []int{4, 8, 16}
		if o.Partitions < 16 {
			counts = []int{2, o.Partitions}
		}
		cells, err := bench.RunFig6a(o, counts, ycsb.AllMix)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRatios("Figure 6a: Wren throughput normalized to Cure (scaling partitions)", cells))
	case "6b":
		cells, err := bench.RunFig6b(o, []int{3, 5}, o.Partitions, ycsb.AllMix)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatRatios("Figure 6b: Wren throughput normalized to Cure (scaling DCs)", cells))
	case "7a":
		results, err := bench.RunFig7a(o, []int{3, 5})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTraffic("Figure 7a: replication and stabilization traffic", results))
	case "7b":
		var results []bench.VisibilityResult
		for _, proto := range []cluster.Protocol{cluster.Wren, cluster.Cure} {
			res, err := bench.RunVisibility(bench.VisibilityConfig{
				Options:           o,
				Protocol:          proto,
				ProbeEvery:        15 * time.Millisecond,
				Duration:          o.Measure,
				BackgroundThreads: 1,
				UseAWSLatencies:   true,
			})
			if err != nil {
				return err
			}
			results = append(results, res)
		}
		fmt.Print(bench.FormatVisibility("Figure 7b: update visibility latency CDF (AWS latency matrix)", results))
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}
	return nil
}

func parseEngines(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if !slices.Contains(backend.Names, name) {
			return nil, fmt.Errorf("unknown engine %q (want one of %s)", name, strings.Join(backend.Names, ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no engines given")
	}
	return out, nil
}

func runEngines(o bench.Options, engines []string, out string) error {
	start := time.Now()
	// A failed sweep (e.g. the engine-health gate) still returns the rows
	// measured so far; write them before surfacing the error, so the
	// failing CI run leaves its partial report as the artifact.
	rep, err := bench.RunEngines(o, engines, o.Threads)
	if rep != nil {
		fmt.Print(bench.FormatEngines(rep))
		fmt.Printf("[engines done in %v]\n", time.Since(start).Round(time.Second))
		if out != "" {
			data, jerr := rep.WriteJSON()
			if jerr == nil {
				jerr = os.WriteFile(out, append(data, '\n'), 0o644)
			}
			switch {
			case jerr == nil:
				fmt.Printf("report written to %s\n", out)
			case err == nil:
				err = jerr
			default:
				// The sweep error wins, but the missing artifact must not
				// be a silent mystery.
				fmt.Fprintf(os.Stderr, "wren-bench: report not written to %s: %v\n", out, jerr)
			}
		}
	}
	return err
}

func runChaosSweep(o bench.Options, out string) error {
	start := time.Now()
	// A failed sweep still returns the rows measured so far; persist them
	// before surfacing the error (same discipline as -engines).
	rep, err := bench.RunChaos(o, bench.ChaosPoints, o.FixedThreads)
	if rep != nil {
		fmt.Print(bench.FormatChaos(rep))
		fmt.Printf("[chaos done in %v]\n", time.Since(start).Round(time.Second))
		if out != "" {
			data, jerr := rep.WriteJSON()
			if jerr == nil {
				jerr = os.WriteFile(out, append(data, '\n'), 0o644)
			}
			switch {
			case jerr == nil:
				fmt.Printf("report written to %s\n", out)
			case err == nil:
				err = jerr
			default:
				fmt.Fprintf(os.Stderr, "wren-bench: report not written to %s: %v\n", out, jerr)
			}
		}
	}
	return err
}

func runClientsSweep(o bench.Options, points []int, links int, out string) error {
	start := time.Now()
	// A failed sweep still returns the rows measured so far; persist them
	// before surfacing the error (same discipline as -engines).
	rep, err := bench.RunClients(o, points, links)
	if rep != nil {
		fmt.Print(bench.FormatClients(rep))
		fmt.Printf("[clients done in %v]\n", time.Since(start).Round(time.Second))
		if out != "" {
			data, jerr := rep.WriteJSON()
			if jerr == nil {
				jerr = os.WriteFile(out, append(data, '\n'), 0o644)
			}
			switch {
			case jerr == nil:
				fmt.Printf("report written to %s\n", out)
			case err == nil:
				err = jerr
			default:
				fmt.Fprintf(os.Stderr, "wren-bench: report not written to %s: %v\n", out, jerr)
			}
		}
		if err == nil {
			if n := rep.Unresolved(); n > 0 {
				err = fmt.Errorf("%d requests never resolved (lost to shedding or a stuck retry)", n)
			}
		}
	}
	return err
}

func runTxLogSweep(o bench.Options, out string) error {
	start := time.Now()
	// A failed sweep still returns the rows measured so far; persist them
	// before surfacing the error (same discipline as -engines).
	rep, err := bench.RunTxLog(o)
	if rep != nil {
		fmt.Print(bench.FormatTxLog(rep))
		fmt.Printf("[txlog done in %v]\n", time.Since(start).Round(time.Second))
		if out != "" {
			data, jerr := rep.WriteJSON()
			if jerr == nil {
				jerr = os.WriteFile(out, append(data, '\n'), 0o644)
			}
			switch {
			case jerr == nil:
				fmt.Printf("report written to %s\n", out)
			case err == nil:
				err = jerr
			default:
				fmt.Fprintf(os.Stderr, "wren-bench: report not written to %s: %v\n", out, jerr)
			}
		}
	}
	return err
}

func runReadPath(o bench.Options, out string) error {
	start := time.Now()
	rep, err := bench.RunReadPath(o, o.Threads)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatReadPath(rep))
	fmt.Printf("[read-path done in %v]\n", time.Since(start).Round(time.Second))
	if out != "" {
		data, err := rep.WriteJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	if !rep.Mutex.Clean() {
		return fmt.Errorf("read path contended a server-wide mutex: %d samples, first stack: %s",
			rep.Mutex.ReadPathSamples, rep.Mutex.ReadPathFootprint)
	}
	return nil
}

func runAblation(o bench.Options, name string) error {
	switch name {
	case "blocking-commit":
		rows, err := bench.RunBlockingCommitAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation("Ablation: client cache vs blocking commits (§III-B)", rows))
	case "gossip-interval":
		rows, err := bench.RunGossipIntervalAblation(o, []time.Duration{
			time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation("Ablation: BiST gossip period ΔG", rows))
	case "gossip-topology":
		rows, err := bench.RunGossipTopologyAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation("Ablation: BiST broadcast vs tree aggregation (§IV-B)", rows))
	case "snapshot-age":
		rows, err := bench.RunSnapshotAgeAblation(o)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatAblation("Ablation: snapshot freshness (Wren vs Cure)", rows))
	default:
		return fmt.Errorf("unknown ablation %q", name)
	}
	return nil
}

func clamp(v, limit int) int {
	if v > limit {
		return limit
	}
	return v
}
