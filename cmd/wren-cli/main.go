// Command wren-cli is an interactive client for a TCP Wren deployment
// started with cmd/wren-server.
//
//	wren-cli -dcs 1 -partitions 2 -peers 0/0=127.0.0.1:7000,0/1=127.0.0.1:7001
//
// Commands:
//
//	get <key>...            one-shot read-only transaction
//	put <key> <value>...    one-shot write transaction (pairs)
//	del <key>...            one-shot delete transaction (tombstones)
//	scan [<start> [<end> [<limit>]]]
//	                        range scan [start, end) in key order; works
//	                        one-shot or inside an open transaction
//	begin                   start an interactive transaction
//	read <key>...           read within the open transaction
//	write <key> <value>     buffer a write in the open transaction
//	delete <key>            buffer a delete in the open transaction
//	commit                  commit the open transaction
//	abort                   abort the open transaction
//	health                  durability state of every partition in the DC
//	quit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"wren/internal/core"
	"wren/internal/peers"
	"wren/internal/transport"
	"wren/internal/transport/tcp"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wren-cli:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("wren-cli", flag.ContinueOnError)
	var (
		dc          = fs.Int("dc", 0, "client's local DC")
		dcs         = fs.Int("dcs", 1, "total number of DCs")
		partitions  = fs.Int("partitions", 1, "partitions per DC")
		peersFlag   = fs.String("peers", "", "comma-separated dc/partition=host:port for the local DC's servers")
		coordinator = fs.Int("coordinator", 0, "coordinator partition (-1 = random per transaction)")
		clientIdx   = fs.Int("client-index", int(os.Getpid()%10000), "unique client index within the DC")
		reqTimeout  = fs.Duration("request-timeout", 10*time.Second, "per-request timeout before a retry or error")
		retries     = fs.Int("retries", 2, "retry attempts after a timed-out request (0 disables retries)")
		retryWait   = fs.Duration("retry-backoff", 50*time.Millisecond, "initial backoff before the first retry (doubles per attempt)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	_ = dcs
	if *reqTimeout <= 0 {
		return fmt.Errorf("-request-timeout must be positive")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be non-negative")
	}

	peerMap, err := peers.Parse(*peersFlag)
	if err != nil {
		return err
	}
	if len(peerMap) == 0 {
		return fmt.Errorf("-peers is required")
	}

	net, err := tcp.New(tcp.Config{
		Self:  transport.ClientID(*dc, *clientIdx),
		Peers: peerMap,
	})
	if err != nil {
		return err
	}
	defer net.Close()

	client, err := core.NewClient(core.ClientConfig{
		DC: *dc, ClientIndex: *clientIdx,
		NumPartitions:        *partitions,
		Network:              net,
		CoordinatorPartition: *coordinator,
		RequestTimeout:       *reqTimeout,
		Retry:                core.RetryPolicy{Attempts: *retries, Backoff: *retryWait},
	})
	if err != nil {
		return err
	}
	defer client.Close()

	fmt.Fprintf(out, "wren-cli: connected (dc%d, %d partitions). Type 'help'.\n", *dc, *partitions)
	return repl(client, *partitions, in, out)
}

func repl(client *core.Client, partitions int, in io.Reader, out io.Writer) error {
	var tx *core.Tx
	scanner := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "> ")
			continue
		}
		cmd, rest := strings.ToLower(fields[0]), fields[1:]
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Fprintln(out, "commands: get put del scan begin read write delete commit abort health quit")
		case "health":
			showHealth(client, partitions, out)
		case "get":
			oneShotRead(client, out, rest)
		case "put":
			oneShotWrite(client, out, rest)
		case "del":
			oneShotDelete(client, out, rest)
		case "scan":
			if tx != nil {
				doScan(tx, out, rest)
				break
			}
			oneShotScan(client, out, rest)
		case "delete":
			if tx == nil {
				fmt.Fprintln(out, "error: no open transaction (use begin, or del)")
				break
			}
			if len(rest) != 1 {
				fmt.Fprintln(out, "usage: delete <key>")
				break
			}
			if err := tx.Delete(rest[0]); err != nil {
				printErr(out, err)
			}
		case "begin":
			if tx != nil {
				fmt.Fprintln(out, "error: transaction already open")
				break
			}
			var err error
			if tx, err = client.Begin(); err != nil {
				printErr(out, err)
				break
			}
			lt, rt := tx.Snapshot()
			fmt.Fprintf(out, "tx %d open (snapshot local=%v remote=%v)\n", tx.ID(), lt, rt)
		case "read":
			if tx == nil {
				fmt.Fprintln(out, "error: no open transaction (use begin, or get)")
				break
			}
			got, err := tx.Read(rest...)
			printRead(out, got, err)
		case "write":
			if tx == nil {
				fmt.Fprintln(out, "error: no open transaction (use begin, or put)")
				break
			}
			if len(rest) != 2 {
				fmt.Fprintln(out, "usage: write <key> <value>")
				break
			}
			if err := tx.Write(rest[0], []byte(rest[1])); err != nil {
				printErr(out, err)
			}
		case "commit":
			if tx == nil {
				fmt.Fprintln(out, "error: no open transaction")
				break
			}
			ct, err := tx.Commit()
			tx = nil
			if err != nil {
				printErr(out, err)
				break
			}
			fmt.Fprintf(out, "committed at %v\n", ct)
		case "abort":
			if tx == nil {
				fmt.Fprintln(out, "error: no open transaction")
				break
			}
			err := tx.Abort()
			tx = nil
			if err != nil {
				printErr(out, err)
				break
			}
			fmt.Fprintln(out, "aborted")
		default:
			fmt.Fprintf(out, "unknown command %q (try help)\n", cmd)
		}
		fmt.Fprint(out, "> ")
	}
	return scanner.Err()
}

func oneShotRead(client *core.Client, out io.Writer, keys []string) {
	if len(keys) == 0 {
		fmt.Fprintln(out, "usage: get <key>...")
		return
	}
	tx, err := client.Begin()
	if err != nil {
		printErr(out, err)
		return
	}
	got, err := tx.Read(keys...)
	if err != nil {
		printErr(out, err)
		_ = tx.Abort()
		return
	}
	if _, err := tx.Commit(); err != nil {
		printErr(out, err)
		return
	}
	printRead(out, got, nil)
}

func oneShotWrite(client *core.Client, out io.Writer, kvs []string) {
	if len(kvs) == 0 || len(kvs)%2 != 0 {
		fmt.Fprintln(out, "usage: put <key> <value> [<key> <value>...]")
		return
	}
	tx, err := client.Begin()
	if err != nil {
		printErr(out, err)
		return
	}
	for i := 0; i < len(kvs); i += 2 {
		if err := tx.Write(kvs[i], []byte(kvs[i+1])); err != nil {
			printErr(out, err)
			_ = tx.Abort()
			return
		}
	}
	ct, err := tx.Commit()
	if err != nil {
		printErr(out, err)
		return
	}
	fmt.Fprintf(out, "committed at %v\n", ct)
}

// oneShotScan runs a range scan in its own read-only transaction.
func oneShotScan(client *core.Client, out io.Writer, args []string) {
	tx, err := client.Begin()
	if err != nil {
		printErr(out, err)
		return
	}
	doScan(tx, out, args)
	_ = tx.Abort()
}

// doScan parses "scan [<start> [<end> [<limit>]]]" and prints the visible
// keys of [start, end) in order. An omitted end scans to the end of the
// keyspace; a limit caps the output.
func doScan(tx *core.Tx, out io.Writer, args []string) {
	if len(args) > 3 {
		fmt.Fprintln(out, "usage: scan [<start> [<end> [<limit>]]]")
		return
	}
	var start, end string
	limit := 0
	if len(args) > 0 {
		start = args[0]
	}
	if len(args) > 1 {
		end = args[1]
	}
	if len(args) > 2 {
		n, err := strconv.Atoi(args[2])
		if err != nil || n < 0 {
			fmt.Fprintln(out, "usage: scan [<start> [<end> [<limit>]]] (limit must be a non-negative integer)")
			return
		}
		limit = n
	}
	kvs, err := tx.Scan(start, end, limit)
	if err != nil {
		printErr(out, err)
		return
	}
	if len(kvs) == 0 {
		fmt.Fprintln(out, "(no keys)")
		return
	}
	for _, kv := range kvs {
		fmt.Fprintf(out, "%s = %q\n", kv.Key, kv.Value)
	}
}

func oneShotDelete(client *core.Client, out io.Writer, keys []string) {
	if len(keys) == 0 {
		fmt.Fprintln(out, "usage: del <key>...")
		return
	}
	tx, err := client.Begin()
	if err != nil {
		printErr(out, err)
		return
	}
	for _, k := range keys {
		if err := tx.Delete(k); err != nil {
			printErr(out, err)
			_ = tx.Abort()
			return
		}
	}
	ct, err := tx.Commit()
	if err != nil {
		printErr(out, err)
		return
	}
	fmt.Fprintf(out, "deleted at %v\n", ct)
}

// showHealth probes every partition server of the client's DC for its
// durability/admission state, so a degraded (read-only) server is
// observable from the command line without a metrics poller.
func showHealth(client *core.Client, partitions int, out io.Writer) {
	for p := 0; p < partitions; p++ {
		readOnly, detail, err := client.Health(p)
		switch {
		case err != nil:
			fmt.Fprintf(out, "p%d: unreachable: %v\n", p, err)
		case readOnly:
			fmt.Fprintf(out, "p%d: READ-ONLY (durability degraded): %s\n", p, detail)
		default:
			fmt.Fprintf(out, "p%d: healthy\n", p)
		}
	}
}

// printErr reports a command failure, classifying the cause so a slow
// server (timeout), a misconfigured peer map (no route), and an in-doubt
// commit read differently at the prompt.
func printErr(out io.Writer, err error) {
	switch {
	case errors.Is(err, core.ErrInDoubt):
		fmt.Fprintln(out, "error (in doubt):", err)
		fmt.Fprintln(out, "  the commit may or may not have landed; read the keys back before retrying")
	case errors.Is(err, core.ErrAborted):
		fmt.Fprintln(out, "error (aborted):", err)
		fmt.Fprintln(out, "  the transaction did not commit; safe to retry")
	case errors.Is(err, core.ErrTimeout):
		fmt.Fprintln(out, "error (timeout):", err)
		fmt.Fprintln(out, "  server unresponsive; consider raising -request-timeout or -retries")
	case errors.Is(err, tcp.ErrNoRoute):
		fmt.Fprintln(out, "error (no route):", err)
		fmt.Fprintln(out, "  destination is not in -peers and has never connected; check the peer map")
	default:
		fmt.Fprintf(out, "error: %v\n", err)
	}
}

func printRead(out io.Writer, got map[string][]byte, err error) {
	if err != nil {
		printErr(out, err)
		return
	}
	if len(got) == 0 {
		fmt.Fprintln(out, "(no values)")
		return
	}
	for k, v := range got {
		fmt.Fprintf(out, "%s = %q\n", k, v)
	}
}
