// Package wren is a partitioned, geo-replicated, transactional causally
// consistent (TCC) key-value store with nonblocking reads — a faithful Go
// implementation of "Wren: Nonblocking Reads in a Partitioned Transactional
// Causally Consistent Data Store" (Spirovska, Didona, Zwaenepoel, DSN'18).
//
// A Cluster embeds a complete multi-DC deployment (partition servers,
// replication, stabilization, clients) in-process, over a simulated network
// with configurable WAN latencies and clock skew. The same servers also run
// over real TCP sockets via cmd/wren-server.
//
// Quickstart:
//
//	cl, err := wren.NewCluster(wren.Config{NumDCs: 3, NumPartitions: 8})
//	if err != nil { ... }
//	defer cl.Close()
//
//	client, err := cl.Client(0)
//	if err != nil { ... }
//	defer client.Close()
//
//	tx, _ := client.Begin()
//	tx.Write("alice:friends", []byte("bob"))
//	tx.Write("bob:friends", []byte("alice")) // atomic with the above
//	ct, _ := tx.Commit()
//
// Besides Wren itself, the package can run the paper's baselines (Cure and
// H-Cure) for comparison; see Config.Protocol.
package wren

import (
	"fmt"
	"time"

	"wren/internal/cluster"
	"wren/internal/hlc"
	"wren/internal/sharding"
)

// Timestamp is a hybrid-logical-clock timestamp. Larger means causally
// later (or concurrent with a larger clock reading).
type Timestamp = hlc.Timestamp

// Protocol selects the consistency protocol a cluster runs.
type Protocol int

// Supported protocols.
const (
	// Wren runs the paper's contribution: nonblocking transactional causal
	// consistency (CANToR + BDT + BiST). This is the default.
	Wren Protocol = iota
	// Cure runs the state-of-the-art baseline with vector snapshots and
	// blocking reads.
	Cure
	// HCure runs Cure with hybrid logical clocks.
	HCure
)

// String implements fmt.Stringer.
func (p Protocol) String() string { return p.internal().String() }

func (p Protocol) internal() cluster.Protocol {
	switch p {
	case Cure:
		return cluster.Cure
	case HCure:
		return cluster.HCure
	default:
		return cluster.Wren
	}
}

// Config describes a cluster deployment.
type Config struct {
	// Protocol selects Wren (default), Cure or HCure.
	Protocol Protocol
	// NumDCs is the number of replication sites (data centers).
	NumDCs int
	// NumPartitions is the number of partitions (shards) per DC.
	NumPartitions int
	// IntraDCLatency is the simulated one-way latency within a DC
	// (default 100µs).
	IntraDCLatency time.Duration
	// InterDCLatency is the simulated one-way WAN latency (default 10ms).
	// Ignored when UseAWSLatencies is set.
	InterDCLatency time.Duration
	// UseAWSLatencies applies the paper's five-region EC2 latency matrix
	// (Virginia, Oregon, Ireland, Mumbai, Sydney).
	UseAWSLatencies bool
	// ClockSkew is the maximum simulated NTP offset per server.
	ClockSkew time.Duration
	// ApplyInterval is ΔR, the apply/replication period (default 5ms).
	ApplyInterval time.Duration
	// GossipInterval is ΔG, the stabilization period (default 5ms).
	GossipInterval time.Duration
	// GCInterval is the version garbage-collection period (default 500ms;
	// negative disables).
	GCInterval time.Duration
	// StoreShards is the number of lock stripes in each partition server's
	// version store (default 64, rounded up to a power of two). Raise it on
	// many-core machines to reduce lock contention on the storage hot path.
	StoreShards int
	// StoreBackend selects each server's storage engine: "" or "memory"
	// keeps versions only in memory; "wal" adds durable per-shard
	// append-only logs replayed on restart; "sst" is the memtable+
	// sorted-run engine — a WAL over the active memtable only, with
	// background flushes to immutable sorted runs that serve snapshot
	// reads lock-free and merge compaction folding them together. Both
	// durable backends make a cluster restartable from the same DataDir.
	StoreBackend string
	// DataDir is the root directory durable backends write under; every
	// server uses its own dc<m>-p<n> subdirectory. Empty with a durable
	// backend selects a temporary directory removed on Close.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy: "always" (fsync every
	// write batch), "interval" (default: fsync on a 10ms timer) or "never".
	FsyncPolicy string
	// DisableTxLog turns off the durable transaction-lifecycle log servers
	// with a durable backend keep by default. With the log, PREPARE and
	// COMMIT records reach disk before the corresponding acknowledgement,
	// making the ACKNOWLEDGED transaction the durability unit (exact under
	// FsyncPolicy "always", interval-bounded otherwise), and a persisted
	// per-DC replication cursor lets a restarted cluster re-send the
	// unreplicated tail so DCs reconverge. Disabling it regresses the
	// durability unit to the applied transaction.
	DisableTxLog bool
	// Seed fixes the clock-skew assignment for reproducibility.
	Seed int64
}

// Client is a client session. Sessions are single-threaded: one transaction
// at a time, matching the paper's model where a client does not issue an
// operation until the previous one returns.
type Client = cluster.Client

// Tx is an interactive read-write transaction. Reads observe a causal
// snapshot; writes become visible atomically at commit.
type Tx = cluster.Tx

// Cluster is a running multi-DC deployment.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.NumDCs == 0 {
		cfg.NumDCs = 1
	}
	if cfg.NumPartitions == 0 {
		cfg.NumPartitions = 1
	}
	inner, err := cluster.New(cluster.Config{
		Protocol:        cfg.Protocol.internal(),
		NumDCs:          cfg.NumDCs,
		NumPartitions:   cfg.NumPartitions,
		IntraDCLatency:  cfg.IntraDCLatency,
		InterDCLatency:  cfg.InterDCLatency,
		UseAWSLatencies: cfg.UseAWSLatencies,
		ClockSkew:       cfg.ClockSkew,
		ApplyInterval:   cfg.ApplyInterval,
		GossipInterval:  cfg.GossipInterval,
		GCInterval:      cfg.GCInterval,
		StoreShards:     cfg.StoreShards,
		StoreBackend:    cfg.StoreBackend,
		DataDir:         cfg.DataDir,
		FsyncPolicy:     cfg.FsyncPolicy,
		DisableTxLog:    cfg.DisableTxLog,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("wren: %w", err)
	}
	return &Cluster{inner: inner}, nil
}

// Client opens a client session in the given DC. The session is pinned to a
// coordinator partition chosen round-robin; use ClientAt for explicit
// placement.
func (c *Cluster) Client(dc int) (Client, error) {
	return c.inner.NewClient(dc, -1)
}

// ClientAt opens a client session in dc collocated with the given
// coordinator partition, as the paper's benchmark clients are.
func (c *Cluster) ClientAt(dc, coordinatorPartition int) (Client, error) {
	if coordinatorPartition < 0 || coordinatorPartition >= c.inner.Config().NumPartitions {
		return nil, fmt.Errorf("wren: coordinator partition %d out of range", coordinatorPartition)
	}
	return c.inner.NewClient(dc, coordinatorPartition)
}

// PartitionInterDCLink cuts (down=true) or heals (down=false) the network
// between two DCs. While partitioned, each DC keeps serving transactions —
// causal consistency is available under partition — and replication
// resumes after healing.
func (c *Cluster) PartitionInterDCLink(dcA, dcB int, down bool) {
	c.inner.Network().SetDCLinkDown(dcA, dcB, down)
}

// LocalUpdateVisible reports whether an update committed in dc at ct is
// visible to new transactions in the same DC (at the partition owning the
// key that was written).
func (c *Cluster) LocalUpdateVisible(dc int, key string, ct Timestamp) bool {
	p := sharding.PartitionOf(key, c.inner.Config().NumPartitions)
	return c.inner.LocalUpdateVisible(dc, p, ct)
}

// RemoteUpdateVisible reports whether an update committed in srcDC at ct is
// visible to new transactions in dc.
func (c *Cluster) RemoteUpdateVisible(dc int, key string, srcDC int, ct Timestamp) bool {
	p := sharding.PartitionOf(key, c.inner.Config().NumPartitions)
	return c.inner.RemoteUpdateVisible(dc, p, srcDC, ct)
}

// NumDCs returns the number of replication sites.
func (c *Cluster) NumDCs() int { return c.inner.Config().NumDCs }

// NumPartitions returns the number of partitions per DC.
func (c *Cluster) NumPartitions() int { return c.inner.Config().NumPartitions }

// Close stops all servers and releases resources.
func (c *Cluster) Close() { c.inner.Close() }

// PartitionOf returns the partition responsible for key in a cluster with
// numPartitions partitions — the deterministic hash sharding of §II-A.
func PartitionOf(key string, numPartitions int) int {
	return sharding.PartitionOf(key, numPartitions)
}
