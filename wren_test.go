package wren

import (
	"fmt"
	"testing"
	"time"
)

func fastCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.ApplyInterval == 0 {
		cfg.ApplyInterval = time.Millisecond
	}
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = time.Millisecond
	}
	if cfg.InterDCLatency == 0 {
		cfg.InterDCLatency = 3 * time.Millisecond
	}
	if cfg.GCInterval == 0 {
		cfg.GCInterval = -1
	}
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestQuickstartFlow(t *testing.T) {
	cl := fastCluster(t, Config{NumDCs: 2, NumPartitions: 4})
	client, err := cl.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("alice:friends", []byte("bob")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("bob:friends", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	ct, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ct == 0 {
		t.Fatal("expected nonzero commit timestamp")
	}

	tx2, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx2.Read("alice:friends", "bob:friends")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["alice:friends"]) != "bob" || string(got["bob:friends"]) != "alice" {
		t.Fatalf("read back %v", got)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cl := fastCluster(t, Config{})
	if cl.NumDCs() != 1 || cl.NumPartitions() != 1 {
		t.Fatalf("defaults: %dx%d", cl.NumDCs(), cl.NumPartitions())
	}
}

func TestAllProtocolsExposeSameAPI(t *testing.T) {
	for _, proto := range []Protocol{Wren, Cure, HCure} {
		t.Run(proto.String(), func(t *testing.T) {
			cl := fastCluster(t, Config{Protocol: proto, NumDCs: 1, NumPartitions: 2})
			client, err := cl.ClientAt(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			tx, err := client.Begin()
			if err != nil {
				t.Fatal(err)
			}
			_ = tx.Write("k", []byte("v"))
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestClientAtValidation(t *testing.T) {
	cl := fastCluster(t, Config{NumDCs: 1, NumPartitions: 2})
	if _, err := cl.ClientAt(0, 5); err == nil {
		t.Error("out-of-range coordinator should be rejected")
	}
}

func TestVisibilityHelpers(t *testing.T) {
	cl := fastCluster(t, Config{NumDCs: 2, NumPartitions: 2})
	client, err := cl.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Write("vis", []byte("v"))
	ct, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !cl.LocalUpdateVisible(0, "vis", ct) {
		if time.Now().After(deadline) {
			t.Fatal("local visibility timeout")
		}
		time.Sleep(time.Millisecond)
	}
	for !cl.RemoteUpdateVisible(1, "vis", 0, ct) {
		if time.Now().After(deadline) {
			t.Fatal("remote visibility timeout")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPartitionToleranceThroughFacade(t *testing.T) {
	cl := fastCluster(t, Config{NumDCs: 2, NumPartitions: 2})
	client, err := cl.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cl.PartitionInterDCLink(0, 1, true)
	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Write("during-partition", []byte("v"))
	ct, err := tx.Commit()
	if err != nil {
		t.Fatalf("commit during partition: %v", err)
	}
	cl.PartitionInterDCLink(0, 1, false)

	deadline := time.Now().Add(5 * time.Second)
	for !cl.RemoteUpdateVisible(1, "during-partition", 0, ct) {
		if time.Now().After(deadline) {
			t.Fatal("update never reached DC1 after heal")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPartitionOfStable(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key%d", i)
		p := PartitionOf(k, 8)
		if p < 0 || p >= 8 {
			t.Fatalf("partition out of range: %d", p)
		}
		if PartitionOf(k, 8) != p {
			t.Fatal("PartitionOf not deterministic")
		}
	}
}
