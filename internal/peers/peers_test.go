package peers

import (
	"testing"

	"wren/internal/transport"
)

func TestParseBasic(t *testing.T) {
	m, err := Parse("0/0=127.0.0.1:7000,0/1=127.0.0.1:7001,1/0=10.0.0.1:7000")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("len = %d, want 3", len(m))
	}
	if m[transport.ServerID(0, 1)] != "127.0.0.1:7001" {
		t.Errorf("wrong address for 0/1: %q", m[transport.ServerID(0, 1)])
	}
	if m[transport.ServerID(1, 0)] != "10.0.0.1:7000" {
		t.Errorf("wrong address for 1/0")
	}
}

func TestParseWhitespaceAndEmpties(t *testing.T) {
	m, err := Parse(" 0/0=a:1 , , 1/2=b:2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("len = %d, want 2", len(m))
	}
}

func TestParseEmptyString(t *testing.T) {
	m, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatal("empty string should give empty map")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"0/0",               // no '='
		"00=addr",           // no '/'
		"x/0=addr",          // bad DC
		"0/y=addr",          // bad partition
		"-1/0=addr",         // negative
		"0/0=",              // empty address
		"0/0=a:1,0/0=b:2",   // duplicate
		"0 / 0 = spaces ok", // spaces inside id are trimmed, '= spaces ok' valid? address " spaces ok" accepted
	}
	for _, s := range bad[:7] {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	in := "0/0=a:1,0/1=b:2,2/5=c:3"
	m, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := Format(m); got != in {
		t.Errorf("Format = %q, want %q", got, in)
	}
	back, err := Parse(Format(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(m) {
		t.Error("round trip lost entries")
	}
}

func TestFormatEmpty(t *testing.T) {
	if Format(nil) != "" {
		t.Error("Format(nil) should be empty")
	}
}
