// Package peers parses the "dc/partition=host:port" peer-map notation
// shared by cmd/wren-server and cmd/wren-cli.
package peers

import (
	"fmt"
	"strconv"
	"strings"

	"wren/internal/transport"
)

// Parse converts a comma-separated list of dc/partition=addr entries into
// a peer address map. Whitespace around entries is ignored; empty entries
// are skipped; an empty string yields an empty map.
func Parse(s string) (map[transport.NodeID]string, error) {
	out := make(map[transport.NodeID]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.IndexByte(entry, '=')
		if eq < 0 {
			return nil, fmt.Errorf("peers: %q: want dc/partition=addr", entry)
		}
		id, err := parseNodeID(entry[:eq])
		if err != nil {
			return nil, fmt.Errorf("peers: %q: %w", entry, err)
		}
		addr := entry[eq+1:]
		if addr == "" {
			return nil, fmt.Errorf("peers: %q: empty address", entry)
		}
		if prev, dup := out[id]; dup {
			return nil, fmt.Errorf("peers: duplicate entry for %v (%s and %s)", id, prev, addr)
		}
		out[id] = addr
	}
	return out, nil
}

func parseNodeID(s string) (transport.NodeID, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return transport.NodeID{}, fmt.Errorf("missing '/' in node id %q", s)
	}
	dc, err := strconv.Atoi(strings.TrimSpace(s[:slash]))
	if err != nil {
		return transport.NodeID{}, fmt.Errorf("bad DC in %q: %w", s, err)
	}
	p, err := strconv.Atoi(strings.TrimSpace(s[slash+1:]))
	if err != nil {
		return transport.NodeID{}, fmt.Errorf("bad partition in %q: %w", s, err)
	}
	if dc < 0 || p < 0 {
		return transport.NodeID{}, fmt.Errorf("negative indices in %q", s)
	}
	return transport.ServerID(dc, p), nil
}

// Format renders a peer map back into the parseable notation, with entries
// sorted for stable output.
func Format(m map[transport.NodeID]string) string {
	type entry struct {
		id   transport.NodeID
		addr string
	}
	entries := make([]entry, 0, len(m))
	for id, addr := range m {
		entries = append(entries, entry{id: id, addr: addr})
	}
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && less(entries[j].id, entries[j-1].id); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		parts = append(parts, fmt.Sprintf("%d/%d=%s", e.id.DC, e.id.Node, e.addr))
	}
	return strings.Join(parts, ",")
}

func less(a, b transport.NodeID) bool {
	if a.DC != b.DC {
		return a.DC < b.DC
	}
	return a.Node < b.Node
}
