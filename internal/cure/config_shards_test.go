package cure

import (
	"testing"

	"wren/internal/store"
	"wren/internal/transport"
)

func TestStoreShardsValidation(t *testing.T) {
	net := transport.NewMemory(transport.UniformLatency(0, 0))
	defer net.Close()
	base := ServerConfig{DC: 0, Partition: 0, NumDCs: 1, NumPartitions: 1, Network: net}

	cfg := base
	cfg.StoreShards = -1
	if _, err := NewServer(cfg); err == nil {
		t.Error("negative StoreShards accepted")
	}
	cfg.StoreShards = store.MaxShards + 1
	if _, err := NewServer(cfg); err == nil {
		t.Error("oversized StoreShards accepted")
	}

	cfg.StoreShards = 16
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if got := srv.Store().NumShards(); got != 16 {
		t.Errorf("NumShards = %d, want 16", got)
	}
}
