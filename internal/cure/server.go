package cure

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/fanin"
	"wren/internal/hlc"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/store"
	"wren/internal/store/backend"
	"wren/internal/stripemap"
	"wren/internal/transport"
	"wren/internal/wire"
)

// Default protocol timer intervals, matching package core.
const (
	DefaultApplyInterval  = 5 * time.Millisecond
	DefaultGossipInterval = 5 * time.Millisecond
	DefaultGCInterval     = 500 * time.Millisecond
	DefaultTxContextTTL   = 30 * time.Second
)

// ServerConfig configures one Cure/H-Cure partition server.
type ServerConfig struct {
	DC            int
	Partition     int
	NumDCs        int
	NumPartitions int
	Network       transport.Network
	ClockSource   hlc.Source
	// UseHLC selects H-Cure: hybrid logical clocks let a partition's clock
	// jump forward on message receipt, removing the clock-skew component
	// of read blocking. False selects plain Cure (physical clocks).
	UseHLC         bool
	ApplyInterval  time.Duration
	GossipInterval time.Duration
	GCInterval     time.Duration
	TxContextTTL   time.Duration
	// StoreShards is the number of lock stripes in the version store.
	// Zero selects store.DefaultShards; the value is rounded up to a power
	// of two.
	StoreShards int
	// StoreBackend selects the storage engine ("" or "memory" for the
	// in-memory engine, "wal" for the durable per-shard log engine,
	// "sst" for the memtable+sorted-run engine).
	StoreBackend string
	// DataDir is the root directory durable backends write under (the
	// server uses DataDir/dc<m>-p<n>). Required for the wal and sst
	// backends.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy: "always", "interval"
	// (the "" default) or "never".
	FsyncPolicy string
}

func (c *ServerConfig) fillDefaults() {
	if c.ClockSource == nil {
		c.ClockSource = hlc.SystemSource{}
	}
	if c.ApplyInterval == 0 {
		c.ApplyInterval = DefaultApplyInterval
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	if c.TxContextTTL == 0 {
		c.TxContextTTL = DefaultTxContextTTL
	}
}

func (c *ServerConfig) validate() error {
	if c.NumDCs <= 0 || c.NumPartitions <= 0 {
		return fmt.Errorf("cure: invalid topology %dx%d", c.NumDCs, c.NumPartitions)
	}
	if c.DC < 0 || c.DC >= c.NumDCs {
		return fmt.Errorf("cure: DC %d out of range [0,%d)", c.DC, c.NumDCs)
	}
	if c.Partition < 0 || c.Partition >= c.NumPartitions {
		return fmt.Errorf("cure: partition %d out of range [0,%d)", c.Partition, c.NumPartitions)
	}
	if c.Network == nil {
		return fmt.Errorf("cure: network is required")
	}
	if c.StoreShards < 0 || c.StoreShards > store.MaxShards {
		return fmt.Errorf("cure: store shards %d out of range [0,%d]", c.StoreShards, store.MaxShards)
	}
	if err := backend.Validate(c.StoreBackend, c.DataDir, c.FsyncPolicy); err != nil {
		return fmt.Errorf("cure: %w", err)
	}
	return nil
}

// engineDir is the per-server subdirectory of DataDir a durable backend
// writes to.
func (c *ServerConfig) engineDir() string {
	if c.DataDir == "" {
		return ""
	}
	return filepath.Join(c.DataDir, fmt.Sprintf("dc%d-p%d", c.DC, c.Partition))
}

// txContext is the coordinator-side state of an open transaction.
type txContext struct {
	sv      []hlc.Timestamp // snapshot vector
	created time.Time
}

// preparedTx is a prepared-but-uncommitted transaction.
type preparedTx struct {
	pt     hlc.Timestamp
	sv     []hlc.Timestamp
	writes []wire.KV
}

// committedTx awaits application in commit-timestamp order.
type committedTx struct {
	txID   uint64
	ct     hlc.Timestamp
	dv     []hlc.Timestamp // final dependency vector (dv[m] = ct)
	writes []wire.KV
}

// waiter is a parked slice read whose snapshot is not yet installed — the
// blocking behaviour that Wren eliminates. req is retained (and released
// to the message pool only after the read is served or failed) because
// keys and sv alias its buffers.
type waiter struct {
	from    transport.NodeID
	reqID   uint64
	keys    []string
	sv      []hlc.Timestamp
	req     *wire.SliceReq
	arrived time.Time
}

type prepareCall struct {
	ch chan hlc.Timestamp
}

// curePred is Cure's snapshot-vector visibility predicate in reusable
// form: a pooled readScratch binds its visible method once, so a slice
// read updates one field instead of allocating a closure.
type curePred struct {
	sv []hlc.Timestamp
}

func (p *curePred) visible(v *store.Version) bool { return leqAll(v.DV, p.sv) }

// readScratch is the pooled per-read working set (predicate + version
// buffer), mirroring package core.
type readScratch struct {
	pred    curePred
	visible store.VisibleFunc
	vers    []*store.Version
}

// Metrics exposes Cure server counters; BlockedReads/BlockedMicros feed the
// paper's Figure 3b.
type Metrics struct {
	TxStarted     stats.Counter
	TxCommitted   stats.Counter
	SlicesServed  stats.Counter
	BlockedReads  stats.Counter
	BlockedMicros stats.Counter
	ReplTxApplied stats.Counter
	GCRemoved     stats.Counter
	GCKeysDropped stats.Counter
	CtxExpired    stats.Counter
}

// Server is one Cure/H-Cure partition server.
//
// Mirroring package core, the read path is lock-free where the protocol
// allows: the version vector and global stable vector are atomically
// published (so the installed-snapshot check on every slice read takes no
// lock), per-request bookkeeping lives in striped maps, and read fan-ins
// are completion counters. What remains under s.mu is the writer state and
// the parked-reader list — the blocking that defines this baseline.
type Server struct {
	cfg   ServerConfig
	id    transport.NodeID
	clock *hlc.Clock
	st    store.Engine

	// vv[m] = local version clock; vv[i] = received from DC i. gsv is the
	// global stable vector from gossip (entrywise min over peers). Both are
	// entrywise-monotone atomics, loaded lock-free on the read path.
	vv  hlc.AtomicVector
	gsv hlc.AtomicVector

	txCtx        *stripemap.Map[*txContext]
	pendingSlice *stripemap.Map[*fanin.TxRead]

	// snapMu makes snapshot-vector assignment atomic with respect to
	// GC's oldest-snapshot computation, exactly as in package core:
	// StartTx holds it shared around (read gsv/clock → store context);
	// gcTick takes it exclusively while loading the GC floor, so any
	// context invisible to the subsequent sweep was assigned a snapshot
	// at or above the floor.
	snapMu sync.RWMutex

	readPool sync.Pool
	fanPool  sync.Pool

	mu        sync.Mutex
	peerVV    [][]hlc.Timestamp // last gossiped VV per peer partition
	prepared  map[uint64]*preparedTx
	committed []*committedTx
	waiters   []*waiter
	oldest    []hlc.Timestamp // gossiped oldest-active snapshot per partition

	pendingPrepare map[uint64]*prepareCall

	reqSeq  atomic.Uint64
	txSeq   atomic.Uint64
	metrics Metrics

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	reqWG     sync.WaitGroup

	// drainMu orders goAsync's draining check + reqWG.Add against Stop's
	// draining=true + reqWG.Wait, as in package core.
	drainMu  sync.Mutex
	draining bool // guarded by drainMu
}

// NewServer constructs a Cure or H-Cure partition server.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := backend.Open(backend.Options{
		Backend: cfg.StoreBackend,
		Shards:  cfg.StoreShards,
		DataDir: cfg.engineDir(),
		Fsync:   cfg.FsyncPolicy,
	})
	if err != nil {
		return nil, fmt.Errorf("cure: open store: %w", err)
	}
	s := &Server{
		cfg:            cfg,
		id:             transport.ServerID(cfg.DC, cfg.Partition),
		clock:          hlc.NewClock(cfg.ClockSource),
		st:             eng,
		vv:             hlc.NewAtomicVector(cfg.NumDCs),
		gsv:            hlc.NewAtomicVector(cfg.NumDCs),
		peerVV:         make([][]hlc.Timestamp, cfg.NumPartitions),
		prepared:       make(map[uint64]*preparedTx),
		txCtx:          stripemap.New[*txContext](0),
		oldest:         make([]hlc.Timestamp, cfg.NumPartitions),
		pendingSlice:   stripemap.New[*fanin.TxRead](0),
		pendingPrepare: make(map[uint64]*prepareCall),
		stop:           make(chan struct{}),
	}
	for p := range s.peerVV {
		s.peerVV[p] = make([]hlc.Timestamp, cfg.NumDCs)
	}
	s.readPool.New = func() any {
		rs := &readScratch{}
		rs.visible = rs.pred.visible
		return rs
	}
	s.fanPool.New = func() any { return &fanin.Fanout{} }
	return s, nil
}

// ID returns the server's node id.
func (s *Server) ID() transport.NodeID { return s.id }

// Metrics returns the server's counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Store exposes the underlying storage engine for tests.
func (s *Server) Store() store.Engine { return s.st }

// EngineHealthy reports the first write-path failure the storage engine
// has recorded, or nil while it is fully healthy.
func (s *Server) EngineHealthy() error { return s.st.Healthy() }

// Start registers the server and launches its background loops.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.cfg.Network.Register(s.id, s)
		s.wg.Add(1)
		go s.applyLoop()
		s.wg.Add(1)
		go s.gossipLoop()
		if s.cfg.GCInterval > 0 {
			s.wg.Add(1)
			go s.gcLoop()
		}
	})
}

// Stop terminates background loops, waits for them, flushes the commit
// list into the store, and closes the storage engine. As in core.Server,
// an acknowledged commit whose CommitTx was still in flight when draining
// began can be lost (the commit-time durability gap in ROADMAP.md).
func (s *Server) Stop() {
	var flush bool
	s.stopOnce.Do(func() {
		s.drainMu.Lock()
		s.draining = true
		s.drainMu.Unlock()
		s.mu.Lock()
		waiters := s.waiters
		s.waiters = nil
		s.mu.Unlock()
		// Fail parked reads so clients aren't left hanging.
		for _, w := range waiters {
			s.send(w.from, &wire.SliceResp{ReqID: w.reqID})
			if w.req != nil {
				wire.PutSliceReq(w.req)
			}
		}
		close(s.stop)
		flush = true
	})
	s.wg.Wait()
	s.reqWG.Wait()
	if flush {
		// Prepared-but-uncommitted transactions can never commit now; drop
		// them so their proposed timestamps do not hold the final apply's
		// upper bound below acknowledged commits still on the commit list.
		s.mu.Lock()
		s.prepared = make(map[uint64]*preparedTx)
		s.mu.Unlock()
		s.applyTick(false)
		s.flushCommitted()
		if err := s.st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cure: dc%d/p%d store close: %v\n", s.cfg.DC, s.cfg.Partition, err)
		}
	}
}

// flushCommitted force-applies every transaction still on the commit list,
// ignoring the apply upper bound. Only used during Stop. This matters for
// plain Cure in particular: its upper bound follows the raw physical
// clock, so under skew a commit timestamp assigned by a faster coordinator
// can sit above PhysicalNow() at shutdown and would otherwise never be
// applied (and never reach a durable engine).
func (s *Server) flushCommitted() {
	s.mu.Lock()
	apply := s.committed
	s.committed = nil
	s.mu.Unlock()
	if len(apply) == 0 {
		return
	}
	sort.Slice(apply, func(i, j int) bool {
		if apply[i].ct != apply[j].ct {
			return apply[i].ct < apply[j].ct
		}
		return apply[i].txID < apply[j].txID
	})
	var puts []store.KV
	for _, t := range apply {
		for _, kv := range t.writes {
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.ct, TxID: t.txID, SrcDC: uint8(s.cfg.DC), DV: t.dv,
			}})
		}
	}
	s.st.PutBatch(puts)
}

func (s *Server) goAsync(fn func()) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return
	}
	s.reqWG.Add(1)
	s.drainMu.Unlock()
	go func() {
		defer s.reqWG.Done()
		fn()
	}()
}

// StableVector returns a copy of the server's global stable vector.
func (s *Server) StableVector() []hlc.Timestamp {
	return s.gsv.Snapshot(nil)
}

// VersionVector returns a copy of the server's version vector.
func (s *Server) VersionVector() []hlc.Timestamp {
	return s.vv.Snapshot(nil)
}

// LocalVersionClock returns vv[m].
func (s *Server) LocalVersionClock() hlc.Timestamp {
	return s.vv.Load(s.cfg.DC)
}

func (s *Server) newTxID() uint64 {
	return uint64(s.cfg.DC)<<56 | uint64(s.cfg.Partition)<<40 | s.txSeq.Add(1)
}

// now returns the coordinator clock reading used for snapshot local
// entries: the HLC for H-Cure, the raw physical clock for Cure.
func (s *Server) now() hlc.Timestamp {
	if s.cfg.UseHLC {
		return s.clock.Now()
	}
	return s.clock.PhysicalNow()
}

// HandleMessage implements transport.Handler.
func (s *Server) HandleMessage(from transport.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.StartTxReq:
		s.handleStartTx(from, msg)
	case *wire.TxReadReq:
		s.handleTxRead(from, msg)
	case *wire.CommitReq:
		s.handleCommitReq(from, msg)
	case *wire.SliceReq:
		s.handleSliceReq(from, msg)
	case *wire.SliceResp:
		s.handleSliceResp(msg)
	case *wire.PrepareReq:
		s.handlePrepareReq(from, msg)
	case *wire.PrepareResp:
		s.handlePrepareResp(msg)
	case *wire.CommitTx:
		s.handleCommitTx(msg)
	case *wire.Replicate:
		s.handleReplicate(msg)
	case *wire.Heartbeat:
		s.handleHeartbeat(msg)
	case *wire.StableBroadcast:
		s.handleStableBroadcast(msg)
	case *wire.GCBroadcast:
		s.handleGCBroadcast(msg)
	}
}

// handleStartTx assigns the snapshot vector: remote entries from the
// stable vector, the local entry from the coordinator's CURRENT clock —
// the design choice that makes Cure reads block — raised to the client's
// dependency vector.
func (s *Server) handleStartTx(from transport.NodeID, m *wire.StartTxReq) {
	id := s.newTxID()
	s.snapMu.RLock()
	sv := s.gsv.Snapshot(nil)
	sv[s.cfg.DC] = s.now()
	if len(m.DV) == len(sv) {
		maxInto(sv, m.DV)
	}
	s.txCtx.Store(id, &txContext{sv: sv, created: time.Now()})
	s.snapMu.RUnlock()

	s.metrics.TxStarted.Inc()
	s.send(from, &wire.StartTxResp{ReqID: m.ReqID, TxID: id, SV: sv})
}

// handleTxRead fans the key set out per partition and merges the slices
// via a completion-counter fan-in (as in package core): the last arriving
// SliceResp assembles the TxReadResp, no goroutine parks per read. Unlike
// Wren's coordinator there is no local fast path — even the coordinator's
// own slice goes through handleSliceReq, which may legitimately park it
// (the blocking this baseline exists to exhibit).
func (s *Server) handleTxRead(from transport.NodeID, m *wire.TxReadReq) {
	ctx, ok := s.txCtx.Load(m.TxID)
	if !ok {
		s.send(from, &wire.TxReadResp{ReqID: m.ReqID})
		return
	}
	sv := ctx.sv

	fo := s.fanPool.Get().(*fanin.Fanout)
	fo.Reset(s.cfg.NumPartitions)
	for _, k := range m.Keys {
		fo.Add(sharding.PartitionOf(k, s.cfg.NumPartitions), k)
	}

	fi := fanin.Start(from, m.ReqID, len(fo.Touched))
	for _, p := range fo.Touched {
		reqID := s.reqSeq.Add(1)
		req := wire.GetSliceReq()
		req.ReqID = reqID
		req.Keys = append(req.Keys[:0], fo.Groups[p]...)
		req.SV = sv // aliases the tx context's vector; PutSliceReq drops it
		s.pendingSlice.Store(reqID, fi)
		s.send(transport.ServerID(s.cfg.DC, p), req)
	}
	s.fanPool.Put(fo)

	if resp, to, last := fi.Finish(); last {
		s.send(to, resp)
	}
}

// installed reports whether this partition has installed snapshot sv:
// every version-vector entry has reached the snapshot's. Lock-free — the
// version vector is entrywise-monotone, so a true result never reverts.
func (s *Server) installed(sv []hlc.Timestamp) bool {
	return s.vv.Covers(sv)
}

// handleSliceReq serves the read if the snapshot is installed; otherwise it
// PARKS the request until the apply loop or replication catches up. This is
// the blocking that Wren's CANToR protocol eliminates. The installed fast
// path takes no lock at all; only parking does.
func (s *Server) handleSliceReq(from transport.NodeID, m *wire.SliceReq) {
	if s.cfg.UseHLC {
		// H-Cure: the HLC absorbs the snapshot timestamp, so an idle
		// partition's clock no longer lags the coordinator's.
		s.clock.Update(m.SV[s.cfg.DC])
	}
	if s.installed(m.SV) {
		s.serveSlice(from, m.ReqID, m.Keys, m.SV, 0)
		wire.PutSliceReq(m)
		return
	}
	s.mu.Lock()
	// Re-check under the lock: a concurrent vv advance that ran its waiter
	// release before we parked would otherwise be a lost wakeup.
	if s.installed(m.SV) {
		s.mu.Unlock()
		s.serveSlice(from, m.ReqID, m.Keys, m.SV, 0)
		wire.PutSliceReq(m)
		return
	}
	s.waiters = append(s.waiters, &waiter{
		from: from, reqID: m.ReqID, keys: m.Keys, sv: m.SV, req: m, arrived: time.Now(),
	})
	s.mu.Unlock()
	// Try to install a fresher snapshot right away: if nothing is pending
	// and the clock allows, the read is served without waiting for the
	// next apply tick. What remains is genuine blocking: pending
	// transactions below the snapshot, clock skew (Cure only), or missing
	// remote updates.
	s.applyTick(false)
}

// serveSlice returns the freshest version of each key whose dependency
// vector is within the snapshot. The response and its working memory come
// from pools; the receiver releases the response.
func (s *Server) serveSlice(to transport.NodeID, reqID uint64, keys []string, sv []hlc.Timestamp, blocked time.Duration) {
	rs := s.readPool.Get().(*readScratch)
	rs.pred.sv = sv
	rs.vers = s.st.ReadVisibleBatchInto(keys, rs.visible, rs.vers)
	resp := wire.GetSliceResp()
	resp.ReqID = reqID
	for i, v := range rs.vers {
		// A visible tombstone (nil Value) reads as absence, hiding any
		// older live version.
		if v != nil && v.Value != nil {
			resp.Items = append(resp.Items, wire.Item{
				Key: keys[i], Value: v.Value, UT: v.UT, TxID: v.TxID, SrcDC: v.SrcDC, DV: v.DV,
			})
		}
	}
	rs.pred.sv = nil // do not pin the snapshot vector in the pool
	clear(rs.vers)   // nor GC-able version chains
	s.readPool.Put(rs)
	s.metrics.SlicesServed.Inc()
	if blocked > 0 {
		s.metrics.BlockedReads.Inc()
		s.metrics.BlockedMicros.Add(uint64(blocked.Microseconds()))
	}
	resp.BlockedMicros = blocked.Microseconds()
	s.send(to, resp)
}

// releaseWaitersLocked finds parked reads whose snapshot is now installed.
// It must be called with s.mu held; it returns the now-serveable waiters so
// the caller can serve them after releasing the lock.
func (s *Server) releaseWaitersLocked() []*waiter {
	if len(s.waiters) == 0 {
		return nil
	}
	var ready []*waiter
	rest := s.waiters[:0]
	for _, w := range s.waiters {
		if s.installed(w.sv) {
			ready = append(ready, w)
		} else {
			rest = append(rest, w)
		}
	}
	s.waiters = rest
	return ready
}

func (s *Server) serveReady(ready []*waiter) {
	for _, w := range ready {
		s.serveSlice(w.from, w.reqID, w.keys, w.sv, time.Since(w.arrived))
		if w.req != nil {
			// keys and sv alias the request's buffers; release only after
			// the read is fully served.
			wire.PutSliceReq(w.req)
		}
	}
}

func (s *Server) handleSliceResp(m *wire.SliceResp) {
	if fi, ok := s.pendingSlice.LoadAndDelete(m.ReqID); ok {
		fi.Fold(m.Items, m.BlockedMicros)
		if resp, to, last := fi.Finish(); last {
			s.send(to, resp)
		}
	}
	wire.PutSliceResp(m)
}

func (s *Server) handleCommitReq(from transport.NodeID, m *wire.CommitReq) {
	ctx, ok := s.txCtx.LoadAndDelete(m.TxID)
	var sv []hlc.Timestamp
	if ok {
		sv = ctx.sv
	} else {
		sv = s.gsv.Snapshot(nil)
		sv[s.cfg.DC] = s.now()
	}

	if len(m.Writes) == 0 {
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, CT: 0})
		return
	}

	byPartition := make(map[int][]wire.KV)
	for _, kv := range m.Writes {
		p := sharding.PartitionOf(kv.Key, s.cfg.NumPartitions)
		byPartition[p] = append(byPartition[p], kv)
	}
	type cohortWrites struct {
		partition int
		writes    []wire.KV
	}
	cohorts := make([]cohortWrites, 0, len(byPartition))
	for p, ws := range byPartition {
		cohorts = append(cohorts, cohortWrites{partition: p, writes: ws})
	}

	call := &prepareCall{ch: make(chan hlc.Timestamp, len(cohorts))}
	s.mu.Lock()
	s.pendingPrepare[m.TxID] = call
	s.mu.Unlock()

	ht := hlc.Max(m.HWT, sv[s.cfg.DC])
	for _, c := range cohorts {
		s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.PrepareReq{
			ReqID: s.reqSeq.Add(1), TxID: m.TxID, HT: ht, SV: sv, Writes: c.writes,
		})
	}

	s.goAsync(func() {
		var ct hlc.Timestamp
		for range cohorts {
			select {
			case pt := <-call.ch:
				if pt > ct {
					ct = pt
				}
			case <-s.stop:
				return
			}
		}
		s.mu.Lock()
		delete(s.pendingPrepare, m.TxID)
		s.mu.Unlock()
		for _, c := range cohorts {
			s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: ct})
		}
		s.metrics.TxCommitted.Inc()
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, CT: ct})
	})
}

// handlePrepareReq proposes a commit timestamp strictly above the snapshot
// and everything the client saw. Cure draws it from the (possibly lagging)
// physical clock; H-Cure's HLC can jump.
func (s *Server) handlePrepareReq(from transport.NodeID, m *wire.PrepareReq) {
	pt := s.clock.TickPast(m.HT)
	s.mu.Lock()
	s.prepared[m.TxID] = &preparedTx{pt: pt, sv: m.SV, writes: m.Writes}
	s.mu.Unlock()
	s.send(from, &wire.PrepareResp{ReqID: m.ReqID, TxID: m.TxID, PT: pt})
}

func (s *Server) handlePrepareResp(m *wire.PrepareResp) {
	s.mu.Lock()
	call := s.pendingPrepare[m.TxID]
	s.mu.Unlock()
	if call != nil {
		call.ch <- m.PT
	}
}

func (s *Server) handleCommitTx(m *wire.CommitTx) {
	if s.cfg.UseHLC {
		s.clock.Update(m.CT)
	}
	s.mu.Lock()
	p, ok := s.prepared[m.TxID]
	if ok {
		delete(s.prepared, m.TxID)
		dv := copyVec(p.sv)
		dv[s.cfg.DC] = m.CT
		s.committed = append(s.committed, &committedTx{
			txID: m.TxID, ct: m.CT, dv: dv, writes: p.writes,
		})
	}
	s.mu.Unlock()
}

func (s *Server) handleReplicate(m *wire.Replicate) {
	var puts []store.KV
	for i := range m.Txs {
		t := &m.Txs[i]
		for _, kv := range t.Writes {
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.CT, TxID: t.TxID, SrcDC: m.SrcDC, DV: t.DV,
			}})
		}
	}
	s.st.PutBatch(puts)
	s.metrics.ReplTxApplied.Add(uint64(len(puts)))
	if len(m.Txs) == 0 {
		return
	}
	last := m.Txs[len(m.Txs)-1].CT
	s.vv.Advance(int(m.SrcDC), last)
	s.mu.Lock()
	ready := s.releaseWaitersLocked()
	s.mu.Unlock()
	s.serveReady(ready)
}

func (s *Server) handleHeartbeat(m *wire.Heartbeat) {
	s.vv.Advance(int(m.SrcDC), m.TS)
	s.mu.Lock()
	ready := s.releaseWaitersLocked()
	s.mu.Unlock()
	s.serveReady(ready)
}

// handleStableBroadcast ingests a peer's full version vector and recomputes
// the global stable vector as the entrywise minimum.
func (s *Server) handleStableBroadcast(m *wire.StableBroadcast) {
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions || len(m.VV) != s.cfg.NumDCs {
		return
	}
	s.mu.Lock()
	maxInto(s.peerVV[p], m.VV)
	s.recomputeStableLocked()
	s.mu.Unlock()
}

// recomputeStableLocked folds the per-peer vectors into the published
// global stable vector. Caller holds s.mu (which serializes peerVV);
// publication itself is an entrywise atomic max-merge.
func (s *Server) recomputeStableLocked() {
	for i := 0; i < s.cfg.NumDCs; i++ {
		m := s.peerVV[0][i]
		for p := 1; p < s.cfg.NumPartitions; p++ {
			if s.peerVV[p][i] < m {
				m = s.peerVV[p][i]
			}
		}
		s.gsv.Advance(i, m)
	}
}

func (s *Server) applyLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ApplyInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.applyTick(true)
		case <-s.stop:
			return
		}
	}
}

// applyTick installs committed transactions up to the safe bound and, when
// called from the apply loop (heartbeat=true), replicates or heartbeats to
// the peer replicas. Read handlers also invoke it (heartbeat=false) to
// install snapshots eagerly.
func (s *Server) applyTick(heartbeat bool) {
	s.mu.Lock()
	var ub hlc.Timestamp
	if len(s.prepared) > 0 {
		first := true
		for _, p := range s.prepared {
			if first || p.pt < ub {
				ub = p.pt
				first = false
			}
		}
		ub = ub.Prev()
	} else if s.cfg.UseHLC {
		ub = s.clock.Now()
		s.clock.Update(ub)
	} else {
		// Cure: the version clock can only follow the physical clock — the
		// root cause of skew-induced read blocking.
		ub = s.clock.PhysicalNow()
	}
	if local := s.vv.Load(s.cfg.DC); ub < local {
		ub = local
	}

	hadCommitted := len(s.committed) > 0
	var apply []*committedTx
	if hadCommitted {
		rest := s.committed[:0]
		for _, c := range s.committed {
			if c.ct <= ub {
				apply = append(apply, c)
			} else {
				rest = append(rest, c)
			}
		}
		s.committed = rest
	}
	s.mu.Unlock()

	sort.Slice(apply, func(i, j int) bool {
		if apply[i].ct != apply[j].ct {
			return apply[i].ct < apply[j].ct
		}
		return apply[i].txID < apply[j].txID
	})
	var batches []*wire.Replicate
	for i := 0; i < len(apply); {
		j := i
		batch := &wire.Replicate{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition)}
		var puts []store.KV
		for ; j < len(apply) && apply[j].ct == apply[i].ct; j++ {
			t := apply[j]
			for _, kv := range t.writes {
				puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
					Value: kv.VersionValue(), UT: t.ct, TxID: t.txID, SrcDC: uint8(s.cfg.DC), DV: t.dv,
				}})
			}
			batch.Txs = append(batch.Txs, wire.ReplTx{
				TxID: t.txID, CT: t.ct, RST: 0, DV: t.dv, Writes: t.writes,
			})
		}
		s.st.PutBatch(puts)
		batches = append(batches, batch)
		i = j
	}

	s.vv.Advance(s.cfg.DC, ub)
	s.mu.Lock()
	ready := s.releaseWaitersLocked()
	s.mu.Unlock()
	s.serveReady(ready)

	for _, b := range batches {
		for dc := 0; dc < s.cfg.NumDCs; dc++ {
			if dc == s.cfg.DC {
				continue
			}
			s.send(transport.ServerID(dc, s.cfg.Partition), b)
		}
	}
	if heartbeat && !hadCommitted {
		hb := &wire.Heartbeat{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition), TS: ub}
		for dc := 0; dc < s.cfg.NumDCs; dc++ {
			if dc == s.cfg.DC {
				continue
			}
			s.send(transport.ServerID(dc, s.cfg.Partition), hb)
		}
	}
}

func (s *Server) gossipLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.gossipTick()
		case <-s.stop:
			return
		}
	}
}

// gossipTick broadcasts the full M-entry version vector — Cure's
// stabilization messages are M timestamps versus Wren's two (Figure 7a).
func (s *Server) gossipTick() {
	vvCopy := s.vv.Snapshot(nil)
	s.mu.Lock()
	maxInto(s.peerVV[s.cfg.Partition], vvCopy)
	s.recomputeStableLocked()
	s.mu.Unlock()

	msg := &wire.StableBroadcast{Partition: uint16(s.cfg.Partition), VV: vvCopy}
	for p := 0; p < s.cfg.NumPartitions; p++ {
		if p == s.cfg.Partition {
			continue
		}
		s.send(transport.ServerID(s.cfg.DC, p), msg)
	}
}

func (s *Server) gcLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.gcTick()
		case <-s.stop:
			return
		}
	}
}

func (s *Server) gcTick() {
	now := time.Now()
	var expired []uint64
	s.txCtx.Range(func(id uint64, ctx *txContext) bool {
		if now.Sub(ctx.created) > s.cfg.TxContextTTL {
			expired = append(expired, id)
		}
		return true
	})
	for _, id := range expired {
		if _, ok := s.txCtx.LoadAndDelete(id); ok {
			s.metrics.CtxExpired.Inc()
		}
	}
	// Sweep abandoned read fan-ins, mirroring package core.
	var staleReads []uint64
	s.pendingSlice.Range(func(reqID uint64, fi *fanin.TxRead) bool {
		if now.Sub(fi.Created()) > s.cfg.TxContextTTL {
			staleReads = append(staleReads, reqID)
		}
		return true
	})
	for _, reqID := range staleReads {
		s.pendingSlice.Delete(reqID)
	}

	// Conservative scalar bound: the minimum entry of any active snapshot
	// vector (or of the stable vector when idle). The floor is loaded
	// under the snapMu barrier: in-flight snapshot assignments drain
	// first, so a context the Range below cannot see yet was assigned
	// entries at or above these values and needs no protection.
	s.snapMu.Lock()
	oldest := s.gsv.Load(0)
	for i := 1; i < s.cfg.NumDCs; i++ {
		if t := s.gsv.Load(i); t < oldest {
			oldest = t
		}
	}
	if local := s.vv.Load(s.cfg.DC); local < oldest {
		oldest = local
	}
	s.snapMu.Unlock()
	s.txCtx.Range(func(_ uint64, ctx *txContext) bool {
		for _, t := range ctx.sv {
			if t < oldest {
				oldest = t
			}
		}
		return true
	})
	s.mu.Lock()
	if oldest > s.oldest[s.cfg.Partition] {
		s.oldest[s.cfg.Partition] = oldest
	}
	threshold := s.oldest[0]
	for _, t := range s.oldest[1:] {
		if t < threshold {
			threshold = t
		}
	}
	s.mu.Unlock()

	msg := &wire.GCBroadcast{Partition: uint16(s.cfg.Partition), Oldest: oldest}
	for p := 0; p < s.cfg.NumPartitions; p++ {
		if p == s.cfg.Partition {
			continue
		}
		s.send(transport.ServerID(s.cfg.DC, p), msg)
	}

	if threshold > 0 {
		res := s.st.GCStats(threshold)
		if res.Removed > 0 {
			s.metrics.GCRemoved.Add(uint64(res.Removed))
		}
		if res.DroppedKeys > 0 {
			s.metrics.GCKeysDropped.Add(uint64(res.DroppedKeys))
		}
	}
}

func (s *Server) handleGCBroadcast(m *wire.GCBroadcast) {
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions {
		return
	}
	s.mu.Lock()
	if m.Oldest > s.oldest[p] {
		s.oldest[p] = m.Oldest
	}
	s.mu.Unlock()
}

func (s *Server) send(to transport.NodeID, m wire.Message) {
	_ = s.cfg.Network.Send(s.id, to, m)
}
