package cure

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/fanin"
	"wren/internal/hlc"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/store"
	"wren/internal/store/backend"
	"wren/internal/stripemap"
	"wren/internal/transport"
	"wren/internal/txlog"
	"wren/internal/wire"
)

// Default protocol timer intervals, matching package core.
const (
	DefaultApplyInterval  = 5 * time.Millisecond
	DefaultGossipInterval = 5 * time.Millisecond
	DefaultGCInterval     = 500 * time.Millisecond
	DefaultTxContextTTL   = 30 * time.Second
)

// recoveryGrace, redriveAfter and resendBatchSize mirror package core:
// the status-probe cadence for recovered prepares, the age after which an
// unresolved commit decision's CommitTx is re-driven, and the resync
// Replicate batch size.
const (
	recoveryGrace     = 15 * time.Second
	redriveAfter      = 5 * time.Second
	resendBatchSize   = 128
	seqBlockSize      = 1 << 20 // durable id-block reservation, as in core
	lifecycleInterval = time.Second
)

// ServerConfig configures one Cure/H-Cure partition server.
type ServerConfig struct {
	DC            int
	Partition     int
	NumDCs        int
	NumPartitions int
	Network       transport.Network
	ClockSource   hlc.Source
	// UseHLC selects H-Cure: hybrid logical clocks let a partition's clock
	// jump forward on message receipt, removing the clock-skew component
	// of read blocking. False selects plain Cure (physical clocks).
	UseHLC         bool
	ApplyInterval  time.Duration
	GossipInterval time.Duration
	GCInterval     time.Duration
	TxContextTTL   time.Duration
	// StoreShards is the number of lock stripes in the version store.
	// Zero selects store.DefaultShards; the value is rounded up to a power
	// of two.
	StoreShards int
	// StoreBackend selects the storage engine ("" or "memory" for the
	// in-memory engine, "wal" for the durable per-shard log engine,
	// "sst" for the memtable+sorted-run engine).
	StoreBackend string
	// DataDir is the root directory durable backends write under (the
	// server uses DataDir/dc<m>-p<n>). Required for the wal and sst
	// backends.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy: "always", "interval"
	// (the "" default) or "never".
	FsyncPolicy string
	// DisableTxLog turns off the durable transaction-lifecycle log that
	// durable backends get by default (see core.ServerConfig.DisableTxLog:
	// with the log, the durability unit is the ACKNOWLEDGED transaction
	// and replication progress survives restarts).
	DisableTxLog bool
}

func (c *ServerConfig) fillDefaults() {
	if c.ClockSource == nil {
		c.ClockSource = hlc.SystemSource{}
	}
	if c.ApplyInterval == 0 {
		c.ApplyInterval = DefaultApplyInterval
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	if c.TxContextTTL == 0 {
		c.TxContextTTL = DefaultTxContextTTL
	}
}

func (c *ServerConfig) validate() error {
	if c.NumDCs <= 0 || c.NumPartitions <= 0 {
		return fmt.Errorf("cure: invalid topology %dx%d", c.NumDCs, c.NumPartitions)
	}
	if c.DC < 0 || c.DC >= c.NumDCs {
		return fmt.Errorf("cure: DC %d out of range [0,%d)", c.DC, c.NumDCs)
	}
	if c.Partition < 0 || c.Partition >= c.NumPartitions {
		return fmt.Errorf("cure: partition %d out of range [0,%d)", c.Partition, c.NumPartitions)
	}
	if c.Network == nil {
		return fmt.Errorf("cure: network is required")
	}
	if c.StoreShards < 0 || c.StoreShards > store.MaxShards {
		return fmt.Errorf("cure: store shards %d out of range [0,%d]", c.StoreShards, store.MaxShards)
	}
	if err := backend.Validate(c.StoreBackend, c.DataDir, c.FsyncPolicy); err != nil {
		return fmt.Errorf("cure: %w", err)
	}
	return nil
}

// engineDir is the per-server subdirectory of DataDir a durable backend
// writes to.
func (c *ServerConfig) engineDir() string {
	if c.DataDir == "" {
		return ""
	}
	return filepath.Join(c.DataDir, fmt.Sprintf("dc%d-p%d", c.DC, c.Partition))
}

// txContext is the coordinator-side state of an open transaction.
type txContext struct {
	sv      []hlc.Timestamp // snapshot vector
	created time.Time
}

// preparedTx is a prepared-but-uncommitted transaction.
type preparedTx struct {
	pt     hlc.Timestamp
	sv     []hlc.Timestamp
	writes []wire.KV
}

// committedTx awaits application in commit-timestamp order.
type committedTx struct {
	txID   uint64
	ct     hlc.Timestamp
	dv     []hlc.Timestamp // final dependency vector (dv[m] = ct)
	writes []wire.KV
}

// waiter is a parked slice read whose snapshot is not yet installed — the
// blocking behaviour that Wren eliminates. req is retained (and released
// to the message pool only after the read is served or failed) because
// keys and sv alias its buffers.
type waiter struct {
	from    transport.NodeID
	reqID   uint64
	keys    []string
	sv      []hlc.Timestamp
	req     *wire.SliceReq
	arrived time.Time
}

// prepareVote is one cohort's 2PC answer: a proposed commit timestamp, or
// a refusal (non-empty err) from a cohort whose durability is degraded.
type prepareVote struct {
	pt  hlc.Timestamp
	err string
}

type prepareCall struct {
	ch chan prepareVote
}

// recoveredPrepare is a prepare replayed from the transaction log after a
// restart, awaiting a re-driven outcome or a TxStatusResp verdict; kept
// out of s.prepared so it cannot hold the apply upper bound back (see
// package core).
type recoveredPrepare struct {
	tx        *txlog.PreparedTx
	nextProbe time.Time
}

// curePred is Cure's snapshot-vector visibility predicate in reusable
// form: a pooled readScratch binds its visible method once, so a slice
// read updates one field instead of allocating a closure.
type curePred struct {
	sv []hlc.Timestamp
}

func (p *curePred) visible(v *store.Version) bool { return leqAll(v.DV, p.sv) }

// readScratch is the pooled per-read working set (predicate + version
// buffer), mirroring package core.
type readScratch struct {
	pred    curePred
	visible store.VisibleFunc
	vers    []*store.Version
}

// Metrics exposes Cure server counters; BlockedReads/BlockedMicros feed the
// paper's Figure 3b.
type Metrics struct {
	TxStarted     stats.Counter
	TxCommitted   stats.Counter
	SlicesServed  stats.Counter
	BlockedReads  stats.Counter
	BlockedMicros stats.Counter
	ReplTxApplied stats.Counter
	GCRemoved     stats.Counter
	GCKeysDropped stats.Counter
	CtxExpired    stats.Counter
}

// Server is one Cure/H-Cure partition server.
//
// Mirroring package core, the read path is lock-free where the protocol
// allows: the version vector and global stable vector are atomically
// published (so the installed-snapshot check on every slice read takes no
// lock), per-request bookkeeping lives in striped maps, and read fan-ins
// are completion counters. What remains under s.mu is the writer state and
// the parked-reader list — the blocking that defines this baseline.
type Server struct {
	cfg   ServerConfig
	id    transport.NodeID
	clock *hlc.Clock
	st    store.Engine

	// tl is the durable transaction-lifecycle log (nil for the memory
	// backend or when disabled), exactly as in package core; resendTails,
	// seqLimit and seqMu mirror core's restart-resync snapshot and
	// durable id-block reservation.
	tl          *txlog.Log
	resendTails [][]*txlog.CommittedTx
	seqLimit    atomic.Uint64
	seqMu       sync.Mutex
	// resyncTailSent/resyncDone gate ordinary replication per DC until
	// the restart resync tail is on the link (resyncDone is only touched
	// under applyMu) — see core.Server for the ordering rationale.
	resyncTailSent []atomic.Bool
	resyncDone     []bool

	// vv[m] = local version clock; vv[i] = received from DC i. gsv is the
	// global stable vector from gossip (entrywise min over peers). Both are
	// entrywise-monotone atomics, loaded lock-free on the read path.
	vv  hlc.AtomicVector
	gsv hlc.AtomicVector

	txCtx        *stripemap.Map[*txContext]
	pendingSlice *stripemap.Map[*fanin.TxRead]

	// snapMu makes snapshot-vector assignment atomic with respect to
	// GC's oldest-snapshot computation, exactly as in package core:
	// StartTx holds it shared around (read gsv/clock → store context);
	// gcTick takes it exclusively while loading the GC floor, so any
	// context invisible to the subsequent sweep was assigned a snapshot
	// at or above the floor.
	snapMu sync.RWMutex

	readPool sync.Pool
	fanPool  sync.Pool

	// applyMu serializes applyTick end to end. Unlike Wren, whose apply
	// tick only ever runs on the apply-loop goroutine, Cure/H-Cure ALSO
	// run it from every parked slice read (the eager-install attempt in
	// handleSliceReq) — and two overlapping ticks break the installed-
	// snapshot invariant: tick A takes committed transactions up to its
	// bound and is preempted before writing them to the engine; tick B,
	// finding the commit list empty, computes a LARGER bound and publishes
	// it via vv.Advance while A's writes are still in flight. Readers
	// whose snapshot the new vv now "covers" are served without those
	// versions — the monotonic-read regressions and causal/atomic
	// violations TestTCCConformance{Cure,HCure} showed under CPU
	// starvation, where the preemption window stretched to milliseconds.
	// s.mu cannot serve this purpose: applyTick must release it around the
	// engine write, which is exactly the window that must stay ordered.
	applyMu sync.Mutex

	mu        sync.Mutex
	peerVV    [][]hlc.Timestamp // last gossiped VV per peer partition
	prepared  map[uint64]*preparedTx
	recovered map[uint64]*recoveredPrepare // txlog prepares awaiting a re-driven outcome
	committed []*committedTx
	waiters   []*waiter
	oldest    []hlc.Timestamp // gossiped oldest-active snapshot per partition

	pendingPrepare map[uint64]*prepareCall

	reqSeq  atomic.Uint64
	txSeq   atomic.Uint64
	metrics Metrics

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	reqWG     sync.WaitGroup

	// drainMu orders goAsync's draining check + reqWG.Add against Stop's
	// draining=true + reqWG.Wait, as in package core.
	drainMu  sync.Mutex
	draining bool // guarded by drainMu
}

// NewServer constructs a Cure or H-Cure partition server.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng, err := backend.Open(backend.Options{
		Backend: cfg.StoreBackend,
		Shards:  cfg.StoreShards,
		DataDir: cfg.engineDir(),
		Fsync:   cfg.FsyncPolicy,
	})
	if err != nil {
		return nil, fmt.Errorf("cure: open store: %w", err)
	}
	// The transaction log lives inside the engine's claimed directory,
	// covered by its lock and marker (see package core).
	var tl *txlog.Log
	if cfg.StoreBackend != "" && cfg.StoreBackend != backend.Memory && !cfg.DisableTxLog {
		tl, err = txlog.Open(txlog.Options{
			Dir:    filepath.Join(cfg.engineDir(), "txlog"),
			NumDCs: cfg.NumDCs,
			SelfDC: cfg.DC,
			Fsync:  cfg.FsyncPolicy,
		})
		if err != nil {
			_ = eng.Close()
			return nil, fmt.Errorf("cure: open txlog: %w", err)
		}
	}
	s := &Server{
		cfg:            cfg,
		id:             transport.ServerID(cfg.DC, cfg.Partition),
		clock:          hlc.NewClock(cfg.ClockSource),
		st:             eng,
		tl:             tl,
		vv:             hlc.NewAtomicVector(cfg.NumDCs),
		gsv:            hlc.NewAtomicVector(cfg.NumDCs),
		peerVV:         make([][]hlc.Timestamp, cfg.NumPartitions),
		prepared:       make(map[uint64]*preparedTx),
		recovered:      make(map[uint64]*recoveredPrepare),
		txCtx:          stripemap.New[*txContext](0),
		oldest:         make([]hlc.Timestamp, cfg.NumPartitions),
		pendingSlice:   stripemap.New[*fanin.TxRead](0),
		pendingPrepare: make(map[uint64]*prepareCall),
		stop:           make(chan struct{}),
	}
	for p := range s.peerVV {
		s.peerVV[p] = make([]hlc.Timestamp, cfg.NumDCs)
	}
	if tl != nil {
		s.recoverFromTxLog()
		// Fresh transaction ids must clear every id of the previous
		// lives; seed above the reserved watermark and reserve the first
		// block (see package core).
		floor := tl.NextSeqFloor()
		s.txSeq.Store(floor)
		tl.ReserveSeqs(floor + seqBlockSize)
		s.seqLimit.Store(floor + seqBlockSize)
		// Snapshot the unreplicated tails before serving and pin the
		// cursors below them (see package core for the race this closes).
		s.resendTails = make([][]*txlog.CommittedTx, cfg.NumDCs)
		s.resyncTailSent = make([]atomic.Bool, cfg.NumDCs)
		s.resyncDone = make([]bool, cfg.NumDCs)
		for dc := 0; dc < cfg.NumDCs; dc++ {
			s.resyncDone[dc] = true
			if dc == cfg.DC {
				continue
			}
			if tail := tl.UnreplicatedTail(dc); len(tail) > 0 {
				s.resendTails[dc] = tail
				s.resyncDone[dc] = false
				tl.PinResync(dc, tail[len(tail)-1].CT)
			}
		}
	}
	s.readPool.New = func() any {
		rs := &readScratch{}
		rs.visible = rs.pred.visible
		return rs
	}
	s.fanPool.New = func() any { return &fanin.Fanout{} }
	return s, nil
}

// ID returns the server's node id.
func (s *Server) ID() transport.NodeID { return s.id }

// Metrics returns the server's counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Store exposes the underlying storage engine for tests.
func (s *Server) Store() store.Engine { return s.st }

// EngineHealthy reports the first write-path failure the storage engine
// has recorded, or nil while it is fully healthy.
func (s *Server) EngineHealthy() error { return s.st.Healthy() }

// Healthy reports the first durability failure of the server's write path
// — storage engine or transaction log — or nil while both are intact.
func (s *Server) Healthy() error {
	if err := s.st.Healthy(); err != nil {
		return err
	}
	if s.tl != nil {
		if err := s.tl.Healthy(); err != nil {
			return err
		}
	}
	return nil
}

// ReadOnly reports whether the server has shed into read-only admission
// (see core.Server.ReadOnly).
func (s *Server) ReadOnly() bool { return s.Healthy() != nil }

// TxLog exposes the transaction log (nil when disabled) for tests.
func (s *Server) TxLog() *txlog.Log { return s.tl }

// txApplied reports whether the engine already holds a version written by
// txID under key — the idempotence check for recovery replay and resync.
func (s *Server) txApplied(key string, txID uint64) bool {
	return s.st.ReadVisible(key, func(v *store.Version) bool { return v.TxID == txID }) != nil
}

// depVector derives a version's dependency vector from its prepare-time
// snapshot vector and final commit timestamp.
func (s *Server) depVector(sv []hlc.Timestamp, ct hlc.Timestamp) []hlc.Timestamp {
	var dv []hlc.Timestamp
	if len(sv) == s.cfg.NumDCs {
		dv = copyVec(sv)
	} else {
		dv = make([]hlc.Timestamp, s.cfg.NumDCs)
	}
	dv[s.cfg.DC] = ct
	return dv
}

// recoverFromTxLog replays the log's committed transactions into the
// engine and stages outcome-less prepares for re-driven outcomes, before
// the server is registered on the network (see package core).
func (s *Server) recoverFromTxLog() {
	committed := s.tl.Committed()
	applied := make([]uint64, 0, len(committed))
	for _, t := range committed {
		applied = append(applied, t.TxID)
		// Per-KEY idempotence: a kill mid-PutBatch can leave some of a
		// transaction's shard logs appended and others not.
		dv := s.depVector(t.SV, t.CT)
		var puts []store.KV
		for _, kv := range t.Writes {
			if s.txApplied(kv.Key, t.TxID) {
				continue
			}
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.CT, TxID: t.TxID, SrcDC: uint8(s.cfg.DC), DV: dv,
			}})
		}
		s.st.PutBatch(puts)
	}
	s.tl.MarkApplied(applied)
	probe := time.Now().Add(recoveryGrace)
	for _, p := range s.tl.Prepared() {
		s.recovered[p.TxID] = &recoveredPrepare{tx: p, nextProbe: probe}
	}
}

// redriveRecovered re-drives unresolved commit decisions at startup; the
// lifecycle loop picks up anything it cannot finish (see package core).
func (s *Server) redriveRecovered() {
	defer s.wg.Done()
	for _, c := range s.tl.CoordPending() {
		for _, p := range c.Cohorts {
			if !s.sendRetry(transport.ServerID(s.cfg.DC, int(p)), &wire.CommitTx{TxID: c.TxID, CT: c.CT}) {
				return
			}
		}
	}
}

// resendTailTo re-sends one peer DC its snapshotted unreplicated tail —
// one goroutine per peer, so one unreachable DC cannot hold the others'
// resync (and therefore all their replication) hostage.
func (s *Server) resendTailTo(dc int, tail []*txlog.CommittedTx) {
	defer s.wg.Done()
	for i := 0; i < len(tail); i += resendBatchSize {
		batch := &wire.Replicate{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition), Resync: true}
		for _, t := range tail[i:min(i+resendBatchSize, len(tail))] {
			batch.Txs = append(batch.Txs, wire.ReplTx{
				TxID: t.TxID, CT: t.CT, DV: s.depVector(t.SV, t.CT), Writes: t.Writes,
			})
		}
		if !s.sendRetry(transport.ServerID(dc, s.cfg.Partition), batch) {
			return
		}
	}
	s.resyncTailSent[dc].Store(true)
}

// lifecycleLoop runs txLifecycleTick on its own timer, independent of the
// optional GC loop.
func (s *Server) lifecycleLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(lifecycleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.txLifecycleTick(time.Now())
		case <-s.stop:
			return
		}
	}
}

// sendRetry delivers a recovery message, retrying while the destination is
// unreachable (peers of a restarting deployment come up in arbitrary
// order); gives up only when this server stops. See core.Server.sendRetry.
func (s *Server) sendRetry(to transport.NodeID, m wire.Message) bool {
	for {
		if err := s.cfg.Network.Send(s.id, to, m); err == nil {
			return true
		}
		select {
		case <-s.stop:
			return false
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Start registers the server and launches its background loops.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.cfg.Network.Register(s.id, s)
		s.wg.Add(1)
		go s.applyLoop()
		s.wg.Add(1)
		go s.gossipLoop()
		if s.cfg.GCInterval > 0 {
			s.wg.Add(1)
			go s.gcLoop()
		}
		if s.tl != nil {
			// Per-destination recovery sends + independent lifecycle
			// timer, as in package core.
			s.wg.Add(1)
			go s.redriveRecovered()
			for dc, tail := range s.resendTails {
				if len(tail) > 0 {
					s.wg.Add(1)
					go s.resendTailTo(dc, tail)
				}
			}
			s.wg.Add(1)
			go s.lifecycleLoop()
		}
	})
}

// Stop terminates background loops, waits for them, flushes the commit
// list into the store, and closes the storage engine and transaction log.
// With the transaction log enabled the flush is an optimization: an
// acknowledged commit whose CommitTx was still in flight when draining
// began is already logged and recovers on the next start.
func (s *Server) Stop() { s.shutdown(false) }

// Kill stops the server WITHOUT the final apply/flush (and without the
// courtesy replies to parked readers), simulating a hard kill for
// recovery tests; see core.Server.Kill.
func (s *Server) Kill() { s.shutdown(true) }

func (s *Server) shutdown(kill bool) {
	var flush bool
	s.stopOnce.Do(func() {
		s.drainMu.Lock()
		s.draining = true
		s.drainMu.Unlock()
		s.mu.Lock()
		waiters := s.waiters
		s.waiters = nil
		s.mu.Unlock()
		// Fail parked reads so clients aren't left hanging (a killed
		// server answers nobody).
		if !kill {
			for _, w := range waiters {
				s.send(w.from, &wire.SliceResp{ReqID: w.reqID})
				if w.req != nil {
					wire.PutSliceReq(w.req)
				}
			}
		}
		close(s.stop)
		flush = true
	})
	s.wg.Wait()
	s.reqWG.Wait()
	if !flush {
		return
	}
	if !kill {
		// Prepared-but-uncommitted transactions can never commit now; drop
		// them so their proposed timestamps do not hold the final apply's
		// upper bound below acknowledged commits still on the commit list.
		s.mu.Lock()
		s.prepared = make(map[uint64]*preparedTx)
		s.mu.Unlock()
		s.applyTick(false)
		s.flushCommitted()
	}
	if err := s.st.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cure: dc%d/p%d store close: %v\n", s.cfg.DC, s.cfg.Partition, err)
	}
	if s.tl != nil {
		if err := s.tl.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cure: dc%d/p%d txlog close: %v\n", s.cfg.DC, s.cfg.Partition, err)
		}
	}
}

// flushCommitted force-applies every transaction still on the commit list,
// ignoring the apply upper bound. Only used during Stop. This matters for
// plain Cure in particular: its upper bound follows the raw physical
// clock, so under skew a commit timestamp assigned by a faster coordinator
// can sit above PhysicalNow() at shutdown and would otherwise never be
// applied (and never reach a durable engine).
func (s *Server) flushCommitted() {
	s.mu.Lock()
	apply := s.committed
	s.committed = nil
	s.mu.Unlock()
	if len(apply) == 0 {
		return
	}
	sort.Slice(apply, func(i, j int) bool {
		if apply[i].ct != apply[j].ct {
			return apply[i].ct < apply[j].ct
		}
		return apply[i].txID < apply[j].txID
	})
	var puts []store.KV
	for _, t := range apply {
		for _, kv := range t.writes {
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.ct, TxID: t.txID, SrcDC: uint8(s.cfg.DC), DV: t.dv,
			}})
		}
	}
	s.st.PutBatch(puts)
	if s.tl != nil {
		ids := make([]uint64, len(apply))
		for i, t := range apply {
			ids[i] = t.txID
		}
		s.tl.MarkApplied(ids)
	}
}

func (s *Server) goAsync(fn func()) {
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return
	}
	s.reqWG.Add(1)
	s.drainMu.Unlock()
	go func() {
		defer s.reqWG.Done()
		fn()
	}()
}

// StableVector returns a copy of the server's global stable vector.
func (s *Server) StableVector() []hlc.Timestamp {
	return s.gsv.Snapshot(nil)
}

// VersionVector returns a copy of the server's version vector.
func (s *Server) VersionVector() []hlc.Timestamp {
	return s.vv.Snapshot(nil)
}

// LocalVersionClock returns vv[m].
func (s *Server) LocalVersionClock() hlc.Timestamp {
	return s.vv.Load(s.cfg.DC)
}

// newTxID mirrors core.newTxID: sequence numbers come from durably
// reserved blocks when the transaction log is on, so ids stay unique
// across restarts.
func (s *Server) newTxID() uint64 {
	seq := s.txSeq.Add(1)
	if s.tl != nil && seq > s.seqLimit.Load() {
		s.seqMu.Lock()
		if seq > s.seqLimit.Load() {
			s.tl.ReserveSeqs(seq + seqBlockSize)
			s.seqLimit.Store(seq + seqBlockSize)
		}
		s.seqMu.Unlock()
	}
	return uint64(s.cfg.DC)<<56 | uint64(s.cfg.Partition)<<40 | seq
}

// now returns the coordinator clock reading used for snapshot local
// entries: the HLC for H-Cure, the raw physical clock for Cure.
func (s *Server) now() hlc.Timestamp {
	if s.cfg.UseHLC {
		return s.clock.Now()
	}
	return s.clock.PhysicalNow()
}

// HandleMessage implements transport.Handler.
func (s *Server) HandleMessage(from transport.NodeID, m wire.Message) {
	switch msg := m.(type) {
	case *wire.StartTxReq:
		s.handleStartTx(from, msg)
	case *wire.TxReadReq:
		s.handleTxRead(from, msg)
	case *wire.CommitReq:
		s.handleCommitReq(from, msg)
	case *wire.SliceReq:
		s.handleSliceReq(from, msg)
	case *wire.SliceResp:
		s.handleSliceResp(msg)
	case *wire.PrepareReq:
		s.handlePrepareReq(from, msg)
	case *wire.PrepareResp:
		s.handlePrepareResp(msg)
	case *wire.CommitTx:
		s.handleCommitTx(from, msg)
	case *wire.CommitAck:
		s.handleCommitAck(msg)
	case *wire.Replicate:
		s.handleReplicate(msg)
	case *wire.ReplicateAck:
		s.handleReplicateAck(msg)
	case *wire.Heartbeat:
		s.handleHeartbeat(msg)
	case *wire.StableBroadcast:
		s.handleStableBroadcast(msg)
	case *wire.GCBroadcast:
		s.handleGCBroadcast(msg)
	case *wire.HealthReq:
		s.handleHealthReq(from, msg)
	case *wire.TxStatusReq:
		s.handleTxStatusReq(from, msg)
	case *wire.TxStatusResp:
		s.handleTxStatusResp(from, msg)
	}
}

// handleStartTx assigns the snapshot vector: remote entries from the
// stable vector, the local entry from the coordinator's CURRENT clock —
// the design choice that makes Cure reads block — raised to the client's
// dependency vector.
func (s *Server) handleStartTx(from transport.NodeID, m *wire.StartTxReq) {
	id := s.newTxID()
	s.snapMu.RLock()
	sv := s.gsv.Snapshot(nil)
	sv[s.cfg.DC] = s.now()
	if len(m.DV) == len(sv) {
		maxInto(sv, m.DV)
	}
	s.txCtx.Store(id, &txContext{sv: sv, created: time.Now()})
	s.snapMu.RUnlock()

	s.metrics.TxStarted.Inc()
	s.send(from, &wire.StartTxResp{ReqID: m.ReqID, TxID: id, SV: sv})
}

// handleTxRead fans the key set out per partition and merges the slices
// via a completion-counter fan-in (as in package core): the last arriving
// SliceResp assembles the TxReadResp, no goroutine parks per read. Unlike
// Wren's coordinator there is no local fast path — even the coordinator's
// own slice goes through handleSliceReq, which may legitimately park it
// (the blocking this baseline exists to exhibit).
func (s *Server) handleTxRead(from transport.NodeID, m *wire.TxReadReq) {
	ctx, ok := s.txCtx.Load(m.TxID)
	if !ok {
		s.send(from, &wire.TxReadResp{ReqID: m.ReqID})
		return
	}
	sv := ctx.sv

	fo := s.fanPool.Get().(*fanin.Fanout)
	fo.Reset(s.cfg.NumPartitions)
	for _, k := range m.Keys {
		fo.Add(sharding.PartitionOf(k, s.cfg.NumPartitions), k)
	}

	fi := fanin.Start(from, m.ReqID, len(fo.Touched))
	for _, p := range fo.Touched {
		reqID := s.reqSeq.Add(1)
		req := wire.GetSliceReq()
		req.ReqID = reqID
		req.Keys = append(req.Keys[:0], fo.Groups[p]...)
		req.SV = sv // aliases the tx context's vector; PutSliceReq drops it
		s.pendingSlice.Store(reqID, fi)
		s.send(transport.ServerID(s.cfg.DC, p), req)
	}
	s.fanPool.Put(fo)

	if resp, to, last := fi.Finish(); last {
		s.send(to, resp)
	}
}

// installed reports whether this partition has installed snapshot sv:
// every version-vector entry has reached the snapshot's. Lock-free — the
// version vector is entrywise-monotone, so a true result never reverts.
func (s *Server) installed(sv []hlc.Timestamp) bool {
	return s.vv.Covers(sv)
}

// handleSliceReq serves the read if the snapshot is installed; otherwise it
// PARKS the request until the apply loop or replication catches up. This is
// the blocking that Wren's CANToR protocol eliminates. The installed fast
// path takes no lock at all; only parking does.
func (s *Server) handleSliceReq(from transport.NodeID, m *wire.SliceReq) {
	if s.cfg.UseHLC {
		// H-Cure: the HLC absorbs the snapshot timestamp, so an idle
		// partition's clock no longer lags the coordinator's.
		s.clock.Update(m.SV[s.cfg.DC])
	}
	if s.installed(m.SV) {
		s.serveSlice(from, m.ReqID, m.Keys, m.SV, 0)
		wire.PutSliceReq(m)
		return
	}
	s.mu.Lock()
	// Re-check under the lock: a concurrent vv advance that ran its waiter
	// release before we parked would otherwise be a lost wakeup.
	if s.installed(m.SV) {
		s.mu.Unlock()
		s.serveSlice(from, m.ReqID, m.Keys, m.SV, 0)
		wire.PutSliceReq(m)
		return
	}
	s.waiters = append(s.waiters, &waiter{
		from: from, reqID: m.ReqID, keys: m.Keys, sv: m.SV, req: m, arrived: time.Now(),
	})
	s.mu.Unlock()
	// Try to install a fresher snapshot right away: if nothing is pending
	// and the clock allows, the read is served without waiting for the
	// next apply tick. What remains is genuine blocking: pending
	// transactions below the snapshot, clock skew (Cure only), or missing
	// remote updates.
	s.applyTick(false)
}

// serveSlice returns the freshest version of each key whose dependency
// vector is within the snapshot. The response and its working memory come
// from pools; the receiver releases the response.
func (s *Server) serveSlice(to transport.NodeID, reqID uint64, keys []string, sv []hlc.Timestamp, blocked time.Duration) {
	rs := s.readPool.Get().(*readScratch)
	rs.pred.sv = sv
	rs.vers = s.st.ReadVisibleBatchInto(keys, rs.visible, rs.vers)
	resp := wire.GetSliceResp()
	resp.ReqID = reqID
	for i, v := range rs.vers {
		// A visible tombstone (nil Value) reads as absence, hiding any
		// older live version.
		if v != nil && v.Value != nil {
			resp.Items = append(resp.Items, wire.Item{
				Key: keys[i], Value: v.Value, UT: v.UT, TxID: v.TxID, SrcDC: v.SrcDC, DV: v.DV,
			})
		}
	}
	rs.pred.sv = nil // do not pin the snapshot vector in the pool
	clear(rs.vers)   // nor GC-able version chains
	s.readPool.Put(rs)
	s.metrics.SlicesServed.Inc()
	if blocked > 0 {
		s.metrics.BlockedReads.Inc()
		s.metrics.BlockedMicros.Add(uint64(blocked.Microseconds()))
	}
	resp.BlockedMicros = blocked.Microseconds()
	s.send(to, resp)
}

// releaseWaitersLocked finds parked reads whose snapshot is now installed.
// It must be called with s.mu held; it returns the now-serveable waiters so
// the caller can serve them after releasing the lock.
func (s *Server) releaseWaitersLocked() []*waiter {
	if len(s.waiters) == 0 {
		return nil
	}
	var ready []*waiter
	rest := s.waiters[:0]
	for _, w := range s.waiters {
		if s.installed(w.sv) {
			ready = append(ready, w)
		} else {
			rest = append(rest, w)
		}
	}
	s.waiters = rest
	return ready
}

func (s *Server) serveReady(ready []*waiter) {
	for _, w := range ready {
		s.serveSlice(w.from, w.reqID, w.keys, w.sv, time.Since(w.arrived))
		if w.req != nil {
			// keys and sv alias the request's buffers; release only after
			// the read is fully served.
			wire.PutSliceReq(w.req)
		}
	}
}

func (s *Server) handleSliceResp(m *wire.SliceResp) {
	if fi, ok := s.pendingSlice.LoadAndDelete(m.ReqID); ok {
		fi.Fold(m.Items, m.BlockedMicros)
		if resp, to, last := fi.Finish(); last {
			s.send(to, resp)
		}
	}
	wire.PutSliceResp(m)
}

func (s *Server) handleCommitReq(from transport.NodeID, m *wire.CommitReq) {
	ctx, ok := s.txCtx.LoadAndDelete(m.TxID)
	var sv []hlc.Timestamp
	if ok {
		sv = ctx.sv
	} else {
		sv = s.gsv.Snapshot(nil)
		sv[s.cfg.DC] = s.now()
	}

	if len(m.Writes) == 0 {
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, CT: 0})
		return
	}
	if err := s.Healthy(); err != nil {
		// Read-only admission, exactly as in package core.
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: err.Error()})
		return
	}

	byPartition := make(map[int][]wire.KV)
	for _, kv := range m.Writes {
		p := sharding.PartitionOf(kv.Key, s.cfg.NumPartitions)
		byPartition[p] = append(byPartition[p], kv)
	}
	type cohortWrites struct {
		partition int
		writes    []wire.KV
	}
	cohorts := make([]cohortWrites, 0, len(byPartition))
	for p, ws := range byPartition {
		cohorts = append(cohorts, cohortWrites{partition: p, writes: ws})
	}

	call := &prepareCall{ch: make(chan prepareVote, len(cohorts))}
	s.mu.Lock()
	s.pendingPrepare[m.TxID] = call
	s.mu.Unlock()

	ht := hlc.Max(m.HWT, sv[s.cfg.DC])
	for _, c := range cohorts {
		s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.PrepareReq{
			ReqID: s.reqSeq.Add(1), TxID: m.TxID, HT: ht, SV: sv, Writes: c.writes,
		})
	}

	s.goAsync(func() {
		var ct hlc.Timestamp
		var refusal string
		for range cohorts {
			select {
			case v := <-call.ch:
				if v.err != "" && refusal == "" {
					refusal = v.err
				}
				if v.pt > ct {
					ct = v.pt
				}
			case <-s.stop:
				return
			}
		}
		// pendingPrepare stays registered until the outcome is decided, so
		// a TxStatusReq can never see an in-flight transaction in neither
		// place — see core.handleCommitReq.
		finish := func() {
			s.mu.Lock()
			delete(s.pendingPrepare, m.TxID)
			s.mu.Unlock()
		}
		if refusal != "" {
			finish()
			for _, c := range cohorts {
				s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: 0})
			}
			s.send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: refusal})
			return
		}
		if s.tl != nil {
			// Decision logged and stable before CommitTx leaves and
			// before the client ack — see core.handleCommitReq: a failed
			// append/fsync can then abort the whole 2PC cleanly.
			parts := make([]uint16, 0, len(cohorts))
			for _, c := range cohorts {
				parts = append(parts, uint16(c.partition))
			}
			s.tl.LogCoordCommit(m.TxID, ct, parts)
			if s.tl.SyncOnAppend() {
				s.tl.Sync()
			}
			if err := s.tl.Healthy(); err != nil {
				s.tl.CoordAbort(m.TxID)
				finish()
				for _, c := range cohorts {
					s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: 0})
				}
				s.send(from, &wire.CommitResp{ReqID: m.ReqID, Code: wire.CommitErrReadOnly, Err: err.Error()})
				return
			}
		}
		finish()
		for _, c := range cohorts {
			s.send(transport.ServerID(s.cfg.DC, c.partition), &wire.CommitTx{TxID: m.TxID, CT: ct})
		}
		s.metrics.TxCommitted.Inc()
		s.send(from, &wire.CommitResp{ReqID: m.ReqID, CT: ct})
	})
}

// handlePrepareReq proposes a commit timestamp strictly above the snapshot
// and everything the client saw. Cure draws it from the (possibly lagging)
// physical clock; H-Cure's HLC can jump.
//
// As in package core, the proposal and its registration are atomic under
// s.mu, the mutex applyTick computes its upper bound under: an applyTick
// interleaving between TickPast and the registration could publish a
// version-clock at or above the proposal, and the transaction would later
// commit inside the installed region — readers served from vv would miss
// it while its sibling writes were already visible on other partitions.
// This was the real timing hole behind TestTCCConformanceHCure's
// causal/atomic violations under CPU starvation, where preemption
// stretched that two-statement window to milliseconds.
func (s *Server) handlePrepareReq(from transport.NodeID, m *wire.PrepareReq) {
	if err := s.Healthy(); err != nil {
		s.send(from, &wire.PrepareResp{ReqID: m.ReqID, TxID: m.TxID, Err: err.Error()})
		return
	}
	s.mu.Lock()
	pt := s.clock.TickPast(m.HT)
	s.prepared[m.TxID] = &preparedTx{pt: pt, sv: m.SV, writes: m.Writes}
	s.mu.Unlock()
	resp := &wire.PrepareResp{ReqID: m.ReqID, TxID: m.TxID, PT: pt}
	if s.tl != nil {
		s.tl.LogPrepare(&txlog.PreparedTx{TxID: m.TxID, PT: pt, SV: m.SV, Writes: m.Writes})
		if s.tl.SyncOnAppend() {
			s.goAsync(func() {
				s.tl.Sync()
				s.send(from, s.checkedPrepareResp(resp))
			})
			return
		}
		resp = s.checkedPrepareResp(resp)
	}
	s.send(from, resp)
}

// checkedPrepareResp downgrades a prepare proposal to a refusal when the
// append (or fsync) backing it failed — see core.checkedPrepareResp.
func (s *Server) checkedPrepareResp(resp *wire.PrepareResp) *wire.PrepareResp {
	if err := s.tl.Healthy(); err != nil {
		return &wire.PrepareResp{ReqID: resp.ReqID, TxID: resp.TxID, Err: err.Error()}
	}
	return resp
}

func (s *Server) handlePrepareResp(m *wire.PrepareResp) {
	s.mu.Lock()
	call := s.pendingPrepare[m.TxID]
	s.mu.Unlock()
	if call != nil {
		call.ch <- prepareVote{pt: m.PT, err: m.Err}
	}
}

func (s *Server) handleCommitTx(from transport.NodeID, m *wire.CommitTx) {
	if m.CT == 0 {
		// 2PC abort (a degraded cohort refused its prepare).
		s.mu.Lock()
		delete(s.prepared, m.TxID)
		delete(s.recovered, m.TxID)
		s.mu.Unlock()
		if s.tl != nil {
			s.tl.LogAbort(m.TxID)
		}
		return
	}
	if s.cfg.UseHLC {
		s.clock.Update(m.CT)
	}
	s.mu.Lock()
	committed := false
	if p, ok := s.prepared[m.TxID]; ok {
		delete(s.prepared, m.TxID)
		dv := copyVec(p.sv)
		dv[s.cfg.DC] = m.CT
		s.committed = append(s.committed, &committedTx{
			txID: m.TxID, ct: m.CT, dv: dv, writes: p.writes,
		})
		committed = true
	} else if rp, ok := s.recovered[m.TxID]; ok {
		// A re-driven outcome for a prepare recovered from the txlog.
		delete(s.recovered, m.TxID)
		s.committed = append(s.committed, &committedTx{
			txID: m.TxID, ct: m.CT, dv: s.depVector(rp.tx.SV, m.CT), writes: rp.tx.Writes,
		})
		committed = true
	}
	s.mu.Unlock()
	if s.tl == nil {
		return
	}
	if committed {
		s.tl.LogCommit(m.TxID, m.CT)
	}
	// Ack only once the outcome is durable here — never on a failed
	// append/fsync, and duplicates take the same sync barrier (see
	// core.handleCommitTx).
	ack := &wire.CommitAck{TxID: m.TxID, Partition: uint16(s.cfg.Partition)}
	if s.tl.SyncOnAppend() {
		s.goAsync(func() {
			s.tl.Sync()
			if s.tl.Healthy() == nil {
				s.send(from, ack)
			}
		})
		return
	}
	if s.tl.Healthy() == nil {
		s.send(from, ack)
	}
}

// handleCommitAck releases the coordinator's logged commit decision (see
// package core).
func (s *Server) handleCommitAck(m *wire.CommitAck) {
	if s.tl != nil {
		s.tl.CoordAck(m.TxID, m.Partition)
	}
}

// handleReplicateAck advances the persisted replication cursor for the
// acknowledging DC (clamped below a pending resync's pin — see package
// core).
func (s *Server) handleReplicateAck(m *wire.ReplicateAck) {
	if s.tl == nil {
		return
	}
	s.tl.AdvanceCursor(int(m.DC), m.UpTo)
	if m.Resync {
		s.tl.UnpinResync(int(m.DC), m.UpTo)
	}
}

// handleHealthReq answers the operator-facing health probe.
func (s *Server) handleHealthReq(from transport.NodeID, m *wire.HealthReq) {
	resp := &wire.HealthResp{ReqID: m.ReqID}
	if err := s.Healthy(); err != nil {
		resp.ReadOnly = true
		resp.Err = err.Error()
	}
	s.send(from, resp)
}

func (s *Server) handleReplicate(m *wire.Replicate) {
	var puts []store.KV
	for i := range m.Txs {
		t := &m.Txs[i]
		for _, kv := range t.Writes {
			if m.Resync && s.txApplied(kv.Key, t.TxID) {
				continue // already applied in a previous life (per key)
			}
			puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
				Value: kv.VersionValue(), UT: t.CT, TxID: t.TxID, SrcDC: m.SrcDC, DV: t.DV,
			}})
		}
	}
	s.st.PutBatch(puts)
	s.metrics.ReplTxApplied.Add(uint64(len(puts)))
	if len(m.Txs) == 0 {
		return
	}
	last := m.Txs[len(m.Txs)-1].CT
	s.vv.Advance(int(m.SrcDC), last)
	s.mu.Lock()
	ready := s.releaseWaitersLocked()
	s.mu.Unlock()
	s.serveReady(ready)
	if s.tl != nil && s.Healthy() == nil {
		// A degraded replica's batch only reached memory: withhold the
		// ack so the sender's cursor — and resync tail — stay intact (see
		// core.handleReplicate). The Resync echo feeds the cursor pin.
		s.send(transport.ServerID(int(m.SrcDC), int(m.Partition)),
			&wire.ReplicateAck{DC: uint8(s.cfg.DC), Partition: m.Partition, UpTo: last, Resync: m.Resync})
	}
}

func (s *Server) handleHeartbeat(m *wire.Heartbeat) {
	s.vv.Advance(int(m.SrcDC), m.TS)
	s.mu.Lock()
	ready := s.releaseWaitersLocked()
	s.mu.Unlock()
	s.serveReady(ready)
}

// handleStableBroadcast ingests a peer's full version vector and recomputes
// the global stable vector as the entrywise minimum.
func (s *Server) handleStableBroadcast(m *wire.StableBroadcast) {
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions || len(m.VV) != s.cfg.NumDCs {
		return
	}
	s.mu.Lock()
	maxInto(s.peerVV[p], m.VV)
	s.recomputeStableLocked()
	s.mu.Unlock()
}

// recomputeStableLocked folds the per-peer vectors into the published
// global stable vector. Caller holds s.mu (which serializes peerVV);
// publication itself is an entrywise atomic max-merge.
func (s *Server) recomputeStableLocked() {
	for i := 0; i < s.cfg.NumDCs; i++ {
		m := s.peerVV[0][i]
		for p := 1; p < s.cfg.NumPartitions; p++ {
			if s.peerVV[p][i] < m {
				m = s.peerVV[p][i]
			}
		}
		s.gsv.Advance(i, m)
	}
}

func (s *Server) applyLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ApplyInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.applyTick(true)
		case <-s.stop:
			return
		}
	}
}

// applyTick installs committed transactions up to the safe bound and, when
// called from the apply loop (heartbeat=true), replicates or heartbeats to
// the peer replicas. Read handlers also invoke it (heartbeat=false) to
// install snapshots eagerly; applyMu keeps those concurrent invocations
// from publishing a version-clock bound whose transactions an earlier,
// still-running tick has not finished applying (see the field comment).
func (s *Server) applyTick(heartbeat bool) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	s.mu.Lock()
	var ub hlc.Timestamp
	if len(s.prepared) > 0 {
		first := true
		for _, p := range s.prepared {
			if first || p.pt < ub {
				ub = p.pt
				first = false
			}
		}
		ub = ub.Prev()
	} else if s.cfg.UseHLC {
		ub = s.clock.Now()
		s.clock.Update(ub)
	} else {
		// Cure: the version clock can only follow the physical clock — the
		// root cause of skew-induced read blocking. The HLC is still
		// pinned to the bound: prepares propose via TickPast, and the pin
		// guarantees every later proposal lands strictly above a bound
		// already published as installed — without it, a proposal could
		// tie the bound at microsecond granularity and commit inside the
		// installed region.
		ub = s.clock.PhysicalNow()
		s.clock.Update(ub)
	}
	if local := s.vv.Load(s.cfg.DC); ub < local {
		ub = local
	}

	hadCommitted := len(s.committed) > 0
	var apply []*committedTx
	if hadCommitted {
		rest := s.committed[:0]
		for _, c := range s.committed {
			if c.ct <= ub {
				apply = append(apply, c)
			} else {
				rest = append(rest, c)
			}
		}
		s.committed = rest
	}
	s.mu.Unlock()

	sort.Slice(apply, func(i, j int) bool {
		if apply[i].ct != apply[j].ct {
			return apply[i].ct < apply[j].ct
		}
		return apply[i].txID < apply[j].txID
	})
	var batches []*wire.Replicate
	for i := 0; i < len(apply); {
		j := i
		batch := &wire.Replicate{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition)}
		var puts []store.KV
		for ; j < len(apply) && apply[j].ct == apply[i].ct; j++ {
			t := apply[j]
			for _, kv := range t.writes {
				puts = append(puts, store.KV{Key: kv.Key, Version: &store.Version{
					Value: kv.VersionValue(), UT: t.ct, TxID: t.txID, SrcDC: uint8(s.cfg.DC), DV: t.dv,
				}})
			}
			batch.Txs = append(batch.Txs, wire.ReplTx{
				TxID: t.txID, CT: t.ct, RST: 0, DV: t.dv, Writes: t.writes,
			})
		}
		s.st.PutBatch(puts)
		batches = append(batches, batch)
		i = j
	}

	s.vv.Advance(s.cfg.DC, ub)
	if s.tl != nil && len(apply) > 0 {
		// Exactly these transactions are in the engine now — marked by
		// id, not by ub (see core.applyTick).
		ids := make([]uint64, len(apply))
		for i, t := range apply {
			ids[i] = t.txID
		}
		s.tl.MarkApplied(ids)
	}
	s.mu.Lock()
	ready := s.releaseWaitersLocked()
	s.mu.Unlock()
	s.serveReady(ready)

	hb := &wire.Heartbeat{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition), TS: ub}
	for dc := 0; dc < s.cfg.NumDCs; dc++ {
		if dc == s.cfg.DC {
			continue
		}
		if s.tl != nil && !s.resyncDone[dc] {
			// Hold replication to this DC until the restart resync tail
			// is on its link, then ship one dedupe-safe catch-up — see
			// core.applyTick (resyncDone is safe here: applyMu serializes
			// the whole tick).
			if !s.resyncTailSent[dc].Load() {
				continue
			}
			for i, tail := 0, s.tl.UnreplicatedTail(dc); i < len(tail); i += resendBatchSize {
				batch := &wire.Replicate{SrcDC: uint8(s.cfg.DC), Partition: uint16(s.cfg.Partition), Resync: true}
				for _, t := range tail[i:min(i+resendBatchSize, len(tail))] {
					batch.Txs = append(batch.Txs, wire.ReplTx{
						TxID: t.TxID, CT: t.CT, DV: s.depVector(t.SV, t.CT), Writes: t.Writes,
					})
				}
				s.send(transport.ServerID(dc, s.cfg.Partition), batch)
			}
			s.resyncDone[dc] = true
			continue
		}
		for _, b := range batches {
			s.send(transport.ServerID(dc, s.cfg.Partition), b)
		}
		if heartbeat && !hadCommitted {
			s.send(transport.ServerID(dc, s.cfg.Partition), hb)
		}
	}
}

func (s *Server) gossipLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.gossipTick()
		case <-s.stop:
			return
		}
	}
}

// gossipTick broadcasts the full M-entry version vector — Cure's
// stabilization messages are M timestamps versus Wren's two (Figure 7a).
func (s *Server) gossipTick() {
	vvCopy := s.vv.Snapshot(nil)
	s.mu.Lock()
	maxInto(s.peerVV[s.cfg.Partition], vvCopy)
	s.recomputeStableLocked()
	s.mu.Unlock()

	msg := &wire.StableBroadcast{Partition: uint16(s.cfg.Partition), VV: vvCopy}
	for p := 0; p < s.cfg.NumPartitions; p++ {
		if p == s.cfg.Partition {
			continue
		}
		s.send(transport.ServerID(s.cfg.DC, p), msg)
	}
}

func (s *Server) gcLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.gcTick()
		case <-s.stop:
			return
		}
	}
}

func (s *Server) gcTick() {
	now := time.Now()
	var expired []uint64
	s.txCtx.Range(func(id uint64, ctx *txContext) bool {
		if now.Sub(ctx.created) > s.cfg.TxContextTTL {
			expired = append(expired, id)
		}
		return true
	})
	for _, id := range expired {
		if _, ok := s.txCtx.LoadAndDelete(id); ok {
			s.metrics.CtxExpired.Inc()
		}
	}
	// Sweep abandoned read fan-ins, mirroring package core.
	var staleReads []uint64
	s.pendingSlice.Range(func(reqID uint64, fi *fanin.TxRead) bool {
		if now.Sub(fi.Created()) > s.cfg.TxContextTTL {
			staleReads = append(staleReads, reqID)
		}
		return true
	})
	for _, reqID := range staleReads {
		s.pendingSlice.Delete(reqID)
	}
	// Conservative scalar bound: the minimum entry of any active snapshot
	// vector (or of the stable vector when idle). The floor is loaded
	// under the snapMu barrier: in-flight snapshot assignments drain
	// first, so a context the Range below cannot see yet was assigned
	// entries at or above these values and needs no protection.
	s.snapMu.Lock()
	oldest := s.gsv.Load(0)
	for i := 1; i < s.cfg.NumDCs; i++ {
		if t := s.gsv.Load(i); t < oldest {
			oldest = t
		}
	}
	if local := s.vv.Load(s.cfg.DC); local < oldest {
		oldest = local
	}
	s.snapMu.Unlock()
	s.txCtx.Range(func(_ uint64, ctx *txContext) bool {
		for _, t := range ctx.sv {
			if t < oldest {
				oldest = t
			}
		}
		return true
	})
	s.mu.Lock()
	if oldest > s.oldest[s.cfg.Partition] {
		s.oldest[s.cfg.Partition] = oldest
	}
	threshold := s.oldest[0]
	for _, t := range s.oldest[1:] {
		if t < threshold {
			threshold = t
		}
	}
	s.mu.Unlock()

	msg := &wire.GCBroadcast{Partition: uint16(s.cfg.Partition), Oldest: oldest}
	for p := 0; p < s.cfg.NumPartitions; p++ {
		if p == s.cfg.Partition {
			continue
		}
		s.send(transport.ServerID(s.cfg.DC, p), msg)
	}

	if threshold > 0 {
		res := s.st.GCStats(threshold)
		if res.Removed > 0 {
			s.metrics.GCRemoved.Add(uint64(res.Removed))
		}
		if res.DroppedKeys > 0 {
			s.metrics.GCKeysDropped.Add(uint64(res.DroppedKeys))
		}
	}
}

// txLifecycleTick mirrors core.txLifecycleTick: probe coordinators of
// recovered prepares (cooperative 2PC termination) and re-drive the
// CommitTx of unresolved decisions with unacked cohorts.
func (s *Server) txLifecycleTick(now time.Time) {
	if s.tl == nil {
		return
	}
	var probes []uint64
	s.mu.Lock()
	for id, rp := range s.recovered {
		if now.After(rp.nextProbe) {
			probes = append(probes, id)
			rp.nextProbe = now.Add(recoveryGrace)
		}
	}
	s.mu.Unlock()
	for _, id := range probes {
		dc, p := coordinatorOf(id)
		if dc < s.cfg.NumDCs && p < s.cfg.NumPartitions {
			s.send(transport.ServerID(dc, p), &wire.TxStatusReq{TxID: id})
		}
	}
	for _, c := range s.tl.RedrivePending(redriveAfter) {
		for _, p := range c.Cohorts {
			s.send(transport.ServerID(s.cfg.DC, int(p)), &wire.CommitTx{TxID: c.TxID, CT: c.CT})
		}
	}
}

// coordinatorOf decodes the coordinator server embedded in a transaction
// id (see newTxID).
func coordinatorOf(txID uint64) (dc, partition int) {
	return int(txID >> 56), int(uint16(txID >> 40))
}

// handleTxStatusReq answers a cohort's 2PC-termination probe — see
// core.handleTxStatusReq for why the answer is final, and why an
// in-flight 2PC stays silent instead.
func (s *Server) handleTxStatusReq(from transport.NodeID, m *wire.TxStatusReq) {
	var ct hlc.Timestamp
	var ok bool
	if s.tl != nil {
		ct, ok = s.tl.CoordDecision(m.TxID)
	}
	if !ok {
		s.mu.Lock()
		_, inFlight := s.pendingPrepare[m.TxID]
		s.mu.Unlock()
		if inFlight {
			return
		}
	}
	s.send(from, &wire.TxStatusResp{TxID: m.TxID, CT: ct, Committed: ok})
}

// handleTxStatusResp settles a recovered prepare: committed verdicts flow
// through the normal commit path, not-committed verdicts abort it.
func (s *Server) handleTxStatusResp(from transport.NodeID, m *wire.TxStatusResp) {
	if m.Committed {
		s.handleCommitTx(from, &wire.CommitTx{TxID: m.TxID, CT: m.CT})
		return
	}
	s.mu.Lock()
	_, ok := s.recovered[m.TxID]
	delete(s.recovered, m.TxID)
	s.mu.Unlock()
	if ok && s.tl != nil {
		s.tl.LogAbort(m.TxID)
	}
}

func (s *Server) handleGCBroadcast(m *wire.GCBroadcast) {
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions {
		return
	}
	s.mu.Lock()
	if m.Oldest > s.oldest[p] {
		s.oldest[p] = m.Oldest
	}
	s.mu.Unlock()
}

func (s *Server) send(to transport.NodeID, m wire.Message) {
	_ = s.cfg.Network.Send(s.id, to, m)
}
