package cure

import (
	"sync"
	"time"

	"wren/internal/fanin"
	"wren/internal/hlc"
	"wren/internal/replica"
	"wren/internal/sharding"
	"wren/internal/stats"
	"wren/internal/store"
	"wren/internal/stripemap"
	"wren/internal/transport"
	"wren/internal/txlog"
	"wren/internal/wire"
)

// Default protocol timer intervals, shared with the replica runtime.
const (
	DefaultApplyInterval  = replica.DefaultApplyInterval
	DefaultGossipInterval = replica.DefaultGossipInterval
	DefaultGCInterval     = replica.DefaultGCInterval
	DefaultTxContextTTL   = replica.DefaultTxContextTTL
)

// ServerConfig configures one Cure/H-Cure partition server.
type ServerConfig struct {
	DC            int
	Partition     int
	NumDCs        int
	NumPartitions int
	Network       transport.Network
	ClockSource   hlc.Source
	// UseHLC selects H-Cure: hybrid logical clocks let a partition's clock
	// jump forward on message receipt, removing the clock-skew component
	// of read blocking. False selects plain Cure (physical clocks).
	UseHLC         bool
	ApplyInterval  time.Duration
	GossipInterval time.Duration
	GCInterval     time.Duration
	TxContextTTL   time.Duration
	// RepairInterval paces the degraded-mode probation exit (see
	// core.ServerConfig.RepairInterval): zero selects
	// replica.DefaultRepairInterval, negative disables automatic repair.
	RepairInterval time.Duration
	// StoreShards is the number of lock stripes in the version store.
	// Zero selects store.DefaultShards; the value is rounded up to a power
	// of two.
	StoreShards int
	// StoreBackend selects the storage engine ("" or "memory" for the
	// in-memory engine, "wal" for the durable per-shard log engine,
	// "sst" for the memtable+sorted-run engine).
	StoreBackend string
	// DataDir is the root directory durable backends write under (the
	// server uses DataDir/dc<m>-p<n>). Required for the wal and sst
	// backends.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy: "always", "interval"
	// (the "" default) or "never".
	FsyncPolicy string
	// DisableTxLog turns off the durable transaction-lifecycle log that
	// durable backends get by default (see core.ServerConfig.DisableTxLog:
	// with the log, the durability unit is the ACKNOWLEDGED transaction
	// and replication progress survives restarts).
	DisableTxLog bool
	// MaxInflightPerConn bounds how many admitted requests a single client
	// connection may have outstanding on this server (see
	// core.ServerConfig.MaxInflightPerConn). Zero selects
	// replica.DefaultMaxInflightPerConn; negative disables.
	MaxInflightPerConn int
	// DisableDecisionBatch turns off the fsync=always coordinator-decision
	// group commit (see core.ServerConfig.DisableDecisionBatch).
	DisableDecisionBatch bool
}

// runtimeConfig maps the public config onto the shared replica runtime's.
func (c *ServerConfig) runtimeConfig() replica.Config {
	return replica.Config{
		Name:           "cure",
		DC:             c.DC,
		Partition:      c.Partition,
		NumDCs:         c.NumDCs,
		NumPartitions:  c.NumPartitions,
		Network:        c.Network,
		ClockSource:    c.ClockSource,
		ApplyInterval:  c.ApplyInterval,
		GossipInterval: c.GossipInterval,
		GCInterval:     c.GCInterval,
		TxContextTTL:   c.TxContextTTL,
		RepairInterval: c.RepairInterval,
		StoreShards:    c.StoreShards,
		StoreBackend:   c.StoreBackend,
		DataDir:        c.DataDir,
		FsyncPolicy:    c.FsyncPolicy,
		DisableTxLog:   c.DisableTxLog,

		MaxInflightPerConn:   c.MaxInflightPerConn,
		DisableDecisionBatch: c.DisableDecisionBatch,
	}
}

// txContext is the coordinator-side state of an open transaction.
type txContext struct {
	sv      []hlc.Timestamp // snapshot vector
	created time.Time
}

// waiter is a parked slice read whose snapshot is not yet installed — the
// blocking behaviour that Wren eliminates. req is retained (and released
// to the message pool only after the read is served or failed) because
// keys and sv alias its buffers.
type waiter struct {
	from    transport.NodeID
	reqID   uint64
	keys    []string
	sv      []hlc.Timestamp
	req     *wire.SliceReq
	arrived time.Time
}

// curePred is Cure's snapshot-vector visibility predicate in reusable
// form: a pooled readScratch binds its visible method once, so a slice
// read updates one field instead of allocating a closure.
type curePred struct {
	sv []hlc.Timestamp
}

func (p *curePred) visible(v *store.Version) bool { return leqAll(v.DV, p.sv) }

// readScratch is the pooled per-read working set (predicate + version
// buffer), mirroring package core.
type readScratch struct {
	pred    curePred
	visible store.VisibleFunc
	vers    []*store.Version
}

// Metrics exposes Cure server counters; BlockedReads/BlockedMicros feed the
// paper's Figure 3b.
type Metrics struct {
	TxStarted     stats.Counter
	TxCommitted   stats.Counter
	SlicesServed  stats.Counter
	BlockedReads  stats.Counter
	BlockedMicros stats.Counter
	ReplTxApplied stats.Counter
	GCRemoved     stats.Counter
	GCKeysDropped stats.Counter
	CtxExpired    stats.Counter
}

// Server is one Cure/H-Cure partition server: the vector-snapshot half —
// snapshot-vector assignment, the parked-reader (blocking) read path, and
// the full-vector stabilization gossip — over the shared replica runtime,
// which owns the durable transaction lifecycle, recovery, and every
// background loop.
//
// Mirroring package core, the read path is lock-free where the protocol
// allows: the version vector and global stable vector are atomically
// published (so the installed-snapshot check on every slice read takes no
// lock), per-request bookkeeping lives in striped maps, and read fan-ins
// are completion counters. What remains under s.mu is the parked-reader
// list and the gossip aggregation — the blocking that defines this
// baseline.
type Server struct {
	cfg ServerConfig
	rt  *replica.Runtime
	// st aliases rt.Engine() for the slice-read path.
	st store.Engine

	// gsv is the global stable vector from gossip (entrywise min over
	// peers): entrywise-monotone, loaded lock-free on the read path.
	gsv hlc.AtomicVector

	txCtx *stripemap.Map[*txContext]

	readPool sync.Pool
	fanPool  sync.Pool

	// mu guards the parked-reader list and the gossip aggregation.
	// Protocol-only state: disjoint from the runtime's writer mutex.
	mu      sync.Mutex
	waiters []*waiter
	peerVV  [][]hlc.Timestamp // last gossiped VV per peer partition

	metrics Metrics
}

// NewServer constructs a Cure or H-Cure partition server.
func NewServer(cfg ServerConfig) (*Server, error) {
	rcfg := cfg.runtimeConfig()
	rcfg.FillDefaults()
	if err := rcfg.Validate(); err != nil {
		return nil, err
	}
	cfg.TxContextTTL = rcfg.TxContextTTL
	s := &Server{
		cfg:    cfg,
		gsv:    hlc.NewAtomicVector(cfg.NumDCs),
		txCtx:  stripemap.New[*txContext](0),
		peerVV: make([][]hlc.Timestamp, cfg.NumPartitions),
	}
	for p := range s.peerVV {
		s.peerVV[p] = make([]hlc.Timestamp, cfg.NumDCs)
	}
	rt, err := replica.New(rcfg, (*cureProtocol)(s), replica.Counters{
		TxCommitted:   &s.metrics.TxCommitted,
		ReplTxApplied: &s.metrics.ReplTxApplied,
		GCRemoved:     &s.metrics.GCRemoved,
		GCKeysDropped: &s.metrics.GCKeysDropped,
	})
	if err != nil {
		return nil, err
	}
	s.rt = rt
	s.st = rt.Engine()
	s.readPool.New = func() any {
		rs := &readScratch{}
		rs.visible = rs.pred.visible
		return rs
	}
	s.fanPool.New = func() any { return &fanin.Fanout{} }
	return s, nil
}

// ID returns the server's node id.
func (s *Server) ID() transport.NodeID { return s.rt.ID() }

// Metrics returns the server's counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Store exposes the underlying storage engine for tests.
func (s *Server) Store() store.Engine { return s.st }

// EngineHealthy reports the first write-path failure the storage engine
// has recorded, or nil while it is fully healthy.
func (s *Server) EngineHealthy() error { return s.st.Healthy() }

// Healthy reports the first durability failure of the server's write path
// — storage engine or transaction log — or nil while both are intact.
func (s *Server) Healthy() error { return s.rt.Healthy() }

// ReadOnly reports whether the server has shed into read-only admission
// (see core.Server.ReadOnly).
func (s *Server) ReadOnly() bool { return s.rt.Healthy() != nil }

// TxLog exposes the transaction log (nil when disabled) for tests.
func (s *Server) TxLog() *txlog.Log { return s.rt.TxLog() }

// ShedRequests counts requests refused at per-connection admission (each
// answered with a BusyResp before any processing) since the server
// started.
func (s *Server) ShedRequests() uint64 { return s.rt.ShedCount() }

// Start registers the server and launches the runtime's background loops.
func (s *Server) Start() { s.rt.Start() }

// Stop terminates background loops, flushes the commit list into the
// store, and closes the storage engine and transaction log.
func (s *Server) Stop() { s.rt.Stop() }

// Kill stops the server WITHOUT the final apply/flush (and without the
// courtesy replies to parked readers), simulating a hard kill for
// recovery tests; see core.Server.Kill.
func (s *Server) Kill() { s.rt.Kill() }

// StableVector returns a copy of the server's global stable vector.
func (s *Server) StableVector() []hlc.Timestamp {
	return s.gsv.Snapshot(nil)
}

// VersionVector returns a copy of the server's version vector.
func (s *Server) VersionVector() []hlc.Timestamp {
	return s.rt.VV.Snapshot(nil)
}

// LocalVersionClock returns vv[m].
func (s *Server) LocalVersionClock() hlc.Timestamp {
	return s.rt.VV.Load(s.cfg.DC)
}

// now returns the coordinator clock reading used for snapshot local
// entries: the HLC for H-Cure, the raw physical clock for Cure.
func (s *Server) now() hlc.Timestamp {
	if s.cfg.UseHLC {
		return s.rt.Clock.Now()
	}
	return s.rt.Clock.PhysicalNow()
}

// depVector derives a version's dependency vector from its prepare-time
// snapshot vector and final commit timestamp.
func (s *Server) depVector(sv []hlc.Timestamp, ct hlc.Timestamp) []hlc.Timestamp {
	var dv []hlc.Timestamp
	if len(sv) == s.cfg.NumDCs {
		dv = copyVec(sv)
	} else {
		dv = make([]hlc.Timestamp, s.cfg.NumDCs)
	}
	dv[s.cfg.DC] = ct
	return dv
}

// cureProtocol is the replica.Protocol implementation: the seam through
// which the shared runtime calls back into Cure's vector-snapshot logic.
type cureProtocol Server

func (p *cureProtocol) server() *Server { return (*Server)(p) }

// AppendLocalPuts renders a locally committed transaction into engine
// versions carrying its dependency vector, derived from the prepare-time
// snapshot vector and the final commit timestamp.
func (p *cureProtocol) AppendLocalPuts(dst []store.KV, t *txlog.CommittedTx, skip replica.SkipFunc) []store.KV {
	s := p.server()
	dv := s.depVector(t.SV, t.CT)
	for _, kv := range t.Writes {
		if skip != nil && skip(kv.Key, t.TxID) {
			continue
		}
		dst = append(dst, store.KV{Key: kv.Key, Version: &store.Version{
			Value: kv.VersionValue(), UT: t.CT, TxID: t.TxID, SrcDC: uint8(s.cfg.DC), DV: dv,
		}})
	}
	return dst
}

// AppendRemotePuts renders one replicated transaction from srcDC; its
// dependency vector arrives on the wire.
func (p *cureProtocol) AppendRemotePuts(dst []store.KV, srcDC uint8, t *wire.ReplTx, skip replica.SkipFunc) []store.KV {
	for _, kv := range t.Writes {
		if skip != nil && skip(kv.Key, t.TxID) {
			continue
		}
		dst = append(dst, store.KV{Key: kv.Key, Version: &store.Version{
			Value: kv.VersionValue(), UT: t.CT, TxID: t.TxID, SrcDC: srcDC, DV: t.DV,
		}})
	}
	return dst
}

// ReplTxRecord ships the full M-entry dependency vector with each
// replicated transaction — Cure's snapshot overhead versus Wren's one
// scalar (Figure 7a).
func (p *cureProtocol) ReplTxRecord(t *txlog.CommittedTx) wire.ReplTx {
	s := p.server()
	return wire.ReplTx{TxID: t.TxID, CT: t.CT, DV: s.depVector(t.SV, t.CT), Writes: t.Writes}
}

// ApplyBound follows the clock the variant runs on. Cure: the version
// clock can only follow the raw physical clock — the root cause of
// skew-induced read blocking. H-Cure: the HLC, which message receipt can
// advance. Either way the HLC is pinned to the bound: prepares propose via
// TickPast, and the pin guarantees every later proposal lands strictly
// above a bound already published as installed — without it, a proposal
// could tie the bound at microsecond granularity and commit inside the
// installed region. Called under the runtime's writer mutex.
func (p *cureProtocol) ApplyBound() hlc.Timestamp {
	s := p.server()
	var ub hlc.Timestamp
	if s.cfg.UseHLC {
		ub = s.rt.Clock.Now()
	} else {
		ub = s.rt.Clock.PhysicalNow()
	}
	s.rt.Clock.Update(ub)
	return ub
}

// ObserveCommitTS absorbs an incoming commit timestamp into the clock —
// only H-Cure's HLC may jump; plain Cure's physical clock must not.
func (p *cureProtocol) ObserveCommitTS(ct hlc.Timestamp) {
	s := p.server()
	if s.cfg.UseHLC {
		s.rt.Clock.Update(ct)
	}
}

// AfterInstall releases parked slice reads whose snapshot the advanced
// version vector now covers — the wakeup half of Cure's blocking reads.
func (p *cureProtocol) AfterInstall() {
	s := p.server()
	s.mu.Lock()
	ready := s.releaseWaitersLocked()
	s.mu.Unlock()
	s.serveReady(ready)
}

// GossipTick broadcasts the full M-entry version vector — Cure's
// stabilization messages are M timestamps versus Wren's two (Figure 7a).
func (p *cureProtocol) GossipTick() {
	s := p.server()
	vvCopy := s.rt.VV.Snapshot(nil)
	s.mu.Lock()
	maxInto(s.peerVV[s.cfg.Partition], vvCopy)
	s.recomputeStableLocked()
	s.mu.Unlock()

	msg := &wire.StableBroadcast{Partition: uint16(s.cfg.Partition), VV: vvCopy}
	for q := 0; q < s.cfg.NumPartitions; q++ {
		if q == s.cfg.Partition {
			continue
		}
		s.rt.SendBounded(transport.ServerID(s.cfg.DC, q), msg)
	}
}

// OldestActiveSnapshot expires abandoned transaction contexts and returns
// a conservative scalar GC bound: the minimum entry of any active snapshot
// vector (or of the stable vector when idle). The floor is loaded under
// the runtime's SnapMu barrier: in-flight snapshot assignments drain
// first, so a context the Range below cannot see yet was assigned entries
// at or above these values and needs no protection.
func (p *cureProtocol) OldestActiveSnapshot(now time.Time) hlc.Timestamp {
	s := p.server()
	var expired []uint64
	s.txCtx.Range(func(id uint64, ctx *txContext) bool {
		if now.Sub(ctx.created) > s.cfg.TxContextTTL {
			expired = append(expired, id)
		}
		return true
	})
	for _, id := range expired {
		if _, ok := s.txCtx.LoadAndDelete(id); ok {
			s.metrics.CtxExpired.Inc()
		}
	}
	s.rt.SnapMu.Lock()
	oldest := s.gsv.Load(0)
	for i := 1; i < s.cfg.NumDCs; i++ {
		if t := s.gsv.Load(i); t < oldest {
			oldest = t
		}
	}
	if local := s.rt.VV.Load(s.cfg.DC); local < oldest {
		oldest = local
	}
	s.rt.SnapMu.Unlock()
	s.txCtx.Range(func(_ uint64, ctx *txContext) bool {
		for _, t := range ctx.sv {
			if t < oldest {
				oldest = t
			}
		}
		return true
	})
	return oldest
}

// BeforeCommitReply is a no-op for Cure: commits are acknowledged as soon
// as the decision is durable.
func (p *cureProtocol) BeforeCommitReply(hlc.Timestamp) bool { return true }

// OnStop fails parked reads so clients aren't left hanging (a killed
// server answers nobody). Runs inside the runtime's shutdown sequence
// before the stop channel closes.
func (p *cureProtocol) OnStop(kill bool) {
	s := p.server()
	s.mu.Lock()
	waiters := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	if kill {
		return
	}
	for _, w := range waiters {
		s.rt.Send(w.from, &wire.SliceResp{ReqID: w.reqID})
		if w.req != nil {
			wire.PutSliceReq(w.req)
		}
	}
}

// HandleMessage dispatches the snapshot-carrying messages the runtime
// forwards to the protocol.
func (p *cureProtocol) HandleMessage(from transport.NodeID, m wire.Message) {
	s := p.server()
	switch msg := m.(type) {
	case *wire.StartTxReq:
		s.handleStartTx(from, msg)
	case *wire.TxReadReq:
		s.handleTxRead(from, msg)
	case *wire.CommitReq:
		s.handleCommitReq(from, msg)
	case *wire.SliceReq:
		s.handleSliceReq(from, msg)
	case *wire.PrepareReq:
		s.handlePrepareReq(from, msg)
	case *wire.StableBroadcast:
		s.handleStableBroadcast(msg)
	}
}

// handleStartTx assigns the snapshot vector: remote entries from the
// stable vector, the local entry from the coordinator's CURRENT clock —
// the design choice that makes Cure reads block — raised to the client's
// dependency vector. SnapMu is held SHARED around the assignment so GC's
// exclusive floor load can never miss a context it must protect.
func (s *Server) handleStartTx(from transport.NodeID, m *wire.StartTxReq) {
	id := s.rt.NewTxID()
	s.rt.SnapMu.RLock()
	sv := s.gsv.Snapshot(nil)
	sv[s.cfg.DC] = s.now()
	if len(m.DV) == len(sv) {
		maxInto(sv, m.DV)
	}
	s.txCtx.Store(id, &txContext{sv: sv, created: time.Now()})
	s.rt.SnapMu.RUnlock()

	s.metrics.TxStarted.Inc()
	s.rt.Send(from, &wire.StartTxResp{ReqID: m.ReqID, TxID: id, SV: sv})
}

// handleTxRead fans the key set out per partition and merges the slices
// via a completion-counter fan-in (as in package core): the last arriving
// SliceResp assembles the TxReadResp, no goroutine parks per read. Unlike
// Wren's coordinator there is no local fast path — even the coordinator's
// own slice goes through handleSliceReq, which may legitimately park it
// (the blocking this baseline exists to exhibit).
func (s *Server) handleTxRead(from transport.NodeID, m *wire.TxReadReq) {
	ctx, ok := s.txCtx.Load(m.TxID)
	if !ok {
		s.rt.Send(from, &wire.TxReadResp{ReqID: m.ReqID})
		return
	}
	sv := ctx.sv

	// Per-connection admission, mirroring Wren's coordinator: a pooled
	// link multiplexing many sessions is bounded before any slice work —
	// or parking — happens. Released when the last slice arrives (in the
	// runtime's SliceResp handler or below) or by the GC sweep.
	if !s.rt.AdmitClient(from) {
		s.rt.Shed(from, m.ReqID)
		return
	}

	fo := s.fanPool.Get().(*fanin.Fanout)
	fo.Reset(s.cfg.NumPartitions)
	for _, k := range m.Keys {
		fo.Add(sharding.PartitionOf(k, s.cfg.NumPartitions), k)
	}

	fi := fanin.Start(from, m.ReqID, len(fo.Touched))
	for _, p := range fo.Touched {
		reqID := s.rt.NextReqID()
		req := wire.GetSliceReq()
		req.ReqID = reqID
		req.Keys = append(req.Keys[:0], fo.Groups[p]...)
		req.SV = sv // aliases the tx context's vector; PutSliceReq drops it
		s.rt.TrackRead(reqID, fi)
		s.rt.Send(transport.ServerID(s.cfg.DC, p), req)
	}
	s.fanPool.Put(fo)

	if resp, to, last := fi.Finish(); last {
		s.rt.ReleaseClient(to)
		s.rt.Send(to, resp)
	}
}

// installed reports whether this partition has installed snapshot sv:
// every version-vector entry has reached the snapshot's. Lock-free — the
// version vector is entrywise-monotone, so a true result never reverts.
func (s *Server) installed(sv []hlc.Timestamp) bool {
	return s.rt.VV.Covers(sv)
}

// handleSliceReq serves the read if the snapshot is installed; otherwise it
// PARKS the request until the apply loop or replication catches up. This is
// the blocking that Wren's CANToR protocol eliminates. The installed fast
// path takes no lock at all; only parking does.
func (s *Server) handleSliceReq(from transport.NodeID, m *wire.SliceReq) {
	if s.cfg.UseHLC {
		// H-Cure: the HLC absorbs the snapshot timestamp, so an idle
		// partition's clock no longer lags the coordinator's.
		s.rt.Clock.Update(m.SV[s.cfg.DC])
	}
	if s.installed(m.SV) {
		s.serveSlice(from, m.ReqID, m.Keys, m.SV, 0)
		wire.PutSliceReq(m)
		return
	}
	s.mu.Lock()
	// Re-check under the lock: a concurrent vv advance that ran its waiter
	// release before we parked would otherwise be a lost wakeup.
	if s.installed(m.SV) {
		s.mu.Unlock()
		s.serveSlice(from, m.ReqID, m.Keys, m.SV, 0)
		wire.PutSliceReq(m)
		return
	}
	s.waiters = append(s.waiters, &waiter{
		from: from, reqID: m.ReqID, keys: m.Keys, sv: m.SV, req: m, arrived: time.Now(),
	})
	s.mu.Unlock()
	// Try to install a fresher snapshot right away: if nothing is pending
	// and the clock allows, the read is served without waiting for the
	// next apply tick. What remains is genuine blocking: pending
	// transactions below the snapshot, clock skew (Cure only), or missing
	// remote updates.
	s.rt.ApplyTick(false)
}

// serveSlice returns the freshest version of each key whose dependency
// vector is within the snapshot. The response and its working memory come
// from pools; the receiver releases the response.
func (s *Server) serveSlice(to transport.NodeID, reqID uint64, keys []string, sv []hlc.Timestamp, blocked time.Duration) {
	rs := s.readPool.Get().(*readScratch)
	rs.pred.sv = sv
	rs.vers = s.st.ReadVisibleBatchInto(keys, rs.visible, rs.vers)
	resp := wire.GetSliceResp()
	resp.ReqID = reqID
	for i, v := range rs.vers {
		// A visible tombstone (nil Value) reads as absence, hiding any
		// older live version.
		if v != nil && v.Value != nil {
			resp.Items = append(resp.Items, wire.Item{
				Key: keys[i], Value: v.Value, UT: v.UT, TxID: v.TxID, SrcDC: v.SrcDC, DV: v.DV,
			})
		}
	}
	rs.pred.sv = nil // do not pin the snapshot vector in the pool
	clear(rs.vers)   // nor GC-able version chains
	s.readPool.Put(rs)
	s.metrics.SlicesServed.Inc()
	if blocked > 0 {
		s.metrics.BlockedReads.Inc()
		s.metrics.BlockedMicros.Add(uint64(blocked.Microseconds()))
	}
	resp.BlockedMicros = blocked.Microseconds()
	s.rt.Send(to, resp)
}

// releaseWaitersLocked finds parked reads whose snapshot is now installed.
// It must be called with s.mu held; it returns the now-serveable waiters so
// the caller can serve them after releasing the lock.
func (s *Server) releaseWaitersLocked() []*waiter {
	if len(s.waiters) == 0 {
		return nil
	}
	var ready []*waiter
	rest := s.waiters[:0]
	for _, w := range s.waiters {
		if s.installed(w.sv) {
			ready = append(ready, w)
		} else {
			rest = append(rest, w)
		}
	}
	s.waiters = rest
	return ready
}

func (s *Server) serveReady(ready []*waiter) {
	for _, w := range ready {
		s.serveSlice(w.from, w.reqID, w.keys, w.sv, time.Since(w.arrived))
		if w.req != nil {
			// keys and sv alias the request's buffers; release only after
			// the read is fully served.
			wire.PutSliceReq(w.req)
		}
	}
}

// handleCommitReq resolves the transaction's snapshot vector and hands the
// 2PC to the runtime; each cohort's PrepareReq carries the vector and the
// proposal floor ht.
func (s *Server) handleCommitReq(from transport.NodeID, m *wire.CommitReq) {
	ctx, ok := s.txCtx.LoadAndDelete(m.TxID)
	var sv []hlc.Timestamp
	if ok {
		sv = ctx.sv
	} else {
		sv = s.gsv.Snapshot(nil)
		sv[s.cfg.DC] = s.now()
	}
	ht := hlc.Max(m.HWT, sv[s.cfg.DC])
	s.rt.Commit(from, m, func() *wire.PrepareReq {
		return &wire.PrepareReq{HT: ht, SV: sv}
	})
}

// handlePrepareReq hands the cohort side of the 2PC to the runtime: Cure
// proposes from the (possibly lagging) physical clock via the HLC's
// TickPast; H-Cure's HLC can jump.
func (s *Server) handlePrepareReq(from transport.NodeID, m *wire.PrepareReq) {
	s.rt.Prepare(from, m, m.HT)
}

// handleStableBroadcast ingests a peer's full version vector and recomputes
// the global stable vector as the entrywise minimum.
func (s *Server) handleStableBroadcast(m *wire.StableBroadcast) {
	p := int(m.Partition)
	if p < 0 || p >= s.cfg.NumPartitions || len(m.VV) != s.cfg.NumDCs {
		return
	}
	s.mu.Lock()
	maxInto(s.peerVV[p], m.VV)
	s.recomputeStableLocked()
	s.mu.Unlock()
}

// recomputeStableLocked folds the per-peer vectors into the published
// global stable vector. Caller holds s.mu (which serializes peerVV);
// publication itself is an entrywise atomic max-merge.
func (s *Server) recomputeStableLocked() {
	for i := 0; i < s.cfg.NumDCs; i++ {
		m := s.peerVV[0][i]
		for p := 1; p < s.cfg.NumPartitions; p++ {
			if s.peerVV[p][i] < m {
				m = s.peerVV[p][i]
			}
		}
		s.gsv.Advance(i, m)
	}
}

var _ replica.Protocol = (*cureProtocol)(nil)
