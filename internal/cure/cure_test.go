package cure

import (
	"fmt"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/sharding"
	"wren/internal/transport"
)

type testCluster struct {
	t       *testing.T
	net     *transport.Memory
	servers [][]*Server
	dcs     int
	parts   int
	nextCli int
}

type clusterOpts struct {
	dcs, parts  int
	useHLC      bool
	interDC     time.Duration
	gossipEvery time.Duration
	applyEvery  time.Duration
	gcEvery     time.Duration
	skew        func(dc, partition int) time.Duration
}

func newTestCluster(t *testing.T, opts clusterOpts) *testCluster {
	t.Helper()
	if opts.interDC == 0 {
		opts.interDC = 5 * time.Millisecond
	}
	if opts.gossipEvery == 0 {
		opts.gossipEvery = time.Millisecond
	}
	if opts.applyEvery == 0 {
		opts.applyEvery = time.Millisecond
	}
	if opts.gcEvery == 0 {
		opts.gcEvery = -1
	}
	net := transport.NewMemory(transport.UniformLatency(100*time.Microsecond, opts.interDC))
	tc := &testCluster{t: t, net: net, dcs: opts.dcs, parts: opts.parts}
	for dc := 0; dc < opts.dcs; dc++ {
		row := make([]*Server, opts.parts)
		for p := 0; p < opts.parts; p++ {
			var src hlc.Source = hlc.SystemSource{}
			if opts.skew != nil {
				src = hlc.OffsetSource{Base: hlc.SystemSource{}, Offset: opts.skew(dc, p)}
			}
			srv, err := NewServer(ServerConfig{
				DC: dc, Partition: p,
				NumDCs: opts.dcs, NumPartitions: opts.parts,
				Network:        net,
				ClockSource:    src,
				UseHLC:         opts.useHLC,
				ApplyInterval:  opts.applyEvery,
				GossipInterval: opts.gossipEvery,
				GCInterval:     opts.gcEvery,
			})
			if err != nil {
				t.Fatalf("NewServer: %v", err)
			}
			row[p] = srv
			srv.Start()
		}
		tc.servers = append(tc.servers, row)
	}
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	for _, row := range tc.servers {
		for _, s := range row {
			s.Stop()
		}
	}
	tc.net.Close()
}

func (tc *testCluster) client(dc int) *Client {
	tc.t.Helper()
	tc.nextCli++
	c, err := NewClient(ClientConfig{
		DC:                   dc,
		ClientIndex:          tc.nextCli,
		NumDCs:               tc.dcs,
		NumPartitions:        tc.parts,
		Network:              tc.net,
		CoordinatorPartition: 0,
		RequestTimeout:       5 * time.Second,
	})
	if err != nil {
		tc.t.Fatalf("NewClient: %v", err)
	}
	return c
}

func commitKV(t *testing.T, c *Client, kvs map[string]string) hlc.Timestamp {
	t.Helper()
	tx, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for k, v := range kvs {
		if err := tx.Write(k, []byte(v)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	ct, err := tx.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return ct
}

func readKeys(t *testing.T, c *Client, keys ...string) map[string][]byte {
	t.Helper()
	tx, err := c.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	got, err := tx.Read(keys...)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("Commit(read-only): %v", err)
	}
	return got
}

func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", d, what)
}

func TestVectorHelpers(t *testing.T) {
	a := []hlc.Timestamp{1, 5, 3}
	b := []hlc.Timestamp{2, 4, 3}
	cp := copyVec(a)
	cp[0] = 99
	if a[0] == 99 {
		t.Error("copyVec must copy")
	}
	maxInto(a, b)
	want := []hlc.Timestamp{2, 5, 3}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("maxInto[%d] = %v, want %v", i, a[i], want[i])
		}
	}
	if !leqAll([]hlc.Timestamp{1, 2}, []hlc.Timestamp{1, 3}) {
		t.Error("leqAll should hold")
	}
	if leqAll([]hlc.Timestamp{2, 2}, []hlc.Timestamp{1, 3}) {
		t.Error("leqAll should fail")
	}
	if leqAll([]hlc.Timestamp{1}, []hlc.Timestamp{1, 2}) {
		t.Error("leqAll must reject length mismatch")
	}
}

func TestCureCommitAndReadBack(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2, useHLC: false})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"alpha": "1"})
	// Cure has no client cache: the read blocks until the snapshot (which
	// includes the write) installs, then returns it.
	got := readKeys(t, c, "alpha")
	if string(got["alpha"]) != "1" {
		t.Fatalf("read-your-writes failed: %q", got["alpha"])
	}
	other := tc.client(0)
	eventually(t, 2*time.Second, "other client sees write", func() bool {
		return string(readKeys(t, other, "alpha")["alpha"]) == "1"
	})
}

func TestHCureCommitAndReadBack(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2, useHLC: true})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"beta": "2"})
	got := readKeys(t, c, "beta")
	if string(got["beta"]) != "2" {
		t.Fatalf("read-your-writes failed: %q", got["beta"])
	}
}

func TestCureReadsBlockOnClockSkew(t *testing.T) {
	// Partition 0 (the coordinator) runs 20ms ahead. A snapshot started
	// there carries a local entry in partition 1's future, so reads on
	// partition 1 must block ~20ms in Cure.
	const skew = 20 * time.Millisecond
	tc := newTestCluster(t, clusterOpts{
		dcs: 1, parts: 2, useHLC: false,
		skew: func(dc, p int) time.Duration {
			if p == 0 {
				return skew
			}
			return 0
		},
	})
	c := tc.client(0)
	// Write a key on partition 1 so the read has something to fetch there.
	key := keyOnPartition(t, 1, 2)
	commitKV(t, c, map[string]string{key: "v"})

	var sawBlocking bool
	for i := 0; i < 10; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Read(key); err != nil {
			t.Fatal(err)
		}
		if tx.BlockedMicros > int64(skew.Microseconds())/2 {
			sawBlocking = true
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawBlocking {
		t.Fatal("Cure reads should block when the coordinator clock is ahead")
	}
	srv := tc.servers[0][1]
	if srv.Metrics().BlockedReads.Load() == 0 {
		t.Fatal("server should have recorded blocked reads")
	}
}

func TestHCureAvoidsClockSkewBlocking(t *testing.T) {
	// Same skewed topology, but H-Cure: the HLC jumps on message receipt,
	// so blocking should be roughly bounded by the apply interval rather
	// than the 20ms skew.
	const skew = 20 * time.Millisecond
	tc := newTestCluster(t, clusterOpts{
		dcs: 1, parts: 2, useHLC: true,
		skew: func(dc, p int) time.Duration {
			if p == 0 {
				return skew
			}
			return 0
		},
	})
	c := tc.client(0)
	key := keyOnPartition(t, 1, 2)
	commitKV(t, c, map[string]string{key: "v"})

	var maxBlocked int64
	for i := 0; i < 10; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Read(key); err != nil {
			t.Fatal(err)
		}
		if tx.BlockedMicros > maxBlocked {
			maxBlocked = tx.BlockedMicros
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// H-Cure can still block on pending transactions, but never the full
	// clock skew.
	if maxBlocked > int64(skew.Microseconds()) {
		t.Fatalf("H-Cure blocked %dµs, should be well below the %v skew", maxBlocked, skew)
	}
}

func TestCureAtomicMultiPartitionWrites(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 4, useHLC: true})
	writer := tc.client(0)
	reader := tc.client(0)
	kx := keyOnPartition(t, 0, 4)
	ky := keyOnPartition(t, 2, 4)

	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			val := fmt.Sprintf("%d", i)
			tx, err := writer.Begin()
			if err != nil {
				writerDone <- err
				return
			}
			_ = tx.Write(kx, []byte(val))
			_ = tx.Write(ky, []byte(val))
			if _, err := tx.Commit(); err != nil {
				writerDone <- err
				return
			}
		}
	}()

	deadline := time.Now().Add(1200 * time.Millisecond)
	for time.Now().Before(deadline) {
		got := readKeys(t, reader, kx, ky)
		x, y := string(got[kx]), string(got[ky])
		if x != y {
			t.Fatalf("atomicity violated: %q vs %q", x, y)
		}
	}
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestCureCausalityAcrossDCs(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2, useHLC: true})
	w := tc.client(0)
	r := tc.client(1)
	commitKV(t, w, map[string]string{"cx": "1"})
	commitKV(t, w, map[string]string{"cy": "1"})
	eventually(t, 5*time.Second, "y visible in DC1 implies x visible", func() bool {
		got := readKeys(t, r, "cy", "cx")
		if got["cy"] == nil {
			return false
		}
		if got["cx"] == nil {
			t.Fatal("causality violated: cy visible without cx")
		}
		return true
	})
}

func TestCureLWWConvergence(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 3, parts: 2, useHLC: true})
	for dc := 0; dc < 3; dc++ {
		commitKV(t, tc.client(dc), map[string]string{"conflict": fmt.Sprintf("dc%d", dc)})
	}
	p := sharding.PartitionOf("conflict", 2)
	eventually(t, 5*time.Second, "replicas converge", func() bool {
		var want string
		for dc := 0; dc < 3; dc++ {
			v := tc.servers[dc][p].Store().Latest("conflict")
			if v == nil {
				return false
			}
			if dc == 0 {
				want = string(v.Value)
			} else if string(v.Value) != want {
				return false
			}
		}
		return true
	})
}

func TestCureClientDependencyVectorGrows(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2, useHLC: true})
	c := tc.client(0)
	before := c.DependencyVector()
	commitKV(t, c, map[string]string{"dep": "v"})
	after := c.DependencyVector()
	if !(after[0] > before[0]) {
		t.Fatalf("local DV entry should grow after commit: %v -> %v", before, after)
	}
}

func TestCureTxLifecycleErrors(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2, useHLC: true})
	c := tc.client(0)
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(); err != ErrTxOpen {
		t.Fatalf("second Begin = %v, want ErrTxOpen", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != ErrTxDone {
		t.Fatalf("double Commit = %v, want ErrTxDone", err)
	}
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Begin(); err != ErrClosed {
		t.Fatalf("Begin after Close = %v, want ErrClosed", err)
	}
}

func TestCureConfigValidation(t *testing.T) {
	net := transport.NewMemory(nil)
	defer net.Close()
	bad := []ServerConfig{
		{NumDCs: 0, NumPartitions: 1, Network: net},
		{NumDCs: 1, NumPartitions: 0, Network: net},
		{DC: 5, NumDCs: 2, NumPartitions: 1, Network: net},
		{NumDCs: 1, NumPartitions: 1, Network: nil},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := NewClient(ClientConfig{Network: net, NumDCs: 0, NumPartitions: 1}); err == nil {
		t.Error("client with zero DCs should be rejected")
	}
}

func TestCureGC(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2, useHLC: true, gcEvery: 20 * time.Millisecond})
	c := tc.client(0)
	for i := 0; i < 50; i++ {
		commitKV(t, c, map[string]string{"hot": fmt.Sprintf("v%d", i)})
	}
	srv := tc.servers[0][sharding.PartitionOf("hot", 2)]
	eventually(t, 3*time.Second, "versions pruned", func() bool {
		return srv.Store().VersionsOf("hot") <= 3
	})
}

func TestCureStableVectorAdvances(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2, useHLC: true})
	srv := tc.servers[0][0]
	eventually(t, 3*time.Second, "stable vector advances in all entries", func() bool {
		gsv := srv.StableVector()
		return gsv[0] > 0 && gsv[1] > 0
	})
}

// keyOnPartition finds a key hashing to the given partition.
func keyOnPartition(t *testing.T, p, parts int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if sharding.PartitionOf(k, parts) == p {
			return k
		}
	}
	t.Fatal("no key found for partition")
	return ""
}
