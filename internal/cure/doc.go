// Package cure implements the Cure and H-Cure baselines the paper compares
// against (§V).
//
// Cure (Akkoorath et al., ICDCS'16) is the state-of-the-art TCC design:
// every item carries a dependency vector with one entry per DC, and a
// transaction's snapshot is a vector whose local entry is the transaction
// coordinator's *current clock value* and whose remote entries come from the
// stabilization protocol. Because the local entry may be "in the future"
// with respect to the snapshot installed by other partitions, a read can
// reach a laggard partition before the snapshot is installed there and must
// block until (a) all pending/committed transactions with smaller commit
// timestamps are applied and (b) the partition's clock passes the snapshot
// time (Figure 1a in the paper).
//
// H-Cure is Cure with Hybrid Logical Clocks: on receiving a read, a
// partition's HLC jumps to the snapshot timestamp, eliminating the
// clock-skew component of blocking — but not the wait for pending
// transactions. The paper uses it to show HLCs alone do not achieve
// nonblocking reads (§V, Figure 3).
//
// The server mirrors package core's structure (2PC commit, apply loop,
// vector stabilization gossip, heartbeats, GC) so that performance
// comparisons isolate the protocol difference rather than implementation
// artifacts — the same approach the paper takes by implementing all three
// systems in one code base.
package cure
