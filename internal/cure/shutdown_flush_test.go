package cure

import (
	"path/filepath"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/store/wal"
	"wren/internal/transport"
	"wren/internal/wire"
)

type respRecorder struct{ ch chan wire.Message }

func (r *respRecorder) HandleMessage(_ transport.NodeID, m wire.Message) { r.ch <- m }

// TestStopFlushesCommitAboveLocalClock guards Stop's durability flush for
// plain Cure: its apply upper bound follows the raw physical clock, so a
// commit timestamp assigned by a faster coordinator can sit above
// PhysicalNow() at shutdown — the final flush must apply it anyway.
func TestStopFlushesCommitAboveLocalClock(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewMemory(transport.UniformLatency(50*time.Microsecond, time.Millisecond))
	defer net.Close()
	// A manual clock pinned near zero: every externally assigned commit
	// timestamp is "in the future" for this participant.
	src := hlc.NewManualSource(1000)
	srv, err := NewServer(ServerConfig{
		DC: 0, Partition: 0, NumDCs: 1, NumPartitions: 1,
		Network: net, ClockSource: src, UseHLC: false,
		ApplyInterval:  time.Hour,
		GossipInterval: time.Hour,
		GCInterval:     -1,
		StoreBackend:   "wal", DataDir: dir, FsyncPolicy: "always",
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.Start()

	rec := &respRecorder{ch: make(chan wire.Message, 4)}
	recID := transport.ClientID(0, 1)
	net.Register(recID, rec)

	sv := []hlc.Timestamp{hlc.New(1000, 0)}
	if err := net.Send(recID, srv.ID(), &wire.PrepareReq{
		ReqID: 1, TxID: 1, SV: sv,
		Writes: []wire.KV{{Key: "future", Value: []byte("yes")}},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-rec.ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no PrepareResp")
	}
	// The coordinator's (faster) clock assigned a commit timestamp far
	// above this server's physical clock.
	ct := hlc.New(1_000_000, 0)
	if err := net.Send(recID, srv.ID(), &wire.CommitTx{TxID: 1, CT: ct}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.rt.CommitQueueLen() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("CommitTx never reached the commit list")
		}
		time.Sleep(time.Millisecond)
	}

	srv.Stop()

	eng, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "dc0-p0")})
	if err != nil {
		t.Fatalf("reopen wal: %v", err)
	}
	defer eng.Close()
	if v := eng.Latest("future"); v == nil || string(v.Value) != "yes" {
		t.Fatalf("commit above the local physical clock lost across shutdown: %+v", v)
	}
}
