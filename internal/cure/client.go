package cure

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/wire"
)

// Client errors (mirroring package core for interchangeable use).
var (
	ErrTxOpen  = errors.New("cure: a transaction is already open on this session")
	ErrTxDone  = errors.New("cure: transaction already finished")
	ErrTimeout = errors.New("cure: request timed out")
	ErrClosed  = errors.New("cure: client closed")
	// ErrReadOnly is returned by Commit when the server refused the write
	// because its durability is degraded (read-only admission). Matched
	// with errors.Is; the transaction did not commit.
	ErrReadOnly = errors.New("cure: server is read-only (durability degraded)")
	// ErrAborted is returned by Commit when the transaction definitely did
	// not commit and its id has been fenced on the coordinator, so it is
	// safe to re-run. Matched with errors.Is.
	ErrAborted = errors.New("cure: transaction aborted")
	// ErrInDoubt is returned by Commit when the acknowledgement was lost
	// and every termination probe went unanswered; it wraps the original
	// failure. Matched with errors.Is.
	ErrInDoubt = errors.New("cure: commit outcome in doubt")
)

// DefaultRequestTimeout bounds each client-coordinator round trip.
const DefaultRequestTimeout = 10 * time.Second

// RetryPolicy controls how a client session reacts to timed-out or
// transiently failed round trips. The zero value disables retries and
// preserves single-attempt semantics.
type RetryPolicy struct {
	// Attempts is the number of additional tries after the first failure
	// for idempotent requests, and the number of termination probes issued
	// for an unacknowledged commit.
	Attempts int
	// Backoff is the delay before the first retry; it doubles per attempt
	// and is capped at 500ms. Zero selects 5ms.
	Backoff time.Duration
}

// retryDelay returns the backoff before retry number attempt (1-based).
func (rp RetryPolicy) retryDelay(attempt int) time.Duration {
	b := rp.Backoff
	if b <= 0 {
		b = 5 * time.Millisecond
	}
	d := b << uint(attempt-1)
	if max := 500 * time.Millisecond; d > max || d <= 0 {
		d = max
	}
	return d
}

// Conn is a pooled client connection: one session's handle on a shared
// connection pool (internal/transport/pool) that multiplexes many
// sessions over a few transport endpoints. It is declared structurally so
// the client does not depend on the pool package; *pool.Conn satisfies it.
type Conn interface {
	Call(to transport.NodeID, timeout time.Duration, build func(reqID uint64) wire.Message) (wire.Message, error)
}

// ClientConfig configures a Cure client session.
type ClientConfig struct {
	DC            int
	ClientIndex   int
	NumDCs        int
	NumPartitions int
	// Network is the messaging substrate shared with the servers. May be
	// nil when Conn is set.
	Network transport.Network
	// Conn, when non-nil, binds the session to a shared connection pool
	// instead of a per-session endpoint (see core.ClientConfig.Conn).
	Conn Conn
	// CoordinatorPartition fixes the coordinator; negative picks a random
	// coordinator per transaction.
	CoordinatorPartition int
	RequestTimeout       time.Duration
	// Retry controls timeout-driven retries and commit termination
	// probing. The zero value keeps every request single-attempt.
	Retry RetryPolicy
	Rand  *rand.Rand
}

// Client is a Cure/H-Cure client session. Unlike Wren clients it has no
// write cache; instead it tracks a full dependency vector that it piggybacks
// on transaction starts so its own writes are always inside its snapshots —
// at the cost of blocking reads until those snapshots install.
type Client struct {
	cfg ClientConfig
	id  transport.NodeID
	rng *rand.Rand

	mu      sync.Mutex
	dv      []hlc.Timestamp // client dependency vector, one entry per DC
	hwt     hlc.Timestamp
	pending map[uint64]chan wire.Message
	tx      *Tx
	closed  bool

	reqSeq atomic.Uint64
}

// NewClient creates a Cure client session and registers it on the network.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Network == nil && cfg.Conn == nil {
		return nil, fmt.Errorf("cure: a network or a pooled connection is required")
	}
	if cfg.NumPartitions <= 0 || cfg.NumDCs <= 0 {
		return nil, fmt.Errorf("cure: topology must be positive, got %dx%d", cfg.NumDCs, cfg.NumPartitions)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	c := &Client{
		cfg:     cfg,
		id:      transport.ClientID(cfg.DC, cfg.ClientIndex),
		rng:     rng,
		dv:      make([]hlc.Timestamp, cfg.NumDCs),
		pending: make(map[uint64]chan wire.Message),
	}
	if cfg.Conn == nil {
		cfg.Network.Register(c.id, c)
	}
	return c, nil
}

// ID returns the client's node id.
func (c *Client) ID() transport.NodeID { return c.id }

// HandleMessage implements transport.Handler.
func (c *Client) HandleMessage(_ transport.NodeID, m wire.Message) {
	var reqID uint64
	switch msg := m.(type) {
	case *wire.StartTxResp:
		reqID = msg.ReqID
	case *wire.TxReadResp:
		reqID = msg.ReqID
	case *wire.CommitResp:
		reqID = msg.ReqID
	case *wire.HealthResp:
		reqID = msg.ReqID
	case *wire.TxStatusResp:
		reqID = msg.ReqID
	case *wire.BusyResp:
		reqID = msg.ReqID
	default:
		return
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- m
	}
}

// Health probes the durability/admission state of one partition server in
// the client's DC, mirroring core.Client.Health.
func (c *Client) Health(partition int) (readOnly bool, detail string, err error) {
	if partition < 0 || partition >= c.cfg.NumPartitions {
		return false, "", fmt.Errorf("cure: partition %d out of range [0,%d)", partition, c.cfg.NumPartitions)
	}
	resp, err := c.callRetry(transport.ServerID(c.cfg.DC, partition), func(reqID uint64) wire.Message {
		return &wire.HealthReq{ReqID: reqID}
	})
	if err != nil {
		return false, "", err
	}
	hr, ok := resp.(*wire.HealthResp)
	if !ok {
		return false, "", fmt.Errorf("cure: unexpected response %T to HealthReq", resp)
	}
	return hr.ReadOnly, hr.Err, nil
}

func (c *Client) call(to transport.NodeID, reqID uint64, m wire.Message) (wire.Message, error) {
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[reqID] = ch
	c.mu.Unlock()

	if err := c.cfg.Network.Send(c.id, to, m); err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, err
	}
	timer := time.NewTimer(c.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (%v to %v)", ErrTimeout, m.Kind(), to)
	}
}

// roundTrip performs one request/response round trip: through the
// session's pooled connection when one is bound (cfg.Conn), over the
// session's own registered endpoint otherwise. A BusyResp — the server's
// admission pushback — surfaces as an error matching
// transport.ErrOverloaded, so retry loops back off and try again instead
// of hot-looping.
func (c *Client) roundTrip(to transport.NodeID, build func(reqID uint64) wire.Message) (wire.Message, error) {
	var resp wire.Message
	var err error
	if c.cfg.Conn != nil {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		resp, err = c.cfg.Conn.Call(to, c.cfg.RequestTimeout, build)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return nil, fmt.Errorf("%w (pooled request to %v)", ErrTimeout, to)
			}
			if errors.Is(err, transport.ErrClosed) {
				return nil, fmt.Errorf("%w (connection pool closed)", ErrClosed)
			}
			return nil, err
		}
	} else {
		reqID := c.reqSeq.Add(1)
		resp, err = c.call(to, reqID, build(reqID))
		if err != nil {
			return nil, err
		}
	}
	if _, busy := resp.(*wire.BusyResp); busy {
		return nil, fmt.Errorf("%w: %v shed the request at admission", transport.ErrOverloaded, to)
	}
	return resp, nil
}

// callRetry performs a round trip, retrying timed-out or transiently
// failed attempts per the session's retry policy. It is only safe for
// idempotent requests: each attempt carries a fresh request id, so a late
// response to an abandoned attempt misses the pending map and is dropped.
func (c *Client) callRetry(to transport.NodeID, build func(reqID uint64) wire.Message) (wire.Message, error) {
	var err error
	for attempt := 0; attempt <= c.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Retry.retryDelay(attempt))
		}
		var resp wire.Message
		resp, err = c.roundTrip(to, build)
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
	}
	return nil, err
}

// Begin starts a transaction, piggybacking the client's dependency vector.
func (c *Client) Begin() (*Tx, error) {
	return c.BeginAt(c.cfg.CoordinatorPartition)
}

// BeginAt starts a transaction on an explicit coordinator partition; a
// negative value picks a random one (the Begin default). It is the
// failover entry point: after a read-only commit refusal a session can
// retry against a different, healthy coordinator while keeping its causal
// session state — the dependency vector carries over, so the retried
// transaction still commits strictly after everything this session has
// observed.
func (c *Client) BeginAt(coordinator int) (*Tx, error) {
	if coordinator >= c.cfg.NumPartitions {
		return nil, fmt.Errorf("cure: coordinator partition %d out of range [0,%d)", coordinator, c.cfg.NumPartitions)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.tx != nil {
		c.mu.Unlock()
		return nil, ErrTxOpen
	}
	dv := copyVec(c.dv)
	c.mu.Unlock()

	// Begin is idempotent (an unanswered StartTxReq just leaves an expiring
	// context behind), so timeouts fail over to an alternate coordinator.
	var st *wire.StartTxResp
	var coord transport.NodeID
	var coordPartition int
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Retry.retryDelay(attempt))
		}
		coordPartition = coordinator
		if coordPartition < 0 {
			c.mu.Lock()
			coordPartition = c.rng.Intn(c.cfg.NumPartitions)
			c.mu.Unlock()
		} else if attempt > 0 {
			coordPartition = (coordinator + attempt) % c.cfg.NumPartitions
		}
		coord = transport.ServerID(c.cfg.DC, coordPartition)
		resp, err := c.roundTrip(coord, func(reqID uint64) wire.Message {
			return &wire.StartTxReq{ReqID: reqID, DV: dv}
		})
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		var ok bool
		st, ok = resp.(*wire.StartTxResp)
		if !ok {
			return nil, fmt.Errorf("cure: unexpected response %T to StartTxReq", resp)
		}
		break
	}
	if st == nil {
		return nil, lastErr
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	maxInto(c.dv, st.SV)
	tx := &Tx{
		client:    c,
		coord:     coord,
		partition: coordPartition,
		id:        st.TxID,
		sv:        st.SV,
		ws:        make(map[string][]byte),
		rs:        make(map[string][]byte),
		rsMiss:    make(map[string]struct{}),
	}
	c.tx = tx
	return tx, nil
}

// Close terminates the session.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.tx = nil
}

// DependencyVector returns a copy of the client's causal dependency vector.
func (c *Client) DependencyVector() []hlc.Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return copyVec(c.dv)
}

// Tx is an interactive Cure transaction.
type Tx struct {
	client    *Client
	coord     transport.NodeID
	partition int // coordinator partition index
	id        uint64
	sv        []hlc.Timestamp
	ws        map[string][]byte
	rs        map[string][]byte
	rsMiss    map[string]struct{}
	done      bool

	// BlockedMicros is the maximum time any read of this transaction spent
	// blocked on a laggard partition (Figure 3b's measured quantity).
	BlockedMicros int64
}

// ID returns the transaction id.
func (t *Tx) ID() uint64 { return t.id }

// Coordinator returns the coordinator partition this transaction ran on —
// the partition a failover retry must avoid.
func (t *Tx) Coordinator() int { return t.partition }

// SnapshotVector returns the transaction's snapshot vector.
func (t *Tx) SnapshotVector() []hlc.Timestamp { return copyVec(t.sv) }

// Blocked returns the total time this transaction's reads spent blocked.
func (t *Tx) Blocked() time.Duration {
	return time.Duration(t.BlockedMicros) * time.Microsecond
}

// Read returns the values of keys within the snapshot; reads may block
// server-side until the snapshot is installed.
func (t *Tx) Read(keys ...string) (map[string][]byte, error) {
	if t.done {
		return nil, ErrTxDone
	}
	result := make(map[string][]byte, len(keys))
	var missing []string
	for _, k := range keys {
		if v, ok := t.ws[k]; ok { // own uncommitted write (nil = own delete)
			if v != nil {
				result[k] = v
			}
			continue
		}
		if v, ok := t.rs[k]; ok {
			result[k] = v
			continue
		}
		if _, ok := t.rsMiss[k]; ok {
			continue
		}
		missing = append(missing, k)
	}
	if len(missing) == 0 {
		return result, nil
	}
	resp, err := t.client.callRetry(t.coord, func(reqID uint64) wire.Message {
		return &wire.TxReadReq{ReqID: reqID, TxID: t.id, Keys: missing}
	})
	if err != nil {
		return nil, err
	}
	rr, ok := resp.(*wire.TxReadResp)
	if !ok {
		return nil, fmt.Errorf("cure: unexpected response %T to TxReadReq", resp)
	}
	if rr.BlockedMicros > t.BlockedMicros {
		t.BlockedMicros = rr.BlockedMicros
	}
	for i := range rr.Items {
		it := &rr.Items[i]
		result[it.Key] = it.Value
		t.rs[it.Key] = it.Value
	}
	// Large read sets arrive partly as chunks: slice buffers the fan-in
	// retained by reference instead of copying into Items.
	for _, chunk := range rr.Chunks {
		for i := range chunk {
			it := &chunk[i]
			result[it.Key] = it.Value
			t.rs[it.Key] = it.Value
		}
	}
	for _, k := range missing {
		if _, ok := t.rs[k]; !ok {
			t.rsMiss[k] = struct{}{}
		}
	}
	// The pooled response is consumed; the session releases it.
	wire.PutTxReadResp(rr)
	return result, nil
}

// Write buffers an update in the write set. A nil value is normalized to
// an empty one — deletion is expressed via Delete.
func (t *Tx) Write(key string, value []byte) error {
	if t.done {
		return ErrTxDone
	}
	if value == nil {
		value = []byte{}
	}
	t.ws[key] = value
	return nil
}

// Delete buffers a deletion of key: at commit it installs a tombstone that
// hides every older version; GC eventually drops the chain once the
// deletion is stable. Because the commit timestamp folds into the client's
// dependency vector, this client's subsequent snapshots include the
// tombstone, so the key reads as absent from then on.
func (t *Tx) Delete(key string) error {
	if t.done {
		return ErrTxDone
	}
	t.ws[key] = nil
	return nil
}

// Commit runs the 2PC and folds the commit timestamp into the client's
// dependency vector.
func (t *Tx) Commit() (hlc.Timestamp, error) {
	if t.done {
		return 0, ErrTxDone
	}
	t.done = true
	defer t.client.clearTx(t)

	writes := make([]wire.KV, 0, len(t.ws))
	for k, v := range t.ws {
		writes = append(writes, wire.KV{Key: k, Value: v, Tombstone: v == nil})
	}
	t.client.mu.Lock()
	hwt := t.client.hwt
	t.client.mu.Unlock()

	var resp wire.Message
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = t.client.roundTrip(t.coord, func(reqID uint64) wire.Message {
			return &wire.CommitReq{ReqID: reqID, TxID: t.id, HWT: hwt, Writes: writes}
		})
		// Overload pushback (a BusyResp, or a full transport queue) means
		// the request was shed before any processing — unlike a timeout it
		// is provably safe to resend the CommitReq after a backoff.
		if err == nil || !errors.Is(err, transport.ErrOverloaded) || attempt >= t.client.cfg.Retry.Attempts {
			break
		}
		time.Sleep(t.client.cfg.Retry.retryDelay(attempt + 1))
	}
	if err != nil {
		if errors.Is(err, ErrClosed) || errors.Is(err, transport.ErrOverloaded) ||
			t.client.cfg.Retry.Attempts <= 0 {
			return 0, err
		}
		// The acknowledgement was lost but the commit may have landed.
		// Never resend the CommitReq — re-driving an in-doubt 2PC could
		// double-apply — resolve the outcome via termination probes.
		return t.resolveCommit(err)
	}
	cr, ok := resp.(*wire.CommitResp)
	if !ok {
		return 0, fmt.Errorf("cure: unexpected response %T to CommitReq", resp)
	}
	switch cr.Code {
	case wire.CommitOK:
	case wire.CommitErrAborted:
		return 0, fmt.Errorf("%w: %s", ErrAborted, cr.Err)
	default:
		return 0, fmt.Errorf("%w: %s", ErrReadOnly, cr.Err)
	}
	if len(writes) == 0 {
		return 0, nil
	}
	t.finishCommit(cr.CT)
	return cr.CT, nil
}

// finishCommit folds the commit timestamp into the client's dependency
// vector and high-water mark. Shared by the direct acknowledgement path
// and a committed verdict from a termination probe.
func (t *Tx) finishCommit(ct hlc.Timestamp) {
	if ct == 0 || len(t.ws) == 0 {
		return
	}
	c := t.client
	c.mu.Lock()
	if ct > c.hwt {
		c.hwt = ct
	}
	if ct > c.dv[c.cfg.DC] {
		c.dv[c.cfg.DC] = ct
	}
	c.mu.Unlock()
}

// resolveCommit settles a commit whose acknowledgement was lost by
// probing the coordinator with TxStatusReq; the CommitReq is never
// resent. A "not committed" verdict fenced the transaction id on the
// coordinator, so re-running the transaction is safe; unanswered probes
// leave the outcome ErrInDoubt.
func (t *Tx) resolveCommit(cause error) (hlc.Timestamp, error) {
	c := t.client
	for attempt := 1; attempt <= c.cfg.Retry.Attempts; attempt++ {
		time.Sleep(c.cfg.Retry.retryDelay(attempt))
		resp, err := c.roundTrip(t.coord, func(reqID uint64) wire.Message {
			return &wire.TxStatusReq{ReqID: reqID, TxID: t.id}
		})
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return 0, err
			}
			continue
		}
		sr, ok := resp.(*wire.TxStatusResp)
		if !ok || sr.TxID != t.id {
			continue
		}
		if sr.Committed {
			t.finishCommit(sr.CT)
			return sr.CT, nil
		}
		return 0, fmt.Errorf("%w: fenced by termination probe after %v", ErrAborted, cause)
	}
	return 0, fmt.Errorf("%w: %w", ErrInDoubt, cause)
}

// Abort abandons the transaction, releasing its coordinator context.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	defer t.client.clearTx(t)
	_, err := t.client.roundTrip(t.coord, func(reqID uint64) wire.Message {
		return &wire.CommitReq{ReqID: reqID, TxID: t.id}
	})
	return err
}

func (c *Client) clearTx(t *Tx) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tx == t {
		c.tx = nil
	}
}
