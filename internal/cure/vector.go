package cure

import "wren/internal/hlc"

// Vector operations on M-entry timestamp vectors (one entry per DC).

// copyVec returns a copy of v.
func copyVec(v []hlc.Timestamp) []hlc.Timestamp {
	out := make([]hlc.Timestamp, len(v))
	copy(out, v)
	return out
}

// maxInto raises dst entrywise to at least src. Vectors must have equal
// length; extra entries in either are ignored.
func maxInto(dst, src []hlc.Timestamp) {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// leqAll reports whether a ≤ b entrywise.
func leqAll(a, b []hlc.Timestamp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}
