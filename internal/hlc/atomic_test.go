package hlc

import (
	"sync"
	"testing"
)

func TestAtomicTimestampAdvanceMonotone(t *testing.T) {
	var a AtomicTimestamp
	if a.Load() != 0 {
		t.Fatalf("zero value = %v, want 0", a.Load())
	}
	if !a.Advance(10) {
		t.Fatal("Advance(10) from 0 should report true")
	}
	if a.Advance(5) {
		t.Fatal("Advance(5) below current should report false")
	}
	if got := a.Load(); got != 10 {
		t.Fatalf("Load = %v, want 10", got)
	}
	if a.Advance(10) {
		t.Fatal("Advance(equal) should report false")
	}
}

func TestAtomicTimestampConcurrentAdvance(t *testing.T) {
	var a AtomicTimestamp
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				a.Advance(Timestamp(g*perG + i))
			}
		}(g)
	}
	// A concurrent reader must only ever observe a non-decreasing value.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last Timestamp
		for i := 0; i < 100000; i++ {
			cur := a.Load()
			if cur < last {
				t.Errorf("observed regression: %v after %v", cur, last)
				return
			}
			last = cur
		}
	}()
	wg.Wait()
	<-done
	want := Timestamp((goroutines-1)*perG + perG - 1)
	if got := a.Load(); got != want {
		t.Fatalf("final = %v, want %v", got, want)
	}
}

func TestAtomicVector(t *testing.T) {
	v := NewAtomicVector(3)
	v.Advance(0, 5)
	v.Advance(1, 7)
	v.Advance(1, 3) // no-op
	if got := v.Snapshot(nil); got[0] != 5 || got[1] != 7 || got[2] != 0 {
		t.Fatalf("snapshot = %v", got)
	}
	if !v.Covers([]Timestamp{5, 7, 0}) {
		t.Fatal("Covers should accept an entrywise-≤ vector")
	}
	if v.Covers([]Timestamp{5, 8, 0}) {
		t.Fatal("Covers should reject an exceeding entry")
	}
	// Snapshot reuses a big-enough destination without allocating.
	dst := make([]Timestamp, 3)
	if allocs := testing.AllocsPerRun(100, func() { dst = v.Snapshot(dst) }); allocs != 0 {
		t.Fatalf("Snapshot into sized buffer allocated %.1f/op", allocs)
	}
}

func TestClockLockFreeSemantics(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)

	// Tick is strictly increasing even when physical time stalls.
	prev := c.Tick()
	for i := 0; i < 100; i++ {
		cur := c.Tick()
		if cur <= prev {
			t.Fatalf("Tick not strictly increasing: %v then %v", prev, cur)
		}
		prev = cur
	}

	// Update absorbs a remote timestamp ahead of the physical clock.
	remote := New(5000, 3)
	if got := c.Update(remote); got < remote {
		t.Fatalf("Update = %v, want >= %v", got, remote)
	}
	if got := c.Latest(); got < remote {
		t.Fatalf("Latest = %v, want >= %v", got, remote)
	}

	// TickPast lands strictly above its argument and everything issued.
	after := New(9000, 0)
	pt := c.TickPast(after)
	if pt <= after || pt <= remote {
		t.Fatalf("TickPast = %v, want > %v and > %v", pt, after, remote)
	}
}

func TestClockConcurrentTickUnique(t *testing.T) {
	src := NewManualSource(1000) // stalled physical clock forces CAS contention
	c := NewClock(src)
	const goroutines, perG = 8, 5000
	out := make([][]Timestamp, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts := make([]Timestamp, perG)
			for i := range ts {
				ts[i] = c.Tick()
			}
			out[g] = ts
		}(g)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, goroutines*perG)
	for g := range out {
		prev := Timestamp(0)
		for _, ts := range out[g] {
			if ts <= prev {
				t.Fatalf("goroutine %d saw non-increasing ticks: %v then %v", g, prev, ts)
			}
			prev = ts
			if seen[ts] {
				t.Fatalf("duplicate tick %v", ts)
			}
			seen[ts] = true
		}
	}
}
