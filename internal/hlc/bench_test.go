package hlc

import "testing"

func BenchmarkClockTick(b *testing.B) {
	c := NewClock(SystemSource{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Tick()
	}
}

func BenchmarkClockUpdate(b *testing.B) {
	c := NewClock(SystemSource{})
	remote := New(1_000_000, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Update(remote)
	}
}

func BenchmarkClockTickPast(b *testing.B) {
	c := NewClock(SystemSource{})
	after := New(2_000_000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.TickPast(after)
	}
}

func BenchmarkClockTickParallel(b *testing.B) {
	c := NewClock(SystemSource{})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = c.Tick()
		}
	})
}
