// Package hlc implements Hybrid Logical Clocks (Kulkarni et al., OPODIS'14)
// as used by Wren and H-Cure, together with pluggable, skewable physical
// clock sources used to model NTP-style clock offsets between servers.
//
// A Timestamp packs a physical component (microseconds since a fixed epoch,
// 48 bits) and a logical component (16 bits) into a single uint64, so that
// ordinary integer comparison orders timestamps exactly like the HLC
// happened-before relation.
package hlc

import (
	"fmt"
	"sync"
	"time"
)

const (
	// logicalBits is the width of the logical counter in a Timestamp.
	logicalBits = 16
	// logicalMask extracts the logical counter.
	logicalMask = (1 << logicalBits) - 1
	// MaxPhysical is the largest physical component (in microseconds since
	// Epoch) a Timestamp can carry: 2^48−1, about 8.9 years past Epoch.
	MaxPhysical = int64(1)<<48 - 1
)

// Epoch is the zero point of the physical component of all timestamps.
// Using a recent epoch keeps 48 bits of microseconds good for ~8.9 years.
var Epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// Timestamp is a hybrid logical clock value. The upper 48 bits hold the
// physical time in microseconds since Epoch; the lower 16 bits hold the
// logical counter. The zero Timestamp precedes every other timestamp.
type Timestamp uint64

// New builds a Timestamp from a physical component (microseconds since
// Epoch) and a logical counter. Physical values outside [0, MaxPhysical]
// saturate at the bounds: without the upper clamp a value ≥ 2^48 would
// silently overflow into the logical bits and compare lower than earlier
// timestamps, breaking HLC monotonicity.
func New(physicalMicros int64, logical uint16) Timestamp {
	if physicalMicros < 0 {
		physicalMicros = 0
	}
	if physicalMicros > MaxPhysical {
		physicalMicros = MaxPhysical
	}
	return Timestamp(uint64(physicalMicros)<<logicalBits | uint64(logical))
}

// FromTime converts a wall-clock time to a Timestamp with a zero logical
// component.
func FromTime(t time.Time) Timestamp {
	return New(t.Sub(Epoch).Microseconds(), 0)
}

// Physical returns the physical component in microseconds since Epoch.
func (t Timestamp) Physical() int64 { return int64(t >> logicalBits) }

// Logical returns the logical counter.
func (t Timestamp) Logical() uint16 { return uint16(t & logicalMask) }

// Time converts the physical component back to a wall-clock time.
func (t Timestamp) Time() time.Time {
	return Epoch.Add(time.Duration(t.Physical()) * time.Microsecond)
}

// Before reports whether t precedes other.
func (t Timestamp) Before(other Timestamp) bool { return t < other }

// After reports whether t follows other.
func (t Timestamp) After(other Timestamp) bool { return t > other }

// Next returns the smallest timestamp strictly greater than t.
func (t Timestamp) Next() Timestamp { return t + 1 }

// Prev returns the largest timestamp strictly smaller than t, or zero if t
// is already zero.
func (t Timestamp) Prev() Timestamp {
	if t == 0 {
		return 0
	}
	return t - 1
}

// String renders the timestamp as "physicalµs.logical".
func (t Timestamp) String() string {
	return fmt.Sprintf("%d.%d", t.Physical(), t.Logical())
}

// Max returns the largest of the given timestamps, or zero when called with
// no arguments.
func Max(ts ...Timestamp) Timestamp {
	var m Timestamp
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Min returns the smallest of the given timestamps. It panics when called
// with no arguments, because there is no sensible identity element.
func Min(ts ...Timestamp) Timestamp {
	if len(ts) == 0 {
		panic("hlc: Min of no timestamps")
	}
	m := ts[0]
	for _, t := range ts[1:] {
		if t < m {
			m = t
		}
	}
	return m
}

// Source supplies physical time in microseconds since Epoch. Servers in a
// simulated deployment each get their own Source so that clock skew between
// machines can be modelled explicitly.
type Source interface {
	// NowMicros returns the current physical time in microseconds since
	// Epoch. Implementations must be safe for concurrent use.
	NowMicros() int64
}

// SystemSource reads the machine's real clock.
type SystemSource struct{}

var _ Source = SystemSource{}

// NowMicros implements Source.
func (SystemSource) NowMicros() int64 { return time.Since(Epoch).Microseconds() }

// OffsetSource shifts another Source by a fixed offset, modelling a server
// whose NTP-synchronized clock is ahead of or behind true time.
type OffsetSource struct {
	Base   Source
	Offset time.Duration
}

var _ Source = OffsetSource{}

// NowMicros implements Source.
func (s OffsetSource) NowMicros() int64 {
	return s.Base.NowMicros() + s.Offset.Microseconds()
}

// ManualSource is a hand-advanced clock for deterministic tests.
type ManualSource struct {
	mu  sync.Mutex
	now int64
}

var _ Source = (*ManualSource)(nil)

// NewManualSource returns a ManualSource starting at the given physical
// time in microseconds since Epoch.
func NewManualSource(startMicros int64) *ManualSource {
	return &ManualSource{now: startMicros}
}

// NowMicros implements Source.
func (s *ManualSource) NowMicros() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Advance moves the clock forward by d. Negative durations are ignored:
// physical clocks in this model never run backwards.
func (s *ManualSource) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now += d.Microseconds()
}

// Set moves the clock to an absolute physical time, if it is ahead of the
// current one.
func (s *ManualSource) Set(micros int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if micros > s.now {
		s.now = micros
	}
}

// Clock is a hybrid logical clock. It produces monotonically increasing
// Timestamps that stay close to the underlying physical Source while
// capturing causality from remote timestamps passed to Update.
//
// The clock is lock-free: its state is one CAS-advanced timestamp, so
// H-Cure's read handlers (which absorb snapshot timestamps on every slice
// read) and the prepare path never serialize on a clock mutex.
type Clock struct {
	src    Source
	latest AtomicTimestamp
}

// NewClock returns a Clock backed by the given physical source.
func NewClock(src Source) *Clock {
	return &Clock{src: src}
}

// Now returns the current HLC reading without recording an event: the
// returned value is the max of physical time and the latest issued
// timestamp. It does not advance the logical counter.
func (c *Clock) Now() Timestamp {
	phys := New(c.src.NowMicros(), 0)
	if latest := c.latest.Load(); latest > phys {
		return latest
	}
	return phys
}

// PhysicalNow returns the raw physical reading of the underlying source as
// a Timestamp with a zero logical component.
func (c *Clock) PhysicalNow() Timestamp {
	return New(c.src.NowMicros(), 0)
}

// Tick records a local event and returns a timestamp strictly greater than
// every timestamp previously issued or observed by this clock.
func (c *Clock) Tick() Timestamp {
	phys := New(c.src.NowMicros(), 0)
	for {
		cur := c.latest.Load()
		next := cur.Next()
		if phys > next {
			next = phys
		}
		if c.latest.v.CompareAndSwap(uint64(cur), uint64(next)) {
			return next
		}
	}
}

// Update merges a remote timestamp into the clock (an HLC receive event) and
// returns the clock's resulting value. The result is ≥ the remote timestamp
// and ≥ every previously issued timestamp.
func (c *Clock) Update(remote Timestamp) Timestamp {
	phys := New(c.src.NowMicros(), 0)
	target := Max(remote, phys)
	c.latest.Advance(target)
	// Another publisher may have advanced further; the caller's guarantee
	// (result ≥ remote, ≥ anything previously issued) holds either way.
	return Max(c.latest.Load(), target)
}

// TickPast records an event that must be ordered strictly after the given
// timestamp, implementing the Wren prepare rule
// HLC ← max(Clock, ht+1, HLC+1) (Algorithm 3, line 14).
func (c *Clock) TickPast(after Timestamp) Timestamp {
	phys := New(c.src.NowMicros(), 0)
	for {
		cur := c.latest.Load()
		next := Max(phys, after.Next(), cur.Next())
		if c.latest.v.CompareAndSwap(uint64(cur), uint64(next)) {
			return next
		}
	}
}

// Latest returns the largest timestamp issued or observed so far, without
// consulting the physical source.
func (c *Clock) Latest() Timestamp {
	return c.latest.Load()
}
