package hlc

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTimestampPacking(t *testing.T) {
	tests := []struct {
		name    string
		phys    int64
		logical uint16
	}{
		{name: "zero", phys: 0, logical: 0},
		{name: "logical only", phys: 0, logical: 42},
		{name: "physical only", phys: 123456789, logical: 0},
		{name: "both", phys: 987654321, logical: 65535},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ts := New(tt.phys, tt.logical)
			if got := ts.Physical(); got != tt.phys {
				t.Errorf("Physical() = %d, want %d", got, tt.phys)
			}
			if got := ts.Logical(); got != tt.logical {
				t.Errorf("Logical() = %d, want %d", got, tt.logical)
			}
		})
	}
}

func TestTimestampNegativePhysicalClamped(t *testing.T) {
	ts := New(-5, 7)
	if ts.Physical() != 0 {
		t.Errorf("negative physical should clamp to 0, got %d", ts.Physical())
	}
	if ts.Logical() != 7 {
		t.Errorf("Logical() = %d, want 7", ts.Logical())
	}
}

func TestTimestampOrderingMatchesComponents(t *testing.T) {
	// Integer comparison must order first by physical, then by logical.
	f := func(p1, p2 uint32, l1, l2 uint16) bool {
		a := New(int64(p1), l1)
		b := New(int64(p2), l2)
		want := p1 < p2 || (p1 == p2 && l1 < l2)
		return a.Before(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimestampNextPrev(t *testing.T) {
	ts := New(10, 3)
	if ts.Next() <= ts {
		t.Error("Next() must be strictly greater")
	}
	if ts.Prev() >= ts {
		t.Error("Prev() must be strictly smaller")
	}
	var zero Timestamp
	if zero.Prev() != 0 {
		t.Error("Prev of zero must stay zero")
	}
}

func TestTimestampTimeRoundTrip(t *testing.T) {
	now := time.Date(2024, 6, 15, 12, 30, 45, 123000, time.UTC)
	ts := FromTime(now)
	if got := ts.Time(); !got.Equal(now) {
		t.Errorf("Time() = %v, want %v", got, now)
	}
}

func TestMaxMin(t *testing.T) {
	a, b, c := New(1, 0), New(2, 0), New(3, 0)
	if Max(a, c, b) != c {
		t.Error("Max wrong")
	}
	if Max() != 0 {
		t.Error("Max() of nothing should be zero")
	}
	if Min(c, a, b) != a {
		t.Error("Min wrong")
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min() of no timestamps should panic")
		}
	}()
	Min()
}

func TestStringFormat(t *testing.T) {
	ts := New(1234, 5)
	if got := ts.String(); got != "1234.5" {
		t.Errorf("String() = %q, want %q", got, "1234.5")
	}
}

func TestClockTickMonotonic(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)
	prev := c.Tick()
	for i := 0; i < 100; i++ {
		cur := c.Tick()
		if cur <= prev {
			t.Fatalf("Tick not strictly monotonic: %v then %v", prev, cur)
		}
		prev = cur
	}
}

func TestClockTickUsesLogicalWhenPhysicalStalled(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)
	first := c.Tick()
	second := c.Tick()
	if second.Physical() != first.Physical() {
		t.Errorf("physical advanced unexpectedly: %v -> %v", first, second)
	}
	if second.Logical() != first.Logical()+1 {
		t.Errorf("logical should increment: %v -> %v", first, second)
	}
}

func TestClockTickFollowsPhysical(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)
	c.Tick()
	src.Advance(50 * time.Millisecond)
	ts := c.Tick()
	if ts.Physical() != 1000+50*1000 {
		t.Errorf("Tick should track physical clock, got phys=%d", ts.Physical())
	}
	if ts.Logical() != 0 {
		t.Errorf("logical should reset when physical advances, got %d", ts.Logical())
	}
}

func TestClockUpdateCapturesRemote(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)
	remote := New(999999, 7)
	got := c.Update(remote)
	if got < remote {
		t.Errorf("Update result %v must be >= remote %v", got, remote)
	}
	if next := c.Tick(); next <= remote {
		t.Errorf("Tick after Update must exceed remote: %v <= %v", next, remote)
	}
}

func TestClockTickPast(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)
	after := New(5000, 3)
	got := c.TickPast(after)
	if got <= after {
		t.Errorf("TickPast(%v) = %v, must be strictly greater", after, got)
	}
	// A second TickPast with an older bound must still advance.
	got2 := c.TickPast(New(10, 0))
	if got2 <= got {
		t.Errorf("TickPast must be strictly monotonic: %v then %v", got, got2)
	}
}

func TestClockNowDoesNotAdvanceState(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)
	t1 := c.Now()
	t2 := c.Now()
	if t1 != t2 {
		t.Errorf("Now must be stable without events: %v vs %v", t1, t2)
	}
}

func TestClockConcurrentTicksUnique(t *testing.T) {
	src := NewManualSource(1000)
	c := NewClock(src)
	const (
		goroutines = 8
		perG       = 500
	)
	var (
		mu   sync.Mutex
		seen = make(map[Timestamp]bool, goroutines*perG)
		wg   sync.WaitGroup
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Timestamp, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, c.Tick())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ts := range local {
				if seen[ts] {
					t.Errorf("duplicate timestamp issued: %v", ts)
				}
				seen[ts] = true
			}
		}()
	}
	wg.Wait()
}

func TestOffsetSource(t *testing.T) {
	base := NewManualSource(10_000)
	ahead := OffsetSource{Base: base, Offset: 2 * time.Millisecond}
	behind := OffsetSource{Base: base, Offset: -2 * time.Millisecond}
	if got := ahead.NowMicros(); got != 12_000 {
		t.Errorf("ahead.NowMicros() = %d, want 12000", got)
	}
	if got := behind.NowMicros(); got != 8_000 {
		t.Errorf("behind.NowMicros() = %d, want 8000", got)
	}
}

func TestManualSourceNeverGoesBackwards(t *testing.T) {
	src := NewManualSource(100)
	src.Advance(-time.Second)
	if src.NowMicros() != 100 {
		t.Error("negative Advance must be ignored")
	}
	src.Set(50)
	if src.NowMicros() != 100 {
		t.Error("Set to older time must be ignored")
	}
	src.Set(200)
	if src.NowMicros() != 200 {
		t.Error("Set to newer time must apply")
	}
}

func TestClockUpdatePropertyMonotone(t *testing.T) {
	// Property: any interleaving of Update/Tick yields strictly increasing
	// Tick results, and Update(r) >= r always.
	f := func(remotes []uint32) bool {
		src := NewManualSource(1)
		c := NewClock(src)
		prev := c.Tick()
		for _, r := range remotes {
			remote := New(int64(r%1_000_000), uint16(r))
			u := c.Update(remote)
			if u < remote {
				return false
			}
			next := c.Tick()
			if next <= prev {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSystemSourceAdvances(t *testing.T) {
	src := SystemSource{}
	a := src.NowMicros()
	time.Sleep(2 * time.Millisecond)
	b := src.NowMicros()
	if b <= a {
		t.Errorf("system clock did not advance: %d -> %d", a, b)
	}
}
