package hlc

import (
	"testing"
	"time"
)

// The physical field is 48 bits wide. Before the saturation guard, a
// physical value of exactly 2^48 shifted into oblivion and produced a
// timestamp SMALLER than one built from 2^48−1 — time appearing to run
// backwards once the epoch budget is exhausted (late 2028 for the 2020
// Epoch). New must saturate instead.
func TestNewSaturatesAtPhysicalBound(t *testing.T) {
	atMax := New(MaxPhysical, 0)
	if atMax.Physical() != MaxPhysical {
		t.Fatalf("Physical() = %d, want %d", atMax.Physical(), MaxPhysical)
	}

	cases := []int64{
		MaxPhysical + 1, // 2^48: previously overflowed to logical bits
		MaxPhysical + 12345,
		int64(1) << 50,
		int64(1)<<62 + 7,
	}
	for _, phys := range cases {
		got := New(phys, 3)
		if got.Physical() != MaxPhysical {
			t.Errorf("New(%d, 3).Physical() = %d, want saturation at %d", phys, got.Physical(), MaxPhysical)
		}
		if got.Logical() != 3 {
			t.Errorf("New(%d, 3).Logical() = %d, want 3 (logical bits must stay intact)", phys, got.Logical())
		}
		if got < atMax {
			t.Errorf("New(%d, 3) = %v sorts before New(MaxPhysical, 0) = %v: time ran backwards", phys, got, atMax)
		}
	}

	// Monotonicity across the boundary: a later physical reading must never
	// produce a smaller timestamp than an earlier one.
	before := New(MaxPhysical-1, 0xffff)
	after := New(MaxPhysical+1, 0)
	if after < before {
		t.Errorf("timestamp went backwards across the 48-bit boundary: %v < %v", after, before)
	}
}

func TestFromTimeSaturatesFarFuture(t *testing.T) {
	// ~292 years past Epoch: far beyond the 48-bit budget.
	farFuture := Epoch.Add(time.Duration(1<<63 - 1))
	ts := FromTime(farFuture)
	if ts.Physical() != MaxPhysical {
		t.Errorf("FromTime(far future).Physical() = %d, want %d", ts.Physical(), MaxPhysical)
	}
	// And the ordinary present still round-trips exactly.
	now := Epoch.Add(42 * time.Hour)
	if got := FromTime(now).Time(); !got.Equal(now) {
		t.Errorf("FromTime round trip = %v, want %v", got, now)
	}
}
