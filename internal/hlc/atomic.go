package hlc

import "sync/atomic"

// AtomicTimestamp is a Timestamp updated by monotonic max-merge without a
// lock. Servers publish their stable times (LST, RST) through it so the
// read path — which consults those times on every transactional read —
// never serializes on a mutex shared with the commit/apply/gossip paths.
//
// The zero value is ready to use and holds the zero Timestamp.
type AtomicTimestamp struct {
	v atomic.Uint64
}

// Load returns the current value.
func (a *AtomicTimestamp) Load() Timestamp { return Timestamp(a.v.Load()) }

// Store unconditionally sets the value. Only for initialization; concurrent
// publishers must use Advance to preserve monotonicity.
func (a *AtomicTimestamp) Store(t Timestamp) { a.v.Store(uint64(t)) }

// Advance merges t into the value by CAS max-merge: the stored timestamp
// only ever moves forward, whatever the interleaving of concurrent
// publishers. It reports whether t advanced the value.
func (a *AtomicTimestamp) Advance(t Timestamp) bool {
	for {
		cur := a.v.Load()
		if uint64(t) <= cur {
			return false
		}
		if a.v.CompareAndSwap(cur, uint64(t)) {
			return true
		}
	}
}

// AtomicVector is a fixed-length vector of independently atomic timestamps
// (one entry per DC). Cure-style servers publish their version vector
// through it so installed-snapshot checks on the read path are lock-free.
// Entries are individually monotone; a reader loading the whole vector may
// observe entries from slightly different instants, which is safe exactly
// because each entry only moves forward.
type AtomicVector []AtomicTimestamp

// NewAtomicVector returns a zeroed vector of length n.
func NewAtomicVector(n int) AtomicVector { return make(AtomicVector, n) }

// Load returns entry i.
func (v AtomicVector) Load(i int) Timestamp { return v[i].Load() }

// Advance max-merges t into entry i.
func (v AtomicVector) Advance(i int, t Timestamp) { v[i].Advance(t) }

// Snapshot copies the vector into dst (allocating when dst is too short)
// and returns it.
func (v AtomicVector) Snapshot(dst []Timestamp) []Timestamp {
	if cap(dst) < len(v) {
		dst = make([]Timestamp, len(v))
	}
	dst = dst[:len(v)]
	for i := range v {
		dst[i] = v[i].Load()
	}
	return dst
}

// Covers reports whether every entry of want is ≤ the corresponding
// vector entry — the lock-free "snapshot installed" check.
func (v AtomicVector) Covers(want []Timestamp) bool {
	for i, t := range want {
		if t > v[i].Load() {
			return false
		}
	}
	return true
}
