// Package txlog is the durable transaction-lifecycle log of a partition
// server: an append-only commit-record log that makes the ACKNOWLEDGED
// transaction — not just the applied one — the system's durability unit,
// and persists the replication progress toward every peer data center.
//
// The protocol servers (internal/core, internal/cure) write three kinds of
// lifecycle records before the corresponding acknowledgement leaves the
// server, under the same fsync policies as the storage engines:
//
//   - a PREPARE record (proposed timestamp, snapshot metadata, the write
//     set) before a cohort answers PrepareResp — so the writes of any
//     transaction the coordinator could go on to commit are durable at
//     every cohort;
//   - a COMMIT record (final commit timestamp) when a cohort learns the
//     2PC outcome, before it acknowledges the coordinator;
//   - a COORD-COMMIT record (commit timestamp + cohort partitions) at the
//     coordinator before the client is acknowledged — the client-visible
//     durability point. After a crash the coordinator re-drives CommitTx
//     from these records, so a cohort that crashed between PrepareResp and
//     CommitTx still learns the outcome.
//
// The log also persists a per-DC replicated-up-to CURSOR, advanced as
// Replicate batches are acknowledged by the peer replicas; after a restart
// the server re-sends every committed transaction above a peer's cursor,
// closing the gap where transactions applied during shutdown (or whose
// Replicate message died with a draining peer) persisted locally but never
// reached the remote DCs.
//
// With fsync=always the guarantee is exact: a kill at any point after the
// client ack loses nothing. With fsync=interval the exposure is bounded by
// the sync interval, exactly like the storage engines; fsync=never leaves
// flushing to the OS page cache.
//
// On disk the log is one append-only file (commit.log) of records framed
// by the exact same rules as every other log in the data directory
// (internal/store/logrec: length prefix + CRC32, torn tail truncated on
// recovery), living in a txlog/ subdirectory of the engine's data dir so
// it is covered by the engine's directory lock and engine-type marker.
// Group commit batches concurrent fsyncs: each syncer forces everything
// appended so far, and later syncers whose records are already covered
// return without touching the disk. Compaction rewrites the file keeping
// only records still needed — prepares without an outcome, committed
// transactions not yet both applied and replicated everywhere, unresolved
// coordinator decisions, and the cursors.
package txlog

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"wren/internal/hlc"
	"wren/internal/store/fsutil"
	"wren/internal/store/logrec"
	"wren/internal/store/shardlog"
	"wren/internal/store/wal"
	"wren/internal/wire"
)

// logName is the commit-record log file inside Options.Dir.
const logName = "commit.log"

// DefaultCompactThreshold is the number of appended records after which the
// log is rewritten from retained state.
const DefaultCompactThreshold = 4096

// Record kinds on disk. Values are part of the on-disk format; do not
// reorder.
const (
	recPrepare     = 1
	recCommit      = 2
	recCoordCommit = 3
	recCursor      = 4
	recAbort       = 5
	recResolved    = 6
	// recSeq persists the highest transaction sequence number the log has
	// seen, so a restarted server can seed its id generator ABOVE every
	// id of its previous lives. Without it, sequence numbers restart at 1
	// each life while the txlog keeps old ids alive across lives (resync
	// dedupe, re-driven outcomes), and a colliding fresh id could match a
	// previous life's transaction. Written on compaction, which is what
	// drops the old records the maximum would otherwise be rescanned from.
	recSeq = 7
)

// seqMask extracts the 40-bit sequence component of a transaction id
// (DC in the top byte, partition in the next two — see Server.newTxID).
const seqMask = (uint64(1) << 40) - 1

// Options configures a transaction log.
type Options struct {
	// Dir is the directory holding the log (created if missing). The
	// servers place it INSIDE the engine's data directory, so the engine's
	// exclusive lock and engine-type marker cover it.
	Dir string
	// NumDCs sizes the replication cursor (one entry per DC).
	NumDCs int
	// SelfDC is this server's DC; its own cursor entry is never a
	// retention constraint.
	SelfDC int
	// Fsync is the group-commit policy shared with the storage engines:
	// wal.FsyncAlways, wal.FsyncInterval (the "" default) or
	// wal.FsyncNever.
	Fsync string
	// FsyncInterval overrides the sync timer period for the interval
	// policy (0 selects wal.DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CompactThreshold overrides how many appended records trigger a
	// rewrite (0 selects DefaultCompactThreshold; negative disables
	// compaction).
	CompactThreshold int
	// DisableDecisionBatch makes LogCoordCommitSync fall back to one
	// append+fsync per coordinator decision instead of batching staged
	// records across concurrent committers. Only meaningful under
	// fsync=always; exists for the wren-bench -txlog before/after rows.
	DisableDecisionBatch bool
}

// PreparedTx is a logged prepare: the cohort-local write set of a
// transaction whose 2PC outcome is not yet known.
type PreparedTx struct {
	TxID   uint64
	PT     hlc.Timestamp   // proposed commit timestamp
	RST    hlc.Timestamp   // Wren: transaction's remote snapshot time
	SV     []hlc.Timestamp // Cure: snapshot vector
	Writes []wire.KV
}

// CommittedTx is a logged commit: a prepare whose final timestamp arrived.
type CommittedTx struct {
	TxID   uint64
	CT     hlc.Timestamp
	RST    hlc.Timestamp
	SV     []hlc.Timestamp
	Writes []wire.KV

	// applied is set by MarkApplied once the transaction's writes have
	// reached the storage engine. Per entry, not a watermark: a re-driven
	// recovered commit lands with a ct BELOW timestamps already marked
	// applied (recovered prepares deliberately do not hold the apply
	// bound back), and a watermark comparison would let compaction
	// release its record before the engine ever saw the writes.
	applied bool
}

// CoordTx is a coordinator-side commit decision: the record that makes the
// client acknowledgement durable. Cohorts lists the partitions the
// decision must reach; the entry is retained until every cohort has
// acknowledged a durable COMMIT record of its own.
type CoordTx struct {
	TxID    uint64
	CT      hlc.Timestamp
	Cohorts []uint16

	pending map[uint16]struct{}
	created time.Time // when the decision was logged (or recovered)
}

// Log is the durable transaction-lifecycle log of one partition server.
// All methods are safe for concurrent use.
type Log struct {
	dir    string
	fsync  string
	compat int
	numDCs int
	selfDC int

	// sh.Mu guards both the file append state and the in-memory lifecycle
	// state below — a single-file log needs no striping, and one lock
	// keeps a record append atomic with its state transition.
	sh shardlog.Shard
	// stopped (under sh.Mu) quiesces appends after Close: the network
	// delivers messages on goroutines the server shutdown does not join,
	// so a straggler acknowledgement arriving after Close must become a
	// no-op, not a recorded durability failure on a closed file.
	stopped   bool
	prepared  map[uint64]*PreparedTx
	committed map[uint64]*CommittedTx
	coord     map[uint64]*CoordTx
	cursor    []hlc.Timestamp
	// pins[dc], while non-zero, caps cursor advancement at the resync
	// high-water mark for that DC: an acknowledgement for NEWER traffic
	// must not imply the re-sent tail landed (the tail may still be in
	// flight on the FIFO link behind it), and a cursor past unconfirmed
	// records would release them from the log — and, persisted, hide them
	// from the next life's UnreplicatedTail.
	pins    []hlc.Timestamp
	appends int    // records since the last compaction
	maxSeq  uint64 // reserved/observed tx-sequence watermark (persisted by recSeq)
	// gen identifies the current log file; Compact bumps it when it swaps
	// the handle, and synced is only advanced for the generation a sync
	// actually ran against — without the guard, a Sync that raced a
	// compaction could stamp the OLD file's (larger) size onto the NEW
	// file's watermark and permanently suppress every later fsync.
	gen    uint64
	synced int64 // bytes of the current generation known stable (under sh.Mu)

	// syncMu serializes the group-commit fsyncs themselves; state they
	// read and write lives under sh.Mu. Lock order: syncMu then sh.Mu.
	syncMu sync.Mutex

	// decBatch (under sh.Mu) stages encoded coordinator decision records
	// for LogCoordCommitSync's batched group commit under fsync=always:
	// records accumulate here while a flush holds syncMu; the next leader
	// writes them all with one write syscall and one fsync. Compact clears
	// it — its full rewrite persists the coord map wholesale, staged
	// records included. noDecBatch pins the unbatched fallback.
	decBatch   []byte
	noDecBatch bool

	errMu  sync.Mutex
	err    error
	errSeq uint64 // bumped on every recorded failure; Repair's staleness check
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open creates or recovers a transaction log in opts.Dir: existing records
// are replayed into the in-memory lifecycle state (truncating a torn
// tail), pairing prepares with their outcomes.
func Open(opts Options) (*Log, error) {
	policy, err := wal.ParseFsync(opts.Fsync)
	if err != nil {
		return nil, err
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = wal.DefaultFsyncInterval
	}
	if opts.NumDCs <= 0 {
		return nil, fmt.Errorf("txlog: NumDCs must be positive")
	}
	compact := opts.CompactThreshold
	if compact == 0 {
		compact = DefaultCompactThreshold
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("txlog: create dir: %w", err)
	}
	l := &Log{
		dir:        opts.Dir,
		fsync:      policy,
		compat:     compact,
		numDCs:     opts.NumDCs,
		selfDC:     opts.SelfDC,
		prepared:   make(map[uint64]*PreparedTx),
		committed:  make(map[uint64]*CommittedTx),
		coord:      make(map[uint64]*CoordTx),
		cursor:     make([]hlc.Timestamp, opts.NumDCs),
		pins:       make([]hlc.Timestamp, opts.NumDCs),
		noDecBatch: opts.DisableDecisionBatch,
		stop:       make(chan struct{}),
	}
	l.sh.Enc = wire.NewEncoder()
	if err := l.recover(); err != nil {
		return nil, err
	}
	// One directory sync covers the log file creation (or truncation), so
	// a fresh txlog directory survives power loss as a unit.
	if err := fsutil.SyncDir(opts.Dir); err != nil {
		_ = l.sh.F.Close()
		return nil, fmt.Errorf("txlog: sync dir: %w", err)
	}
	if policy == wal.FsyncInterval {
		l.wg.Add(1)
		go l.fsyncLoop(opts.FsyncInterval)
	}
	return l, nil
}

// path names the log file.
func (l *Log) path() string { return filepath.Join(l.dir, logName) }

// recover replays the log into the lifecycle state and leaves the file
// open for appending, truncating a torn tail.
func (l *Log) recover() error {
	path := l.path()
	buf, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("txlog: read %s: %w", path, err)
	}
	good := logrec.ScanFrames(buf, l.applyRecord)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("txlog: open %s: %w", path, err)
	}
	if good < len(buf) {
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return fmt.Errorf("txlog: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("txlog: seek %s: %w", path, err)
	}
	l.sh.F = f
	l.sh.Size = int64(good)
	l.synced = int64(good) // everything read back is on disk by definition
	return nil
}

// applyRecord replays one scanned payload into the lifecycle state. A
// non-nil error marks the record torn, ending the scan there.
func (l *Log) applyRecord(payload []byte) error {
	d := wire.NewDecoder(payload)
	kind := d.Byte()
	switch kind {
	case recPrepare:
		p := &PreparedTx{TxID: d.Uvarint(), PT: d.Timestamp(), RST: d.Timestamp(), SV: d.Timestamps()}
		p.Writes = decodeWrites(d)
		if err := d.Err(); err != nil {
			return err
		}
		l.prepared[p.TxID] = p
		l.noteSeq(p.TxID)
	case recCommit:
		txID, ct := d.Uvarint(), d.Timestamp()
		if err := d.Err(); err != nil {
			return err
		}
		if p, ok := l.prepared[txID]; ok {
			delete(l.prepared, txID)
			l.committed[txID] = &CommittedTx{TxID: txID, CT: ct, RST: p.RST, SV: p.SV, Writes: p.Writes}
		}
		l.noteSeq(txID)
	case recCoordCommit:
		c := &CoordTx{TxID: d.Uvarint(), CT: d.Timestamp(), created: time.Now()}
		n := d.Uvarint()
		if n > 1<<16 {
			return fmt.Errorf("txlog: cohort count %d out of range", n)
		}
		for i := uint64(0); i < n; i++ {
			c.Cohorts = append(c.Cohorts, uint16(d.Uvarint()))
		}
		if err := d.Err(); err != nil {
			return err
		}
		c.pending = make(map[uint16]struct{}, len(c.Cohorts))
		for _, p := range c.Cohorts {
			c.pending[p] = struct{}{}
		}
		l.coord[c.TxID] = c
		l.noteSeq(c.TxID)
	case recCursor:
		dc, upTo := int(d.Byte()), d.Timestamp()
		if err := d.Err(); err != nil {
			return err
		}
		if dc >= 0 && dc < l.numDCs && upTo > l.cursor[dc] {
			l.cursor[dc] = upTo
		}
	case recAbort:
		txID := d.Uvarint()
		if err := d.Err(); err != nil {
			return err
		}
		delete(l.prepared, txID)
	case recResolved:
		txID := d.Uvarint()
		if err := d.Err(); err != nil {
			return err
		}
		delete(l.coord, txID)
	case recSeq:
		seq := d.Uvarint()
		if err := d.Err(); err != nil {
			return err
		}
		if seq > l.maxSeq {
			l.maxSeq = seq
		}
	default:
		return fmt.Errorf("txlog: unknown record kind %d", kind)
	}
	return nil
}

// noteSeq folds a transaction id's sequence component into the persisted
// maximum (see recSeq).
func (l *Log) noteSeq(txID uint64) {
	if seq := txID & seqMask; seq > l.maxSeq {
		l.maxSeq = seq
	}
}

func encodeWrites(e *wire.Encoder, writes []wire.KV) {
	e.Uvarint(uint64(len(writes)))
	for i := range writes {
		e.String(writes[i].Key)
		e.BytesField(writes[i].Value)
		e.Bool(writes[i].Tombstone)
	}
}

func decodeWrites(d *wire.Decoder) []wire.KV {
	n := d.Uvarint()
	if d.Err() != nil || n == 0 || n > 1<<22 {
		return nil
	}
	out := make([]wire.KV, n)
	for i := range out {
		out[i].Key = d.String()
		out[i].Value = append([]byte(nil), d.BytesField()...)
		out[i].Tombstone = d.Bool()
	}
	return out
}

// recordErr remembers the first append/sync failure, printing it to stderr
// at occurrence (matching the storage engines' discipline): degraded
// commit-record durability must not wait for Close to surface.
func (l *Log) recordErr(err error) {
	if err == nil {
		return
	}
	l.errMu.Lock()
	l.errSeq++
	first := l.err == nil
	if first {
		l.err = err
	}
	l.errMu.Unlock()
	if first {
		fmt.Fprintf(os.Stderr, "txlog: durability degraded in %s: %v\n", l.dir, err)
	}
}

func (l *Log) onErr(err error) { l.recordErr(fmt.Errorf("txlog: %w", err)) }

// Healthy reports the first append, sync or compaction failure the log has
// recorded, or nil while the write path is fully intact. Servers consult
// it (together with the engine's) to stop admitting writes when the
// durability the acknowledgement promises can no longer be delivered.
func (l *Log) Healthy() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

// InjectFailure records err as a write-path failure, flipping Healthy —
// and with it the owning server into read-only admission. Test-only: it
// lets admission tests exercise the degraded path without arranging a
// real I/O error on the log file.
func (l *Log) InjectFailure(err error) { l.recordErr(err) }

// Repair attempts to exit the degraded state: a full compaction rewrites
// the log from retained in-memory state onto a fresh fsynced file (the
// rewrite clears a frozen shard and leaves nothing volatile), then a probe
// append plus sync proves the new handle's write path end to end. Only if
// no NEW failure was recorded while the repair ran is the sticky error
// cleared — clearing it first would let an acknowledgement ride on a log
// that is still broken. Reports whether the log is healthy afterwards.
//
// The retained state is exactly what recovery would rebuild, so nothing
// acknowledged is lost by the rewrite; what was lost to the original
// failure stayed unacknowledged (the server refuses writes while
// degraded), which is what makes probation re-admission sound.
func (l *Log) Repair() bool {
	l.errMu.Lock()
	if l.closed || l.err == nil {
		healthy := l.err == nil
		l.errMu.Unlock()
		return healthy
	}
	seq := l.errSeq
	l.errMu.Unlock()

	l.Compact()

	// Probe append: re-record the sequence watermark (idempotent — recovery
	// max-merges it) through the repaired handle.
	l.sh.Mu.Lock()
	if l.stopped {
		l.sh.Mu.Unlock()
		return false
	}
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recSeq)
		e.Uvarint(l.maxSeq)
	})
	l.sh.Mu.Unlock()
	l.Sync()

	l.errMu.Lock()
	defer l.errMu.Unlock()
	if l.errSeq != seq {
		return false // the repair itself (or concurrent traffic) failed again
	}
	l.err = nil
	fmt.Fprintf(os.Stderr, "txlog: durability restored in %s\n", l.dir)
	return true
}

// appendLocked frames one record into the shard encoder and appends it.
// Caller holds sh.Mu. After Close the append quietly drops: straggler
// messages delivered during shutdown are not durability failures.
func (l *Log) appendLocked(encode func(*wire.Encoder)) {
	if l.stopped {
		return
	}
	l.sh.Enc.Reset()
	logrec.AppendFrame(l.sh.Enc, encode)
	l.sh.AppendLocked(l.onErr)
	l.appends++
}

// SyncOnAppend reports whether the fsync policy requires a Sync before a
// record-backed acknowledgement may leave the server (fsync=always).
func (l *Log) SyncOnAppend() bool { return l.fsync == wal.FsyncAlways }

// Sync forces every record appended so far to stable storage. Concurrent
// callers group-commit: the first syncer covers everything appended at
// that point, and callers whose records are already covered return
// without another fsync. Callers needing a durability STATEMENT (an
// acknowledgement) must consult Healthy afterwards — a failed fsync is
// recorded, not returned.
func (l *Log) Sync() {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.sh.Mu.Lock()
	size, f, gen, synced := l.sh.Size, l.sh.F, l.gen, l.synced
	l.sh.Mu.Unlock()
	if f == nil || synced >= size {
		return
	}
	if err := f.Sync(); err != nil {
		// A handle closed by a concurrent compaction means the rewrite
		// already made these records stable through the replacement file;
		// the generation guard below keeps the stale size from being
		// stamped onto the new file's watermark either way.
		if !errors.Is(err, os.ErrClosed) {
			l.recordErr(fmt.Errorf("txlog: sync: %w", err))
		}
		return
	}
	l.sh.Mu.Lock()
	if l.gen == gen && size > l.synced {
		l.synced = size
	}
	l.sh.Mu.Unlock()
}

// LogPrepare records a cohort-side prepare. Under fsync=always the caller
// must Sync before sending PrepareResp.
func (l *Log) LogPrepare(p *PreparedTx) {
	l.sh.Mu.Lock()
	l.prepared[p.TxID] = p
	l.noteSeq(p.TxID)
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recPrepare)
		e.Uvarint(p.TxID)
		e.Timestamp(p.PT)
		e.Timestamp(p.RST)
		e.Timestamps(p.SV)
		encodeWrites(e, p.Writes)
	})
	compact := l.compactNeededLocked()
	l.sh.Mu.Unlock()
	if compact {
		l.Compact()
	}
}

// LogCommit records the 2PC outcome for a prepared transaction, moving it
// to the committed set. It reports whether the transaction was prepared
// here and not yet committed — false means the record is a duplicate (a
// re-driven CommitTx after recovery) and nothing was appended. Under
// fsync=always the caller must Sync before acknowledging the coordinator.
func (l *Log) LogCommit(txID uint64, ct hlc.Timestamp) bool {
	l.sh.Mu.Lock()
	p, ok := l.prepared[txID]
	if !ok {
		l.sh.Mu.Unlock()
		return false
	}
	delete(l.prepared, txID)
	l.committed[txID] = &CommittedTx{TxID: txID, CT: ct, RST: p.RST, SV: p.SV, Writes: p.Writes}
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recCommit)
		e.Uvarint(txID)
		e.Timestamp(ct)
	})
	l.sh.Mu.Unlock()
	return true
}

// LogCoordCommit records a coordinator commit decision — the record whose
// durability backs the client acknowledgement. The caller must Sync before
// replying to the client (fsync=always), and should send CommitTx to the
// cohorts only after this call so a cohort's CommitAck can never arrive
// before the decision is registered.
func (l *Log) LogCoordCommit(txID uint64, ct hlc.Timestamp, cohorts []uint16) {
	c := &CoordTx{TxID: txID, CT: ct, Cohorts: append([]uint16(nil), cohorts...),
		pending: make(map[uint16]struct{}, len(cohorts)), created: time.Now()}
	for _, p := range c.Cohorts {
		c.pending[p] = struct{}{}
	}
	l.sh.Mu.Lock()
	l.coord[txID] = c
	l.noteSeq(txID)
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recCoordCommit)
		e.Uvarint(txID)
		e.Timestamp(ct)
		e.Uvarint(uint64(len(c.Cohorts)))
		for _, p := range c.Cohorts {
			e.Uvarint(uint64(p))
		}
	})
	l.sh.Mu.Unlock()
}

// LogCoordCommitSync records a coordinator commit decision and — under
// fsync=always — makes it stable before returning, batching both the
// append and the fsync across the concurrent commit collections of one
// tick: each caller stages its encoded record under sh.Mu, then the first
// to take syncMu (the leader) writes every staged record with ONE write
// syscall and ONE fsync; followers, queued on syncMu behind the leader,
// find the batch already flushed and return without touching the file.
// Decision records are independent of each other and of interleaved
// direct appends (each is self-framed and keyed by transaction id), so
// the file-order reshuffle staging introduces is recovery-safe.
//
// Under the other fsync policies this is exactly LogCoordCommit: the
// interval loop or Close makes the record stable later. Callers needing a
// durability statement consult Healthy afterwards, as with Sync.
func (l *Log) LogCoordCommitSync(txID uint64, ct hlc.Timestamp, cohorts []uint16) {
	if !l.SyncOnAppend() {
		l.LogCoordCommit(txID, ct, cohorts)
		return
	}
	if l.noDecBatch {
		l.LogCoordCommit(txID, ct, cohorts)
		l.Sync()
		return
	}

	c := &CoordTx{TxID: txID, CT: ct, Cohorts: append([]uint16(nil), cohorts...),
		pending: make(map[uint16]struct{}, len(cohorts)), created: time.Now()}
	for _, p := range c.Cohorts {
		c.pending[p] = struct{}{}
	}
	l.sh.Mu.Lock()
	if l.stopped {
		l.sh.Mu.Unlock()
		return
	}
	l.coord[txID] = c
	l.noteSeq(txID)
	l.sh.Enc.Reset()
	logrec.AppendFrame(l.sh.Enc, func(e *wire.Encoder) {
		e.Byte(recCoordCommit)
		e.Uvarint(txID)
		e.Timestamp(ct)
		e.Uvarint(uint64(len(c.Cohorts)))
		for _, p := range c.Cohorts {
			e.Uvarint(uint64(p))
		}
	})
	l.decBatch = append(l.decBatch, l.sh.Enc.Bytes()...)
	l.appends++
	l.sh.Mu.Unlock()

	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.sh.Mu.Lock()
	if len(l.decBatch) == 0 {
		// Already stable: either a leader flushed the batch holding this
		// record before we got syncMu, or a compaction's fsynced rewrite
		// persisted the coord map (staged records included).
		l.sh.Mu.Unlock()
		return
	}
	buf := l.decBatch
	l.decBatch = nil
	if l.sh.Failed {
		// Frozen shard: memory stays authoritative, the recorded failure
		// keeps the server in read-only admission (as with appendLocked).
		l.sh.Mu.Unlock()
		return
	}
	f := l.sh.F
	if _, err := f.Write(buf); err != nil {
		// Same torn-tail discipline as shardlog.AppendLocked: roll the
		// partial batch back so recovery never stops short of intact
		// records appended later.
		l.onErr(fmt.Errorf("append: %w", err))
		if terr := f.Truncate(l.sh.Size); terr != nil {
			l.sh.Failed = true
			l.onErr(fmt.Errorf("append rollback failed, freezing shard log: %w", terr))
		} else if _, terr = f.Seek(l.sh.Size, 0); terr != nil {
			l.sh.Failed = true
			l.onErr(fmt.Errorf("append rollback failed, freezing shard log: %w", terr))
		}
		l.sh.Mu.Unlock()
		return
	}
	l.sh.Size += int64(len(buf))
	size, gen := l.sh.Size, l.gen
	l.sh.Mu.Unlock()

	if err := f.Sync(); err != nil {
		if !errors.Is(err, os.ErrClosed) {
			l.recordErr(fmt.Errorf("txlog: sync: %w", err))
		}
		return
	}
	l.sh.Mu.Lock()
	if l.gen == gen && size > l.synced {
		l.synced = size
	}
	l.sh.Mu.Unlock()
}

// NextSeqFloor returns the reserved/observed transaction-sequence
// watermark. A restarted server seeds its id generator above it, so fresh
// transaction ids can never collide with a previous life's — ids the log
// keeps alive across lives (resync dedupe, re-driven outcomes, a remote
// cohort's retained prepare) would otherwise match unrelated new
// transactions.
func (l *Log) NextSeqFloor() uint64 {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	return l.maxSeq
}

// ReserveSeqs durably raises the sequence watermark to at least upTo,
// BEFORE the server hands out ids below it: an id can reach another
// server's durable log (a cohort's prepare) without ever producing a
// record here — the coordinator may crash right after StartTx — so the
// watermark must cover allocations, not just logged lifecycles. The
// record is fsynced under the always policy; under interval/never the
// reuse window after a crash is the same bounded one every other
// durability statement has.
func (l *Log) ReserveSeqs(upTo uint64) {
	l.sh.Mu.Lock()
	if upTo <= l.maxSeq {
		l.sh.Mu.Unlock()
		return
	}
	l.maxSeq = upTo
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recSeq)
		e.Uvarint(upTo)
	})
	l.sh.Mu.Unlock()
	if l.SyncOnAppend() {
		l.Sync()
	}
}

// CoordDecision reports the logged-but-unresolved commit decision for a
// transaction this server coordinated, if any. Cohorts use it through the
// TxStatus wire probe to terminate recovered prepares safely: a decision
// can only be made in the life that ran the 2PC, so "no decision
// retained" from the coordinator means the transaction never was — or no
// longer needs to be — committed here. (A RESOLVED decision implies every
// cohort already holds the outcome durably, so no cohort with a dangling
// prepare can be asking about it.)
func (l *Log) CoordDecision(txID uint64) (hlc.Timestamp, bool) {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	c, ok := l.coord[txID]
	if !ok {
		return 0, false
	}
	return c.CT, true
}

// CoordAbort withdraws a logged commit decision whose client
// acknowledgement was never sent (the decision's own fsync failed and the
// 2PC was aborted): a RESOLVED record keeps a later recovery from
// re-driving a commit the client was told failed.
func (l *Log) CoordAbort(txID uint64) {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	if _, ok := l.coord[txID]; !ok {
		return
	}
	delete(l.coord, txID)
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recResolved)
		e.Uvarint(txID)
	})
}

// RedrivePending returns the unresolved commit decisions older than age,
// each with Cohorts narrowed to the partitions that have not yet
// acknowledged a durable outcome. The server periodically re-sends their
// CommitTx: a cohort that crashed between PrepareResp and CommitTx — or
// whose acknowledgement was lost — eventually receives the outcome even
// when this coordinator itself never restarts.
func (l *Log) RedrivePending(age time.Duration) []*CoordTx {
	cutoff := time.Now().Add(-age)
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	var out []*CoordTx
	for _, c := range l.coord {
		if c.created.After(cutoff) || len(c.pending) == 0 {
			continue
		}
		snap := &CoordTx{TxID: c.TxID, CT: c.CT, Cohorts: make([]uint16, 0, len(c.pending))}
		for p := range c.pending {
			snap.Cohorts = append(snap.Cohorts, p)
		}
		out = append(out, snap)
	}
	return out
}

// CoordAck records that a cohort holds a durable COMMIT record for the
// transaction. Once every cohort has acknowledged, the decision is
// resolved: it no longer needs re-driving after a restart, so a RESOLVED
// record releases it (lazily synced — a lost resolution only costs a
// harmless, deduplicated re-drive).
func (l *Log) CoordAck(txID uint64, partition uint16) {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	c, ok := l.coord[txID]
	if !ok {
		return
	}
	delete(c.pending, partition)
	if len(c.pending) > 0 {
		return
	}
	delete(l.coord, txID)
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recResolved)
		e.Uvarint(txID)
	})
}

// LogAbort releases a prepared transaction whose 2PC was abandoned (a
// degraded cohort aborted the commit, or a recovered prepare expired with
// no outcome). Lazily synced: a lost abort only resurrects a prepare that
// will expire again.
func (l *Log) LogAbort(txID uint64) {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	if _, ok := l.prepared[txID]; !ok {
		return
	}
	delete(l.prepared, txID)
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recAbort)
		e.Uvarint(txID)
	})
}

// AdvanceCursor records that the peer DC has acknowledged every local
// transaction with commit timestamp ≤ upTo. Lazily synced: replaying a
// stale cursor after a crash only re-sends transactions the receiver
// deduplicates.
func (l *Log) AdvanceCursor(dc int, upTo hlc.Timestamp) {
	if dc < 0 || dc >= l.numDCs {
		return
	}
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	if pin := l.pins[dc]; pin != 0 && upTo > pin {
		// Resync to this DC is still unconfirmed: acks for newer traffic
		// may not vouch for the re-sent tail (see pins).
		upTo = pin
	}
	if upTo <= l.cursor[dc] {
		return
	}
	l.cursor[dc] = upTo
	l.appendLocked(func(e *wire.Encoder) {
		e.Byte(recCursor)
		e.Byte(uint8(dc))
		e.Timestamp(upTo)
	})
}

// PinResync caps cursor advancement for dc at upTo — the high-water mark
// of the unreplicated tail about to be re-sent — until UnpinResync
// confirms the tail was acknowledged. Called before the server starts
// serving, so no concurrent ack can slip past first.
func (l *Log) PinResync(dc int, upTo hlc.Timestamp) {
	if dc < 0 || dc >= l.numDCs || upTo == 0 {
		return
	}
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	l.pins[dc] = upTo
}

// UnpinResync lifts dc's resync pin once the re-sent tail has been
// acknowledged through upTo (acks for earlier resync batches leave the
// pin in place).
func (l *Log) UnpinResync(dc int, upTo hlc.Timestamp) {
	if dc < 0 || dc >= l.numDCs {
		return
	}
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	if l.pins[dc] != 0 && upTo >= l.pins[dc] {
		l.pins[dc] = 0
	}
}

// Cursor returns the replicated-up-to mark for a peer DC.
func (l *Log) Cursor(dc int) hlc.Timestamp {
	if dc < 0 || dc >= l.numDCs {
		return 0
	}
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	return l.cursor[dc]
}

// MarkApplied records that the writes of exactly these transactions have
// been written to the storage engine. Identified by id, never by a
// timestamp bound: a re-driven recovered commit can be logged
// concurrently with an apply tick, carrying an old ct the tick's bound
// already covers, and a bound comparison would mark it applied before the
// engine ever saw it. Only compaction consults the marks — a committed
// record may leave the log once the transaction is both applied and
// replicated everywhere.
func (l *Log) MarkApplied(txIDs []uint64) {
	if len(txIDs) == 0 {
		return
	}
	l.sh.Mu.Lock()
	for _, id := range txIDs {
		if c, ok := l.committed[id]; ok {
			c.applied = true
		}
	}
	compact := l.compactNeededLocked()
	l.sh.Mu.Unlock()
	if compact {
		l.Compact()
	}
}

// releasableLocked reports whether a committed record is no longer needed:
// applied to the engine and covered by every peer DC's cursor.
func (l *Log) releasableLocked(c *CommittedTx) bool {
	if !c.applied {
		return false
	}
	for dc := 0; dc < l.numDCs; dc++ {
		if dc == l.selfDC {
			continue
		}
		if c.CT > l.cursor[dc] {
			return false
		}
	}
	return true
}

// Committed returns the retained committed transactions in commit-timestamp
// order. At recovery the server replays them into the storage engine
// (deduplicating against what the engine already holds) before serving.
func (l *Log) Committed() []*CommittedTx {
	l.sh.Mu.Lock()
	out := make([]*CommittedTx, 0, len(l.committed))
	for _, c := range l.committed {
		out = append(out, c)
	}
	l.sh.Mu.Unlock()
	sortCommitted(out)
	return out
}

// Prepared returns the retained prepares without an outcome. After a
// restart these are doomed unless a coordinator re-drives their CommitTx.
func (l *Log) Prepared() []*PreparedTx {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	out := make([]*PreparedTx, 0, len(l.prepared))
	for _, p := range l.prepared {
		out = append(out, p)
	}
	return out
}

// CoordPending returns the unresolved coordinator decisions: transactions
// acknowledged to clients whose cohorts have not all confirmed a durable
// COMMIT record. After a restart the server re-sends their CommitTx.
func (l *Log) CoordPending() []*CoordTx {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	out := make([]*CoordTx, 0, len(l.coord))
	for _, c := range l.coord {
		out = append(out, c)
	}
	return out
}

// UnreplicatedTail returns the retained committed transactions above the
// peer DC's cursor, in commit-timestamp order — the tail a restarted
// server re-sends so the replicas reconverge.
func (l *Log) UnreplicatedTail(dc int) []*CommittedTx {
	if dc < 0 || dc >= l.numDCs {
		return nil
	}
	l.sh.Mu.Lock()
	cur := l.cursor[dc]
	out := make([]*CommittedTx, 0, 8)
	for _, c := range l.committed {
		if c.CT > cur {
			out = append(out, c)
		}
	}
	l.sh.Mu.Unlock()
	sortCommitted(out)
	return out
}

func sortCommitted(txs []*CommittedTx) {
	sort.Slice(txs, func(i, j int) bool {
		if txs[i].CT != txs[j].CT {
			return txs[i].CT < txs[j].CT
		}
		return txs[i].TxID < txs[j].TxID
	})
}

func (l *Log) compactNeededLocked() bool {
	return l.compat >= 0 && l.appends >= l.compat
}

// Compact rewrites the log from retained state — prepares, unreleased
// committed transactions, unresolved coordinator decisions, cursors —
// dropping everything whose lifecycle has run its course. Same discipline
// as the engines' compactions: temp file, fsync, atomic rename, directory
// sync, and the write handle carries over so there is no reopen window.
func (l *Log) Compact() {
	l.sh.Mu.Lock()
	defer l.sh.Mu.Unlock()
	if l.stopped {
		return // a straggler trigger after Close must not resurrect the file
	}

	// Release committed entries whose records are no longer needed.
	for id, c := range l.committed {
		if l.releasableLocked(c) {
			delete(l.committed, id)
		}
	}

	path := l.path()
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		l.recordErr(fmt.Errorf("txlog: compact: %w", err))
		return
	}
	// Stream the rewrite record by record through a throwaway encoder and
	// a buffered writer (the WAL engine's compaction discipline): encoding
	// the whole retained state into one buffer would pin a rewrite-sized
	// allocation for every burst of retained transactions.
	w := bufio.NewWriterSize(f, 1<<16)
	enc := wire.NewEncoder()
	var written int64
	var werr error
	emit := func(encode func(*wire.Encoder)) {
		if werr != nil {
			return
		}
		enc.Reset()
		logrec.AppendFrame(enc, encode)
		if _, err := w.Write(enc.Bytes()); err != nil {
			werr = err
			return
		}
		written += int64(len(enc.Bytes()))
	}
	// The sequence floor first: it outlives the records it was learned
	// from, so id uniqueness survives the rewrite dropping them.
	if l.maxSeq > 0 {
		emit(func(e *wire.Encoder) {
			e.Byte(recSeq)
			e.Uvarint(l.maxSeq)
		})
	}
	for _, p := range l.prepared {
		emit(func(e *wire.Encoder) {
			e.Byte(recPrepare)
			e.Uvarint(p.TxID)
			e.Timestamp(p.PT)
			e.Timestamp(p.RST)
			e.Timestamps(p.SV)
			encodeWrites(e, p.Writes)
		})
	}
	for _, c := range l.committed {
		// A committed transaction is rewritten as its prepare + commit
		// pair, so recovery rebuilds it by the same pairing rule as live
		// records.
		emit(func(e *wire.Encoder) {
			e.Byte(recPrepare)
			e.Uvarint(c.TxID)
			e.Timestamp(c.CT)
			e.Timestamp(c.RST)
			e.Timestamps(c.SV)
			encodeWrites(e, c.Writes)
		})
		emit(func(e *wire.Encoder) {
			e.Byte(recCommit)
			e.Uvarint(c.TxID)
			e.Timestamp(c.CT)
		})
	}
	for _, c := range l.coord {
		emit(func(e *wire.Encoder) {
			e.Byte(recCoordCommit)
			e.Uvarint(c.TxID)
			e.Timestamp(c.CT)
			e.Uvarint(uint64(len(c.Cohorts)))
			for _, p := range c.Cohorts {
				e.Uvarint(uint64(p))
			}
		})
	}
	for dc, upTo := range l.cursor {
		if upTo == 0 {
			continue
		}
		emit(func(e *wire.Encoder) {
			e.Byte(recCursor)
			e.Byte(uint8(dc))
			e.Timestamp(upTo)
		})
	}

	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		l.recordErr(fmt.Errorf("txlog: compact: %w", werr))
		_ = f.Close()
		_ = os.Remove(tmp)
		return
	}
	// f now lives at path (the rename moved the inode), positioned at its
	// end — it becomes the append handle directly, with no reopen window.
	_ = l.sh.F.Close()
	l.sh.F = f
	l.sh.Size = written
	l.sh.Failed = false // the rewrite from retained state repairs a frozen log
	l.sh.Dirty = false
	l.appends = 0
	// Staged decision records were rewritten (and fsynced) as part of the
	// coord map above; flushing them again would only append duplicates.
	l.decBatch = nil
	l.gen++            // a racing Sync must not stamp the old file's size on us
	l.synced = written // the rewrite was fsynced in full
	if derr := fsutil.SyncDir(l.dir); derr != nil {
		l.recordErr(fmt.Errorf("txlog: compact: sync dir: %w", derr))
	}
}

// fsyncLoop flushes appended records on a timer (interval policy).
func (l *Log) fsyncLoop(every time.Duration) {
	defer l.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.Sync()
		case <-l.stop:
			return
		}
	}
}

// Close stops the sync loop, forces the log to stable storage (a clean
// shutdown is fully durable whatever the policy), closes the file, and
// returns the first error any append, sync or compaction hit.
func (l *Log) Close() error {
	l.errMu.Lock()
	if l.closed {
		err := l.err
		l.errMu.Unlock()
		return err
	}
	l.closed = true
	l.errMu.Unlock()

	close(l.stop)
	l.wg.Wait()
	l.Sync()
	l.sh.Mu.Lock()
	l.stopped = true
	if l.sh.F != nil {
		if err := l.sh.F.Close(); err != nil {
			l.recordErr(fmt.Errorf("txlog: close: %w", err))
		}
	}
	l.sh.Mu.Unlock()
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}
