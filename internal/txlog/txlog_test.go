package txlog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/wire"
)

func ts(v uint64) hlc.Timestamp { return hlc.Timestamp(v) }

func openLog(t *testing.T, dir string, numDCs int) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, NumDCs: numDCs, SelfDC: 0, Fsync: "always"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func kv(key, val string) wire.KV { return wire.KV{Key: key, Value: []byte(val)} }

func TestPrepareCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 2)
	l.LogPrepare(&PreparedTx{TxID: 1, PT: ts(100), RST: ts(50), Writes: []wire.KV{kv("a", "v1")}})
	l.LogPrepare(&PreparedTx{TxID: 2, PT: ts(110), RST: ts(50), Writes: []wire.KV{kv("b", "v2")}})
	if !l.LogCommit(1, ts(120)) {
		t.Fatal("LogCommit(1) reported unknown")
	}
	if l.LogCommit(1, ts(120)) {
		t.Fatal("duplicate LogCommit(1) must report false")
	}
	l.Sync()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openLog(t, dir, 2)
	defer r.Close()
	committed := r.Committed()
	if len(committed) != 1 || committed[0].TxID != 1 || committed[0].CT != ts(120) {
		t.Fatalf("recovered committed = %+v, want tx 1 @120", committed)
	}
	if committed[0].RST != ts(50) || string(committed[0].Writes[0].Value) != "v1" {
		t.Fatalf("recovered committed lost metadata: %+v", committed[0])
	}
	prepared := r.Prepared()
	if len(prepared) != 1 || prepared[0].TxID != 2 {
		t.Fatalf("recovered prepared = %+v, want tx 2", prepared)
	}
}

func TestCoordCommitResolution(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 1)
	l.LogCoordCommit(7, ts(200), []uint16{0, 1})
	l.LogCoordCommit(8, ts(210), []uint16{2})
	l.CoordAck(7, 0)
	l.CoordAck(7, 1) // fully acked: resolved
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := openLog(t, dir, 1)
	defer r.Close()
	pending := r.CoordPending()
	if len(pending) != 1 || pending[0].TxID != 8 || pending[0].CT != ts(210) {
		t.Fatalf("pending = %+v, want only tx 8", pending)
	}
	if got := pending[0].Cohorts; len(got) != 1 || got[0] != 2 {
		t.Fatalf("cohorts = %v, want [2]", got)
	}
}

// TestCoordCommitSyncBatchedDurable hammers the batched ack-path decision
// writer from many goroutines under fsync=always and proves every decision
// both survives a reopen and is already synced when the call returns (the
// group commit trades syscalls, never durability).
func TestCoordCommitSyncBatchedDurable(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 1)
	const writers, decisions = 8, 20
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < decisions; i++ {
				txID := uint64(w*decisions + i + 1)
				l.LogCoordCommitSync(txID, ts(300+txID), []uint16{0})
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	if err := l.Healthy(); err != nil {
		t.Fatalf("log degraded after batched decisions: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := openLog(t, dir, 1)
	defer r.Close()
	pending := r.CoordPending()
	if len(pending) != writers*decisions {
		t.Fatalf("recovered %d pending decisions, want %d", len(pending), writers*decisions)
	}
	seen := make(map[uint64]bool, len(pending))
	for _, c := range pending {
		if c.CT != ts(300+c.TxID) {
			t.Fatalf("tx %d recovered with ct %d, want %d", c.TxID, c.CT, 300+c.TxID)
		}
		seen[c.TxID] = true
	}
	if len(seen) != writers*decisions {
		t.Fatalf("recovered %d distinct decisions, want %d", len(seen), writers*decisions)
	}
}

// TestCoordCommitSyncFallback covers the two unbatched paths: interval
// fsync (records ride the interval sync) and batching disabled under
// fsync=always (one fsync per decision, the benchmark ablation).
func TestCoordCommitSyncFallback(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"interval", Options{Fsync: "interval"}},
		{"always-nobatch", Options{Fsync: "always", DisableDecisionBatch: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.Dir = t.TempDir()
			opts.NumDCs = 1
			l, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			l.LogCoordCommitSync(5, ts(500), []uint16{0, 1})
			l.Sync()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			opts2 := opts
			r, err := Open(opts2)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			pending := r.CoordPending()
			if len(pending) != 1 || pending[0].TxID != 5 || pending[0].CT != ts(500) {
				t.Fatalf("pending = %+v, want tx 5 @500", pending)
			}
		})
	}
}

func TestCursorPersistsAndBoundsTail(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 3)
	for i := uint64(1); i <= 4; i++ {
		l.LogPrepare(&PreparedTx{TxID: i, PT: ts(i * 10), Writes: []wire.KV{kv("k", "v")}})
		l.LogCommit(i, ts(i*10))
	}
	l.AdvanceCursor(1, ts(20))
	l.AdvanceCursor(2, ts(40))
	l.AdvanceCursor(1, ts(10)) // regression ignored
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := openLog(t, dir, 3)
	defer r.Close()
	if got := r.Cursor(1); got != ts(20) {
		t.Fatalf("cursor[1] = %v, want 20", got)
	}
	tail := r.UnreplicatedTail(1)
	if len(tail) != 2 || tail[0].CT != ts(30) || tail[1].CT != ts(40) {
		t.Fatalf("tail for dc1 = %+v, want cts 30,40 in order", tail)
	}
	if tail = r.UnreplicatedTail(2); len(tail) != 0 {
		t.Fatalf("tail for dc2 = %+v, want empty", tail)
	}
}

func TestAbortReleasesPrepare(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 1)
	l.LogPrepare(&PreparedTx{TxID: 5, PT: ts(10), Writes: []wire.KV{kv("x", "y")}})
	l.LogAbort(5)
	if l.LogCommit(5, ts(20)) {
		t.Fatal("commit after abort must be a no-op")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := openLog(t, dir, 1)
	defer r.Close()
	if p := r.Prepared(); len(p) != 0 {
		t.Fatalf("aborted prepare resurrected: %+v", p)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 1)
	l.LogPrepare(&PreparedTx{TxID: 1, PT: ts(10), Writes: []wire.KV{kv("a", "v")}})
	l.LogCommit(1, ts(20))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage simulating a torn record.
	path := filepath.Join(dir, "commit.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openLog(t, dir, 1)
	committed := r.Committed()
	if len(committed) != 1 || committed[0].TxID != 1 {
		t.Fatalf("recovery after torn tail = %+v", committed)
	}
	// New appends after the truncation must survive another cycle.
	r.LogPrepare(&PreparedTx{TxID: 2, PT: ts(30), Writes: []wire.KV{kv("b", "w")}})
	r.LogCommit(2, ts(40))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openLog(t, dir, 1)
	defer r2.Close()
	if got := r2.Committed(); len(got) != 2 {
		t.Fatalf("post-truncation appends lost: %+v", got)
	}
}

func TestCompactionReleasesFinishedRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NumDCs: 2, SelfDC: 0, Fsync: "never", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 6; i++ {
		l.LogPrepare(&PreparedTx{TxID: i, PT: ts(i * 10), Writes: []wire.KV{kv("k", "v")}})
		l.LogCommit(i, ts(i*10))
	}
	// txs 1..3 applied and confirmed by the only peer; 4..6 still needed.
	l.MarkApplied([]uint64{1, 2, 3})
	l.AdvanceCursor(1, ts(35))
	before, _ := os.Stat(filepath.Join(dir, "commit.log"))
	l.Compact()
	after, _ := os.Stat(filepath.Join(dir, "commit.log"))
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	if got := l.Committed(); len(got) != 3 || got[0].CT != ts(40) {
		t.Fatalf("retained after compact = %+v, want cts 40,50,60", got)
	}
	// Appends after compaction land in the renamed file and survive.
	l.LogPrepare(&PreparedTx{TxID: 7, PT: ts(70), Writes: []wire.KV{kv("z", "v7")}})
	l.LogCommit(7, ts(70))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := openLog(t, dir, 2)
	defer r.Close()
	got := r.Committed()
	if len(got) != 4 || got[3].CT != ts(70) {
		t.Fatalf("recovered after compact+append = %+v, want 4 txs ending at 70", got)
	}
	if c := r.Cursor(1); c != ts(35) {
		t.Fatalf("cursor lost by compaction: %v", c)
	}
}

func TestReleaseRequiresBothAppliedAndReplicated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NumDCs: 2, SelfDC: 0, Fsync: "never", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.LogPrepare(&PreparedTx{TxID: 1, PT: ts(10), Writes: []wire.KV{kv("a", "v")}})
	l.LogCommit(1, ts(10))

	l.MarkApplied([]uint64{1}) // applied but not replicated
	l.Compact()
	if got := l.Committed(); len(got) != 1 {
		t.Fatalf("record released before replication confirmed: %+v", got)
	}
	l.AdvanceCursor(1, ts(10)) // now both
	l.Compact()
	if got := l.Committed(); len(got) != 0 {
		t.Fatalf("record not released after apply+replication: %+v", got)
	}
}

func TestSingleDCReleasesOnApplyAlone(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NumDCs: 1, SelfDC: 0, Fsync: "never", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.LogPrepare(&PreparedTx{TxID: 1, PT: ts(10), Writes: []wire.KV{kv("a", "v")}})
	l.LogCommit(1, ts(10))
	l.MarkApplied([]uint64{1})
	l.Compact()
	if got := l.Committed(); len(got) != 0 {
		t.Fatalf("single-DC record not released on apply: %+v", got)
	}
}

func TestSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 3)
	sv := []hlc.Timestamp{ts(1), ts(2), ts(3)}
	l.LogPrepare(&PreparedTx{TxID: 9, PT: ts(10), SV: sv, Writes: []wire.KV{
		{Key: "t", Tombstone: true},
		kv("u", ""),
	}})
	l.LogCommit(9, ts(12))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := openLog(t, dir, 3)
	defer r.Close()
	got := r.Committed()
	if len(got) != 1 || len(got[0].SV) != 3 || got[0].SV[2] != ts(3) {
		t.Fatalf("snapshot vector lost: %+v", got)
	}
	if !got[0].Writes[0].Tombstone || got[0].Writes[0].Value != nil {
		t.Fatalf("tombstone flag lost: %+v", got[0].Writes[0])
	}
	if got[0].Writes[1].Tombstone {
		t.Fatalf("empty value decoded as tombstone: %+v", got[0].Writes[1])
	}
}

func TestSeqFloorSurvivesCompactionAndRestart(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NumDCs: 1, SelfDC: 0, Fsync: "never", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Transaction ids carry DC/partition in the top bytes; the floor is
	// the 40-bit sequence component.
	id := func(seq uint64) uint64 { return 1<<56 | 2<<40 | seq }
	l.LogPrepare(&PreparedTx{TxID: id(7), PT: ts(10), Writes: []wire.KV{kv("a", "v")}})
	l.LogCommit(id(7), ts(10))
	l.LogCoordCommit(id(9), ts(11), []uint16{0})
	if got := l.NextSeqFloor(); got != 9 {
		t.Fatalf("floor = %d, want 9", got)
	}
	// Release everything, compact (dropping the records), reopen: the
	// floor must survive through the recSeq record.
	l.MarkApplied([]uint64{id(7)})
	l.CoordAck(id(9), 0)
	l.Compact()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := openLog(t, dir, 1)
	defer r.Close()
	if got := r.Committed(); len(got) != 0 {
		t.Fatalf("records not released: %+v", got)
	}
	if got := r.NextSeqFloor(); got != 9 {
		t.Fatalf("floor after compaction+restart = %d, want 9", got)
	}
}

func TestRedrivePendingAndCoordAbort(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NumDCs: 1, SelfDC: 0, Fsync: "never", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.LogCoordCommit(1, ts(10), []uint16{0, 1})
	l.LogCoordCommit(2, ts(20), []uint16{3})
	l.CoordAck(1, 0) // partition 1 still pending

	if got := l.RedrivePending(time.Hour); len(got) != 0 {
		t.Fatalf("nothing is an hour old yet: %+v", got)
	}
	red := l.RedrivePending(0)
	if len(red) != 2 {
		t.Fatalf("redrive = %+v, want both decisions", red)
	}
	for _, c := range red {
		switch c.TxID {
		case 1:
			if len(c.Cohorts) != 1 || c.Cohorts[0] != 1 {
				t.Fatalf("tx1 pending cohorts = %v, want [1]", c.Cohorts)
			}
		case 2:
			if len(c.Cohorts) != 1 || c.Cohorts[0] != 3 {
				t.Fatalf("tx2 pending cohorts = %v, want [3]", c.Cohorts)
			}
		}
	}

	if ct, ok := l.CoordDecision(2); !ok || ct != ts(20) {
		t.Fatalf("CoordDecision(2) = %v,%v", ct, ok)
	}
	l.CoordAbort(2)
	if _, ok := l.CoordDecision(2); ok {
		t.Fatal("aborted decision still visible")
	}
	if got := l.RedrivePending(0); len(got) != 1 || got[0].TxID != 1 {
		t.Fatalf("redrive after abort = %+v, want only tx1", got)
	}
}

func TestResyncPinClampsCursor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NumDCs: 2, SelfDC: 0, Fsync: "never", CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		l.LogPrepare(&PreparedTx{TxID: i, PT: ts(i * 10), Writes: []wire.KV{kv("k", "v")}})
		l.LogCommit(i, ts(i*10))
	}
	// Unreplicated tail up to ct=30; pin it as a restarting server would.
	l.PinResync(1, ts(30))
	// An ack for NEWER traffic must not advance the cursor past the pin —
	// the tail may still be in flight behind it.
	l.AdvanceCursor(1, ts(100))
	if got := l.Cursor(1); got != ts(30) {
		t.Fatalf("pinned cursor = %v, want clamped to 30", got)
	}
	// An earlier resync batch's ack does not lift the pin.
	l.UnpinResync(1, ts(20))
	l.AdvanceCursor(1, ts(100))
	if got := l.Cursor(1); got != ts(30) {
		t.Fatalf("cursor after partial resync ack = %v, want 30", got)
	}
	// The tail's own ack lifts it; newer acks then advance freely.
	l.UnpinResync(1, ts(30))
	l.AdvanceCursor(1, ts(100))
	if got := l.Cursor(1); got != ts(100) {
		t.Fatalf("cursor after unpin = %v, want 100", got)
	}
	// The clamp must also have kept release at bay across the window.
	l.MarkApplied([]uint64{1, 2, 3})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := openLog(t, dir, 2)
	defer r.Close()
	if got := r.Cursor(1); got != ts(100) {
		t.Fatalf("persisted cursor = %v, want 100", got)
	}
}

func TestReserveSeqsDurable(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 1)
	l.ReserveSeqs(500)
	l.ReserveSeqs(400) // regression ignored
	if got := l.NextSeqFloor(); got != 500 {
		t.Fatalf("floor = %d, want 500", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r := openLog(t, dir, 1)
	defer r.Close()
	if got := r.NextSeqFloor(); got != 500 {
		t.Fatalf("floor after restart = %d, want 500", got)
	}
}

func TestAutoCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NumDCs: 1, SelfDC: 0, Fsync: "never", CompactThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 50; i++ {
		l.LogPrepare(&PreparedTx{TxID: i, PT: ts(i), Writes: []wire.KV{kv("k", "v")}})
		l.LogCommit(i, ts(i))
		l.MarkApplied([]uint64{i})
	}
	st, err := os.Stat(filepath.Join(dir, "commit.log"))
	if err != nil {
		t.Fatal(err)
	}
	// 50 prepare+commit pairs uncompacted would be far larger; after
	// threshold-triggered rewrites only a handful of records remain.
	if st.Size() > 2048 {
		t.Fatalf("auto-compaction never ran: log is %d bytes", st.Size())
	}
}
