package store

import (
	"fmt"
	"testing"

	"wren/internal/hlc"
)

func TestNewShardedRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards},
		{-5, DefaultShards},
		{1, 1},
		{2, 2},
		{3, 4},
		{64, 64},
		{100, 128},
		{MaxShards, MaxShards},
		{MaxShards + 1, MaxShards},
	}
	for _, c := range cases {
		if got := NewSharded(c.in).NumShards(); got != c.want {
			t.Errorf("NewSharded(%d).NumShards() = %d, want %d", c.in, got, c.want)
		}
	}
	if got := New().NumShards(); got != DefaultShards {
		t.Errorf("New().NumShards() = %d, want %d", got, DefaultShards)
	}
}

func TestPutBatchKeepsLWWOrder(t *testing.T) {
	s := NewSharded(4)
	// Scrambled timestamps across keys that land in different shards.
	var batch []KV
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i%8)
		batch = append(batch, KV{Key: key, Version: ver(int64(37*i%50+1), 0, uint64(i), fmt.Sprintf("v%d", i))})
	}
	s.PutBatch(batch)
	if got := s.Versions(); got != 32 {
		t.Fatalf("Versions = %d, want 32", got)
	}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		// Latest must be the LWW-max of the versions written to this key.
		var want *Version
		for _, kv := range batch {
			if kv.Key == key && (want == nil || want.Less(kv.Version)) {
				want = kv.Version
			}
		}
		if got := s.Latest(key); got != want {
			t.Errorf("Latest(%s) = %v, want %v", key, got, want)
		}
	}
}

func TestReadVisibleBatchAlignment(t *testing.T) {
	s := New()
	s.Put("a", ver(10, 0, 1, "va"))
	s.Put("c", ver(20, 0, 2, "vc"))
	got := s.ReadVisibleBatch([]string{"a", "missing", "c", "a"}, all)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if got[0] == nil || string(got[0].Value) != "va" {
		t.Errorf("got[0] = %v, want va", got[0])
	}
	if got[1] != nil {
		t.Errorf("got[1] = %v, want nil for missing key", got[1])
	}
	if got[2] == nil || string(got[2].Value) != "vc" {
		t.Errorf("got[2] = %v, want vc", got[2])
	}
	if got[3] == nil || string(got[3].Value) != "va" {
		t.Errorf("got[3] = %v, want va (duplicate key)", got[3])
	}
	// Predicate filtering applies per entry.
	upTo15 := func(v *Version) bool { return v.UT <= hlc.New(15, 0) }
	got = s.ReadVisibleBatch([]string{"a", "c"}, upTo15)
	if got[0] == nil || got[1] != nil {
		t.Errorf("snapshot batch = %v, want [va, nil]", got)
	}
	if n := len(s.ReadVisibleBatch(nil, all)); n != 0 {
		t.Errorf("empty batch returned %d entries", n)
	}
}

func TestGCStatsPerShardCountsSumToRemoved(t *testing.T) {
	s := NewSharded(8)
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("key-%d", k)
		for v := 1; v <= 5; v++ {
			s.Put(key, ver(int64(v), 0, uint64(k*10+v), "v"))
		}
	}
	res := s.GCStats(hlc.New(10, 0))
	if res.Removed != 50*4 {
		t.Errorf("Removed = %d, want %d", res.Removed, 50*4)
	}
	if len(res.PerShard) != s.NumShards() {
		t.Fatalf("PerShard has %d entries, want %d", len(res.PerShard), s.NumShards())
	}
	sum := 0
	for _, n := range res.PerShard {
		sum += n
	}
	if sum != res.Removed {
		t.Errorf("sum(PerShard) = %d, want Removed = %d", sum, res.Removed)
	}
	if res.DroppedKeys != 0 {
		t.Errorf("DroppedKeys = %d, want 0 (no tombstones)", res.DroppedKeys)
	}
}

func TestGCDropsStableTombstonedKeys(t *testing.T) {
	s := New()
	s.Put("dead", ver(10, 0, 1, "x"))
	s.Put("dead", &Version{Value: nil, UT: hlc.New(20, 0), TxID: 2}) // tombstone
	s.Put("live", ver(10, 0, 3, "y"))

	// Below the tombstone nothing may be dropped: a snapshot at 15 must
	// still read "x".
	res := s.GCStats(hlc.New(15, 0))
	if res.DroppedKeys != 0 {
		t.Fatalf("premature drop: %+v", res)
	}
	upTo15 := func(v *Version) bool { return v.UT <= hlc.New(15, 0) }
	if got := s.ReadVisible("dead", upTo15); got == nil || string(got.Value) != "x" {
		t.Fatalf("snapshot(15) of dead = %v, want x", got)
	}

	// Once the tombstone is the stable base, the whole chain goes away.
	res = s.GCStats(hlc.New(25, 0))
	if res.DroppedKeys != 1 {
		t.Errorf("DroppedKeys = %d, want 1", res.DroppedKeys)
	}
	if res.Removed != 2 {
		t.Errorf("Removed = %d, want 2 (value + tombstone)", res.Removed)
	}
	if s.Keys() != 1 {
		t.Errorf("Keys = %d, want 1 (only live)", s.Keys())
	}
	if got := s.ReadVisible("dead", all); got != nil {
		t.Errorf("dead key still readable: %v", got)
	}
	if got := s.Latest("live"); got == nil || string(got.Value) != "y" {
		t.Errorf("live key lost: %v", got)
	}

	// A tombstone shadowed by a newer live write must never cause a drop.
	s.Put("reborn", &Version{Value: nil, UT: hlc.New(10, 0), TxID: 4})
	s.Put("reborn", ver(20, 0, 5, "z"))
	res = s.GCStats(hlc.New(30, 0))
	if res.DroppedKeys != 0 {
		t.Errorf("reborn dropped: %+v", res)
	}
	if got := s.Latest("reborn"); got == nil || string(got.Value) != "z" {
		t.Errorf("reborn = %v, want z", got)
	}
}

func TestForEachKeyMayReenterStore(t *testing.T) {
	s := New()
	s.Put("a", ver(1, 0, 1, "x"))
	s.Put("b", ver(1, 0, 2, "y"))
	seen := map[string]int{}
	s.ForEachKey(func(k string) {
		// Callbacks run without shard locks held, so reads are legal here.
		seen[k] = s.VersionsOf(k)
	})
	if len(seen) != 2 || seen["a"] != 1 || seen["b"] != 1 {
		t.Errorf("ForEachKey visited %v", seen)
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	s := NewSharded(16)
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("key-%d", i), ver(1, 0, uint64(i), "v"))
	}
	touched := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		if len(s.shards[i].chains) > 0 {
			touched++
		}
		s.shards[i].mu.RUnlock()
	}
	// FNV-1a over 1000 keys must not degenerate onto a few stripes.
	if touched < 12 {
		t.Errorf("only %d/16 shards used by 1000 keys", touched)
	}
}
