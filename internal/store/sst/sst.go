// Package sst implements a memtable+sorted-run (LSM-style) storage
// engine behind store.Engine.
//
// Writes land in an active memtable — the same lock-striped version store
// the memory engine uses — and are covered by a write-ahead log that
// spans ONLY the active memtable: per-shard log files named by a flush
// generation, using the same FNV-1a striping and the shared logrec record
// format. When the memtable grows past the flush threshold it is frozen
// (a fresh memtable and a fresh WAL generation take over under the shard
// locks) and written out in the background as one immutable sorted run:
// keys in sorted order, each key's version chain in last-writer-wins
// (timestamp) order, every record length-prefixed and CRC32-checksummed,
// grouped into fixed-size blocks with a fence-key footer (see runfile.go
// for the file format). Once the run is durable the WAL generations it
// covers are deleted — the log never grows past one memtable's worth of
// writes.
//
// The resident state per run is a sparse index — one fence key per block
// plus a Bloom filter over the run's distinct keys — never the data. A
// point read probes the memtables, then per run answers negative lookups
// from the filter alone and positive ones with one binary search over the
// fences and one block pread; startup reads each run's footer, not its
// data. Memory therefore scales with block count and key count, not with
// the bytes stored, which is what lets the engine hold datasets far
// larger than RAM. Snapshot reads stay lock-free on the immutable side
// (runs are published through one atomic pointer; a refcount on each
// run's file descriptor lets compaction retire files under concurrent
// preads), so the multi-version visibility scan that backs Wren's
// nonblocking reads touches no lock for flushed data — only the
// active-memtable probe takes its striped read lock. This maps the
// paper's stable-snapshot property onto storage: a snapshot read's
// versions live overwhelmingly in immutable runs, exactly because the
// snapshot is old enough to be stable.
//
// Runs are tiered into size levels (level = log_fanout(size/flushBytes))
// and background compaction merges gen-contiguous groups of runs within
// one level, so each compaction cycle's I/O is bounded by the size of one
// level rather than the whole dataset; GC prunes run data logically
// through per-run overlay cuts that compaction folds into the files. A
// whole-dataset (major) compaction still runs when pruned garbage piles
// up past the threshold, or on demand via Compact. Crash recovery keeps
// the PR 5 invariants generalized to level merges: a run whose generation
// interval another run subsumes is the footprint of a crash
// mid-compaction and is deleted (merge groups are always gen-contiguous,
// so the merged output subsumes exactly its inputs), leftover temp files
// are removed, WAL generations a run covers are deleted, and the rest are
// replayed — streamed, never whole-file-buffered — truncating a torn tail
// by the shared logrec rules.
package sst

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/fsutil"
	"wren/internal/store/logrec"
	"wren/internal/store/wal"
	"wren/internal/wire"
)

const (
	// DefaultFlushBytes is the approximate memtable payload size that
	// triggers a background flush to a sorted run.
	DefaultFlushBytes = 4 << 20
	// DefaultCompactRuns is how many sorted runs may accumulate within one
	// size level before a compaction merges them.
	DefaultCompactRuns = 4
	// DefaultCompactGarbage is how many GC-pruned versions may linger in
	// run files before a major compaction rewrites them out.
	DefaultCompactGarbage = 4096
	// DefaultFsyncInterval is the timer period of the interval fsync
	// policy (shared with the WAL engine).
	DefaultFsyncInterval = 10 * time.Millisecond
	// DefaultBlockBytes is the target size of one run-file block — the
	// unit of disk read on a point lookup and the granularity of the
	// resident fence index.
	DefaultBlockBytes = 16 << 10
	// DefaultBloomBitsPerKey sizes each run's Bloom filter (≈0.8% false
	// positives at 10 bits per key).
	DefaultBloomBitsPerKey = 10
	// DefaultLevelFanout is the size ratio between adjacent run levels.
	DefaultLevelFanout = 4

	// versionOverhead approximates the per-version bookkeeping bytes used
	// when sizing the memtable for the flush trigger.
	versionOverhead = 64
)

// Options configures an SST engine.
type Options struct {
	// Dir is the data directory (WAL generations, run files, meta, lock).
	// Created if missing. One engine must own it exclusively.
	Dir string
	// Shards is the stripe count (0 selects store.DefaultShards; rounded
	// up to a power of two). Persisted at creation; reopening with a
	// different value adopts the persisted count.
	Shards int
	// Fsync is the WAL group-commit policy for the active memtable's log:
	// wal.FsyncAlways, wal.FsyncInterval ("" default) or wal.FsyncNever.
	// Run files are always fsynced before they count as durable,
	// regardless of policy.
	Fsync string
	// FsyncInterval overrides the sync timer period for the interval
	// policy (0 selects DefaultFsyncInterval).
	FsyncInterval time.Duration
	// FlushBytes overrides the memtable size that triggers a background
	// flush (0 selects DefaultFlushBytes; negative disables auto-flush —
	// Flush can still be called explicitly). It is also the base of the
	// run-level size ladder.
	FlushBytes int64
	// CompactRuns overrides how many runs within one size level trigger a
	// compaction of that level (0 selects DefaultCompactRuns; negative
	// disables compaction).
	CompactRuns int
	// CompactGarbage overrides how many GC-pruned versions lingering in
	// run files trigger a major compaction (0 selects
	// DefaultCompactGarbage).
	CompactGarbage int
	// BlockBytes overrides the target run-file block size (0 selects
	// DefaultBlockBytes). Smaller blocks mean finer-grained point reads
	// and a proportionally larger fence index.
	BlockBytes int
	// BloomBitsPerKey overrides the per-run Bloom filter density (0
	// selects DefaultBloomBitsPerKey; negative disables the filters).
	BloomBitsPerKey int
	// LevelFanout overrides the size ratio between adjacent run levels
	// (0 selects DefaultLevelFanout; minimum 2).
	LevelFanout int

	// Test-only crash simulation: abort the flush right after the run
	// rename (before the WAL generations are deleted), or abort the
	// compaction right after the merged-run rename (before the old run
	// files are deleted). The engine is poisoned afterwards — Close skips
	// every sync and flush, emulating the on-disk state of a kill at that
	// instant.
	crashAfterFlushRename   bool
	crashAfterCompactRename bool
}

// run is one immutable sorted run: a durable file plus the sparse
// resident index serving lock-free reads — fence keys (one per block), a
// Bloom filter over its distinct keys, and counters. It covers a
// contiguous range of WAL generations and sits in a size level. Nothing
// here is mutated after construction; GC publishes replacement run
// structs wholesale (sharing the same refcounted file).
//
// cuts is the GC overlay: for each pruned key, how many leading (oldest)
// versions of its file chain are logically dead. Dropping a prefix is
// sound because chains are stored in ascending last-writer-wins order and
// GC only ever removes versions older than the surviving base. A key
// whose whole chain is cut stays in the FILE until compaction rewrites it
// — the file key set is exactly what recovery would reload, the set GC
// must consult before letting a tombstone leave the memtable.
type run struct {
	file           *runFile
	path           string
	minGen, maxGen uint64
	level          int
	fileSize       int64 // whole file, footer included
	dataSize       int64 // data region only (sum of block lengths)

	fences   []fence
	filter   bloomFilter
	versions int // version records in the FILE
	keyCount int // distinct keys in the FILE

	cuts     map[string]int // key -> leading versions logically dead
	cutTotal int            // sum of cuts (garbage versions in the file)
	deadKeys int            // keys whose whole chain is cut
}

// liveVersions is the number of versions reads can still observe.
func (r *run) liveVersions() int { return r.versions - r.cutTotal }

// tables is the read snapshot: one atomic pointer swap publishes any
// change to the source set, so readers always see a consistent tiering.
// frozen is non-nil only while a flush is writing its run.
type tables struct {
	active *store.Store
	frozen *store.Store
	runs   []*run // newest first (descending maxGen)
}

// Engine is the memtable+sorted-run storage engine.
type Engine struct {
	dir            string
	fsync          string
	flushBytes     int64
	compactRuns    int
	compactGarbage int
	blockBytes     int
	bloomBits      int
	levelFanout    int
	opts           Options
	mask           uint32
	nShards        int

	tabs   atomic.Pointer[tables]
	shards []*logShard // active-memtable WAL, one log per memtable stripe

	// flushMu serializes every structural change to the tiering — flush,
	// compaction, GC, recovery-time setup, run retirement — and the
	// counting methods that need a non-overlapping view. The read and
	// write hot paths never take it.
	flushMu sync.Mutex
	gen     uint64 // active WAL generation (flushMu; written under all shard locks)
	minGen  uint64 // lowest generation whose data lives only in the memtable (flushMu)

	memBytes atomic.Int64 // approximate active-memtable payload size
	flushing atomic.Bool  // a background flush is scheduled or running

	lock *os.File // exclusive advisory lock on the data directory

	mu      sync.Mutex // guards err, closed, crashed
	err     error      // first write-path failure, surfaced by Healthy/Close
	closed  bool
	crashed bool // test hooks only: simulate a kill
	stop    chan struct{}
	wg      sync.WaitGroup
	metrics Metrics
}

// Metrics counts engine-level events for tests and monitoring.
type Metrics struct {
	mu              sync.Mutex
	flushes         int
	compactions     int
	recovered       int
	truncated       int
	runsLoaded      int
	compactionBytes int64

	blockReads atomic.Int64
	bloomSkips atomic.Int64
}

func (m *Metrics) add(f func(*Metrics)) { m.mu.Lock(); f(m); m.mu.Unlock() }

// Flushes returns how many memtable flushes have written a run.
func (m *Metrics) Flushes() int { m.mu.Lock(); defer m.mu.Unlock(); return m.flushes }

// Compactions returns how many merge compactions have run.
func (m *Metrics) Compactions() int { m.mu.Lock(); defer m.mu.Unlock(); return m.compactions }

// Recovered returns how many WAL records startup recovery replayed.
func (m *Metrics) Recovered() int { m.mu.Lock(); defer m.mu.Unlock(); return m.recovered }

// TruncatedShards returns how many WAL shard files had a torn tail cut
// off during recovery.
func (m *Metrics) TruncatedShards() int { m.mu.Lock(); defer m.mu.Unlock(); return m.truncated }

// RunsLoaded returns how many sorted-run files recovery loaded.
func (m *Metrics) RunsLoaded() int { m.mu.Lock(); defer m.mu.Unlock(); return m.runsLoaded }

// CompactionBytes returns the total bytes compactions have written —
// the measure that per-cycle compaction I/O is bounded by level size.
func (m *Metrics) CompactionBytes() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.compactionBytes }

// BlockReads returns how many run-file blocks reads have fetched.
func (m *Metrics) BlockReads() int64 { return m.blockReads.Load() }

// BloomSkips returns how many run probes the Bloom filters answered
// negatively without touching disk.
func (m *Metrics) BloomSkips() int64 { return m.bloomSkips.Load() }

var _ store.Engine = (*Engine)(nil)

// Open creates or recovers an SST engine in opts.Dir: leftover temp files
// are removed, run footers are loaded (dropping any run whose generation
// interval a wider merged run subsumes — the footprint of a crash
// mid-compaction), WAL generations a run already covers are deleted, and
// the rest are replayed into a fresh memtable, truncating a torn tail.
// Startup heap is bounded by record and footer sizes, not file sizes:
// run data is never read at open, and WAL replay is streamed.
func Open(opts Options) (*Engine, error) {
	policy, err := wal.ParseFsync(opts.Fsync)
	if err != nil {
		return nil, fmt.Errorf("sst: %w", err)
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	flushBytes := opts.FlushBytes
	if flushBytes == 0 {
		flushBytes = DefaultFlushBytes
	}
	compactRuns := opts.CompactRuns
	if compactRuns == 0 {
		compactRuns = DefaultCompactRuns
	}
	compactGarbage := opts.CompactGarbage
	if compactGarbage == 0 {
		compactGarbage = DefaultCompactGarbage
	}
	blockBytes := opts.BlockBytes
	if blockBytes <= 0 {
		blockBytes = DefaultBlockBytes
	}
	bloomBits := opts.BloomBitsPerKey
	if bloomBits == 0 {
		bloomBits = DefaultBloomBitsPerKey
	}
	levelFanout := opts.LevelFanout
	if levelFanout == 0 {
		levelFanout = DefaultLevelFanout
	}
	if levelFanout < 2 {
		levelFanout = 2
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("sst: create dir: %w", err)
	}
	lock, err := fsutil.ClaimDir(opts.Dir, "sst")
	if err != nil {
		return nil, fmt.Errorf("sst: %w", err)
	}
	fail := func(err error) (*Engine, error) {
		_ = lock.Close()
		return nil, err
	}

	n, err := fsutil.LoadOrInitShards(opts.Dir, "sst.meta", store.ResolveShards(opts.Shards), store.MaxShards)
	if err != nil {
		return fail(fmt.Errorf("sst: %w", err))
	}
	e := &Engine{
		dir:            opts.Dir,
		fsync:          policy,
		flushBytes:     flushBytes,
		compactRuns:    compactRuns,
		compactGarbage: compactGarbage,
		blockBytes:     blockBytes,
		bloomBits:      bloomBits,
		levelFanout:    levelFanout,
		opts:           opts,
		mask:           uint32(n - 1),
		nShards:        n,
		lock:           lock,
		stop:           make(chan struct{}),
	}
	if err := e.recover(); err != nil {
		for _, sh := range e.shards {
			if sh != nil && sh.F != nil {
				_ = sh.F.Close()
			}
		}
		return fail(err)
	}
	// One directory sync covers every temp-file removal, superseded-WAL
	// deletion and log creation above.
	if err := fsutil.SyncDir(opts.Dir); err != nil {
		_ = e.Close()
		return nil, fmt.Errorf("sst: sync dir: %w", err)
	}
	if policy == wal.FsyncInterval {
		e.wg.Add(1)
		go e.fsyncLoop(opts.FsyncInterval)
	}
	return e, nil
}

func (e *Engine) walPath(gen uint64, si int) string {
	return filepath.Join(e.dir, fmt.Sprintf("wal-%06d-%05d.log", gen, si))
}

func (e *Engine) runPath(minGen, maxGen uint64) string {
	return filepath.Join(e.dir, fmt.Sprintf("run-%06d-%06d.sst", minGen, maxGen))
}

// levelOf places a run of the given file size on the size ladder: level 0
// holds runs up to flushBytes*fanout, each level above holds runs up to
// fanout times its predecessor.
func (e *Engine) levelOf(size int64) int {
	base := e.flushBytes
	if base <= 0 {
		base = DefaultFlushBytes
	}
	level := 0
	threshold := base * int64(e.levelFanout)
	for size >= threshold && level < 32 {
		next := threshold * int64(e.levelFanout)
		if next <= threshold { // overflow: everything else is the top level
			break
		}
		threshold = next
		level++
	}
	return level
}

// recover rebuilds the engine state from the data directory. Generations
// start at 1, so a fresh directory begins with WAL generation 1 and no
// runs.
func (e *Engine) recover() (retErr error) {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return fmt.Errorf("sst: read dir: %w", err)
	}
	type runRef struct {
		path   string
		lo, hi uint64
	}
	var runFiles []runRef
	walGens := map[uint64][]int{} // generation -> shard indexes present
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A crash mid-flush or mid-compaction: the rename never
			// happened, so the file holds nothing durable.
			if err := os.Remove(filepath.Join(e.dir, name)); err != nil {
				return fmt.Errorf("sst: remove leftover %s: %w", name, err)
			}
		case strings.HasSuffix(name, ".sst"):
			var lo, hi uint64
			if _, err := fmt.Sscanf(name, "run-%d-%d.sst", &lo, &hi); err != nil || lo == 0 || hi < lo {
				return fmt.Errorf("sst: unrecognized run file %s", name)
			}
			runFiles = append(runFiles, runRef{path: filepath.Join(e.dir, name), lo: lo, hi: hi})
		case strings.HasSuffix(name, ".log"):
			var g uint64
			var si int
			if _, err := fmt.Sscanf(name, "wal-%d-%d.log", &g, &si); err != nil || g == 0 {
				return fmt.Errorf("sst: unrecognized wal file %s", name)
			}
			walGens[g] = append(walGens[g], si)
		}
	}

	// Drop runs whose generation interval a wider (merged) run subsumes:
	// the footprint of a crash after a compaction rename but before the
	// old files were deleted. Compaction only ever merges gen-contiguous
	// groups, so the merged output's interval covers exactly its inputs —
	// a subsumed file is always a superseded input, never an innocent
	// bystander between two merged neighbours.
	refs := runFiles[:0]
	for _, r := range runFiles {
		subsumed := false
		for _, o := range runFiles {
			if o != r && o.lo <= r.lo && r.hi <= o.hi {
				subsumed = true
				break
			}
		}
		if subsumed {
			if err := os.Remove(r.path); err != nil {
				return fmt.Errorf("sst: remove subsumed run %s: %w", r.path, err)
			}
			continue
		}
		refs = append(refs, r)
	}
	// Load surviving run indexes (footer only; a pre-footer legacy file is
	// streamed once), newest first.
	sort.Slice(refs, func(i, j int) bool { return refs[i].hi > refs[j].hi })
	var runs []*run
	defer func() {
		if retErr != nil {
			for _, r := range runs {
				r.file.release()
			}
		}
	}()
	var maxCovered uint64
	for _, ref := range refs {
		r, err := loadRun(ref.path, ref.lo, ref.hi, e.blockBytes, e.bloomBits)
		if err != nil {
			return err
		}
		r.level = e.levelOf(r.fileSize)
		runs = append(runs, r)
		if r.maxGen > maxCovered {
			maxCovered = r.maxGen
		}
		e.metrics.add(func(m *Metrics) { m.runsLoaded++ })
	}

	// WAL generations a run covers are superseded; delete them. The rest
	// are replayed, oldest generation first.
	var gens []uint64
	for g := range walGens {
		if g <= maxCovered {
			for _, si := range walGens[g] {
				if err := os.Remove(e.walPath(g, si)); err != nil {
					return fmt.Errorf("sst: remove superseded wal: %w", err)
				}
			}
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })

	activeGen := maxCovered + 1
	if len(gens) > 0 {
		activeGen = gens[len(gens)-1]
	}
	mem := store.NewSharded(e.nShards)
	var memBytes int64
	// Replay is streamed and batched: records flow through a bounded KV
	// buffer into the memtable, so recovery heap tracks the memtable the
	// log describes, never the log file size.
	var kvs []store.KV
	drain := func() {
		mem.PutBatch(kvs)
		kvs = kvs[:0]
	}
	replay := func(key string, v *store.Version) {
		kvs = append(kvs, store.KV{Key: key, Version: v})
		memBytes += writeSize(key, v)
		if len(kvs) >= 1024 {
			drain()
		}
	}
	for _, g := range gens {
		if g == activeGen {
			continue // replayed below, per shard, with torn-tail truncation
		}
		// A frozen generation whose flush never completed. Every append
		// to it finished before the freeze (the freeze holds all shard
		// locks), so normally it scans end to end; a short scan here —
		// power loss in the freeze window, or bit rot — still replays the
		// intact prefix but is accounted like the active generation's
		// torn tail rather than silently swallowed.
		for _, si := range walGens[g] {
			path := e.walPath(g, si)
			f, err := os.Open(path)
			if err != nil {
				return fmt.Errorf("sst: read wal: %w", err)
			}
			st, err := f.Stat()
			if err != nil {
				_ = f.Close()
				return fmt.Errorf("sst: stat wal %s: %w", path, err)
			}
			count := 0
			good := logrec.ScanReader(f, func(key string, v *store.Version) {
				replay(key, v)
				count++
			})
			drain()
			_ = f.Close()
			e.metrics.add(func(m *Metrics) {
				m.recovered += count
				if good < st.Size() {
					m.truncated++
				}
			})
		}
	}

	// The newest generation is the one a crash may have torn mid-append:
	// recover each shard file like the WAL engine does — replay the
	// intact prefix, truncate the rest, keep the handle for appending.
	e.shards = make([]*logShard, e.nShards)
	for si := 0; si < e.nShards; si++ {
		sh := &logShard{Enc: wire.NewEncoder()}
		path := e.walPath(activeGen, si)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("sst: open wal %s: %w", path, err)
		}
		st, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("sst: stat wal %s: %w", path, err)
		}
		count := 0
		good := logrec.ScanReader(f, func(key string, v *store.Version) {
			replay(key, v)
			count++
		})
		drain()
		e.metrics.add(func(m *Metrics) {
			m.recovered += count
			if good < st.Size() {
				m.truncated++
			}
		})
		if good < st.Size() {
			if err := f.Truncate(good); err != nil {
				_ = f.Close()
				return fmt.Errorf("sst: truncate torn tail of %s: %w", path, err)
			}
		}
		if _, err := f.Seek(good, 0); err != nil {
			_ = f.Close()
			return fmt.Errorf("sst: seek %s: %w", path, err)
		}
		sh.F = f
		sh.Size = good
		e.shards[si] = sh
	}

	e.gen = activeGen
	e.minGen = activeGen
	if len(gens) > 0 {
		e.minGen = gens[0]
	}
	e.memBytes.Store(memBytes)
	e.tabs.Store(&tables{active: mem, runs: runs})
	return nil
}

// writeSize approximates the memtable footprint of one version for the
// flush trigger.
func writeSize(key string, v *store.Version) int64 {
	return int64(len(key)+len(v.Value)) + versionOverhead
}

// best returns the later of two versions under last-writer-wins order.
func best(a, b *store.Version) *store.Version {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Less(b) {
		return b
	}
	return a
}

// alwaysVisible is the visibility predicate of Latest: every version
// qualifies.
var alwaysVisible store.VisibleFunc = func(*store.Version) bool { return true }

// mergeDisk folds the frozen memtable and every immutable run into cur,
// the best version the active memtable produced for key. A probe fails
// only when its run was retired mid-read (compaction released the file
// after publishing the replacement tables), so the retry reloads the
// tables — which no longer list that run — and terminates.
func (e *Engine) mergeDisk(tabs *tables, key string, visible store.VisibleFunc, cur *store.Version, sc *probeScratch) *store.Version {
	for {
		v := cur
		if tabs.frozen != nil {
			v = best(v, tabs.frozen.ReadVisible(key, visible))
		}
		ok := true
		for _, r := range tabs.runs {
			if v, ok = e.probeRun(r, key, visible, v, sc); !ok {
				break
			}
		}
		if ok {
			return v
		}
		tabs = e.tabs.Load()
	}
}

// ReadVisible implements store.Engine: the freshest visible version
// across the active memtable, the frozen memtable (if a flush is in
// progress) and every immutable run. Runs are probed without any lock —
// a Bloom-filter check, then at most one block pread each.
func (e *Engine) ReadVisible(key string, visible store.VisibleFunc) *store.Version {
	tabs := e.tabs.Load()
	v := tabs.active.ReadVisible(key, visible)
	if tabs.frozen == nil && len(tabs.runs) == 0 {
		return v
	}
	sc := probePool.Get().(*probeScratch)
	v = e.mergeDisk(tabs, key, visible, v, sc)
	probePool.Put(sc)
	return v
}

// ReadVisibleBatch implements store.Engine.
func (e *Engine) ReadVisibleBatch(keys []string, visible store.VisibleFunc) []*store.Version {
	return e.ReadVisibleBatchInto(keys, visible, nil)
}

// ReadVisibleBatchInto implements store.Engine: the active memtable is
// resolved with the striped batch read (one read-lock acquisition per
// touched stripe), then each key is merged against the frozen memtable
// and the immutable runs lock-free. With a large-enough caller buffer the
// call performs no heap allocation on the memtable-hit path — run probes
// run entirely in pooled scratch and only materialize a version when the
// run strictly wins the last-writer-wins fold.
func (e *Engine) ReadVisibleBatchInto(keys []string, visible store.VisibleFunc, out []*store.Version) []*store.Version {
	tabs := e.tabs.Load()
	out = tabs.active.ReadVisibleBatchInto(keys, visible, out)
	if tabs.frozen == nil && len(tabs.runs) == 0 {
		return out
	}
	sc := probePool.Get().(*probeScratch)
	for j, k := range keys {
		out[j] = e.mergeDisk(tabs, k, visible, out[j], sc)
	}
	probePool.Put(sc)
	return out
}

// Latest implements store.Engine.
func (e *Engine) Latest(key string) *store.Version {
	tabs := e.tabs.Load()
	v := tabs.active.Latest(key)
	if tabs.frozen == nil && len(tabs.runs) == 0 {
		return v
	}
	sc := probePool.Get().(*probeScratch)
	v = e.mergeDisk(tabs, key, alwaysVisible, v, sc)
	probePool.Put(sc)
	return v
}

// GC implements store.Engine.
func (e *Engine) GC(oldest hlc.Timestamp) int { return e.GCStats(oldest).Removed }

// keySet collects the distinct live keys across every tier under flushMu:
// memtable keys plus a streaming pass over each run file, skipping keys
// whose whole chain the GC overlay cut.
func (e *Engine) keySet() map[string]struct{} {
	tabs := e.tabs.Load()
	seen := make(map[string]struct{})
	collect := func(k string) { seen[k] = struct{}{} }
	tabs.active.ForEachKey(collect)
	if tabs.frozen != nil {
		tabs.frozen.ForEachKey(collect)
	}
	for _, r := range tabs.runs {
		it := newRunIterator(e, r)
		if it == nil {
			continue // retired: impossible under flushMu, but stay safe
		}
		for it.next() {
			if r.cuts[it.key] >= len(it.chain) {
				continue
			}
			seen[it.key] = struct{}{}
		}
		it.close()
	}
	return seen
}

// Keys implements store.Engine: the number of distinct keys across every
// tier (a key flushed to a run and rewritten since counts once). With
// runs present this streams the run files — it is a counting method, not
// a hot path.
func (e *Engine) Keys() int {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	tabs := e.tabs.Load()
	if tabs.frozen == nil && len(tabs.runs) == 0 {
		return tabs.active.Keys()
	}
	return len(e.keySet())
}

// Versions implements store.Engine. Every version lives in exactly one
// tier, so the tier totals sum without deduplication; run totals come
// from the resident counters, never from disk.
func (e *Engine) Versions() int {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	tabs := e.tabs.Load()
	n := tabs.active.Versions()
	if tabs.frozen != nil {
		n += tabs.frozen.Versions()
	}
	for _, r := range tabs.runs {
		n += r.liveVersions()
	}
	return n
}

// VersionsOf implements store.Engine: memtable counts plus one block
// read per run that may hold the key.
func (e *Engine) VersionsOf(key string) int {
	for {
		tabs := e.tabs.Load()
		n := tabs.active.VersionsOf(key)
		if tabs.frozen != nil {
			n += tabs.frozen.VersionsOf(key)
		}
		ok := true
		for _, r := range tabs.runs {
			var m int
			if m, ok = e.countKey(r, key); !ok {
				break // run retired mid-read: retry on fresh tables
			}
			n += m
		}
		if ok {
			return n
		}
	}
}

// NumShards implements store.Engine.
func (e *Engine) NumShards() int { return e.nShards }

// ForEachKey implements store.Engine: each distinct key is yielded once.
// The deduplicated key list is snapshotted first, so fn runs without any
// engine lock held and may call back into the engine.
func (e *Engine) ForEachKey(fn func(key string)) {
	e.flushMu.Lock()
	seen := e.keySet()
	e.flushMu.Unlock()
	for k := range seen {
		fn(k)
	}
}

// Scan implements store.Engine: a streaming merge of the memtables and
// every run file over [start, end), in ascending key order. Run files are
// read block-at-a-time through iterators that hold a file reference for
// the whole scan (acquired under flushMu, so a concurrent compaction can
// retire but never close them mid-scan), and each yielded version is a
// materialized copy — fn may retain it. fn runs with no engine lock held.
func (e *Engine) Scan(start, end string, visible store.VisibleFunc, fn func(key string, v *store.Version) bool) error {
	e.flushMu.Lock()
	tabs := e.tabs.Load()
	iters := make([]*runIterator, 0, len(tabs.runs))
	runs := make([]*run, 0, len(tabs.runs))
	for _, r := range tabs.runs {
		if it := newRunIterator(e, r); it != nil {
			iters = append(iters, it)
			runs = append(runs, r)
		}
	}
	e.flushMu.Unlock()
	defer func() {
		for _, it := range iters {
			it.close()
		}
	}()

	inRange := func(k string) bool { return k >= start && (end == "" || k < end) }
	memKeys := sortedMemKeys(tabs.active, inRange)
	var frozenKeys []string
	if tabs.frozen != nil {
		frozenKeys = sortedMemKeys(tabs.frozen, inRange)
	}
	live := make([]bool, len(iters))
	for i, it := range iters {
		it.seek(start)
		live[i] = it.next() && (end == "" || it.key < end)
	}

	mi, fi := 0, 0
	for {
		key := ""
		have := false
		if mi < len(memKeys) {
			key, have = memKeys[mi], true
		}
		if fi < len(frozenKeys) && (!have || frozenKeys[fi] < key) {
			key, have = frozenKeys[fi], true
		}
		for i, it := range iters {
			if live[i] && (!have || it.key < key) {
				key, have = it.key, true
			}
		}
		if !have {
			break
		}
		var v *store.Version
		if mi < len(memKeys) && memKeys[mi] == key {
			v = best(v, tabs.active.ReadVisible(key, visible))
			mi++
		}
		if fi < len(frozenKeys) && frozenKeys[fi] == key {
			v = best(v, tabs.frozen.ReadVisible(key, visible))
			fi++
		}
		for i, it := range iters {
			if !live[i] || it.key != key {
				continue
			}
			if cut := runs[i].cuts[key]; cut < len(it.chain) {
				v = best(v, store.ReadVisibleChain(it.chain[cut:], visible))
			}
			live[i] = it.next() && (end == "" || it.key < end)
		}
		if v != nil && v.Value != nil {
			if !fn(key, v) {
				return nil
			}
		}
	}
	for _, it := range iters {
		if it.err != nil {
			return it.err
		}
	}
	return nil
}

// sortedMemKeys snapshots a memtable's keys matching the range predicate
// in ascending order.
func sortedMemKeys(s *store.Store, inRange func(string) bool) []string {
	var keys []string
	s.ForEachKey(func(k string) {
		if inRange(k) {
			keys = append(keys, k)
		}
	})
	sort.Strings(keys)
	return keys
}

// Healthy implements store.Engine: it returns the first WAL append/sync,
// flush or compaction failure the engine has recorded, or nil while the
// write path is fully intact. The engine keeps serving from memory after
// a failure, so this signal is how servers and benchmarks detect a
// silently degraded shard log.
func (e *Engine) Healthy() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Metrics returns the engine's counters.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// Runs returns the number of live sorted runs (for tests and monitoring).
func (e *Engine) Runs() int {
	return len(e.tabs.Load().runs)
}

// Levels returns the number of occupied size levels (the deepest run's
// level plus one), 0 with no runs.
func (e *Engine) Levels() int {
	n := 0
	for _, r := range e.tabs.Load().runs {
		if r.level+1 > n {
			n = r.level + 1
		}
	}
	return n
}

// ResidentIndexBytes estimates the memory the run index keeps resident:
// fence keys, Bloom filter bits and GC overlay entries. This is the
// number that must stay far below the stored data size — the engine's
// claim to handling datasets larger than RAM.
func (e *Engine) ResidentIndexBytes() int64 {
	var n int64
	for _, r := range e.tabs.Load().runs {
		for _, fe := range r.fences {
			n += int64(len(fe.firstKey)) + 24 // string header + offset + length
		}
		n += r.filter.sizeBytes()
		for k := range r.cuts {
			n += int64(len(k)) + 32 // map entry estimate
		}
	}
	return n
}

// recordErr remembers the first write-path failure, printing it to stderr
// right away — an operator must learn that durability degraded when it
// happens, not at Close. The in-memory tiers stay authoritative for reads
// either way; Healthy surfaces the error while the engine runs.
func (e *Engine) recordErr(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	first := e.err == nil
	if first {
		e.err = err
	}
	e.mu.Unlock()
	if first {
		fmt.Fprintf(os.Stderr, "sst: durability degraded in %s: %v\n", e.dir, err)
	}
}

// markCrashed poisons the engine after a simulated kill (test hooks):
// Close releases resources without syncing or flushing anything, so the
// directory is left exactly as the crash point shaped it.
func (e *Engine) markCrashed() {
	e.mu.Lock()
	e.crashed = true
	e.mu.Unlock()
}

// Close implements store.Engine: it stops the background work, forces the
// active WAL generation to stable storage (a clean shutdown is always
// fully durable, whatever the fsync policy), closes the files — including
// the run descriptors, released through their refcounts so a straggling
// read finishes first — and returns the first error the write path hit.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		err := e.err
		e.mu.Unlock()
		return err
	}
	e.closed = true
	crashed := e.crashed
	e.mu.Unlock()

	close(e.stop)
	e.wg.Wait()
	for _, sh := range e.shards {
		sh.Mu.Lock()
		if !crashed {
			if err := sh.F.Sync(); err != nil {
				e.recordErr(fmt.Errorf("sst: close sync: %w", err))
			}
		}
		if err := sh.F.Close(); err != nil && !crashed {
			e.recordErr(fmt.Errorf("sst: close: %w", err))
		}
		sh.Mu.Unlock()
	}
	if tabs := e.tabs.Load(); tabs != nil {
		for _, r := range tabs.runs {
			r.file.release() // drops the table reference taken at creation
		}
	}
	_ = e.lock.Close() // releases the directory lock
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
