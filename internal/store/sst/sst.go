// Package sst implements a memtable+sorted-run (LSM-style) storage
// engine behind store.Engine.
//
// Writes land in an active memtable — the same lock-striped version store
// the memory engine uses — and are covered by a write-ahead log that
// spans ONLY the active memtable: per-shard log files named by a flush
// generation, using the same FNV-1a striping and the shared logrec record
// format. When the memtable grows past the flush threshold it is frozen
// (a fresh memtable and a fresh WAL generation take over under the shard
// locks) and written out in the background as one immutable sorted run:
// keys in sorted order, each key's version chain in last-writer-wins
// (timestamp) order, every record length-prefixed and CRC32-checksummed.
// Once the run is durable the WAL generations it covers are deleted — the
// log never grows past one memtable's worth of writes.
//
// Snapshot reads are served lock-free from the immutable side: a run's
// in-memory index is a plain map built at flush/load time and never
// mutated (GC and compaction publish replacement indexes through one
// atomic pointer), so the multi-version visibility scan that backs Wren's
// nonblocking reads touches no lock at all for flushed data. Only the
// active-memtable probe takes its striped read lock. This maps the
// paper's stable-snapshot property onto storage: a snapshot read's
// versions live overwhelmingly in immutable runs, exactly because the
// snapshot is old enough to be stable.
//
// Background merge compaction folds all runs into one — applying the GC
// decisions already taken against the in-memory indexes, so pruned
// versions and tombstoned chains whose deletion became stable leave the
// disk — and startup recovery reloads run indexes with one sequential
// scan per file (no mmap), replays the WAL generations no run covers,
// and truncates a torn WAL tail by the shared logrec rules.
package sst

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/fsutil"
	"wren/internal/store/logrec"
	"wren/internal/store/wal"
	"wren/internal/wire"
)

const (
	// DefaultFlushBytes is the approximate memtable payload size that
	// triggers a background flush to a sorted run.
	DefaultFlushBytes = 4 << 20
	// DefaultCompactRuns is how many sorted runs may accumulate before a
	// merge compaction folds them into one.
	DefaultCompactRuns = 4
	// DefaultCompactGarbage is how many GC-pruned versions may linger in
	// run files before a merge compaction rewrites them out.
	DefaultCompactGarbage = 4096
	// DefaultFsyncInterval is the timer period of the interval fsync
	// policy (shared with the WAL engine).
	DefaultFsyncInterval = 10 * time.Millisecond

	// versionOverhead approximates the per-version bookkeeping bytes used
	// when sizing the memtable for the flush trigger.
	versionOverhead = 64
)

// Options configures an SST engine.
type Options struct {
	// Dir is the data directory (WAL generations, run files, meta, lock).
	// Created if missing. One engine must own it exclusively.
	Dir string
	// Shards is the stripe count (0 selects store.DefaultShards; rounded
	// up to a power of two). Persisted at creation; reopening with a
	// different value adopts the persisted count.
	Shards int
	// Fsync is the WAL group-commit policy for the active memtable's log:
	// wal.FsyncAlways, wal.FsyncInterval ("" default) or wal.FsyncNever.
	// Run files are always fsynced before they count as durable,
	// regardless of policy.
	Fsync string
	// FsyncInterval overrides the sync timer period for the interval
	// policy (0 selects DefaultFsyncInterval).
	FsyncInterval time.Duration
	// FlushBytes overrides the memtable size that triggers a background
	// flush (0 selects DefaultFlushBytes; negative disables auto-flush —
	// Flush can still be called explicitly).
	FlushBytes int64
	// CompactRuns overrides how many runs trigger a merge compaction
	// (0 selects DefaultCompactRuns; negative disables compaction).
	CompactRuns int
	// CompactGarbage overrides how many GC-pruned versions lingering in
	// run files trigger a merge compaction (0 selects
	// DefaultCompactGarbage).
	CompactGarbage int

	// Test-only crash simulation: abort the flush right after the run
	// rename (before the WAL generations are deleted), or abort the
	// compaction right after the merged-run rename (before the old run
	// files are deleted). The engine is poisoned afterwards — Close skips
	// every sync and flush, emulating the on-disk state of a kill at that
	// instant.
	crashAfterFlushRename   bool
	crashAfterCompactRename bool
}

// run is one immutable sorted run: a durable file plus the in-memory
// index serving lock-free reads. It covers a contiguous range of WAL
// generations. The index map is never mutated after construction; GC
// publishes pruned replacements wholesale.
//
// dead records the keys GC removed from the index entirely while the
// FILE still holds their versions (files only shrink at compaction).
// index ∪ dead is therefore exactly the key set recovery would reload
// from the file — the set GC must consult before letting a tombstone
// leave the memtable, because a tombstone whose WAL generation gets
// superseded is the only durable witness shadowing those file-resident
// versions. Compaction rewrites the file from the index and resets dead.
type run struct {
	path           string
	minGen, maxGen uint64
	index          map[string][]*store.Version
	versions       int // live versions in index
	dead           map[string]struct{}
}

// fileHas reports whether the run's FILE may still contain versions of
// key, regardless of what the pruned index shows.
func (r *run) fileHas(key string) bool {
	if _, ok := r.index[key]; ok {
		return true
	}
	_, ok := r.dead[key]
	return ok
}

// tables is the read snapshot: one atomic pointer swap publishes any
// change to the source set, so readers always see a consistent tiering.
// frozen is non-nil only while a flush is writing its run.
type tables struct {
	active *store.Store
	frozen *store.Store
	runs   []*run // newest first
}

// Engine is the memtable+sorted-run storage engine.
type Engine struct {
	dir            string
	fsync          string
	flushBytes     int64
	compactRuns    int
	compactGarbage int
	opts           Options
	mask           uint32
	nShards        int

	tabs   atomic.Pointer[tables]
	shards []*logShard // active-memtable WAL, one log per memtable stripe

	// flushMu serializes every structural change to the tiering — flush,
	// compaction, GC, recovery-time setup — and the counting methods that
	// need a non-overlapping view. The read and write hot paths never
	// take it.
	flushMu sync.Mutex
	gen     uint64 // active WAL generation (flushMu; written under all shard locks)
	minGen  uint64 // lowest generation whose data lives only in the memtable (flushMu)
	garbage int    // versions GC pruned from run indexes since the last compaction (flushMu)

	memBytes atomic.Int64 // approximate active-memtable payload size
	flushing atomic.Bool  // a background flush is scheduled or running

	lock *os.File // exclusive advisory lock on the data directory

	mu      sync.Mutex // guards err, closed, crashed
	err     error      // first write-path failure, surfaced by Healthy/Close
	closed  bool
	crashed bool // test hooks only: simulate a kill
	stop    chan struct{}
	wg      sync.WaitGroup
	metrics Metrics
}

// Metrics counts engine-level events for tests and monitoring.
type Metrics struct {
	mu          sync.Mutex
	flushes     int
	compactions int
	recovered   int
	truncated   int
	runsLoaded  int
}

func (m *Metrics) add(f func(*Metrics)) { m.mu.Lock(); f(m); m.mu.Unlock() }

// Flushes returns how many memtable flushes have written a run.
func (m *Metrics) Flushes() int { m.mu.Lock(); defer m.mu.Unlock(); return m.flushes }

// Compactions returns how many merge compactions have run.
func (m *Metrics) Compactions() int { m.mu.Lock(); defer m.mu.Unlock(); return m.compactions }

// Recovered returns how many WAL records startup recovery replayed.
func (m *Metrics) Recovered() int { m.mu.Lock(); defer m.mu.Unlock(); return m.recovered }

// TruncatedShards returns how many WAL shard files had a torn tail cut
// off during recovery.
func (m *Metrics) TruncatedShards() int { m.mu.Lock(); defer m.mu.Unlock(); return m.truncated }

// RunsLoaded returns how many sorted-run files recovery loaded.
func (m *Metrics) RunsLoaded() int { m.mu.Lock(); defer m.mu.Unlock(); return m.runsLoaded }

var _ store.Engine = (*Engine)(nil)

// Open creates or recovers an SST engine in opts.Dir: leftover temp files
// are removed, run files are loaded (dropping any run subsumed by a wider
// merged run — the footprint of a crash mid-compaction), WAL generations
// a run already covers are deleted, and the rest are replayed into a
// fresh memtable, truncating a torn tail.
func Open(opts Options) (*Engine, error) {
	policy, err := wal.ParseFsync(opts.Fsync)
	if err != nil {
		return nil, fmt.Errorf("sst: %w", err)
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	flushBytes := opts.FlushBytes
	if flushBytes == 0 {
		flushBytes = DefaultFlushBytes
	}
	compactRuns := opts.CompactRuns
	if compactRuns == 0 {
		compactRuns = DefaultCompactRuns
	}
	compactGarbage := opts.CompactGarbage
	if compactGarbage == 0 {
		compactGarbage = DefaultCompactGarbage
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("sst: create dir: %w", err)
	}
	lock, err := fsutil.ClaimDir(opts.Dir, "sst")
	if err != nil {
		return nil, fmt.Errorf("sst: %w", err)
	}
	fail := func(err error) (*Engine, error) {
		_ = lock.Close()
		return nil, err
	}

	n, err := fsutil.LoadOrInitShards(opts.Dir, "sst.meta", store.ResolveShards(opts.Shards), store.MaxShards)
	if err != nil {
		return fail(fmt.Errorf("sst: %w", err))
	}
	e := &Engine{
		dir:            opts.Dir,
		fsync:          policy,
		flushBytes:     flushBytes,
		compactRuns:    compactRuns,
		compactGarbage: compactGarbage,
		opts:           opts,
		mask:           uint32(n - 1),
		nShards:        n,
		lock:           lock,
		stop:           make(chan struct{}),
	}
	if err := e.recover(); err != nil {
		for _, sh := range e.shards {
			if sh != nil && sh.F != nil {
				_ = sh.F.Close()
			}
		}
		return fail(err)
	}
	// One directory sync covers every temp-file removal, superseded-WAL
	// deletion and log creation above.
	if err := fsutil.SyncDir(opts.Dir); err != nil {
		_ = e.Close()
		return nil, fmt.Errorf("sst: sync dir: %w", err)
	}
	if policy == wal.FsyncInterval {
		e.wg.Add(1)
		go e.fsyncLoop(opts.FsyncInterval)
	}
	return e, nil
}

func (e *Engine) walPath(gen uint64, si int) string {
	return filepath.Join(e.dir, fmt.Sprintf("wal-%06d-%05d.log", gen, si))
}

func (e *Engine) runPath(minGen, maxGen uint64) string {
	return filepath.Join(e.dir, fmt.Sprintf("run-%06d-%06d.sst", minGen, maxGen))
}

// recover rebuilds the engine state from the data directory. Generations
// start at 1, so a fresh directory begins with WAL generation 1 and no
// runs.
func (e *Engine) recover() error {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return fmt.Errorf("sst: read dir: %w", err)
	}
	var runFiles []*run
	walGens := map[uint64][]int{} // generation -> shard indexes present
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A crash mid-flush or mid-compaction: the rename never
			// happened, so the file holds nothing durable.
			if err := os.Remove(filepath.Join(e.dir, name)); err != nil {
				return fmt.Errorf("sst: remove leftover %s: %w", name, err)
			}
		case strings.HasSuffix(name, ".sst"):
			var lo, hi uint64
			if _, err := fmt.Sscanf(name, "run-%d-%d.sst", &lo, &hi); err != nil || lo == 0 || hi < lo {
				return fmt.Errorf("sst: unrecognized run file %s", name)
			}
			runFiles = append(runFiles, &run{path: filepath.Join(e.dir, name), minGen: lo, maxGen: hi})
		case strings.HasSuffix(name, ".log"):
			var g uint64
			var si int
			if _, err := fmt.Sscanf(name, "wal-%d-%d.log", &g, &si); err != nil || g == 0 {
				return fmt.Errorf("sst: unrecognized wal file %s", name)
			}
			walGens[g] = append(walGens[g], si)
		}
	}

	// Drop runs subsumed by a wider (merged) run: the footprint of a
	// crash after a compaction rename but before the old files were
	// deleted.
	runs := runFiles[:0]
	for _, r := range runFiles {
		subsumed := false
		for _, o := range runFiles {
			if o != r && o.minGen <= r.minGen && r.maxGen <= o.maxGen {
				subsumed = true
				break
			}
		}
		if subsumed {
			if err := os.Remove(r.path); err != nil {
				return fmt.Errorf("sst: remove subsumed run %s: %w", r.path, err)
			}
			continue
		}
		runs = append(runs, r)
	}
	// Load surviving run indexes, newest first. Run files are only ever
	// renamed into place complete, so a scan that stops early means real
	// corruption — fail loudly rather than silently dropping durable
	// versions.
	sort.Slice(runs, func(i, j int) bool { return runs[i].maxGen > runs[j].maxGen })
	var maxCovered uint64
	for _, r := range runs {
		buf, err := os.ReadFile(r.path)
		if err != nil {
			return fmt.Errorf("sst: read run %s: %w", r.path, err)
		}
		r.index = make(map[string][]*store.Version)
		good := logrec.Scan(buf, func(key string, v *store.Version) {
			// Flush wrote each key's chain contiguously in LWW order, so
			// appending preserves the chain invariant.
			r.index[key] = append(r.index[key], v)
			r.versions++
		})
		if good != len(buf) {
			return fmt.Errorf("sst: corrupt run file %s (%d of %d bytes intact)", r.path, good, len(buf))
		}
		if r.maxGen > maxCovered {
			maxCovered = r.maxGen
		}
		e.metrics.add(func(m *Metrics) { m.runsLoaded++ })
	}

	// WAL generations a run covers are superseded; delete them. The rest
	// are replayed, oldest generation first.
	var gens []uint64
	for g := range walGens {
		if g <= maxCovered {
			for _, si := range walGens[g] {
				if err := os.Remove(e.walPath(g, si)); err != nil {
					return fmt.Errorf("sst: remove superseded wal: %w", err)
				}
			}
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })

	activeGen := maxCovered + 1
	if len(gens) > 0 {
		activeGen = gens[len(gens)-1]
	}
	mem := store.NewSharded(e.nShards)
	var memBytes int64
	for _, g := range gens {
		if g == activeGen {
			continue // replayed below, per shard, with torn-tail truncation
		}
		// A frozen generation whose flush never completed. Every append
		// to it finished before the freeze (the freeze holds all shard
		// locks), so normally it scans end to end; a short scan here —
		// power loss in the freeze window, or bit rot — still replays the
		// intact prefix but is accounted like the active generation's
		// torn tail rather than silently swallowed.
		for _, si := range walGens[g] {
			buf, err := os.ReadFile(e.walPath(g, si))
			if err != nil {
				return fmt.Errorf("sst: read wal: %w", err)
			}
			var kvs []store.KV
			good := logrec.Scan(buf, func(key string, v *store.Version) {
				kvs = append(kvs, store.KV{Key: key, Version: v})
				memBytes += writeSize(key, v)
			})
			mem.PutBatch(kvs)
			e.metrics.add(func(m *Metrics) {
				m.recovered += len(kvs)
				if good < len(buf) {
					m.truncated++
				}
			})
		}
	}

	// The newest generation is the one a crash may have torn mid-append:
	// recover each shard file like the WAL engine does — replay the
	// intact prefix, truncate the rest, keep the handle for appending.
	e.shards = make([]*logShard, e.nShards)
	for si := 0; si < e.nShards; si++ {
		sh := &logShard{Enc: wire.NewEncoder()}
		path := e.walPath(activeGen, si)
		buf, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("sst: read wal %s: %w", path, err)
		}
		var kvs []store.KV
		good := logrec.Scan(buf, func(key string, v *store.Version) {
			kvs = append(kvs, store.KV{Key: key, Version: v})
			memBytes += writeSize(key, v)
		})
		mem.PutBatch(kvs)
		e.metrics.add(func(m *Metrics) {
			m.recovered += len(kvs)
			if good < len(buf) {
				m.truncated++
			}
		})
		f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("sst: open wal %s: %w", path, err)
		}
		if good < len(buf) {
			if err := f.Truncate(int64(good)); err != nil {
				_ = f.Close()
				return fmt.Errorf("sst: truncate torn tail of %s: %w", path, err)
			}
		}
		if _, err := f.Seek(int64(good), 0); err != nil {
			_ = f.Close()
			return fmt.Errorf("sst: seek %s: %w", path, err)
		}
		sh.F = f
		sh.Size = int64(good)
		e.shards[si] = sh
	}

	e.gen = activeGen
	e.minGen = activeGen
	if len(gens) > 0 {
		e.minGen = gens[0]
	}
	e.memBytes.Store(memBytes)
	e.tabs.Store(&tables{active: mem, runs: runs})
	return nil
}

// writeSize approximates the memtable footprint of one version for the
// flush trigger.
func writeSize(key string, v *store.Version) int64 {
	return int64(len(key)+len(v.Value)) + versionOverhead
}

// best returns the later of two versions under last-writer-wins order.
func best(a, b *store.Version) *store.Version {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Less(b) {
		return b
	}
	return a
}

// ReadVisible implements store.Engine: the freshest visible version
// across the active memtable, the frozen memtable (if a flush is in
// progress) and every immutable run. Runs are probed without any lock.
func (e *Engine) ReadVisible(key string, visible store.VisibleFunc) *store.Version {
	tabs := e.tabs.Load()
	v := tabs.active.ReadVisible(key, visible)
	if tabs.frozen != nil {
		v = best(v, tabs.frozen.ReadVisible(key, visible))
	}
	for _, r := range tabs.runs {
		v = best(v, store.ReadVisibleChain(r.index[key], visible))
	}
	return v
}

// ReadVisibleBatch implements store.Engine.
func (e *Engine) ReadVisibleBatch(keys []string, visible store.VisibleFunc) []*store.Version {
	return e.ReadVisibleBatchInto(keys, visible, nil)
}

// ReadVisibleBatchInto implements store.Engine: the active memtable is
// resolved with the striped batch read (one read-lock acquisition per
// touched stripe), then each key is merged against the frozen memtable
// and the immutable runs lock-free. With a large-enough caller buffer the
// call performs no heap allocation, preserving the zero-alloc slice-read
// path.
func (e *Engine) ReadVisibleBatchInto(keys []string, visible store.VisibleFunc, out []*store.Version) []*store.Version {
	tabs := e.tabs.Load()
	out = tabs.active.ReadVisibleBatchInto(keys, visible, out)
	if tabs.frozen == nil && len(tabs.runs) == 0 {
		return out
	}
	for j, k := range keys {
		v := out[j]
		if tabs.frozen != nil {
			v = best(v, tabs.frozen.ReadVisible(k, visible))
		}
		for _, r := range tabs.runs {
			v = best(v, store.ReadVisibleChain(r.index[k], visible))
		}
		out[j] = v
	}
	return out
}

// Latest implements store.Engine.
func (e *Engine) Latest(key string) *store.Version {
	tabs := e.tabs.Load()
	v := tabs.active.Latest(key)
	if tabs.frozen != nil {
		v = best(v, tabs.frozen.Latest(key))
	}
	for _, r := range tabs.runs {
		if chain := r.index[key]; len(chain) > 0 {
			v = best(v, chain[len(chain)-1])
		}
	}
	return v
}

// GC implements store.Engine.
func (e *Engine) GC(oldest hlc.Timestamp) int { return e.GCStats(oldest).Removed }

// Keys implements store.Engine: the number of distinct keys across every
// tier (a key flushed to a run and rewritten since counts once).
func (e *Engine) Keys() int {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	tabs := e.tabs.Load()
	if tabs.frozen == nil && len(tabs.runs) == 0 {
		return tabs.active.Keys()
	}
	seen := make(map[string]struct{})
	collect := func(k string) { seen[k] = struct{}{} }
	tabs.active.ForEachKey(collect)
	if tabs.frozen != nil {
		tabs.frozen.ForEachKey(collect)
	}
	for _, r := range tabs.runs {
		for k := range r.index {
			seen[k] = struct{}{}
		}
	}
	return len(seen)
}

// Versions implements store.Engine. Every version lives in exactly one
// tier, so the tier totals sum without deduplication.
func (e *Engine) Versions() int {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	tabs := e.tabs.Load()
	n := tabs.active.Versions()
	if tabs.frozen != nil {
		n += tabs.frozen.Versions()
	}
	for _, r := range tabs.runs {
		n += r.versions
	}
	return n
}

// VersionsOf implements store.Engine.
func (e *Engine) VersionsOf(key string) int {
	tabs := e.tabs.Load()
	n := tabs.active.VersionsOf(key)
	if tabs.frozen != nil {
		n += tabs.frozen.VersionsOf(key)
	}
	for _, r := range tabs.runs {
		n += len(r.index[key])
	}
	return n
}

// NumShards implements store.Engine.
func (e *Engine) NumShards() int { return e.nShards }

// ForEachKey implements store.Engine: each distinct key is yielded once.
// The deduplicated key list is snapshotted first, so fn runs without any
// engine lock held and may call back into the engine.
func (e *Engine) ForEachKey(fn func(key string)) {
	e.flushMu.Lock()
	tabs := e.tabs.Load()
	seen := make(map[string]struct{})
	collect := func(k string) { seen[k] = struct{}{} }
	tabs.active.ForEachKey(collect)
	if tabs.frozen != nil {
		tabs.frozen.ForEachKey(collect)
	}
	for _, r := range tabs.runs {
		for k := range r.index {
			seen[k] = struct{}{}
		}
	}
	e.flushMu.Unlock()
	for k := range seen {
		fn(k)
	}
}

// Healthy implements store.Engine: it returns the first WAL append/sync,
// flush or compaction failure the engine has recorded, or nil while the
// write path is fully intact. The engine keeps serving from memory after
// a failure, so this signal is how servers and benchmarks detect a
// silently degraded shard log.
func (e *Engine) Healthy() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Metrics returns the engine's counters.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// Runs returns the number of live sorted runs (for tests and monitoring).
func (e *Engine) Runs() int {
	return len(e.tabs.Load().runs)
}

// recordErr remembers the first write-path failure, printing it to stderr
// right away — an operator must learn that durability degraded when it
// happens, not at Close. The in-memory tiers stay authoritative for reads
// either way; Healthy surfaces the error while the engine runs.
func (e *Engine) recordErr(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	first := e.err == nil
	if first {
		e.err = err
	}
	e.mu.Unlock()
	if first {
		fmt.Fprintf(os.Stderr, "sst: durability degraded in %s: %v\n", e.dir, err)
	}
}

// markCrashed poisons the engine after a simulated kill (test hooks):
// Close releases resources without syncing or flushing anything, so the
// directory is left exactly as the crash point shaped it.
func (e *Engine) markCrashed() {
	e.mu.Lock()
	e.crashed = true
	e.mu.Unlock()
}

// Close implements store.Engine: it stops the background work, forces the
// active WAL generation to stable storage (a clean shutdown is always
// fully durable, whatever the fsync policy), closes the files, and
// returns the first error the write path hit.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		err := e.err
		e.mu.Unlock()
		return err
	}
	e.closed = true
	crashed := e.crashed
	e.mu.Unlock()

	close(e.stop)
	e.wg.Wait()
	for _, sh := range e.shards {
		sh.Mu.Lock()
		if !crashed {
			if err := sh.F.Sync(); err != nil {
				e.recordErr(fmt.Errorf("sst: close sync: %w", err))
			}
		}
		if err := sh.F.Close(); err != nil && !crashed {
			e.recordErr(fmt.Errorf("sst: close: %w", err))
		}
		sh.Mu.Unlock()
	}
	_ = e.lock.Close() // releases the directory lock
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
