package sst

import (
	"fmt"
	"os"
	"time"

	"wren/internal/store"
	"wren/internal/store/logrec"
	"wren/internal/store/shardlog"
	"wren/internal/store/wal"
)

// logShard is the shared per-shard log state (see shardlog.Shard). Mu
// also covers the memtable insert of an append, and the freeze step of a
// flush acquires EVERY shard lock while swapping in the new memtable and
// WAL generation — so any write either fully lands in the old
// generation+memtable or fully in the new one, never split. A shard whose
// append path failed stays frozen (memory authoritative) until the next
// flush rotates in a fresh generation file.
type logShard = shardlog.Shard

// onErr adapts recordErr to the shardlog callbacks, prefixing the engine
// name.
func (e *Engine) onErr(err error) { e.recordErr(fmt.Errorf("sst: %w", err)) }

// Put implements store.Engine.
func (e *Engine) Put(key string, v *store.Version) {
	sh := e.shards[store.Fingerprint(key)&e.mask]
	sh.Mu.Lock()
	sh.Enc.Reset()
	logrec.Append(sh.Enc, key, v)
	sh.AppendLocked(e.onErr)
	if e.fsync == wal.FsyncAlways && !sh.Failed {
		// Syncing inside the shard lock is safe against rotation: the
		// freeze needs every shard lock, so sh.F cannot change under us.
		if err := sh.F.Sync(); err != nil {
			e.recordErr(fmt.Errorf("sst: sync: %w", err))
		}
		sh.Dirty = false
	}
	// The memtable insert happens under the WAL shard lock, so a freeze
	// can never interleave between the log append and the insert.
	e.tabs.Load().active.Put(key, v)
	sh.Mu.Unlock()
	e.noteWrite(writeSize(key, v))
}

// PutBatch implements store.Engine: all records of one batch destined for
// the same shard are appended with a single write (group commit). Under
// fsync=always the batch pays ONE coalesced sync phase across every
// touched shard log, exactly like the WAL engine; the handles are
// captured at append time so a concurrent memtable freeze rotating the
// generation cannot divert the sync onto the fresh empty file (see
// shardlog.SyncFiles).
func (e *Engine) PutBatch(kvs []store.KV) {
	switch len(kvs) {
	case 0:
		return
	case 1:
		e.Put(kvs[0].Key, kvs[0].Version)
		return
	}
	groupSync := e.fsync == wal.FsyncAlways
	var touched []*os.File
	var bytes int64
	store.ForEachShardGroup(e.mask, kvs, func(id uint32, group []store.KV) {
		sh := e.shards[id]
		sh.Mu.Lock()
		sh.Enc.Reset()
		for _, kv := range group {
			logrec.Append(sh.Enc, kv.Key, kv.Version)
			bytes += writeSize(kv.Key, kv.Version)
		}
		sh.AppendLocked(e.onErr)
		e.tabs.Load().active.PutBatch(group)
		if groupSync && !sh.Failed {
			touched = append(touched, sh.F)
			sh.Dirty = false
		}
		sh.Mu.Unlock()
	})
	if groupSync {
		shardlog.SyncFiles(touched, e.onErr)
	}
	e.noteWrite(bytes)
}

// noteWrite tracks the approximate memtable size and schedules a
// background flush once it crosses the threshold.
func (e *Engine) noteWrite(n int64) {
	if e.flushBytes < 0 {
		return
	}
	if e.memBytes.Add(n) < e.flushBytes {
		return
	}
	e.triggerFlush()
}

// triggerFlush schedules at most one background flush at a time.
func (e *Engine) triggerFlush() {
	if !e.flushing.CompareAndSwap(false, true) {
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.flushing.Store(false)
		return
	}
	e.wg.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.wg.Done()
		defer e.flushing.Store(false)
		_ = e.Flush()
	}()
}

// fsyncLoop flushes dirty shard logs on a timer (interval policy). An
// append racing in re-sets Dirty, keeping the one-interval loss bound; a
// handle the freeze closed is skipped — its records are stable through
// the run that superseded it.
func (e *Engine) fsyncLoop(every time.Duration) {
	defer e.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			for _, sh := range e.shards {
				sh.SyncIfDirty(e.onErr)
			}
		case <-e.stop:
			return
		}
	}
}
