// Run file format (v2): the on-disk layout behind the sparse block index.
//
//	[ data region: logrec version frames, grouped into blocks ]
//	[ footer: one logrec frame describing the blocks             ]
//	[ trailer: 4-byte LE footer-frame length + 8-byte magic      ]
//
// The data region is the PR 4 format unchanged — one length-prefixed,
// CRC32-checksummed record per version, keys ascending, each key's chain
// contiguous in last-writer-wins order — cut into blocks of roughly
// BlockBytes at key boundaries, so one key's whole chain always lives in
// exactly one block. The footer carries one fence (first key, length) per
// block plus the version/key counts and the run's Bloom filter; it is
// itself a logrec frame, so it tears and checksums by the same rules as
// every other record in the data directory. Only the fences and the
// filter stay resident: a point read binary-searches the fence table,
// preads one block and scans its frames; startup reads the trailer and
// footer only. A file without the trailer magic is a legacy (pre-footer)
// run: it is streamed once at load to rebuild fences, counts and filter
// in memory, and gains a footer the next time compaction rewrites it.
package sst

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/logrec"
	"wren/internal/wire"
)

const (
	runMagic       = "wrenSST2"
	runTrailerSize = 4 + 8 // LE32 footer length + magic (untyped: mixes with int64 offsets)
	runFormatV2    = 2
)

var _ = [1]struct{}{}[runTrailerSize-4-len(runMagic)] // magic length must match the trailer layout

// fence locates one block: the first key it holds and its byte range in
// the data region. Fence keys are the only per-key state a run keeps in
// memory.
type fence struct {
	firstKey string
	off      int64
	length   int
}

// runFile is a run's refcounted file handle. Runs are retired while
// readers may still be probing them (compaction publishes the replacement
// tables first, then releases its table reference), so the descriptor
// closes only when the last reader lets go — never under a concurrent
// pread, which on fd-reuse could silently read the wrong file. Cloned run
// structs (GC overlay publication) share one runFile.
type runFile struct {
	f    *os.File
	refs atomic.Int32
}

// acquire takes a read reference; it fails only when the run was already
// retired and fully released, in which case the caller reloads the
// current tables (which no longer list the run) and retries.
func (rf *runFile) acquire() bool {
	for {
		n := rf.refs.Load()
		if n <= 0 {
			return false
		}
		if rf.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (rf *runFile) release() {
	if rf.refs.Add(-1) == 0 {
		_ = rf.f.Close()
	}
}

// runWriter streams one sorted run to disk: chains arrive in ascending
// key order, blocks are cut at key boundaries near blockBytes (a chain
// larger than a block gets one oversized block rather than splitting),
// and finish appends the footer and trailer, fsyncs, and renames the
// temp file into place.
type runWriter struct {
	path, tmp  string
	f          *os.File
	w          *bufio.Writer
	enc        *wire.Encoder
	blockBytes int

	fences     []fence
	filter     bloomFilter
	off        int64 // data bytes written
	blockStart int64
	blockFirst string
	blockLen   int
	versions   int
	keys       int
	err        error
}

// newRunWriter opens the temp file. expectedKeys only sizes the Bloom
// filter, so an upper bound (compaction cannot know the merged distinct
// count in advance) is fine — oversizing just lowers the FP rate.
func newRunWriter(path string, blockBytes, expectedKeys, bloomBitsPerKey int) (*runWriter, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sst: write run: %w", err)
	}
	return &runWriter{
		path: path, tmp: tmp, f: f,
		w:          bufio.NewWriterSize(f, 1<<16),
		enc:        wire.NewEncoder(),
		blockBytes: blockBytes,
		filter:     newBloomFilter(expectedKeys, bloomBitsPerKey),
	}, nil
}

// addChain appends one key's whole version chain (ascending LWW order).
func (w *runWriter) addChain(key string, chain []*store.Version) {
	if w.err != nil || len(chain) == 0 {
		return
	}
	w.enc.Reset()
	for _, v := range chain {
		logrec.Append(w.enc, key, v)
	}
	b := w.enc.Bytes()
	if w.blockLen > 0 && w.blockLen+len(b) > w.blockBytes {
		w.fences = append(w.fences, fence{firstKey: w.blockFirst, off: w.blockStart, length: w.blockLen})
		w.blockStart = w.off
		w.blockLen = 0
	}
	if w.blockLen == 0 {
		w.blockFirst = key
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
		return
	}
	w.off += int64(len(b))
	w.blockLen += len(b)
	w.filter.add(key)
	w.versions += len(chain)
	w.keys++
}

// finish seals the file: last fence, footer frame, trailer, flush, fsync,
// rename. On any error the temp file is removed.
func (w *runWriter) finish() (fileSize, dataSize int64, err error) {
	if w.err == nil && w.blockLen > 0 {
		w.fences = append(w.fences, fence{firstKey: w.blockFirst, off: w.blockStart, length: w.blockLen})
		w.blockLen = 0
	}
	dataSize = w.off
	if w.err == nil {
		w.enc.Reset()
		logrec.AppendFrame(w.enc, func(enc *wire.Encoder) {
			enc.Byte(runFormatV2)
			enc.Uvarint(uint64(len(w.fences)))
			for _, fe := range w.fences {
				enc.Uvarint(uint64(fe.length))
				enc.String(fe.firstKey)
			}
			enc.Uvarint(uint64(w.versions))
			enc.Uvarint(uint64(w.keys))
			enc.Byte(byte(w.filter.hashes))
			enc.BytesField(w.filter.bits)
		})
		footer := w.enc.Bytes()
		var trailer [runTrailerSize]byte
		binary.LittleEndian.PutUint32(trailer[:4], uint32(len(footer)))
		copy(trailer[4:], runMagic)
		if _, werr := w.w.Write(footer); werr != nil {
			w.err = werr
		} else if _, werr := w.w.Write(trailer[:]); werr != nil {
			w.err = werr
		}
		fileSize = dataSize + int64(len(footer)) + runTrailerSize
	}
	if w.err == nil {
		w.err = w.w.Flush()
	}
	if w.err == nil {
		w.err = w.f.Sync()
	}
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	if w.err == nil {
		w.err = os.Rename(w.tmp, w.path)
	}
	if w.err != nil {
		_ = os.Remove(w.tmp)
		return 0, 0, fmt.Errorf("sst: write run %s: %w", w.path, w.err)
	}
	return fileSize, dataSize, nil
}

// abort discards the half-written temp file.
func (w *runWriter) abort() {
	_ = w.f.Close()
	_ = os.Remove(w.tmp)
}

// intoRun opens the sealed file read-only and assembles the resident run
// state the writer already accumulated (fences, filter, counts).
func (w *runWriter) intoRun(minGen, maxGen uint64, fileSize, dataSize int64) (*run, error) {
	f, err := os.Open(w.path)
	if err != nil {
		return nil, fmt.Errorf("sst: open run %s: %w", w.path, err)
	}
	r := &run{
		file: &runFile{f: f}, path: w.path,
		minGen: minGen, maxGen: maxGen,
		fileSize: fileSize, dataSize: dataSize,
		fences: w.fences, filter: w.filter,
		versions: w.versions, keyCount: w.keys,
	}
	r.file.refs.Store(1)
	return r, nil
}

// loadRun opens a run file and its resident index — fences, Bloom filter
// and counts from the footer, or for a legacy (pre-footer) file by
// streaming the records to rebuild them. Run files are only ever renamed
// into place complete, so any structural violation is real corruption and
// fails the load rather than silently dropping durable versions.
func loadRun(path string, minGen, maxGen uint64, blockBytes, bloomBitsPerKey int) (*run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sst: open run %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("sst: stat run %s: %w", path, err)
	}
	r := &run{file: &runFile{f: f}, path: path, minGen: minGen, maxGen: maxGen, fileSize: st.Size()}
	r.file.refs.Store(1)
	ok, err := r.loadFooter()
	if err == nil && !ok {
		err = r.loadLegacy(blockBytes, bloomBitsPerKey)
	}
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return r, nil
}

// loadFooter reads the trailer and footer only. It returns (false, nil)
// when the trailer magic is absent — a legacy file, not corruption.
func (r *run) loadFooter() (bool, error) {
	if r.fileSize < runTrailerSize {
		return false, nil
	}
	var trailer [runTrailerSize]byte
	if _, err := r.file.f.ReadAt(trailer[:], r.fileSize-runTrailerSize); err != nil {
		return false, fmt.Errorf("sst: read run trailer %s: %w", r.path, err)
	}
	if string(trailer[4:]) != runMagic {
		return false, nil
	}
	flen := int64(binary.LittleEndian.Uint32(trailer[:4]))
	if flen <= 0 || flen+runTrailerSize > r.fileSize {
		return false, fmt.Errorf("sst: corrupt run footer length in %s", r.path)
	}
	footer := make([]byte, flen)
	footOff := r.fileSize - runTrailerSize - flen
	if _, err := r.file.f.ReadAt(footer, footOff); err != nil {
		return false, fmt.Errorf("sst: read run footer %s: %w", r.path, err)
	}
	var perr error
	good := logrec.ScanFrames(footer, func(payload []byte) error {
		d := wire.NewDecoder(payload)
		if v := d.Byte(); v != runFormatV2 {
			perr = fmt.Errorf("sst: unknown run format %d in %s", v, r.path)
			return perr
		}
		nBlocks := int(d.Uvarint())
		var off int64
		for i := 0; i < nBlocks && d.Err() == nil; i++ {
			length := int(d.Uvarint())
			r.fences = append(r.fences, fence{firstKey: d.String(), off: off, length: length})
			off += int64(length)
		}
		r.versions = int(d.Uvarint())
		r.keyCount = int(d.Uvarint())
		hashes := int(d.Byte())
		bits := d.BytesField()
		if err := d.Err(); err != nil {
			perr = fmt.Errorf("sst: corrupt run footer in %s: %w", r.path, err)
			return perr
		}
		if len(bits) > 0 {
			r.filter = bloomFilter{bits: append([]byte(nil), bits...), hashes: hashes}
		}
		r.dataSize = off
		return nil
	})
	if perr != nil {
		return false, perr
	}
	if good != int(flen) {
		return false, fmt.Errorf("sst: corrupt run footer in %s (%d of %d bytes intact)", r.path, good, flen)
	}
	if r.dataSize != footOff {
		return false, fmt.Errorf("sst: run %s blocks cover %d bytes, data region is %d", r.path, r.dataSize, footOff)
	}
	return true, nil
}

// loadLegacy rebuilds the resident index of a pre-footer run file by
// streaming it twice: once to count distinct keys (sizing the Bloom
// filter), once to build fences and the filter. Memory stays bounded by
// record size, and the whole file must scan clean — these files were
// renamed into place complete.
func (r *run) loadLegacy(blockBytes, bloomBitsPerKey int) error {
	count := func(fn func(key []byte, frameLen int)) error {
		sr := io.NewSectionReader(r.file.f, 0, r.fileSize)
		var perr error
		good := logrec.ScanReaderFrames(bufio.NewReaderSize(sr, 1<<16), func(payload []byte) error {
			d := wire.NewDecoder(payload)
			k := d.BytesField()
			if err := d.Err(); err != nil {
				perr = err
				return err
			}
			fn(k, logrec.HeaderSize+len(payload))
			return nil
		})
		if perr != nil {
			return fmt.Errorf("sst: corrupt run file %s: %w", r.path, perr)
		}
		if good != r.fileSize {
			return fmt.Errorf("sst: corrupt run file %s (%d of %d bytes intact)", r.path, good, r.fileSize)
		}
		return nil
	}
	prev, first := "", true
	if err := count(func(k []byte, _ int) {
		if first || string(k) != prev {
			r.keyCount++
			prev = string(k)
			first = false
		}
		r.versions++
	}); err != nil {
		return err
	}
	r.filter = newBloomFilter(r.keyCount, bloomBitsPerKey)
	var off, blockStart int64
	blockLen := 0
	blockFirst := ""
	prev, first = "", true
	if err := count(func(k []byte, frameLen int) {
		if first || string(k) != prev {
			if blockLen >= blockBytes {
				r.fences = append(r.fences, fence{firstKey: blockFirst, off: blockStart, length: blockLen})
				blockStart = off
				blockLen = 0
			}
			if blockLen == 0 {
				blockFirst = string(k)
			}
			prev = string(k)
			first = false
			r.filter.add(prev)
		}
		off += int64(frameLen)
		blockLen += frameLen
	}); err != nil {
		return err
	}
	if blockLen > 0 {
		r.fences = append(r.fences, fence{firstKey: blockFirst, off: blockStart, length: blockLen})
	}
	r.dataSize = r.fileSize
	return nil
}

// fenceFor returns the index of the block that may hold key: the last
// fence with firstKey <= key, or -1 when key sorts before the whole run.
// Written as a plain loop (not sort.Search) so the read hot path stays
// closure- and allocation-free.
func (r *run) fenceFor(key string) int {
	lo, hi := 0, len(r.fences)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.fences[mid].firstKey <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// probeScratch is the pooled per-probe state: one block buffer, one
// reusable Version (handed to visibility predicates) and one reusable
// dependency-vector buffer. Reads borrow it once per batch, so the
// steady-state point-read path allocates nothing.
type probeScratch struct {
	block []byte
	dv    []hlc.Timestamp
	ver   store.Version
}

var probePool = sync.Pool{New: func() any { return new(probeScratch) }}

// probeRun merges run r into the running best version for key: if the
// freshest version of key in r that satisfies visible strictly beats cur
// in last-writer-wins order, it is materialized (one allocation, only on
// the winning path) and returned; otherwise cur comes back untouched. The
// second result is false only when the run was retired concurrently — the
// caller reloads the tables and retries.
//
// The common paths cost nothing: a Bloom miss answers from memory alone,
// and a block probe that loses to the memtable (or ties it — the
// memtable is consulted first, so equal versions keep the already-resident
// pointer) works entirely in the pooled scratch.
func (e *Engine) probeRun(r *run, key string, visible store.VisibleFunc, cur *store.Version, sc *probeScratch) (*store.Version, bool) {
	if !r.filter.mayContain(key) {
		e.metrics.bloomSkips.Add(1)
		return cur, true
	}
	bi := r.fenceFor(key)
	if bi < 0 {
		return cur, true // sorts before the run's first key: filter false positive
	}
	fe := r.fences[bi]
	if !r.file.acquire() {
		return cur, false
	}
	if cap(sc.block) < fe.length {
		sc.block = make([]byte, fe.length)
	}
	blk := sc.block[:fe.length]
	_, err := r.file.f.ReadAt(blk, fe.off)
	r.file.release()
	if err != nil {
		e.recordErr(fmt.Errorf("sst: read run block %s@%d: %w", r.path, fe.off, err))
		return cur, true
	}
	e.metrics.blockReads.Add(1)

	skip := r.cuts[key]
	var candPayload []byte
	var candUT, candRDT hlc.Timestamp
	var candTx uint64
	var candSrc uint8
	matched := false
	for off := 0; off+logrec.HeaderSize <= len(blk); {
		plen := int(binary.LittleEndian.Uint32(blk[off:]))
		end := off + logrec.HeaderSize + plen
		if end > len(blk) || crc32.ChecksumIEEE(blk[off+logrec.HeaderSize:end]) != binary.LittleEndian.Uint32(blk[off+4:]) {
			e.recordErr(fmt.Errorf("sst: corrupt record in run block %s@%d", r.path, fe.off+int64(off)))
			break
		}
		payload := blk[off+logrec.HeaderSize : end]
		off = end
		d := wire.NewDecoder(payload)
		k := d.BytesField()
		if string(k) != key {
			if matched {
				break // past the key's contiguous chain
			}
			continue
		}
		matched = true
		if skip > 0 {
			skip-- // leading versions GC already pruned (overlay cut)
			continue
		}
		tomb := d.Bool()
		val := d.BytesField()
		ut, rdt := d.Timestamp(), d.Timestamp()
		txid := d.Uvarint()
		src := d.Byte()
		nDV := int(d.Uvarint())
		sc.dv = sc.dv[:0]
		for i := 0; i < nDV; i++ {
			sc.dv = append(sc.dv, d.Timestamp())
		}
		if d.Err() != nil {
			e.recordErr(fmt.Errorf("sst: corrupt record in run %s: %w", r.path, d.Err()))
			break
		}
		v := &sc.ver
		v.UT, v.RDT, v.TxID, v.SrcDC, v.DV = ut, rdt, txid, src, sc.dv
		if tomb {
			v.Value = nil
		} else {
			v.Value = val
		}
		// The chain is ascending, so the last visible record is the
		// freshest visible one — later matches simply overwrite.
		if visible(v) {
			candPayload = payload
			candUT, candRDT, candTx, candSrc = ut, rdt, txid, src
		}
	}
	if candPayload == nil {
		return cur, true
	}
	if cur != nil {
		c := &sc.ver
		c.UT, c.RDT, c.TxID, c.SrcDC = candUT, candRDT, candTx, candSrc
		if !cur.Less(c) {
			return cur, true // the resident version is at least as fresh
		}
	}
	_, v, err := logrec.Decode(candPayload)
	if err != nil {
		e.recordErr(fmt.Errorf("sst: corrupt record in run %s: %w", r.path, err))
		return cur, true
	}
	return v, true
}

// countKey returns how many live versions of key run r holds (file
// records minus the GC overlay cut), reading at most one block. The
// second result is false only when the run was retired concurrently.
func (e *Engine) countKey(r *run, key string) (int, bool) {
	if !r.filter.mayContain(key) {
		return 0, true
	}
	bi := r.fenceFor(key)
	if bi < 0 {
		return 0, true
	}
	fe := r.fences[bi]
	if !r.file.acquire() {
		return 0, false
	}
	sc := probePool.Get().(*probeScratch)
	defer probePool.Put(sc)
	if cap(sc.block) < fe.length {
		sc.block = make([]byte, fe.length)
	}
	blk := sc.block[:fe.length]
	_, err := r.file.f.ReadAt(blk, fe.off)
	r.file.release()
	if err != nil {
		e.recordErr(fmt.Errorf("sst: read run block %s@%d: %w", r.path, fe.off, err))
		return 0, true
	}
	e.metrics.blockReads.Add(1)
	n := 0
	for off := 0; off+logrec.HeaderSize <= len(blk); {
		plen := int(binary.LittleEndian.Uint32(blk[off:]))
		end := off + logrec.HeaderSize + plen
		if end > len(blk) {
			break
		}
		payload := blk[off+logrec.HeaderSize : end]
		off = end
		d := wire.NewDecoder(payload)
		k := d.BytesField()
		if d.Err() != nil {
			break
		}
		if string(k) == key {
			n++
		} else if n > 0 {
			break
		}
	}
	n -= r.cuts[key]
	if n < 0 {
		n = 0
	}
	return n, true
}

// runIterator streams a run's records in key order, one block buffer at
// a time, yielding each key's full file chain (overlay cuts are the
// caller's to apply — GC accounting needs the full chain, scans need the
// cut one). The iterator holds a file reference from newRunIterator until
// close.
type runIterator struct {
	e   *Engine
	r   *run
	buf []byte
	bi  int    // next block to load
	blk []byte // unparsed remainder of the current block

	key   string
	chain []*store.Version

	pkey string // first record of the next key, parsed past the boundary
	pv   *store.Version
	pok  bool

	staged *stagedKey // key re-staged by seek, yielded before any parsing
	err    error
}

// stagedKey holds a fully-parsed key that seek overshot and re-staged.
type stagedKey struct {
	key   string
	chain []*store.Version
}

// newRunIterator acquires the run's file. It returns nil only when the
// run was already retired (impossible under flushMu, which serializes
// retirement).
func newRunIterator(e *Engine, r *run) *runIterator {
	if !r.file.acquire() {
		return nil
	}
	return &runIterator{e: e, r: r}
}

func (it *runIterator) close() { it.r.file.release() }

// seek positions the iterator so the next call to next yields the first
// key >= start: jump to the fence block that may hold start, then walk
// forward, re-staging the first key that qualifies.
func (it *runIterator) seek(start string) {
	if bi := it.r.fenceFor(start); bi > 0 {
		it.bi = bi
	}
	for it.next() {
		if it.key >= start {
			it.staged = &stagedKey{key: it.key, chain: append([]*store.Version(nil), it.chain...)}
			return
		}
	}
}

// next advances to the next key, filling it.key and it.chain (reused
// between calls — callers must consume before advancing). It returns
// false at the end of the run or on a corrupt record (surfaced via
// it.err and the engine health signal).
func (it *runIterator) next() bool {
	if it.staged != nil {
		it.key, it.chain = it.staged.key, it.staged.chain
		it.staged = nil
		return true
	}
	it.chain = it.chain[:0]
	if it.err != nil {
		return false
	}
	if it.pok {
		it.key = it.pkey
		it.chain = append(it.chain, it.pv)
		it.pok = false
	} else {
		k, v, ok := it.record()
		if !ok {
			return false
		}
		it.key = k
		it.chain = append(it.chain, v)
	}
	for {
		k, v, ok := it.record()
		if !ok {
			return it.err == nil || len(it.chain) > 0
		}
		if k != it.key {
			it.pkey, it.pv, it.pok = k, v, true
			return true
		}
		it.chain = append(it.chain, v)
	}
}

// record parses one version record, loading the next block when the
// current one is exhausted.
func (it *runIterator) record() (string, *store.Version, bool) {
	for len(it.blk) == 0 {
		if it.bi >= len(it.r.fences) {
			return "", nil, false
		}
		fe := it.r.fences[it.bi]
		it.bi++
		if cap(it.buf) < fe.length {
			it.buf = make([]byte, fe.length)
		}
		blk := it.buf[:fe.length]
		if _, err := it.r.file.f.ReadAt(blk, fe.off); err != nil {
			it.fail(fmt.Errorf("sst: read run block %s@%d: %w", it.r.path, fe.off, err))
			return "", nil, false
		}
		it.e.metrics.blockReads.Add(1)
		it.blk = blk
	}
	if len(it.blk) < logrec.HeaderSize {
		it.fail(fmt.Errorf("sst: torn record in run %s", it.r.path))
		return "", nil, false
	}
	plen := int(binary.LittleEndian.Uint32(it.blk[:4]))
	if logrec.HeaderSize+plen > len(it.blk) {
		it.fail(fmt.Errorf("sst: torn record in run %s", it.r.path))
		return "", nil, false
	}
	payload := it.blk[logrec.HeaderSize : logrec.HeaderSize+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(it.blk[4:8]) {
		it.fail(fmt.Errorf("sst: corrupt record in run %s", it.r.path))
		return "", nil, false
	}
	key, v, err := logrec.Decode(payload)
	if err != nil {
		it.fail(fmt.Errorf("sst: corrupt record in run %s: %w", it.r.path, err))
		return "", nil, false
	}
	it.blk = it.blk[logrec.HeaderSize+plen:]
	return key, v, true
}

func (it *runIterator) fail(err error) {
	if it.err == nil {
		it.err = err
		it.e.recordErr(err)
	}
}
