package sst

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/enginetest"
	"wren/internal/store/logrec"
	"wren/internal/store/wal"
	"wren/internal/wire"
)

// fillRun writes n keys with the given value size through the engine and
// flushes them into one sorted run.
func fillRun(t *testing.T, e *Engine, prefix string, n, valBytes int, baseUT hlc.Timestamp) {
	t.Helper()
	val := make([]byte, valBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	kvs := make([]store.KV, 0, n)
	for i := 0; i < n; i++ {
		kvs = append(kvs, store.KV{
			Key:     fmt.Sprintf("%s%06d", prefix, i),
			Version: &store.Version{Value: val, UT: baseUT + hlc.Timestamp(i), RDT: baseUT, TxID: uint64(i)},
		})
	}
	e.PutBatch(kvs)
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestBloomNegativeLookups pins the big-data point-read property: lookups
// of absent keys are answered by the resident Bloom filters, so their
// disk cost does not scale with the number of runs. With several runs
// live, a miss-heavy workload must read almost no blocks (the filters'
// false-positive rate, ~0.8% at the default 10 bits/key, is the only
// leak) while present-key lookups still read exactly one block per
// consulted run.
func TestBloomNegativeLookups(t *testing.T) {
	e := mustOpen(t, Options{
		Dir: t.TempDir(), Shards: 2, Fsync: wal.FsyncNever,
		FlushBytes: -1, CompactRuns: -1, // manual tiering: keep every run
	})
	defer e.Close()
	const runsWanted, keysPerRun, misses = 4, 500, 2000
	for r := 0; r < runsWanted; r++ {
		fillRun(t, e, fmt.Sprintf("run%d-", r), keysPerRun, 32, hlc.Timestamp(1+r*keysPerRun))
	}
	if e.Runs() != runsWanted {
		t.Fatalf("Runs = %d, want %d", e.Runs(), runsWanted)
	}

	before := e.Metrics().BlockReads()
	skipsBefore := e.Metrics().BloomSkips()
	for i := 0; i < misses; i++ {
		if got := e.ReadVisible(fmt.Sprintf("absent-%06d", i), func(*store.Version) bool { return true }); got != nil {
			t.Fatalf("absent key read = %+v", got)
		}
	}
	reads := e.Metrics().BlockReads() - before
	skips := e.Metrics().BloomSkips() - skipsBefore
	probes := int64(misses * runsWanted)
	// Allow 5% false positives — six sigma above the expected ~0.8%.
	if reads > probes/20 {
		t.Fatalf("miss workload read %d blocks over %d probes; Bloom filters are not short-circuiting", reads, probes)
	}
	// The remainder are Bloom skips plus the rare false positive that the
	// fence index then rejects (absent keys sort before the runs' ranges).
	if skips < probes*9/10 {
		t.Fatalf("only %d of %d probes were Bloom-skipped", skips, probes)
	}

	// A present key costs one block read in the run that holds it (plus
	// any false positives elsewhere, bounded as above).
	before = e.Metrics().BlockReads()
	if got := e.ReadVisible("run2-000123", func(*store.Version) bool { return true }); got == nil {
		t.Fatal("present key not found")
	}
	if reads := e.Metrics().BlockReads() - before; reads < 1 || reads > runsWanted {
		t.Fatalf("present-key lookup read %d blocks, want 1..%d", reads, runsWanted)
	}
}

// TestResidentIndexSparse pins that what stays in memory per run is the
// sparse index — fence keys and Bloom bits — not the data: for a dataset
// of large values the resident bytes must be a small fraction of the
// stored bytes, while every key stays readable through block probes.
func TestResidentIndexSparse(t *testing.T) {
	e := mustOpen(t, Options{
		Dir: t.TempDir(), Shards: 2, Fsync: wal.FsyncNever,
		FlushBytes: -1, CompactRuns: -1,
	})
	defer e.Close()
	const keys, valBytes = 1000, 1024
	fillRun(t, e, "big-", keys, valBytes, 1)

	var dataBytes int64
	for _, r := range e.tabs.Load().runs {
		dataBytes += r.fileSize
	}
	resident := e.ResidentIndexBytes()
	if resident <= 0 || dataBytes <= 0 {
		t.Fatalf("resident=%d dataBytes=%d", resident, dataBytes)
	}
	// The full-index baseline (the pre-sparse engine) kept every key and
	// version pointer resident — the same order as the data itself. The
	// sparse index must be far below that: under 1/16 of the file bytes.
	if resident*16 > dataBytes {
		t.Fatalf("resident index %dB is not sparse against %dB of run data", resident, dataBytes)
	}
	// Spot-check reads through the sparse index.
	for _, i := range []int{0, 1, 499, 998, 999} {
		k := fmt.Sprintf("big-%06d", i)
		got := e.ReadVisible(k, func(*store.Version) bool { return true })
		if got == nil || len(got.Value) != valBytes {
			t.Fatalf("key %s read %+v through sparse index", k, got)
		}
	}
}

// TestLevelCompactionBounded pins the leveled write cost: while a large
// high-level run exists, compacting a group of small level-0 runs must
// rewrite only those runs — the bytes written per cycle are bounded by
// the level, not the dataset.
func TestLevelCompactionBounded(t *testing.T) {
	e := mustOpen(t, Options{
		Dir: t.TempDir(), Shards: 1, Fsync: wal.FsyncNever,
		FlushBytes: 1024, LevelFanout: 2, CompactRuns: 2, CompactGarbage: 1 << 30,
	})
	defer e.Close()

	// One run well past level 0 (level 0 ends at FlushBytes*fanout=2KB).
	fillRun(t, e, "big-", 100, 64, 1)
	if e.Runs() != 1 || e.Levels() < 2 {
		t.Fatalf("big run: Runs=%d Levels=%d, want 1 run past level 0", e.Runs(), e.Levels())
	}
	bigPath := e.tabs.Load().runs[0].path
	bigInfo, err := os.Stat(bigPath)
	if err != nil {
		t.Fatalf("stat big run: %v", err)
	}

	// Two small level-0 runs: the second flush completes a level-0 group
	// and triggers its merge — without touching the big run.
	base := e.Metrics().CompactionBytes()
	fillRun(t, e, "s1-", 4, 16, 10_000)
	fillRun(t, e, "s2-", 4, 16, 20_000)
	if got := e.Metrics().Compactions(); got != 1 {
		t.Fatalf("Compactions = %d, want exactly the level-0 merge", got)
	}
	wrote := e.Metrics().CompactionBytes() - base
	if wrote <= 0 || wrote >= bigInfo.Size() {
		t.Fatalf("level-0 merge wrote %dB; bound is the small level, not the %dB top run", wrote, bigInfo.Size())
	}
	if e.Runs() != 2 {
		t.Fatalf("Runs = %d after level merge, want big + merged", e.Runs())
	}
	if _, err := os.Stat(bigPath); err != nil {
		t.Fatalf("level-0 merge disturbed the top-level run: %v", err)
	}
	// Everything is still readable across the levels.
	for _, k := range []string{"big-000050", "s1-000002", "s2-000003"} {
		if got := e.ReadVisible(k, func(*store.Version) bool { return true }); got == nil {
			t.Fatalf("key %s lost across level compaction", k)
		}
	}
}

// TestCrashDuringLevelCompaction is the level-scoped generalization of
// the mid-compaction crash test: a kill right after the merged level-0
// run is renamed — with its superseded inputs still on disk and an
// untouched higher-level run beside them — must recover to exactly one
// copy of every key, deleting the subsumed inputs and never resurrecting
// a deleted key whose tombstone took part in the merge.
func TestCrashDuringLevelCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Dir: dir, Shards: 1, Fsync: wal.FsyncAlways,
		FlushBytes: 1024, LevelFanout: 2, CompactRuns: 2, CompactGarbage: 1 << 30,
		crashAfterCompactRename: true,
	}
	e := mustOpen(t, opts)
	ref := store.NewMemoryEngine(1)

	// Big run past level 0, holding a key that will be deleted in a
	// level-0 run — the tombstone must shadow it through crash recovery.
	// One batch, so the background flush trigger fires at most once and
	// the explicit Flush leaves exactly one run.
	val := make([]byte, 64)
	kvs := make([]store.KV, 0, 100)
	for i := 0; i < 100; i++ {
		ver := &store.Version{Value: val, UT: hlc.Timestamp(1 + i), RDT: 1, TxID: uint64(i)}
		kvs = append(kvs, store.KV{Key: fmt.Sprintf("big-%06d", i), Version: ver})
		ref.Put(fmt.Sprintf("big-%06d", i), ver)
	}
	e.PutBatch(kvs)
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if e.Runs() != 1 {
		t.Fatalf("Runs = %d after big flush, want 1", e.Runs())
	}

	// Two small flushes; the second triggers the level-0 merge, which
	// crashes right after the rename.
	tomb := &store.Version{Value: nil, UT: 10_000, RDT: 10_000, TxID: 999}
	e.Put("big-000042", tomb)
	ref.Put("big-000042", tomb)
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	live := &store.Version{Value: []byte("fresh"), UT: 20_000, RDT: 20_000, TxID: 1000}
	e.Put("extra", live)
	ref.Put("extra", live)
	// This flush completes the level-0 group and triggers the merge that
	// crashes right after the output rename; the error is the crash.
	_ = e.Flush()
	_ = e.Close()

	// The crash point: merged run 2-3 renamed, inputs 2-2 and 3-3 not yet
	// deleted, big run 1-1 untouched.
	for _, name := range []string{"run-000001-000001.sst", "run-000002-000002.sst", "run-000003-000003.sst", "run-000002-000003.sst"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("crash footprint missing %s: %v", name, err)
		}
	}

	opts.crashAfterCompactRename = false
	re := mustOpen(t, opts)
	defer re.Close()
	if re.Runs() != 2 {
		t.Fatalf("Runs = %d after recovery, want big + merged", re.Runs())
	}
	for _, name := range []string{"run-000002-000002.sst", "run-000003-000003.sst"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("subsumed input %s survived recovery (err=%v)", name, err)
		}
	}
	enginetest.RequireSameState(t, re, ref)
	if got := re.ReadVisible("big-000042", func(*store.Version) bool { return true }); got == nil || got.Value != nil {
		t.Fatalf("deleted key resurrected across level-compaction crash: %+v", got)
	}
}

// TestLegacyRunFormat pins backward compatibility: a run file written in
// the pre-footer format (bare logrec frames, no trailer) must load by
// streaming — rebuilding fences, counts and Bloom filter in memory — and
// serve reads identically; the footer appears when compaction rewrites
// the file.
func TestLegacyRunFormat(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a legacy run file: sorted keys, chains contiguous,
	// nothing after the last record.
	enc := wire.NewEncoder()
	const keys = 200
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("legacy-%06d", i)
		logrec.Append(enc, k, &store.Version{Value: []byte("old"), UT: hlc.Timestamp(1 + i), RDT: 1, TxID: uint64(i)})
		logrec.Append(enc, k, &store.Version{Value: []byte("new"), UT: hlc.Timestamp(1000 + i), RDT: 1, TxID: uint64(keys + i)})
	}
	if err := os.WriteFile(filepath.Join(dir, "run-000001-000001.sst"), enc.Bytes(), 0o644); err != nil {
		t.Fatalf("write legacy run: %v", err)
	}

	e := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: wal.FsyncNever, FlushBytes: -1, BlockBytes: 512})
	defer e.Close()
	if e.Metrics().RunsLoaded() != 1 || e.Runs() != 1 {
		t.Fatalf("legacy run not loaded: RunsLoaded=%d Runs=%d", e.Metrics().RunsLoaded(), e.Runs())
	}
	if got := e.Versions(); got != 2*keys {
		t.Fatalf("Versions = %d, want %d", got, 2*keys)
	}
	r := e.tabs.Load().runs[0]
	if len(r.fences) < 2 {
		t.Fatalf("legacy load built %d fences, want a multi-block index at BlockBytes=512", len(r.fences))
	}
	if got := e.ReadVisible("legacy-000137", func(v *store.Version) bool { return v.UT <= 500 }); got == nil || string(got.Value) != "old" {
		t.Fatalf("snapshot read through legacy run = %+v, want old", got)
	}
	if got := e.Latest("legacy-000042"); got == nil || string(got.Value) != "new" {
		t.Fatalf("Latest through legacy run = %+v, want new", got)
	}
	if got := e.ReadVisible("absent", func(*store.Version) bool { return true }); got != nil {
		t.Fatalf("absent key = %+v", got)
	}

	// A second run makes Compact a real merge; the rewrite emits the
	// footered format for the formerly-legacy data.
	e.Put("legacy-extra", v("x", 5000, 5000))
	if err := e.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	e.Compact()
	if got := e.Metrics().Compactions(); got != 1 {
		t.Fatalf("Compactions = %d, want 1", got)
	}
	buf, err := os.ReadFile(e.tabs.Load().runs[0].path)
	if err != nil {
		t.Fatalf("read rewritten run: %v", err)
	}
	if len(buf) < runTrailerSize || string(buf[len(buf)-len(runMagic):]) != runMagic {
		t.Fatal("compaction did not write the footered format")
	}
}

// TestScanStreamsAcrossTiers pins Engine.Scan on a tiering that spans
// the memtable, several runs and GC overlay cuts at once.
func TestScanStreamsAcrossTiers(t *testing.T) {
	e := mustOpen(t, Options{
		Dir: t.TempDir(), Shards: 2, Fsync: wal.FsyncNever,
		FlushBytes: -1, CompactRuns: -1,
	})
	defer e.Close()
	// Run 1: keys 0..9 v1. Run 2: keys 5..14 v2. Memtable: keys 12..17 v3,
	// plus a deletion of key 3.
	for i := 0; i < 10; i++ {
		e.Put(fmt.Sprintf("k-%02d", i), v("v1", hlc.Timestamp(10+i), uint64(i)))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 15; i++ {
		e.Put(fmt.Sprintf("k-%02d", i), v("v2", hlc.Timestamp(100+i), uint64(100+i)))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 18; i++ {
		e.Put(fmt.Sprintf("k-%02d", i), v("v3", hlc.Timestamp(200+i), uint64(200+i)))
	}
	e.Put("k-03", &store.Version{Value: nil, UT: 300, RDT: 300, TxID: 300})

	var gotKeys, gotVals []string
	if err := e.Scan("k-02", "k-16", func(*store.Version) bool { return true }, func(k string, ver *store.Version) bool {
		gotKeys = append(gotKeys, k)
		gotVals = append(gotVals, string(ver.Value))
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	wantKeys := []string{"k-02", "k-04", "k-05", "k-06", "k-07", "k-08", "k-09", "k-10", "k-11", "k-12", "k-13", "k-14", "k-15"}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("scan keys = %v, want %v", gotKeys, wantKeys)
	}
	for i, k := range wantKeys {
		if gotKeys[i] != k {
			t.Fatalf("scan keys = %v, want %v", gotKeys, wantKeys)
		}
		want := "v1"
		switch {
		case k >= "k-12" && k <= "k-15":
			want = "v3"
		case k >= "k-05":
			want = "v2"
		}
		if gotVals[i] != want {
			t.Fatalf("key %s scanned %q, want %q", k, gotVals[i], want)
		}
	}
}
