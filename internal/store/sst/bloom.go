package sst

// bloomFilter is a classic Bloom filter over the distinct keys of one
// sorted run, probed before any disk access so negative point lookups
// skip the run entirely. The zero value (nil bits) is the disabled
// filter: mayContain always answers true, which is the conservative
// direction everywhere a filter is consulted — a false "maybe" costs one
// block read (or keeps one tombstone alive a little longer), a false "no"
// would lose durable data.
//
// Double hashing (Kirsch–Mitzenmacher) derives all probe positions from
// one 64-bit FNV-1a hash, so adding and probing allocate nothing.
type bloomFilter struct {
	bits   []byte
	hashes int
}

// newBloomFilter sizes a filter for keys distinct keys at bitsPerKey bits
// each (≈0.8% false positives at 10 bits/key). bitsPerKey <= 0 disables
// the filter.
func newBloomFilter(keys, bitsPerKey int) bloomFilter {
	if bitsPerKey <= 0 {
		return bloomFilter{}
	}
	if keys < 1 {
		keys = 1
	}
	mBits := keys * bitsPerKey
	if mBits < 64 {
		mBits = 64
	}
	// ln 2 ≈ 0.69 probes per bit-per-key minimizes the false-positive rate.
	hashes := bitsPerKey * 69 / 100
	if hashes < 1 {
		hashes = 1
	}
	if hashes > 30 {
		hashes = 30
	}
	return bloomFilter{bits: make([]byte, (mBits+7)/8), hashes: hashes}
}

func (b *bloomFilter) add(key string) {
	if b.bits == nil {
		return
	}
	h := bloomHash(key)
	delta := h>>33 | h<<31
	m := uint64(len(b.bits)) * 8
	for i := 0; i < b.hashes; i++ {
		bit := h % m
		b.bits[bit/8] |= 1 << (bit % 8)
		h += delta
	}
}

func (b *bloomFilter) mayContain(key string) bool {
	if b.bits == nil {
		return true
	}
	h := bloomHash(key)
	delta := h>>33 | h<<31
	m := uint64(len(b.bits)) * 8
	for i := 0; i < b.hashes; i++ {
		bit := h % m
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// sizeBytes is the filter's resident-memory footprint.
func (b *bloomFilter) sizeBytes() int64 { return int64(len(b.bits)) }

// bloomHash is 64-bit FNV-1a over the key without a []byte conversion,
// so probing allocates nothing (mirrors store.Fingerprint).
func bloomHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}
