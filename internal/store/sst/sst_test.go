package sst

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/enginetest"
	"wren/internal/store/wal"
)

func mustOpen(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := Open(opts)
	if err != nil {
		t.Fatalf("sst.Open: %v", err)
	}
	return e
}

func v(val string, ut hlc.Timestamp, tx uint64) *store.Version {
	return &store.Version{Value: []byte(val), UT: ut, RDT: ut / 2, TxID: tx, SrcDC: uint8(tx % 3)}
}

// TestSSTEngineConformance runs the shared engine conformance suite under
// every fsync policy, with default thresholds (small tests stay entirely
// in the memtable) and with aggressive tiering (tiny flush threshold and
// low compaction trigger, so the same assertions hold with chains split
// across memtable and runs, flushes racing the workload, and GC making
// cross-tier decisions).
func TestSSTEngineConformance(t *testing.T) {
	for _, policy := range []string{wal.FsyncAlways, wal.FsyncInterval, wal.FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			enginetest.Run(t, func(t *testing.T) store.Engine {
				return mustOpen(t, Options{Dir: t.TempDir(), Shards: 4, Fsync: policy})
			})
		})
	}
	t.Run("aggressive-tiering", func(t *testing.T) {
		enginetest.Run(t, func(t *testing.T) store.Engine {
			return mustOpen(t, Options{
				Dir: t.TempDir(), Shards: 4, Fsync: wal.FsyncNever,
				FlushBytes: 512, CompactRuns: 3, CompactGarbage: 64,
			})
		})
	})
}

// TestSSTDurable runs the shared recovery suite: clean close/reopen
// cycles must preserve every version, under both manual-flush-only and
// aggressive auto-flush configurations.
func TestSSTDurable(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"memtable-only", Options{Shards: 4, Fsync: wal.FsyncAlways, FlushBytes: -1}},
		{"aggressive-flush", Options{Shards: 4, Fsync: wal.FsyncNever, FlushBytes: 512, CompactRuns: 3}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			enginetest.RunDurable(t, func(t *testing.T) func() store.Engine {
				dir := t.TempDir()
				opts := cfg.opts
				opts.Dir = dir
				return func() store.Engine { return mustOpen(t, opts) }
			})
		})
	}
}

// TestTieredReads pins the cross-tier read semantics: a key whose chain
// is split between a run (old versions) and the memtable (new versions,
// including an out-of-order older write that arrived after the flush)
// must resolve snapshots exactly as a single chain would.
func TestTieredReads(t *testing.T) {
	e := mustOpen(t, Options{Dir: t.TempDir(), Shards: 2, Fsync: wal.FsyncNever, FlushBytes: -1})
	defer e.Close()

	e.Put("k", v("v10", 10, 1))
	e.Put("k", v("v30", 30, 2))
	if err := e.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if e.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", e.Runs())
	}
	e.Put("k", v("v50", 50, 3))
	e.Put("k", v("v20", 20, 4)) // late arrival older than the flushed v30

	all := func(*store.Version) bool { return true }
	upTo := func(ts hlc.Timestamp) store.VisibleFunc {
		return func(ver *store.Version) bool { return ver.UT <= ts }
	}
	for _, tc := range []struct {
		ts   hlc.Timestamp
		want string
	}{{15, "v10"}, {25, "v20"}, {35, "v30"}, {60, "v50"}} {
		got := e.ReadVisible("k", upTo(tc.ts))
		if got == nil || string(got.Value) != tc.want {
			t.Fatalf("snapshot@%d = %+v, want %s", tc.ts, got, tc.want)
		}
	}
	if got := e.Latest("k"); got == nil || string(got.Value) != "v50" {
		t.Fatalf("Latest = %+v, want v50", got)
	}
	if got := e.VersionsOf("k"); got != 4 {
		t.Fatalf("VersionsOf = %d, want 4", got)
	}
	// Batch reads agree with the single-key path, missing keys stay nil.
	batch := e.ReadVisibleBatch([]string{"k", "absent"}, all)
	if string(batch[0].Value) != "v50" || batch[1] != nil {
		t.Fatalf("batch = %v", batch)
	}
}

// TestCrossTierGC pins the global GC decision: with a chain split across
// a run and the memtable, the base version is chosen across both tiers,
// the accounting stays exact, and per-tier pruning never keeps a stale
// extra version.
func TestCrossTierGC(t *testing.T) {
	e := mustOpen(t, Options{Dir: t.TempDir(), Shards: 2, Fsync: wal.FsyncNever, FlushBytes: -1, CompactRuns: -1})
	defer e.Close()

	for i := 1; i <= 5; i++ {
		e.Put("hot", v(fmt.Sprintf("v%d", i), hlc.Timestamp(10*i), uint64(i)))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i <= 10; i++ {
		e.Put("hot", v(fmt.Sprintf("v%d", i), hlc.Timestamp(10*i), uint64(i)))
	}

	// Oldest snapshot at 55: the global base is v5 (UT=50, in the run);
	// v1..v4 are prunable — all of them in the run tier.
	res := e.GCStats(55)
	if res.Removed != 4 || res.DroppedKeys != 0 {
		t.Fatalf("GCStats(55) = %+v, want Removed=4", res)
	}
	if got := e.VersionsOf("hot"); got != 6 {
		t.Fatalf("VersionsOf = %d, want 6", got)
	}
	upTo := func(ts hlc.Timestamp) store.VisibleFunc {
		return func(ver *store.Version) bool { return ver.UT <= ts }
	}
	if got := e.ReadVisible("hot", upTo(55)); got == nil || string(got.Value) != "v5" {
		t.Fatalf("snapshot@55 = %+v, want v5", got)
	}

	// Base in the memtable: everything left in the run is older and must
	// go, with nothing kept per-tier.
	res = e.GCStats(95)
	if res.Removed != 4 {
		t.Fatalf("GCStats(95) = %+v, want Removed=4", res)
	}
	if got := e.VersionsOf("hot"); got != 2 {
		t.Fatalf("VersionsOf after second GC = %d, want 2 (v9, v10)", got)
	}
}

// TestFlushSupersedesWAL: after a flush the run file exists, the WAL
// generations it covers are gone, and a reopen serves the exact same
// state with no duplicated versions.
func TestFlushSupersedesWAL(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 2, Fsync: wal.FsyncAlways, FlushBytes: -1})
	ref := store.NewMemoryEngine(2)
	for i := 0; i < 40; i++ {
		ver := v(fmt.Sprintf("val-%d", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(fmt.Sprintf("key-%d", i%11), ver)
		ref.Put(fmt.Sprintf("key-%d", i%11), ver)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "run-000001-000001.sst")); err != nil {
		t.Fatalf("run file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-000001-00000.log")); !os.IsNotExist(err) {
		t.Fatalf("superseded wal generation still present (err=%v)", err)
	}
	if e.Metrics().Flushes() != 1 {
		t.Fatalf("Flushes = %d, want 1", e.Metrics().Flushes())
	}
	enginetest.RequireSameState(t, e, ref)

	// Post-flush writes land in generation 2 and survive a restart
	// together with the run.
	after := v("after-flush", 5000, 500)
	e.Put("key-after", after)
	ref.Put("key-after", after)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Options{Dir: dir, Shards: 2, Fsync: wal.FsyncAlways, FlushBytes: -1})
	defer re.Close()
	if re.Metrics().RunsLoaded() != 1 {
		t.Fatalf("RunsLoaded = %d, want 1", re.Metrics().RunsLoaded())
	}
	enginetest.RequireSameState(t, re, ref)
}

// TestCrashDuringFlush simulates a kill right after the run rename but
// before the WAL generations are deleted — the run AND the logs it covers
// both exist on disk. Recovery must treat the run as authoritative and
// drop the superseded logs, or every flushed version would come back
// twice.
func TestCrashDuringFlush(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 2, Fsync: wal.FsyncAlways, FlushBytes: -1}
	opts.crashAfterFlushRename = true
	e := mustOpen(t, opts)
	ref := store.NewMemoryEngine(2)
	for i := 0; i < 30; i++ {
		ver := v(fmt.Sprintf("val-%d", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(fmt.Sprintf("key-%d", i%7), ver)
		ref.Put(fmt.Sprintf("key-%d", i%7), ver)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The crash left both the run and its superseded WAL generation.
	if _, err := os.Stat(filepath.Join(dir, "run-000001-000001.sst")); err != nil {
		t.Fatalf("run file missing after simulated crash: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-000001-00000.log")); err != nil {
		t.Fatalf("superseded wal generation should still exist at the crash point: %v", err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 2, Fsync: wal.FsyncAlways, FlushBytes: -1})
	enginetest.RequireSameState(t, re, ref) // exact: no duplicates
	if _, err := os.Stat(filepath.Join(dir, "wal-000001-00000.log")); !os.IsNotExist(err) {
		t.Fatalf("recovery kept the superseded wal generation (err=%v)", err)
	}
	// And the recovered engine keeps working across another cycle.
	after := v("post-crash", 9000, 900)
	re.Put("key-after", after)
	ref.Put("key-after", after)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := mustOpen(t, Options{Dir: dir, Shards: 2, Fsync: wal.FsyncAlways, FlushBytes: -1})
	defer re2.Close()
	enginetest.RequireSameState(t, re2, ref)
}

// TestCrashBeforeFlushRename: a kill while the run is still being written
// leaves only a .tmp file; recovery must discard it and replay the WAL.
func TestCrashBeforeFlushRename(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: wal.FsyncAlways, FlushBytes: -1})
	ref := store.NewMemoryEngine(1)
	for i := 0; i < 20; i++ {
		ver := v(fmt.Sprintf("val-%d", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(fmt.Sprintf("key-%d", i%5), ver)
		ref.Put(fmt.Sprintf("key-%d", i%5), ver)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// A half-written run image: garbage that never got renamed.
	tmp := filepath.Join(dir, "run-000001-000001.sst.tmp")
	if err := os.WriteFile(tmp, []byte("partial-run-image-from-a-killed-flush"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: wal.FsyncAlways, FlushBytes: -1})
	defer re.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp file survived recovery (err=%v)", err)
	}
	if re.Metrics().Recovered() != 20 {
		t.Fatalf("Recovered = %d, want 20", re.Metrics().Recovered())
	}
	enginetest.RequireSameState(t, re, ref)
}

// TestCrashDuringCompactionRename simulates a kill right after the merged
// run renamed into place but before the input runs were deleted: disk
// holds overlapping runs. Recovery must keep the widest and delete the
// subsumed ones — loading both would duplicate every merged version.
func TestCrashDuringCompactionRename(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 2, Fsync: wal.FsyncAlways, FlushBytes: -1, CompactRuns: 100}
	opts.crashAfterCompactRename = true
	e := mustOpen(t, opts)
	ref := store.NewMemoryEngine(2)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			ver := v(fmt.Sprintf("r%d-v%d", round, i), hlc.Timestamp(100*round+i+1), uint64(100*round+i))
			key := fmt.Sprintf("key-%d", i)
			e.Put(key, ver)
			ref.Put(key, ver)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Runs() != 3 {
		t.Fatalf("runs before compaction = %d, want 3", e.Runs())
	}
	e.Compact() // hook: crash after the merged run's rename
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash point: merged run plus all three originals on disk.
	if _, err := os.Stat(filepath.Join(dir, "run-000001-000003.sst")); err != nil {
		t.Fatalf("merged run missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "run-000002-000002.sst")); err != nil {
		t.Fatalf("original run missing at crash point: %v", err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 2, Fsync: wal.FsyncAlways, FlushBytes: -1})
	defer re.Close()
	if re.Runs() != 1 {
		t.Fatalf("runs after recovery = %d, want 1 (merged)", re.Runs())
	}
	for _, name := range []string{"run-000001-000001.sst", "run-000002-000002.sst", "run-000003-000003.sst"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("subsumed run %s survived recovery (err=%v)", name, err)
		}
	}
	enginetest.RequireSameState(t, re, ref) // exact: no duplicates
}

// TestCompactionFoldsGarbage: GC prunes run indexes in memory; a merge
// compaction must rewrite the disk to match — dropping pruned versions
// and tombstoned chains whose deletion became stable — and the shrunken
// state must be what a restart recovers.
func TestCompactionFoldsGarbage(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 1, Fsync: wal.FsyncNever, FlushBytes: -1, CompactRuns: 100, CompactGarbage: 1 << 30}
	e := mustOpen(t, opts)
	for i := 1; i <= 100; i++ {
		e.Put("hot", v(fmt.Sprintf("v%d", i), hlc.Timestamp(i), uint64(i)))
	}
	e.Put("dead", v("alive", 10, 500))
	e.Put("dead", &store.Version{Value: nil, UT: 20, RDT: 20, TxID: 501}) // tombstone
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	runPath := filepath.Join(dir, "run-000001-000001.sst")
	before, err := os.Stat(runPath)
	if err != nil {
		t.Fatal(err)
	}

	// GC at 1000: 99 of hot's versions are garbage and dead's chain is a
	// stable tombstone — all pruned from the in-memory index, still on
	// disk.
	res := e.GCStats(1000)
	if res.Removed != 101 || res.DroppedKeys != 1 {
		t.Fatalf("GCStats = %+v, want Removed=101 DroppedKeys=1", res)
	}
	if got := e.Latest("dead"); got != nil {
		t.Fatalf("dead key still visible: %+v", got)
	}

	e.Compact()
	if e.Metrics().Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1", e.Metrics().Compactions())
	}
	after, err := os.Stat(runPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the run: %d -> %d bytes", before.Size(), after.Size())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, opts)
	defer re.Close()
	if got := re.VersionsOf("hot"); got != 1 {
		t.Fatalf("recovered VersionsOf(hot) = %d, want 1", got)
	}
	if got := re.Latest("hot"); got == nil || string(got.Value) != "v100" {
		t.Fatalf("recovered Latest(hot) = %+v, want v100", got)
	}
	if got := re.Latest("dead"); got != nil {
		t.Fatalf("tombstoned chain resurrected from disk: %+v", got)
	}
}

// TestAutoFlushAndCompact: with a tiny flush threshold and a low run
// limit, a plain write workload must flush and compact on its own, keep
// every live version readable throughout, and stay healthy.
func TestAutoFlushAndCompact(t *testing.T) {
	e := mustOpen(t, Options{Dir: t.TempDir(), Shards: 2, Fsync: wal.FsyncNever, FlushBytes: 1024, CompactRuns: 2})
	defer e.Close()
	ref := store.NewMemoryEngine(2)
	var kvs []store.KV
	for i := 0; i < 500; i++ {
		ver := v(fmt.Sprintf("val-%d-with-some-padding-bytes", i), hlc.Timestamp(i+1), uint64(i))
		kvs = append(kvs, store.KV{Key: fmt.Sprintf("key-%d", i%50), Version: ver})
		if len(kvs) == 10 {
			e.PutBatch(kvs)
			ref.PutBatch(kvs)
			kvs = kvs[:0]
		}
	}
	// Flush any remainder synchronously so the comparison is stable.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Metrics().Flushes() == 0 {
		t.Fatal("auto-flush never fired")
	}
	enginetest.RequireSameState(t, e, ref)
	if err := e.Healthy(); err != nil {
		t.Fatalf("engine unhealthy after auto flush/compact workload: %v", err)
	}
}

// TestTornWALTail: a torn final record in the active generation is
// truncated on recovery, everything before it replayed.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: wal.FsyncAlways, FlushBytes: -1})
	logPath := filepath.Join(dir, "wal-000001-00000.log")

	const puts = 30
	sizes := make([]int64, 0, puts)
	ref := store.NewMemoryEngine(1)
	for i := 0; i < puts; i++ {
		key := fmt.Sprintf("key-%d", i%7)
		ver := v(fmt.Sprintf("payload-%d-wide-enough-to-cut-inside", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(key, ver)
		st, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, st.Size())
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < puts-1; i++ {
		key := fmt.Sprintf("key-%d", i%7)
		ref.Put(key, v(fmt.Sprintf("payload-%d-wide-enough-to-cut-inside", i), hlc.Timestamp(i+1), uint64(i)))
	}
	if err := os.Truncate(logPath, sizes[puts-2]+5); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: wal.FsyncAlways, FlushBytes: -1})
	defer re.Close()
	if re.Metrics().TruncatedShards() != 1 {
		t.Errorf("TruncatedShards = %d, want 1", re.Metrics().TruncatedShards())
	}
	if re.Metrics().Recovered() != puts-1 {
		t.Errorf("Recovered = %d, want %d", re.Metrics().Recovered(), puts-1)
	}
	enginetest.RequireSameState(t, re, ref)
}

// TestAppendFailureSurfacesHealth: when the WAL append path breaks, the
// engine keeps serving from memory but Healthy must report the failure
// immediately — this is the signal wren-bench and the cluster use to
// detect a silently-frozen shard log.
func TestAppendFailureSurfacesHealth(t *testing.T) {
	e := mustOpen(t, Options{Dir: t.TempDir(), Shards: 1, Fsync: wal.FsyncNever, FlushBytes: -1})
	e.Put("k", v("before", 1, 1))
	if err := e.Healthy(); err != nil {
		t.Fatalf("healthy engine reported %v", err)
	}

	// Break every write and truncate by closing the file under the shard.
	sh := e.shards[0]
	sh.Mu.Lock()
	_ = sh.F.Close()
	sh.Mu.Unlock()

	e.Put("k", v("during", 2, 2))
	if err := e.Healthy(); err == nil {
		t.Fatal("Healthy() = nil after append failure")
	}
	// Memory stays authoritative.
	if lv := e.Latest("k"); lv == nil || string(lv.Value) != "during" {
		t.Fatalf("memory lost the write: %+v", lv)
	}
	if err := e.Close(); err == nil {
		t.Fatal("Close should surface the recorded append failure")
	}
}

// TestShardCountPersistedAcrossReopen: the stripe count is fixed at
// creation (sst.meta); reopening with a different Shards option must
// adopt the persisted count.
func TestShardCountPersistedAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 8, Fsync: wal.FsyncAlways, FlushBytes: -1})
	ref := store.NewMemoryEngine(8)
	for i := 0; i < 64; i++ {
		ver := v(fmt.Sprintf("val-%d", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(fmt.Sprintf("key-%d", i), ver)
		ref.Put(fmt.Sprintf("key-%d", i), ver)
	}
	if err := e.Flush(); err != nil { // recovery must route run + wal alike
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for _, requested := range []int{2, 64, 0} {
		re := mustOpen(t, Options{Dir: dir, Shards: requested, Fsync: wal.FsyncAlways, FlushBytes: -1})
		if re.NumShards() != 8 {
			t.Fatalf("reopen with Shards=%d: NumShards = %d, want persisted 8", requested, re.NumShards())
		}
		enginetest.RequireSameState(t, re, ref)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "sst.meta"), []byte("shards=7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("Open with corrupt meta (non-power-of-two) should fail")
	}
}

// TestExclusiveDirLock: a second engine on a live data directory must
// fail at Open; Close releases the lock.
func TestExclusiveDirLock(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir})
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("second Open on a live data dir should fail")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := mustOpen(t, Options{Dir: dir})
	_ = e2.Close()
}

// TestOpenRejectsBadPolicy covers option validation.
func TestOpenRejectsBadPolicy(t *testing.T) {
	if _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Error("Open with unknown fsync policy should fail")
	}
}

// BenchmarkEnginePutBatch compares write throughput of the memory engine
// and the SST engine under each fsync policy (the CI bench smoke for the
// sst backend matrix leg).
func BenchmarkEnginePutBatch(b *testing.B) {
	const batch = 64
	mkBatch := func(i int) []store.KV {
		kvs := make([]store.KV, batch)
		for j := range kvs {
			kvs[j] = store.KV{
				Key:     fmt.Sprintf("key-%d", (i*batch+j)%4096),
				Version: v("sixteen-byte-val", hlc.Timestamp(i*batch+j+1), uint64(j)),
			}
		}
		return kvs
	}
	run := func(b *testing.B, e store.Engine) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.PutBatch(mkBatch(i))
		}
		b.StopTimer()
		_ = e.Close()
	}
	b.Run("memory", func(b *testing.B) {
		run(b, store.NewMemoryEngine(0))
	})
	for _, policy := range []string{wal.FsyncNever, wal.FsyncInterval, wal.FsyncAlways} {
		b.Run("sst-"+policy, func(b *testing.B) {
			e, err := Open(Options{Dir: b.TempDir(), Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			run(b, e)
		})
	}
}

// TestDeletedKeyStaysDeadAcrossFlushCrash pins the GC durability rule: a
// tombstone whose shadowed value was already flushed to a run file must
// NOT leave the memtable at GC time — its WAL generation is about to be
// superseded by a flush, and if the next run omits it, a crash would
// recover the stale run file and resurrect the deleted key as live.
func TestDeletedKeyStaysDeadAcrossFlushCrash(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, Shards: 1, Fsync: wal.FsyncAlways, FlushBytes: -1, CompactRuns: 100, CompactGarbage: 1 << 30}
	e := mustOpen(t, opts)
	all := func(*store.Version) bool { return true }

	e.Put("k", v("live", 10, 1))
	if err := e.Flush(); err != nil { // run 1's file now holds live@10
		t.Fatal(err)
	}
	e.Put("k", &store.Version{Value: nil, UT: 20, RDT: 20, TxID: 2}) // tombstone, WAL gen 2
	e.Put("other", v("x", 30, 3))

	// GC at a horizon past the tombstone: the value in run 1's index is
	// pruned, but the tombstone must stay in the memtable (run 1's FILE
	// still holds live@10, and this tombstone is its only durable shadow).
	res := e.GCStats(100)
	if res.Removed != 1 || res.DroppedKeys != 0 {
		t.Fatalf("GCStats = %+v, want Removed=1 DroppedKeys=0 (tombstone deferred)", res)
	}
	if got := e.ReadVisible("k", all); got == nil || got.Value != nil {
		t.Fatalf("freshest = %+v, want the retained tombstone", got)
	}

	// The flush supersedes WAL gen 2 — the tombstone must ride along into
	// run 2 for that to be safe.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, opts)
	if got := re.ReadVisible("k", all); got != nil && got.Value != nil {
		t.Fatalf("deleted key resurrected after flush + restart: %q", got.Value)
	}

	// Compaction folds the tombstone and the stale value out of the disk
	// entirely; after another restart the key is gone without a trace.
	if gone := re.GCStats(1000); gone.DroppedKeys != 1 {
		t.Fatalf("post-restart GCStats = %+v, want DroppedKeys=1", gone)
	}
	re.Compact()
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := mustOpen(t, opts)
	defer re2.Close()
	if got := re2.Latest("k"); got != nil {
		t.Fatalf("key survived compaction + restart: %+v", got)
	}
	if got := re2.Latest("other"); got == nil || string(got.Value) != "x" {
		t.Fatalf("unrelated key lost: %+v", got)
	}
}
