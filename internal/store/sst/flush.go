package sst

import (
	"bufio"
	"fmt"
	"os"
	"sort"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/fsutil"
	"wren/internal/store/logrec"
	"wren/internal/store/shardlog"
	"wren/internal/store/wal"
	"wren/internal/wire"
)

// Flush freezes the active memtable and writes it out as one immutable
// sorted run, then deletes the WAL generations the run supersedes. It is
// a no-op on an empty memtable. Flush is what the background trigger
// calls; tests and tooling may call it directly.
func (e *Engine) Flush() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	tabs := e.tabs.Load()
	if tabs.frozen != nil {
		return nil // only after a simulated-crash hook; never in production
	}
	if tabs.active.Versions() == 0 {
		return nil
	}

	// Freeze: rotate in a fresh memtable and a fresh WAL generation under
	// every shard lock, so each write lands wholly in the old tier or
	// wholly in the new one. The old memtable becomes the frozen tier —
	// still readable — while its run is written without any lock.
	for _, sh := range e.shards {
		sh.Mu.Lock()
	}
	oldGen := e.gen
	newGen := oldGen + 1
	frozenMin := e.minGen
	newFiles := make([]*os.File, e.nShards)
	var ferr error
	for si := range e.shards {
		f, err := os.OpenFile(e.walPath(newGen, si), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			ferr = err
			break
		}
		newFiles[si] = f
	}
	if ferr == nil {
		// Persist the new generation's directory entries BEFORE any write
		// can be acknowledged against them: once the shard locks drop, an
		// fsync=always Put syncs file contents only, and without this a
		// power loss could drop the entries themselves — acknowledged
		// records vanishing with their files.
		if derr := fsutil.SyncDir(e.dir); derr != nil {
			ferr = derr
		}
	}
	if ferr != nil {
		for _, f := range newFiles {
			if f != nil {
				_ = f.Close()
			}
		}
		for i := e.nShards - 1; i >= 0; i-- {
			e.shards[i].Mu.Unlock()
		}
		err := fmt.Errorf("sst: rotate wal generation: %w", ferr)
		e.recordErr(err)
		return err
	}
	frozen := tabs.active
	oldFiles := make([]*os.File, e.nShards)
	for si, sh := range e.shards {
		oldFiles[si] = sh.F
		sh.F = newFiles[si]
		sh.Size = 0
		sh.Dirty = false
		sh.Failed = false // the fresh generation file repairs a frozen shard log
	}
	e.gen = newGen
	e.minGen = newGen
	e.memBytes.Store(0)
	e.tabs.Store(&tables{active: store.NewSharded(e.nShards), frozen: frozen, runs: tabs.runs})
	for i := e.nShards - 1; i >= 0; i-- {
		e.shards[i].Mu.Unlock()
	}

	// The rotated-out generation may hold appends the interval policy has
	// not synced yet, and the fsync loop can no longer reach them (the
	// shards now point at the new generation). Sync them here so the
	// interval loss bound stays one interval plus this sync, not the whole
	// run-write duration; fsync=never keeps its no-promises contract.
	if e.fsync != wal.FsyncNever {
		shardlog.SyncFiles(oldFiles, e.onErr)
	}

	// Write the run. No locks are needed: the frozen memtable is
	// immutable, and readers keep serving from it through the tables
	// snapshot for the whole duration.
	r, err := e.writeRun(frozen, frozenMin, oldGen)
	if err != nil {
		// The frozen records are still durable in WAL generations
		// [frozenMin, oldGen]: sync and close those handles, fold the
		// frozen memtable back into the active tier, and let the next
		// flush retry with a run covering the whole span.
		for _, f := range oldFiles {
			_ = f.Sync()
			_ = f.Close()
		}
		e.unfreeze(frozen, frozenMin)
		e.recordErr(err)
		return err
	}
	if e.opts.crashAfterFlushRename {
		for _, f := range oldFiles {
			_ = f.Close()
		}
		e.markCrashed()
		return nil
	}

	// Publish: one atomic swap replaces the frozen memtable with the run,
	// so there is never a window where the data is invisible or counted
	// twice by the flushMu-holding counting methods.
	cur := e.tabs.Load()
	runs := make([]*run, 0, len(cur.runs)+1)
	runs = append(runs, r)
	runs = append(runs, cur.runs...)
	e.tabs.Store(&tables{active: cur.active, frozen: nil, runs: runs})

	// The durable run supersedes the WAL generations it covers.
	for _, f := range oldFiles {
		_ = f.Close()
	}
	for g := frozenMin; g <= oldGen; g++ {
		for si := 0; si < e.nShards; si++ {
			if err := os.Remove(e.walPath(g, si)); err != nil && !os.IsNotExist(err) {
				e.recordErr(fmt.Errorf("sst: remove superseded wal: %w", err))
			}
		}
	}
	e.metrics.add(func(m *Metrics) { m.flushes++ })
	e.maybeCompactLocked()
	return nil
}

// unfreeze folds a frozen memtable whose flush failed back into the
// active tier. Readers may briefly see a version in both tiers; the
// last-writer-wins merge makes that harmless, and the counting methods
// are blocked on flushMu (held here) until the fold completes.
func (e *Engine) unfreeze(frozen *store.Store, frozenMin uint64) {
	cur := e.tabs.Load()
	var bytes int64
	frozen.ForEachKey(func(k string) {
		for _, v := range frozen.ChainInto(k, nil) {
			cur.active.Put(k, v)
			bytes += writeSize(k, v)
		}
	})
	e.tabs.Store(&tables{active: cur.active, frozen: nil, runs: cur.runs})
	e.minGen = frozenMin
	e.memBytes.Add(bytes)
}

// writeRun writes the frozen memtable as one immutable sorted run file
// covering WAL generations [minGen, maxGen]: keys in sorted order, each
// key's version chain contiguous in last-writer-wins (timestamp) order.
// The file is written to a temp name, fsynced, atomically renamed into
// place and the directory synced — only then may the WAL generations it
// covers be deleted.
func (e *Engine) writeRun(frozen *store.Store, minGen, maxGen uint64) (*run, error) {
	keys := make([]string, 0, frozen.Keys())
	frozen.ForEachKey(func(k string) { keys = append(keys, k) })
	sort.Strings(keys)
	idx := make(map[string][]*store.Version, len(keys))
	versions := 0
	for _, k := range keys {
		chain := frozen.ChainInto(k, nil)
		idx[k] = chain
		versions += len(chain)
	}
	path := e.runPath(minGen, maxGen)
	if err := writeRunFile(path, keys, idx); err != nil {
		return nil, err
	}
	if err := fsutil.SyncDir(e.dir); err != nil {
		return nil, fmt.Errorf("sst: sync dir: %w", err)
	}
	return &run{path: path, minGen: minGen, maxGen: maxGen, index: idx, versions: versions}, nil
}

// writeRunFile streams the records of a run to path via a temp file,
// fsyncs, and renames it into place.
func writeRunFile(path string, keys []string, idx map[string][]*store.Version) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("sst: write run: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	enc := wire.NewEncoder()
	for _, k := range keys {
		for _, v := range idx[k] {
			enc.Reset()
			logrec.Append(enc, k, v)
			if _, err = w.Write(enc.Bytes()); err != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("sst: write run %s: %w", path, err)
	}
	return nil
}

// maybeCompactLocked triggers a merge compaction when runs pile up or
// enough GC-pruned garbage lingers in the run files. Caller holds
// flushMu.
func (e *Engine) maybeCompactLocked() {
	if e.compactRuns < 0 {
		return
	}
	runs := e.tabs.Load().runs
	if len(runs) >= e.compactRuns || (len(runs) > 0 && e.garbage >= e.compactGarbage) {
		e.compactLocked()
	}
}

// Compact forces a merge compaction (tests and tooling; production
// compaction is triggered by run count and GC garbage).
func (e *Engine) Compact() {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.compactLocked()
}

// compactLocked folds every run into one: chains are merged per key in
// last-writer-wins order from the LIVE in-memory indexes — which already
// exclude everything GC pruned, so stale versions and tombstoned chains
// whose deletion became stable leave the disk here — and the merged run
// atomically replaces the originals. Caller holds flushMu.
func (e *Engine) compactLocked() {
	tabs := e.tabs.Load()
	runs := tabs.runs
	if len(runs) == 0 || (len(runs) == 1 && e.garbage == 0) {
		return
	}
	minGen, maxGen := runs[0].minGen, runs[0].maxGen
	merged := make(map[string][]*store.Version)
	for i := len(runs) - 1; i >= 0; i-- { // oldest first
		r := runs[i]
		if r.minGen < minGen {
			minGen = r.minGen
		}
		if r.maxGen > maxGen {
			maxGen = r.maxGen
		}
		for k, chain := range r.index {
			merged[k] = append(merged[k], chain...)
		}
	}
	keys := make([]string, 0, len(merged))
	versions := 0
	for k, chain := range merged {
		sort.Slice(chain, func(i, j int) bool { return chain[i].Less(chain[j]) })
		versions += len(chain)
		keys = append(keys, k)
	}
	sort.Strings(keys)

	path := e.runPath(minGen, maxGen)
	if err := writeRunFile(path, keys, merged); err != nil {
		e.recordErr(err)
		return
	}
	if err := fsutil.SyncDir(e.dir); err != nil {
		e.recordErr(fmt.Errorf("sst: sync dir: %w", err))
		return
	}
	if e.opts.crashAfterCompactRename {
		e.markCrashed()
		return
	}
	mergedRun := &run{path: path, minGen: minGen, maxGen: maxGen, index: merged, versions: versions}
	cur := e.tabs.Load()
	e.tabs.Store(&tables{active: cur.active, frozen: cur.frozen, runs: []*run{mergedRun}})
	for _, r := range runs {
		if r.path == path {
			continue // a single-run rewrite replaced its own file via the rename
		}
		if err := os.Remove(r.path); err != nil {
			e.recordErr(fmt.Errorf("sst: remove compacted run: %w", err))
		}
	}
	e.garbage = 0
	e.metrics.add(func(m *Metrics) { m.compactions++ })
}

// GCStats implements store.Engine. GC must make ONE decision per key
// across every tier: with a chain split between the memtable and several
// runs, each tier's own "newest version with UT ≤ oldest" differs from
// the global one, and pruning tiers independently would keep one extra
// version per tier and break the exact accounting the Engine contract
// promises. The pass therefore computes the global base — the newest
// version with UT ≤ oldest across all tiers — then prunes the memtable
// through PruneChain and republishes pruned copies of the affected run
// indexes (the immutable maps are replaced wholesale, never mutated, so
// concurrent readers stay lock-free). Run FILES keep the garbage until a
// merge compaction rewrites them; the garbage counter feeds that trigger.
func (e *Engine) GCStats(oldest hlc.Timestamp) store.GCResult {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	res := store.GCResult{PerShard: make([]int, e.nShards)}
	tabs := e.tabs.Load()
	if tabs.frozen != nil {
		return res // only after a simulated-crash hook; never in production
	}
	active := tabs.active
	newIdx := make([]map[string][]*store.Version, len(tabs.runs))
	newDead := make([]map[string]struct{}, len(tabs.runs))
	newVers := make([]int, len(tabs.runs))
	for i, r := range tabs.runs {
		newVers[i] = r.versions
	}
	visited := make(map[string]struct{})
	var scratch []*store.Version
	gcKey := func(key string) {
		if _, ok := visited[key]; ok {
			return
		}
		visited[key] = struct{}{}
		scratch = active.ChainInto(key, scratch[:0])
		var base, newest *store.Version
		scan := func(chain []*store.Version) {
			if len(chain) == 0 {
				return
			}
			if t := chain[len(chain)-1]; newest == nil || newest.Less(t) {
				newest = t
			}
			for i := len(chain) - 1; i >= 0; i-- {
				if chain[i].UT <= oldest {
					if base == nil || base.Less(chain[i]) {
						base = chain[i]
					}
					break
				}
			}
		}
		scan(scratch)
		for _, r := range tabs.runs {
			scan(r.index[key])
		}
		if base == nil {
			return // every version is newer than the oldest snapshot
		}
		// The stable snapshot base is a tombstone and nothing newer exists
		// in any tier: every reader would see "not found" — drop the whole
		// chain. The drop is bounded by base (see store.ChainCut): a write
		// racing into the memtable after this decision is newer than base
		// and survives.
		//
		// Durability gates the MEMTABLE side of the drop: while any run
		// FILE may still hold versions of the key (files shrink only at
		// compaction, so the pruned indexes are consulted together with
		// their dead sets), the memtable tombstone — whose WAL generation
		// the next flush will supersede — is the only durable witness
		// shadowing them. Dropping it would let a crash resurrect the
		// deleted key from the stale run file. So the tombstone is kept
		// and flushes into a run like any version; it leaves memory at a
		// later pass (once only indexes hold it) and leaves the disk when
		// compaction rewrites every file.
		dropWhole := base.Value == nil && base == newest
		memDrop := dropWhole
		if dropWhole {
			for _, r := range tabs.runs {
				if r.fileHas(key) {
					memDrop = false
					break
				}
			}
		}
		removed := active.PruneChain(key, base, memDrop)
		for ri, r := range tabs.runs {
			chain := r.index[key]
			if newIdx[ri] != nil {
				chain = newIdx[ri][key]
			}
			if len(chain) == 0 {
				continue
			}
			cut := store.ChainCut(chain, base, dropWhole)
			if cut == 0 {
				continue
			}
			if newIdx[ri] == nil {
				newIdx[ri] = make(map[string][]*store.Version, len(r.index))
				for k, c := range r.index {
					newIdx[ri][k] = c
				}
			}
			if cut == len(chain) {
				delete(newIdx[ri], key)
				if newDead[ri] == nil {
					newDead[ri] = make(map[string]struct{})
				}
				newDead[ri][key] = struct{}{}
			} else {
				newIdx[ri][key] = chain[cut:]
			}
			newVers[ri] -= cut
			removed += cut
		}
		if removed > 0 {
			res.PerShard[store.Fingerprint(key)&e.mask] += removed
		}
		// The chain counts as dropped once no in-memory tier shows it:
		// either the memtable side was allowed to drop, or the chain
		// lived only in run indexes (all of which dropWhole just pruned).
		if dropWhole && (memDrop || len(scratch) == 0) {
			res.DroppedKeys++
		}
	}
	active.ForEachKey(gcKey)
	for _, r := range tabs.runs {
		for k := range r.index {
			gcKey(k)
		}
	}

	changed := false
	newRuns := make([]*run, len(tabs.runs))
	for ri, r := range tabs.runs {
		if newIdx[ri] == nil {
			newRuns[ri] = r
			continue
		}
		changed = true
		e.garbage += r.versions - newVers[ri]
		dead := r.dead
		if len(newDead[ri]) > 0 {
			dead = make(map[string]struct{}, len(r.dead)+len(newDead[ri]))
			for k := range r.dead {
				dead[k] = struct{}{}
			}
			for k := range newDead[ri] {
				dead[k] = struct{}{}
			}
		}
		newRuns[ri] = &run{path: r.path, minGen: r.minGen, maxGen: r.maxGen, index: newIdx[ri], versions: newVers[ri], dead: dead}
	}
	if changed {
		cur := e.tabs.Load()
		e.tabs.Store(&tables{active: cur.active, frozen: cur.frozen, runs: newRuns})
	}
	for _, n := range res.PerShard {
		res.Removed += n
	}
	e.maybeCompactLocked()
	return res
}
