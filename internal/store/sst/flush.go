package sst

import (
	"fmt"
	"os"
	"sort"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/fsutil"
	"wren/internal/store/shardlog"
	"wren/internal/store/wal"
)

// Flush freezes the active memtable and writes it out as one immutable
// sorted run, then deletes the WAL generations the run supersedes. It is
// a no-op on an empty memtable. Flush is what the background trigger
// calls; tests and tooling may call it directly.
func (e *Engine) Flush() error {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	return e.flushLocked()
}

func (e *Engine) flushLocked() error {
	tabs := e.tabs.Load()
	if tabs.frozen != nil {
		return nil // only after a simulated-crash hook; never in production
	}
	if tabs.active.Versions() == 0 {
		return nil
	}

	// Freeze: rotate in a fresh memtable and a fresh WAL generation under
	// every shard lock, so each write lands wholly in the old tier or
	// wholly in the new one. The old memtable becomes the frozen tier —
	// still readable — while its run is written without any lock.
	for _, sh := range e.shards {
		sh.Mu.Lock()
	}
	oldGen := e.gen
	newGen := oldGen + 1
	frozenMin := e.minGen
	newFiles := make([]*os.File, e.nShards)
	var ferr error
	for si := range e.shards {
		f, err := os.OpenFile(e.walPath(newGen, si), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			ferr = err
			break
		}
		newFiles[si] = f
	}
	if ferr == nil {
		// Persist the new generation's directory entries BEFORE any write
		// can be acknowledged against them: once the shard locks drop, an
		// fsync=always Put syncs file contents only, and without this a
		// power loss could drop the entries themselves — acknowledged
		// records vanishing with their files.
		if derr := fsutil.SyncDir(e.dir); derr != nil {
			ferr = derr
		}
	}
	if ferr != nil {
		for _, f := range newFiles {
			if f != nil {
				_ = f.Close()
			}
		}
		for i := e.nShards - 1; i >= 0; i-- {
			e.shards[i].Mu.Unlock()
		}
		err := fmt.Errorf("sst: rotate wal generation: %w", ferr)
		e.recordErr(err)
		return err
	}
	frozen := tabs.active
	oldFiles := make([]*os.File, e.nShards)
	for si, sh := range e.shards {
		oldFiles[si] = sh.F
		sh.F = newFiles[si]
		sh.Size = 0
		sh.Dirty = false
		sh.Failed = false // the fresh generation file repairs a frozen shard log
	}
	e.gen = newGen
	e.minGen = newGen
	e.memBytes.Store(0)
	e.tabs.Store(&tables{active: store.NewSharded(e.nShards), frozen: frozen, runs: tabs.runs})
	for i := e.nShards - 1; i >= 0; i-- {
		e.shards[i].Mu.Unlock()
	}

	// The rotated-out generation may hold appends the interval policy has
	// not synced yet, and the fsync loop can no longer reach them (the
	// shards now point at the new generation). Sync them here so the
	// interval loss bound stays one interval plus this sync, not the whole
	// run-write duration; fsync=never keeps its no-promises contract.
	if e.fsync != wal.FsyncNever {
		shardlog.SyncFiles(oldFiles, e.onErr)
	}

	// Write the run. No locks are needed: the frozen memtable is
	// immutable, and readers keep serving from it through the tables
	// snapshot for the whole duration.
	r, err := e.writeRun(frozen, frozenMin, oldGen)
	if err != nil {
		// The frozen records are still durable in WAL generations
		// [frozenMin, oldGen]: sync and close those handles, fold the
		// frozen memtable back into the active tier, and let the next
		// flush retry with a run covering the whole span.
		for _, f := range oldFiles {
			_ = f.Sync()
			_ = f.Close()
		}
		e.unfreeze(frozen, frozenMin)
		e.recordErr(err)
		return err
	}
	if e.opts.crashAfterFlushRename {
		for _, f := range oldFiles {
			_ = f.Close()
		}
		e.markCrashed()
		return nil
	}

	// Publish: one atomic swap replaces the frozen memtable with the run,
	// so there is never a window where the data is invisible or counted
	// twice by the flushMu-holding counting methods.
	cur := e.tabs.Load()
	runs := make([]*run, 0, len(cur.runs)+1)
	runs = append(runs, r)
	runs = append(runs, cur.runs...)
	e.tabs.Store(&tables{active: cur.active, frozen: nil, runs: runs})

	// The durable run supersedes the WAL generations it covers.
	for _, f := range oldFiles {
		_ = f.Close()
	}
	for g := frozenMin; g <= oldGen; g++ {
		for si := 0; si < e.nShards; si++ {
			if err := os.Remove(e.walPath(g, si)); err != nil && !os.IsNotExist(err) {
				e.recordErr(fmt.Errorf("sst: remove superseded wal: %w", err))
			}
		}
	}
	e.metrics.add(func(m *Metrics) { m.flushes++ })
	e.maybeCompactLocked()
	return nil
}

// unfreeze folds a frozen memtable whose flush failed back into the
// active tier. Readers may briefly see a version in both tiers; the
// last-writer-wins merge makes that harmless, and the counting methods
// are blocked on flushMu (held here) until the fold completes.
func (e *Engine) unfreeze(frozen *store.Store, frozenMin uint64) {
	cur := e.tabs.Load()
	var bytes int64
	frozen.ForEachKey(func(k string) {
		for _, v := range frozen.ChainInto(k, nil) {
			cur.active.Put(k, v)
			bytes += writeSize(k, v)
		}
	})
	e.tabs.Store(&tables{active: cur.active, frozen: nil, runs: cur.runs})
	e.minGen = frozenMin
	e.memBytes.Add(bytes)
}

// writeRun writes the frozen memtable as one immutable sorted run file
// covering WAL generations [minGen, maxGen]: keys in sorted order, each
// key's version chain contiguous in last-writer-wins (timestamp) order,
// blocked and footered by the run writer. The file is written to a temp
// name, fsynced, atomically renamed into place and the directory synced —
// only then may the WAL generations it covers be deleted.
func (e *Engine) writeRun(frozen *store.Store, minGen, maxGen uint64) (*run, error) {
	keys := make([]string, 0, frozen.Keys())
	frozen.ForEachKey(func(k string) { keys = append(keys, k) })
	sort.Strings(keys)
	w, err := newRunWriter(e.runPath(minGen, maxGen), e.blockBytes, len(keys), e.bloomBits)
	if err != nil {
		return nil, err
	}
	var chain []*store.Version
	for _, k := range keys {
		chain = frozen.ChainInto(k, chain[:0])
		w.addChain(k, chain)
	}
	fileSize, dataSize, err := w.finish()
	if err != nil {
		return nil, err
	}
	if err := fsutil.SyncDir(e.dir); err != nil {
		return nil, fmt.Errorf("sst: sync dir: %w", err)
	}
	r, err := w.intoRun(minGen, maxGen, fileSize, dataSize)
	if err != nil {
		return nil, err
	}
	r.level = e.levelOf(fileSize)
	return r, nil
}

// garbageLocked is the number of GC-pruned versions still occupying run
// files (the sum of the overlay cuts). Caller holds flushMu.
func (e *Engine) garbageLocked() int {
	n := 0
	for _, r := range e.tabs.Load().runs {
		n += r.cutTotal
	}
	return n
}

// levelGroup finds a gen-contiguous group of at least need runs sharing
// one size level. runs is newest-first; only adjacent-in-generation runs
// may merge — a merged output's generation interval must subsume exactly
// its inputs, or crash recovery's subsumption rule would delete an
// unmerged run sitting inside the interval.
func levelGroup(runs []*run, need int) []*run {
	for i := 0; i < len(runs); {
		j := i
		for j+1 < len(runs) && runs[j+1].level == runs[i].level && runs[j].minGen == runs[j+1].maxGen+1 {
			j++
		}
		if j-i+1 >= need {
			return runs[i : j+1]
		}
		i = j + 1
	}
	return nil
}

// maybeCompactLocked triggers compaction when enough GC-pruned garbage
// lingers in the run files (a major, whole-dataset merge that reclaims
// it) or when runs pile up within one size level (a level-scoped merge
// whose I/O is bounded by that level's size, not the dataset). Level
// merges cascade: folding four level-0 runs can produce a level-1 run
// that completes a level-1 group, and so on. Caller holds flushMu.
func (e *Engine) maybeCompactLocked() {
	if e.compactRuns < 0 {
		return
	}
	runs := e.tabs.Load().runs
	if len(runs) == 0 {
		return
	}
	if e.garbageLocked() >= e.compactGarbage {
		e.compactLocked(runs)
		return
	}
	for {
		runs = e.tabs.Load().runs
		group := levelGroup(runs, e.compactRuns)
		if group == nil {
			return
		}
		e.compactLocked(group)
		if len(e.tabs.Load().runs) >= len(runs) {
			return // the merge failed or was a no-op; don't spin
		}
	}
}

// Compact forces a major compaction folding every run into one (tests
// and tooling; production compaction is level-scoped and triggered by
// run count and GC garbage).
func (e *Engine) Compact() {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	runs := e.tabs.Load().runs
	if len(runs) == 0 || (len(runs) == 1 && e.garbageLocked() == 0) {
		return
	}
	e.compactLocked(runs)
}

// compactLocked streams the input runs (a gen-contiguous, newest-first
// subsequence of the live runs) through a k-way merge into one output
// run: chains are merged per key in last-writer-wins order with the GC
// overlay cuts applied — so pruned versions and tombstoned chains whose
// deletion became stable leave the disk here — and the output atomically
// replaces the inputs. Input files are deleted, and their descriptors
// released, only after the replacement tables are published, so a
// concurrent reader either finds its run still probeable or finds tables
// that no longer list it. Caller holds flushMu.
//
// A fully-cut chain whose freshest file version is a tombstone needs one
// more distinction: if any run OUTSIDE the merge may still hold the key,
// the tombstone is the durable witness shadowing those file-resident
// versions — dropping it would let a crash resurrect the deleted key —
// so the output keeps just the tombstone, still overlay-cut (reads skip
// it). Only when no other file can hold the key does the chain leave the
// disk entirely. A major compaction has no outside runs, which restores
// the old "merge-all drops stable tombstones" behavior.
func (e *Engine) compactLocked(inputs []*run) {
	if len(inputs) == 0 {
		return
	}
	tabs := e.tabs.Load()
	inputSet := make(map[*run]struct{}, len(inputs))
	for _, r := range inputs {
		inputSet[r] = struct{}{}
	}
	var outside []*run
	for _, r := range tabs.runs {
		if _, ok := inputSet[r]; !ok {
			outside = append(outside, r)
		}
	}

	minGen, maxGen := inputs[0].minGen, inputs[0].maxGen
	expectKeys := 1
	for _, r := range inputs {
		if r.minGen < minGen {
			minGen = r.minGen
		}
		if r.maxGen > maxGen {
			maxGen = r.maxGen
		}
		expectKeys += r.keyCount - r.deadKeys
	}
	path := e.runPath(minGen, maxGen)
	w, err := newRunWriter(path, e.blockBytes, expectKeys, e.bloomBits)
	if err != nil {
		e.recordErr(err)
		return
	}

	iters := make([]*runIterator, len(inputs))
	live := make([]bool, len(inputs))
	for i, r := range inputs {
		it := newRunIterator(e, r)
		if it == nil { // retired: impossible under flushMu, but stay safe
			for j := 0; j < i; j++ {
				iters[j].close()
			}
			w.abort()
			return
		}
		iters[i] = it
		live[i] = it.next()
	}

	outCuts := make(map[string]int)
	var merged []*store.Version
	for {
		key := ""
		have := false
		for i, it := range iters {
			if live[i] && (!have || it.key < key) {
				key, have = it.key, true
			}
		}
		if !have {
			break
		}
		merged = merged[:0]
		var lastFull *store.Version
		for i, it := range iters {
			if !live[i] || it.key != key {
				continue
			}
			full := it.chain
			if t := full[len(full)-1]; lastFull == nil || lastFull.Less(t) {
				lastFull = t
			}
			if cut := inputs[i].cuts[key]; cut < len(full) {
				merged = append(merged, full[cut:]...)
			}
		}
		if len(merged) > 0 {
			sort.Slice(merged, func(a, b int) bool { return merged[a].Less(merged[b]) })
			w.addChain(key, merged)
		} else if lastFull != nil && lastFull.Value == nil {
			shadow := false
			for _, o := range outside {
				if o.filter.mayContain(key) {
					shadow = true
					break
				}
			}
			if shadow {
				merged = append(merged, lastFull)
				w.addChain(key, merged)
				outCuts[key]++
			}
		}
		for i, it := range iters {
			if live[i] && it.key == key {
				live[i] = it.next()
			}
		}
	}
	var iterErr error
	for _, it := range iters {
		if it.err != nil {
			iterErr = it.err
			break
		}
	}
	for _, it := range iters {
		it.close()
	}
	if iterErr != nil {
		w.abort() // the iterator already recorded the health error
		return
	}

	if w.keys == 0 {
		// Every chain was fully cut with nothing left to shadow: there is
		// no output run at all. Retire the inputs.
		w.abort()
		if e.opts.crashAfterCompactRename {
			e.markCrashed()
			return
		}
		cur := e.tabs.Load()
		e.tabs.Store(&tables{active: cur.active, frozen: cur.frozen, runs: sortRunsNewestFirst(outside)})
		for _, r := range inputs {
			if err := os.Remove(r.path); err != nil {
				e.recordErr(fmt.Errorf("sst: remove compacted run: %w", err))
			}
		}
		for _, r := range inputs {
			r.file.release()
		}
		e.metrics.add(func(m *Metrics) { m.compactions++ })
		return
	}

	fileSize, dataSize, err := w.finish()
	if err != nil {
		e.recordErr(err)
		return
	}
	if err := fsutil.SyncDir(e.dir); err != nil {
		e.recordErr(fmt.Errorf("sst: sync dir: %w", err))
		return
	}
	if e.opts.crashAfterCompactRename {
		e.markCrashed()
		return
	}
	out, err := w.intoRun(minGen, maxGen, fileSize, dataSize)
	if err != nil {
		e.recordErr(err)
		return
	}
	out.level = e.levelOf(fileSize)
	if len(outCuts) > 0 {
		out.cuts = outCuts
		for _, c := range outCuts {
			out.cutTotal += c
		}
		out.deadKeys = len(outCuts)
	}

	cur := e.tabs.Load()
	newRuns := make([]*run, 0, len(outside)+1)
	newRuns = append(newRuns, outside...)
	newRuns = append(newRuns, out)
	e.tabs.Store(&tables{active: cur.active, frozen: cur.frozen, runs: sortRunsNewestFirst(newRuns)})
	for _, r := range inputs {
		if r.path == path {
			continue // a single-run rewrite replaced its own file via the rename
		}
		if err := os.Remove(r.path); err != nil {
			e.recordErr(fmt.Errorf("sst: remove compacted run: %w", err))
		}
	}
	for _, r := range inputs {
		r.file.release()
	}
	e.metrics.add(func(m *Metrics) {
		m.compactions++
		m.compactionBytes += fileSize
	})
}

func sortRunsNewestFirst(runs []*run) []*run {
	sort.Slice(runs, func(i, j int) bool { return runs[i].maxGen > runs[j].maxGen })
	return runs
}

// GCStats implements store.Engine. GC must make ONE decision per key
// across every tier: with a chain split between the memtable and several
// runs, each tier's own "newest version with UT ≤ oldest" differs from
// the global one, and pruning tiers independently would keep one extra
// version per tier and break the exact accounting the Engine contract
// promises. The pass therefore streams a k-way merge of the run files
// (one block buffer each — run data is not resident) against the sorted
// memtable key set, computes the global base per key — the newest version
// with UT ≤ oldest across all tiers — prunes the memtable through
// PruneChain, and extends the per-run overlay cuts, publishing cloned run
// structs wholesale so concurrent readers stay lock-free. Run FILES keep
// the garbage until compaction rewrites them; the cut totals feed that
// trigger.
func (e *Engine) GCStats(oldest hlc.Timestamp) store.GCResult {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	res := store.GCResult{PerShard: make([]int, e.nShards)}
	tabs := e.tabs.Load()
	if tabs.frozen != nil {
		return res // only after a simulated-crash hook; never in production
	}
	active := tabs.active
	if len(tabs.runs) == 0 {
		// Pure-memtable tiering: the striped store's own GC has identical
		// semantics and accounting.
		res = active.GCStats(oldest)
		return res
	}

	memKeys := make([]string, 0, active.Keys())
	active.ForEachKey(func(k string) { memKeys = append(memKeys, k) })
	sort.Strings(memKeys)

	iters := make([]*runIterator, len(tabs.runs))
	live := make([]bool, len(tabs.runs))
	for i, r := range tabs.runs {
		if it := newRunIterator(e, r); it != nil {
			iters[i] = it
			live[i] = it.next()
		}
	}
	defer func() {
		for _, it := range iters {
			if it != nil {
				it.close()
			}
		}
	}()

	newCuts := make([]map[string]int, len(tabs.runs)) // nil = run unchanged
	addCut := make([]int, len(tabs.runs))
	addDead := make([]int, len(tabs.runs))
	cutFor := func(ri int, key string) int {
		if m := newCuts[ri]; m != nil {
			return m[key]
		}
		return tabs.runs[ri].cuts[key]
	}

	var scratch []*store.Version
	mi := 0
	for {
		key := ""
		have := false
		if mi < len(memKeys) {
			key, have = memKeys[mi], true
		}
		for i, it := range iters {
			if live[i] && (!have || it.key < key) {
				key, have = it.key, true
			}
		}
		if !have {
			break
		}

		scratch = active.ChainInto(key, scratch[:0])
		memLen := len(scratch)
		var base, newest *store.Version
		scan := func(chain []*store.Version) {
			if len(chain) == 0 {
				return
			}
			if t := chain[len(chain)-1]; newest == nil || newest.Less(t) {
				newest = t
			}
			for i := len(chain) - 1; i >= 0; i-- {
				if chain[i].UT <= oldest {
					if base == nil || base.Less(chain[i]) {
						base = chain[i]
					}
					break
				}
			}
		}
		scan(scratch)
		fileHasKey := false
		for i, it := range iters {
			if !live[i] || it.key != key {
				continue
			}
			fileHasKey = true
			if cut := cutFor(i, key); cut < len(it.chain) {
				scan(it.chain[cut:])
			}
		}

		advance := func() {
			if mi < len(memKeys) && memKeys[mi] == key {
				mi++
			}
			for i, it := range iters {
				if live[i] && it.key == key {
					live[i] = it.next()
				}
			}
		}
		if base == nil {
			advance() // every surviving version is newer than the snapshot
			continue
		}
		// The stable snapshot base is a tombstone and nothing newer exists
		// in any tier: every reader would see "not found" — drop the whole
		// chain. The drop is bounded by base (see store.ChainCut): a write
		// racing into the memtable after this decision is newer than base
		// and survives.
		//
		// Durability gates the MEMTABLE side of the drop: while any run
		// FILE still holds versions of the key (files shrink only at
		// compaction — a fully-cut chain is still file-resident), the
		// memtable tombstone — whose WAL generation the next flush will
		// supersede — is the only durable witness shadowing them. Dropping
		// it would let a crash resurrect the deleted key from the stale
		// run file. So the tombstone is kept and flushes into a run like
		// any version; it leaves memory at a later pass (once only files
		// hold it) and leaves the disk when compaction rewrites the files.
		dropWhole := base.Value == nil && base == newest
		memDrop := dropWhole && !fileHasKey
		removed := active.PruneChain(key, base, memDrop)
		for i, it := range iters {
			if !live[i] || it.key != key {
				continue
			}
			prior := cutFor(i, key)
			if prior >= len(it.chain) {
				continue // already fully cut
			}
			cut := store.ChainCut(it.chain[prior:], base, dropWhole)
			if cut == 0 {
				continue
			}
			if newCuts[i] == nil {
				r := tabs.runs[i]
				newCuts[i] = make(map[string]int, len(r.cuts)+1)
				for k, c := range r.cuts {
					newCuts[i][k] = c
				}
			}
			newCuts[i][key] = prior + cut
			addCut[i] += cut
			removed += cut
			if prior+cut >= len(it.chain) {
				addDead[i]++
			}
		}
		if removed > 0 {
			res.PerShard[store.Fingerprint(key)&e.mask] += removed
		}
		// The chain counts as dropped once no in-memory tier shows it:
		// either the memtable side was allowed to drop, or the chain
		// lived only in run files (all of which dropWhole just cut).
		if dropWhole && (memDrop || memLen == 0) {
			res.DroppedKeys++
		}
		advance()
	}

	changed := false
	newRuns := make([]*run, len(tabs.runs))
	for ri, r := range tabs.runs {
		if newCuts[ri] == nil {
			newRuns[ri] = r
			continue
		}
		changed = true
		nr := *r // shares the refcounted file; the overlay is replaced wholesale
		nr.cuts = newCuts[ri]
		nr.cutTotal = r.cutTotal + addCut[ri]
		nr.deadKeys = r.deadKeys + addDead[ri]
		newRuns[ri] = &nr
	}
	if changed {
		cur := e.tabs.Load()
		e.tabs.Store(&tables{active: cur.active, frozen: cur.frozen, runs: newRuns})
	}
	for _, n := range res.PerShard {
		res.Removed += n
	}
	e.maybeCompactLocked()
	return res
}
