// Package store implements the multi-versioned key-value storage engine
// used by each partition server (paper §II-A): every update creates a new
// version carrying causality metadata; old versions are garbage-collected
// against the oldest snapshot still visible to a running transaction.
//
// Conflicting writes are ordered by the last-writer-wins rule on the update
// timestamp, with ties settled by the originating DC and transaction id
// (paper §II-C).
package store

import (
	"sync"

	"wren/internal/hlc"
)

// Version is one version of a key. UT and RDT are the two BDT scalars; DV
// is only populated by the Cure/H-Cure baselines (one entry per DC).
type Version struct {
	Value []byte
	UT    hlc.Timestamp // update (commit) timestamp — local dependency summary
	RDT   hlc.Timestamp // remote dependency time — remote dependency summary
	TxID  uint64
	SrcDC uint8
	DV    []hlc.Timestamp // Cure only
}

// Less orders versions by the last-writer-wins rule: update timestamp,
// then source DC, then transaction id.
func (v *Version) Less(o *Version) bool {
	if v.UT != o.UT {
		return v.UT < o.UT
	}
	if v.SrcDC != o.SrcDC {
		return v.SrcDC < o.SrcDC
	}
	return v.TxID < o.TxID
}

// VisibleFunc decides whether a version belongs to a snapshot.
type VisibleFunc func(*Version) bool

// Store holds the version chains of one partition. It is safe for
// concurrent use.
type Store struct {
	mu     sync.RWMutex
	chains map[string][]*Version // sorted ascending by Less (newest last)
}

// New returns an empty store.
func New() *Store {
	return &Store{chains: make(map[string][]*Version)}
}

// Put inserts a new version into the chain of key, keeping the chain
// sorted in last-writer-wins order. Inserts are typically near the tail,
// so the scan from the end is effectively O(1).
func (s *Store) Put(key string, v *Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	chain := s.chains[key]
	i := len(chain)
	for i > 0 && v.Less(chain[i-1]) {
		i--
	}
	chain = append(chain, nil)
	copy(chain[i+1:], chain[i:])
	chain[i] = v
	s.chains[key] = chain
}

// ReadVisible returns the freshest version of key that satisfies visible
// (Alg. 3 lines 6–10), or nil if no version is visible.
func (s *Store) ReadVisible(key string, visible VisibleFunc) *Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[key]
	for i := len(chain) - 1; i >= 0; i-- {
		if visible(chain[i]) {
			return chain[i]
		}
	}
	return nil
}

// Latest returns the newest version of key under last-writer-wins order
// regardless of visibility, or nil if the key has never been written. Used
// by convergence checks.
func (s *Store) Latest(key string) *Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[key]
	if len(chain) == 0 {
		return nil
	}
	return chain[len(chain)-1]
}

// GC prunes version chains against the oldest snapshot visible to any
// running transaction (paper §IV-B): for every key it keeps all versions
// newer than oldest plus the newest version with UT ≤ oldest (the version
// a transaction reading at that snapshot would return). It returns the
// number of versions removed.
func (s *Store) GC(oldest hlc.Timestamp) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, chain := range s.chains {
		// Find the newest version with UT <= oldest.
		keepFrom := -1
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].UT <= oldest {
				keepFrom = i
				break
			}
		}
		if keepFrom <= 0 {
			continue // nothing older than the base to prune
		}
		removed += keepFrom
		newChain := make([]*Version, len(chain)-keepFrom)
		copy(newChain, chain[keepFrom:])
		s.chains[key] = newChain
	}
	return removed
}

// Keys returns the number of keys with at least one version.
func (s *Store) Keys() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains)
}

// Versions returns the total number of stored versions across all keys.
func (s *Store) Versions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, chain := range s.chains {
		n += len(chain)
	}
	return n
}

// VersionsOf returns the number of versions currently stored for key.
func (s *Store) VersionsOf(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains[key])
}

// ForEachKey calls fn for every key in the store. Iteration order is
// unspecified. fn must not call back into the store.
func (s *Store) ForEachKey(fn func(key string)) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.chains))
	for k := range s.chains {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	for _, k := range keys {
		fn(k)
	}
}
