// Package store implements the multi-versioned key-value storage engine
// used by each partition server (paper §II-A): every update creates a new
// version carrying causality metadata; old versions are garbage-collected
// against the oldest snapshot still visible to a running transaction.
//
// Conflicting writes are ordered by the last-writer-wins rule on the update
// timestamp, with ties settled by the originating DC and transaction id
// (paper §II-C).
//
// The engine is lock-striped: keys are spread over a power-of-two number of
// shards by an FNV-1a fingerprint, each shard guarded by its own RWMutex.
// Hot-path batch operations (PutBatch, ReadVisibleBatch) take one lock
// acquisition per touched shard instead of one per version, and GC walks
// one shard at a time so it never stops the world.
package store

import (
	"sort"
	"sync"

	"wren/internal/hlc"
)

// DefaultShards is the shard count used by New. 64 shards keep lock
// contention negligible up to several dozen cores while costing ~4KiB of
// fixed overhead per store.
const DefaultShards = 64

// MaxShards bounds configurable shard counts; beyond this the per-shard
// fixed cost outweighs any conceivable contention win.
const MaxShards = 1 << 16

// Version is one version of a key. UT and RDT are the two BDT scalars; DV
// is only populated by the Cure/H-Cure baselines (one entry per DC).
//
// A Version with a nil Value is a tombstone: readers receive it like any
// other version (callers treat nil Value as absence), and GC drops a chain
// entirely once a tombstone is its only surviving version, so deleted keys
// do not stay resident forever.
type Version struct {
	Value []byte
	UT    hlc.Timestamp // update (commit) timestamp — local dependency summary
	RDT   hlc.Timestamp // remote dependency time — remote dependency summary
	TxID  uint64
	SrcDC uint8
	DV    []hlc.Timestamp // Cure only
}

// Less orders versions by the last-writer-wins rule: update timestamp,
// then source DC, then transaction id.
func (v *Version) Less(o *Version) bool {
	if v.UT != o.UT {
		return v.UT < o.UT
	}
	if v.SrcDC != o.SrcDC {
		return v.SrcDC < o.SrcDC
	}
	return v.TxID < o.TxID
}

// VisibleFunc decides whether a version belongs to a snapshot.
type VisibleFunc func(*Version) bool

// KV pairs a key with a version for batched writes.
type KV struct {
	Key     string
	Version *Version
}

// GCResult reports what one garbage-collection pass removed.
type GCResult struct {
	// Removed is the total number of versions removed.
	Removed int
	// DroppedKeys is the number of keys whose chains were deleted entirely
	// (tombstoned keys whose deletion became stable).
	DroppedKeys int
	// PerShard holds the number of versions removed in each shard, so
	// callers aggregating GC metrics incrementally stay accurate.
	PerShard []int
}

// shard is one stripe of the store. The padding rounds the struct up to 64
// bytes (RWMutex 24 + map header 8 + pad 32) so that in the shards array
// lock traffic on one stripe does not false-share a cache line with its
// neighbours.
type shard struct {
	mu     sync.RWMutex
	chains map[string][]*Version // sorted ascending by Less (newest last)
	_      [64 - 24 - 8]byte
}

// Store holds the version chains of one partition, striped over a
// power-of-two number of shards. It is safe for concurrent use; operations
// on keys in different shards do not contend.
type Store struct {
	shards []shard
	mask   uint32
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards) }

// ResolveShards returns the shard count NewSharded(n) would actually use:
// n <= 0 selects DefaultShards, values above MaxShards are capped, and the
// result is rounded up to the next power of two for mask-based indexing.
// Durable engines use it to resolve a configured count before persisting
// it, without building a throwaway store.
func ResolveShards(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	if n > MaxShards {
		n = MaxShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return size
}

// NewSharded returns an empty store with at least n shards, resolved by
// ResolveShards.
func NewSharded(n int) *Store {
	size := ResolveShards(n)
	s := &Store{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range s.shards {
		s.shards[i].chains = make(map[string][]*Version)
	}
	return s
}

// NumShards returns the number of shards (a power of two).
func (s *Store) NumShards() int { return len(s.shards) }

// Fingerprint returns the FNV-1a hash of key — the fingerprint the store
// stripes keys by. Exported so backends that keep per-shard side state
// (e.g. the WAL engine's log files) can use the exact same key→shard
// mapping as the in-memory stripes they mirror.
func Fingerprint(key string) uint32 { return fnv1a(key) }

// fnv1a fingerprints a key without allocating (hash/fnv would force the
// string through a []byte conversion and an interface call per byte chunk).
func fnv1a(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (s *Store) shardOf(key string) *shard {
	return &s.shards[fnv1a(key)&s.mask]
}

// ShardIndex returns the index of the shard that owns key.
func (s *Store) ShardIndex(key string) int {
	return int(fnv1a(key) & s.mask)
}

// insertLocked splices v into chain keeping last-writer-wins order. Inserts
// are typically near the tail, so the scan from the end is effectively O(1).
func insertLocked(chain []*Version, v *Version) []*Version {
	i := len(chain)
	for i > 0 && v.Less(chain[i-1]) {
		i--
	}
	chain = append(chain, nil)
	copy(chain[i+1:], chain[i:])
	chain[i] = v
	return chain
}

// Put inserts a new version into the chain of key, keeping the chain
// sorted in last-writer-wins order.
func (s *Store) Put(key string, v *Version) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	sh.chains[key] = insertLocked(sh.chains[key], v)
	sh.mu.Unlock()
}

// PutBatch inserts many versions, grouping keys by shard so each touched
// shard's lock is acquired exactly once. This is the write hot path for
// commit application and replicated-update batches.
func (s *Store) PutBatch(kvs []KV) {
	switch len(kvs) {
	case 0:
		return
	case 1:
		s.Put(kvs[0].Key, kvs[0].Version)
		return
	}
	ForEachShardGroup(s.mask, kvs, func(id uint32, group []KV) {
		sh := &s.shards[id]
		sh.mu.Lock()
		for _, kv := range group {
			sh.chains[kv.Key] = insertLocked(sh.chains[kv.Key], kv.Version)
		}
		sh.mu.Unlock()
	})
}

// ForEachShardGroup partitions kvs by key fingerprint under the given
// power-of-two mask and invokes fn once per touched shard with that
// shard's members, in first-appearance order — the exact grouping
// PutBatch uses internally. Engines that keep per-shard side state (the
// WAL's log files) use it so their grouping can never drift from the
// memory stripes'. The group slice is reused across calls; fn must not
// retain it.
func ForEachShardGroup(mask uint32, kvs []KV, fn func(shard uint32, group []KV)) {
	ids := make([]uint32, len(kvs))
	for i := range kvs {
		ids[i] = fnv1a(kvs[i].Key) & mask
	}
	done := make([]bool, len(kvs))
	group := make([]KV, 0, len(kvs))
	for i := range kvs {
		if done[i] {
			continue
		}
		group = group[:0]
		for j := i; j < len(kvs); j++ {
			if !done[j] && ids[j] == ids[i] {
				group = append(group, kvs[j])
				done[j] = true
			}
		}
		fn(ids[i], group)
	}
}

// ReadVisible returns the freshest version of key that satisfies visible
// (Alg. 3 lines 6–10), or nil if no version is visible.
func (s *Store) ReadVisible(key string, visible VisibleFunc) *Version {
	sh := s.shardOf(key)
	sh.mu.RLock()
	v := ReadVisibleChain(sh.chains[key], visible)
	sh.mu.RUnlock()
	return v
}

// ReadVisibleChain returns the freshest version in chain (sorted
// ascending in last-writer-wins order) satisfying visible, or nil.
// Exported so tiered engines scan their immutable run chains with the
// exact same visibility rule the memtable uses.
func ReadVisibleChain(chain []*Version, visible VisibleFunc) *Version {
	for i := len(chain) - 1; i >= 0; i-- {
		if visible(chain[i]) {
			return chain[i]
		}
	}
	return nil
}

// ReadVisibleBatch resolves many keys under one snapshot predicate, taking
// each touched shard's read lock exactly once. The result is aligned with
// keys; entries are nil where no version is visible.
func (s *Store) ReadVisibleBatch(keys []string, visible VisibleFunc) []*Version {
	return s.ReadVisibleBatchInto(keys, visible, nil)
}

// batchStackKeys bounds the stack-allocated scratch of a batch read; a
// slice read rarely touches more keys than this (the paper's transactions
// read ≤ 20), and larger batches just fall back to heap scratch.
const batchStackKeys = 32

// ReadVisibleBatchInto is ReadVisibleBatch with a caller-supplied result
// buffer, reused across reads so the hot path performs no heap allocation:
// grouping scratch lives on the stack for batches of up to batchStackKeys
// keys. This is the read hot path for transactional slice requests.
func (s *Store) ReadVisibleBatchInto(keys []string, visible VisibleFunc, out []*Version) []*Version {
	if cap(out) >= len(keys) {
		out = out[:len(keys)]
	} else {
		out = make([]*Version, len(keys))
	}
	switch len(keys) {
	case 0:
		return out
	case 1:
		out[0] = s.ReadVisible(keys[0], visible)
		return out
	}
	var (
		idsBuf  [batchStackKeys]uint32
		doneBuf [batchStackKeys]bool
		ids     []uint32
		done    []bool
	)
	if len(keys) <= batchStackKeys {
		// Both arrays are freshly declared per call, so the language has
		// already zeroed them.
		ids, done = idsBuf[:len(keys)], doneBuf[:len(keys)]
	} else {
		ids, done = make([]uint32, len(keys)), make([]bool, len(keys))
	}
	for i, k := range keys {
		ids[i] = fnv1a(k) & s.mask
	}
	for i := range keys {
		if done[i] {
			continue
		}
		sh := &s.shards[ids[i]]
		sh.mu.RLock()
		for j := i; j < len(keys); j++ {
			if !done[j] && ids[j] == ids[i] {
				out[j] = ReadVisibleChain(sh.chains[keys[j]], visible)
				done[j] = true
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Latest returns the newest version of key under last-writer-wins order
// regardless of visibility, or nil if the key has never been written. Used
// by convergence checks.
func (s *Store) Latest(key string) *Version {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[key]
	if len(chain) == 0 {
		return nil
	}
	return chain[len(chain)-1]
}

// GC prunes version chains against the oldest snapshot visible to any
// running transaction (paper §IV-B) and returns the number of versions
// removed. See GCStats for the full accounting.
func (s *Store) GC(oldest hlc.Timestamp) int {
	return s.GCStats(oldest).Removed
}

// GCStats prunes version chains against the oldest snapshot visible to any
// running transaction (paper §IV-B): for every key it keeps all versions
// newer than oldest plus the newest version with UT ≤ oldest (the version
// a transaction reading at that snapshot would return). A chain whose only
// surviving version is a tombstone with UT ≤ oldest is dropped entirely, so
// deleted keys do not stay resident forever.
//
// The pass is incremental: it holds at most one shard lock at a time, so
// reads and writes on other shards proceed concurrently with collection.
func (s *Store) GCStats(oldest hlc.Timestamp) GCResult {
	res := GCResult{PerShard: make([]int, len(s.shards))}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for key, chain := range sh.chains {
			// Find the newest version with UT <= oldest.
			keepFrom := -1
			for i := len(chain) - 1; i >= 0; i-- {
				if chain[i].UT <= oldest {
					keepFrom = i
					break
				}
			}
			if keepFrom >= 0 && keepFrom == len(chain)-1 && chain[keepFrom].Value == nil {
				// The stable snapshot base is a tombstone and nothing newer
				// exists: every reader would see "not found" anyway.
				res.PerShard[si] += len(chain)
				res.DroppedKeys++
				delete(sh.chains, key)
				continue
			}
			if keepFrom <= 0 {
				continue // nothing older than the base to prune
			}
			res.PerShard[si] += keepFrom
			newChain := make([]*Version, len(chain)-keepFrom)
			copy(newChain, chain[keepFrom:])
			sh.chains[key] = newChain
		}
		res.Removed += res.PerShard[si]
		sh.mu.Unlock()
	}
	return res
}

// Keys returns the number of keys with at least one version.
func (s *Store) Keys() int {
	n := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		n += len(sh.chains)
		sh.mu.RUnlock()
	}
	return n
}

// Versions returns the total number of stored versions across all keys.
func (s *Store) Versions() int {
	n := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for _, chain := range sh.chains {
			n += len(chain)
		}
		sh.mu.RUnlock()
	}
	return n
}

// VersionsOf returns the number of versions currently stored for key.
func (s *Store) VersionsOf(key string) int {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.chains[key])
}

// ChainInto appends every stored version of key to buf, oldest first in
// last-writer-wins order, and returns the extended buffer. The Version
// pointers are shared with the store and must be treated as read-only.
// Tiered engines use it to snapshot one key's chain (for run flushes and
// cross-source GC decisions) without holding the shard lock afterwards.
func (s *Store) ChainInto(key string, buf []*Version) []*Version {
	sh := s.shardOf(key)
	sh.mu.RLock()
	buf = append(buf, sh.chains[key]...)
	sh.mu.RUnlock()
	return buf
}

// PruneChain removes from key's chain every version strictly older than
// base in last-writer-wins order; with dropWhole set, base itself is
// removed too (the caller decided the whole chain up to and including
// base is dead — a stable tombstone with nothing newer). It returns the
// number of versions removed. base need not be resident in this store:
// engines that tier one key's chain across several stores (an active
// memtable plus immutable sorted runs) compute the GC base globally and
// use PruneChain to apply the decision to the slice of the chain this
// store holds.
//
// dropWhole deliberately does NOT clear the chain unconditionally: the
// caller's decision was made from a snapshot, and a writer may have
// inserted a version newer than base since. Bounding the drop by base
// keeps such a racing write alive — deleting it would silently lose an
// acknowledged committed update.
func (s *Store) PruneChain(key string, base *Version, dropWhole bool) int {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	chain := sh.chains[key]
	if len(chain) == 0 {
		return 0
	}
	cut := ChainCut(chain, base, dropWhole)
	switch {
	case cut == 0:
		return 0
	case cut == len(chain):
		delete(sh.chains, key)
		return cut
	}
	newChain := make([]*Version, len(chain)-cut)
	copy(newChain, chain[cut:])
	sh.chains[key] = newChain
	return cut
}

// ChainCut returns how many leading versions of chain (sorted ascending
// in last-writer-wins order) a GC decision removes: everything strictly
// older than base, plus base itself when dropWhole is set — but never a
// version newer than base, so a write that raced in after the decision
// survives. The single definition is shared by PruneChain and by tiered
// engines pruning immutable run chains, which must apply the exact same
// rule or their tiers' GC decisions desynchronize.
func ChainCut(chain []*Version, base *Version, dropWhole bool) int {
	cut := 0
	for cut < len(chain) && chain[cut].Less(base) {
		cut++
	}
	if dropWhole {
		for cut < len(chain) && !base.Less(chain[cut]) {
			cut++
		}
	}
	return cut
}

// ShardSnapshot returns every version stored in shard si, in chain order
// per key (oldest first under last-writer-wins). The returned Version
// pointers are shared with the store and must be treated as read-only.
// Backends use it to rewrite a shard's log during compaction.
func (s *Store) ShardSnapshot(si int) []KV {
	sh := &s.shards[si]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []KV
	for key, chain := range sh.chains {
		for _, v := range chain {
			out = append(out, KV{Key: key, Version: v})
		}
	}
	return out
}

// Healthy implements Engine. The in-memory engine has no write path that
// can fail, so it is always healthy.
func (s *Store) Healthy() error { return nil }

// Close implements Engine. The in-memory engine holds no external
// resources, so Close is a no-op.
func (s *Store) Close() error { return nil }

// Scan implements Engine: keys in [start, end) in ascending order, each
// resolved to its freshest visible non-tombstone version. The in-range key
// set is snapshotted one shard at a time and sorted, so fn runs without any
// shard lock held and may call back into the store; a write racing with
// the scan may or may not be observed.
func (s *Store) Scan(start, end string, visible VisibleFunc, fn func(key string, v *Version) bool) error {
	var keys []string
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		for k := range sh.chains {
			if k >= start && (end == "" || k < end) {
				keys = append(keys, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := s.ReadVisible(k, visible)
		if v == nil || v.Value == nil {
			continue
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// ForEachKey calls fn for every key in the store. Iteration order is
// unspecified; keys are snapshotted one shard at a time, so fn runs without
// any shard lock held and may call back into the store.
func (s *Store) ForEachKey(fn func(key string)) {
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.RLock()
		keys := make([]string, 0, len(sh.chains))
		for k := range sh.chains {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
		for _, k := range keys {
			fn(k)
		}
	}
}
