package logrec

import (
	"encoding/binary"
	"testing"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/wire"
)

func sample(i int) (string, *store.Version) {
	v := &store.Version{
		Value: []byte{byte(i), byte(i >> 8), 0, 7},
		UT:    hlc.Timestamp(100 + i),
		RDT:   hlc.Timestamp(50 + i),
		TxID:  uint64(i),
		SrcDC: uint8(i % 5),
	}
	if i%3 == 0 {
		v.Value = nil // tombstone
	}
	if i%4 == 0 {
		v.DV = []hlc.Timestamp{1, hlc.Timestamp(i), 3}
	}
	return "key-" + string(rune('a'+i%26)), v
}

func TestRoundTrip(t *testing.T) {
	enc := wire.NewEncoder()
	const n = 20
	for i := 0; i < n; i++ {
		k, v := sample(i)
		Append(enc, k, v)
	}
	buf := enc.Bytes()

	i := 0
	good := Scan(buf, func(key string, v *store.Version) {
		wantK, wantV := sample(i)
		if key != wantK {
			t.Fatalf("record %d: key %q, want %q", i, key, wantK)
		}
		if (v.Value == nil) != (wantV.Value == nil) || string(v.Value) != string(wantV.Value) {
			t.Fatalf("record %d: value %v, want %v", i, v.Value, wantV.Value)
		}
		if v.UT != wantV.UT || v.RDT != wantV.RDT || v.TxID != wantV.TxID || v.SrcDC != wantV.SrcDC {
			t.Fatalf("record %d: metadata %+v, want %+v", i, v, wantV)
		}
		if len(v.DV) != len(wantV.DV) {
			t.Fatalf("record %d: DV %v, want %v", i, v.DV, wantV.DV)
		}
		i++
	})
	if i != n {
		t.Fatalf("scanned %d records, want %d", i, n)
	}
	if good != len(buf) {
		t.Fatalf("good offset %d, want full buffer %d", good, len(buf))
	}
}

func TestScanStopsAtTornTail(t *testing.T) {
	enc := wire.NewEncoder()
	for i := 0; i < 5; i++ {
		k, v := sample(i)
		Append(enc, k, v)
	}
	whole := append([]byte(nil), enc.Bytes()...)

	// Cut mid-way through the final record.
	enc2 := wire.NewEncoder()
	for i := 0; i < 4; i++ {
		k, v := sample(i)
		Append(enc2, k, v)
	}
	wantGood := len(enc2.Bytes())
	torn := whole[:wantGood+3]

	count := 0
	good := Scan(torn, func(string, *store.Version) { count++ })
	if count != 4 || good != wantGood {
		t.Fatalf("torn scan: %d records, good=%d; want 4 records, good=%d", count, good, wantGood)
	}

	// Corrupting one payload byte of record 2 must stop the scan there —
	// records behind a bad checksum are unreachable by design.
	bad := append([]byte(nil), whole...)
	// Offset of record 2's payload: skip two records.
	off := 0
	for i := 0; i < 2; i++ {
		plen := binary.LittleEndian.Uint32(bad[off:])
		off += HeaderSize + int(plen)
	}
	bad[off+HeaderSize] ^= 0xFF
	count = 0
	Scan(bad, func(string, *store.Version) { count++ })
	if count != 2 {
		t.Fatalf("corrupt-record scan yielded %d records, want 2", count)
	}
}

func TestScanEmptyAndGarbage(t *testing.T) {
	if good := Scan(nil, func(string, *store.Version) { t.Fatal("fn called on empty buf") }); good != 0 {
		t.Fatalf("empty scan good=%d", good)
	}
	junk := []byte{0xFF, 0xFF, 0xFF, 0x7F, 9, 9, 9, 9, 1, 2, 3}
	if good := Scan(junk, func(string, *store.Version) { t.Fatal("fn called on junk") }); good != 0 {
		t.Fatalf("junk scan good=%d", good)
	}
}
