// Package logrec defines the framed on-disk record format shared by the
// durable storage engines (the per-shard WAL in store/wal, the
// memtable+sorted-run engine in store/sst): one record per version,
// length-prefixed and CRC32-checksummed, with the payload produced by the
// internal/wire encoder. Keeping the format in one place means every log
// and run file in a data directory is scanned, validated and truncated by
// the exact same rules, and a future engine cannot drift from them.
//
// Record layout:
//
//	4 bytes  little-endian payload length
//	4 bytes  little-endian CRC32 (IEEE) of the payload
//	payload  key, tombstone flag, value, UT, RDT, TxID, SrcDC, DV
package logrec

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"

	"wren/internal/store"
	"wren/internal/wire"
)

// HeaderSize is the per-record framing overhead: 4-byte payload length
// plus 4-byte CRC32 of the payload.
const HeaderSize = 8

// AppendFrame encodes one framed record at the end of enc's buffer: it
// reserves the header, runs encode to produce the payload, and back-patches
// the length and checksum. It is the record-agnostic core Append is built
// on; other durable subsystems (the transaction-lifecycle log in
// internal/txlog) frame their own payloads through it so every log file in
// a data directory tears and truncates by identical rules.
func AppendFrame(enc *wire.Encoder, encode func(*wire.Encoder)) {
	off := enc.Reserve(HeaderSize)
	encode(enc)
	buf := enc.Bytes()
	payload := buf[off+HeaderSize:]
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[off+4:], crc32.ChecksumIEEE(payload))
}

// Append encodes one version as a framed record at the end of enc's buffer
// and back-patches the length and checksum.
func Append(enc *wire.Encoder, key string, v *store.Version) {
	AppendFrame(enc, func(enc *wire.Encoder) {
		enc.String(key)
		enc.Bool(v.Value == nil)
		enc.BytesField(v.Value)
		enc.Timestamp(v.UT)
		enc.Timestamp(v.RDT)
		enc.Uvarint(v.TxID)
		enc.Byte(v.SrcDC)
		enc.Timestamps(v.DV)
	})
}

// Decode parses one record payload back into a version.
func Decode(payload []byte) (string, *store.Version, error) {
	d := wire.NewDecoder(payload)
	key := d.String()
	tombstone := d.Bool()
	raw := d.BytesField()
	v := &store.Version{
		UT:    d.Timestamp(),
		RDT:   d.Timestamp(),
		TxID:  d.Uvarint(),
		SrcDC: d.Byte(),
		DV:    d.Timestamps(),
	}
	if err := d.Err(); err != nil {
		return "", nil, err
	}
	if !tombstone {
		v.Value = append([]byte{}, raw...)
	}
	return key, v, nil
}

// ScanFrames walks the intact prefix of a log file image, invoking fn with
// every payload that frames and checksums clean, and returns the byte
// offset just past the last intact record. A record whose length prefix
// runs off the buffer, whose checksum does not hold, or whose payload fn
// rejects (returns a non-nil error) — the footprint of a crash mid-append —
// ends the scan; callers decide whether the tail is truncated (log
// recovery) or fatal (immutable run files, which are only ever renamed
// into place complete).
//
// No upper bound is imposed on the record length beyond the buffer itself:
// a record of any size that was fully written and checksums clean is valid
// — an arbitrary cap would make one large committed value poison every
// record behind it. Corrupt lengths fail the bounds check or the CRC.
func ScanFrames(buf []byte, fn func(payload []byte) error) (good int) {
	for off := 0; off < len(buf); {
		rest := buf[off:]
		if len(rest) < HeaderSize {
			break // torn header
		}
		plen := binary.LittleEndian.Uint32(rest[:4])
		if HeaderSize+int(plen) > len(rest) {
			break // torn payload (or a corrupt length running off the file)
		}
		payload := rest[HeaderSize : HeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break // corrupt record
		}
		if fn(payload) != nil {
			break // payload does not parse: treat like a torn record
		}
		off += HeaderSize + int(plen)
		good = off
	}
	return good
}

// Scan is ScanFrames specialized to the version-record payload written by
// Append: fn receives every intact version record in file order.
func Scan(buf []byte, fn func(key string, v *store.Version)) (good int) {
	return ScanFrames(buf, func(payload []byte) error {
		key, v, err := Decode(payload)
		if err != nil {
			return err
		}
		fn(key, v)
		return nil
	})
}

// ScanReaderFrames is ScanFrames over an io.Reader: it walks the intact
// prefix of a log stream without ever materializing the whole file,
// invoking fn with every payload that frames and checksums clean, and
// returns the byte offset just past the last intact record. The torn-tail
// semantics are identical to ScanFrames — a torn header, torn payload,
// failed checksum or rejected payload ends the scan — so recovery code can
// switch between the two without changing its truncation rules. Memory use
// is bounded by the largest single record, not the file size: the payload
// buffer is reused across records and fn must not retain it.
func ScanReaderFrames(r io.Reader, fn func(payload []byte) error) (good int64) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	var hdr [HeaderSize]byte
	var payload []byte
	var off int64
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return good // torn (or clean EOF at a record boundary)
		}
		plen := binary.LittleEndian.Uint32(hdr[:4])
		if int(plen) > cap(payload) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return good // torn payload (or a corrupt length running off the file)
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return good // corrupt record
		}
		if fn(payload) != nil {
			return good // payload does not parse: treat like a torn record
		}
		off += HeaderSize + int64(plen)
		good = off
	}
}

// ScanReader is ScanReaderFrames specialized to the version-record payload
// written by Append: fn receives every intact version record in stream
// order. Durable-engine recovery uses it so startup heap is bounded by
// record size rather than log-file size.
func ScanReader(r io.Reader, fn func(key string, v *store.Version)) (good int64) {
	return ScanReaderFrames(r, func(payload []byte) error {
		key, v, err := Decode(payload)
		if err != nil {
			return err
		}
		fn(key, v)
		return nil
	})
}
