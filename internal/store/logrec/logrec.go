// Package logrec defines the framed on-disk record format shared by the
// durable storage engines (the per-shard WAL in store/wal, the
// memtable+sorted-run engine in store/sst): one record per version,
// length-prefixed and CRC32-checksummed, with the payload produced by the
// internal/wire encoder. Keeping the format in one place means every log
// and run file in a data directory is scanned, validated and truncated by
// the exact same rules, and a future engine cannot drift from them.
//
// Record layout:
//
//	4 bytes  little-endian payload length
//	4 bytes  little-endian CRC32 (IEEE) of the payload
//	payload  key, tombstone flag, value, UT, RDT, TxID, SrcDC, DV
package logrec

import (
	"encoding/binary"
	"hash/crc32"

	"wren/internal/store"
	"wren/internal/wire"
)

// HeaderSize is the per-record framing overhead: 4-byte payload length
// plus 4-byte CRC32 of the payload.
const HeaderSize = 8

// Append encodes one version as a framed record at the end of enc's buffer
// and back-patches the length and checksum.
func Append(enc *wire.Encoder, key string, v *store.Version) {
	off := enc.Reserve(HeaderSize)
	enc.String(key)
	enc.Bool(v.Value == nil)
	enc.BytesField(v.Value)
	enc.Timestamp(v.UT)
	enc.Timestamp(v.RDT)
	enc.Uvarint(v.TxID)
	enc.Byte(v.SrcDC)
	enc.Timestamps(v.DV)
	buf := enc.Bytes()
	payload := buf[off+HeaderSize:]
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[off+4:], crc32.ChecksumIEEE(payload))
}

// Decode parses one record payload back into a version.
func Decode(payload []byte) (string, *store.Version, error) {
	d := wire.NewDecoder(payload)
	key := d.String()
	tombstone := d.Bool()
	raw := d.BytesField()
	v := &store.Version{
		UT:    d.Timestamp(),
		RDT:   d.Timestamp(),
		TxID:  d.Uvarint(),
		SrcDC: d.Byte(),
		DV:    d.Timestamps(),
	}
	if err := d.Err(); err != nil {
		return "", nil, err
	}
	if !tombstone {
		v.Value = append([]byte{}, raw...)
	}
	return key, v, nil
}

// Scan walks the intact prefix of a log or run file image, invoking fn for
// every record that frames and checksums clean, and returns the byte
// offset just past the last intact record. A record whose length prefix
// runs off the buffer, whose checksum does not hold, or whose payload does
// not parse — the footprint of a crash mid-append — ends the scan; callers
// decide whether the tail is truncated (WAL recovery) or fatal (immutable
// run files, which are only ever renamed into place complete).
//
// No upper bound is imposed on the record length beyond the buffer itself:
// a record of any size that was fully written and checksums clean is valid
// — an arbitrary cap would make one large committed value poison every
// record behind it. Corrupt lengths fail the bounds check or the CRC.
func Scan(buf []byte, fn func(key string, v *store.Version)) (good int) {
	for off := 0; off < len(buf); {
		rest := buf[off:]
		if len(rest) < HeaderSize {
			break // torn header
		}
		plen := binary.LittleEndian.Uint32(rest[:4])
		if HeaderSize+int(plen) > len(rest) {
			break // torn payload (or a corrupt length running off the file)
		}
		payload := rest[HeaderSize : HeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break // corrupt record
		}
		key, v, err := Decode(payload)
		if err != nil {
			break // payload does not parse: treat like a torn record
		}
		fn(key, v)
		off += HeaderSize + int(plen)
		good = off
	}
	return good
}
