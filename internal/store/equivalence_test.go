package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"wren/internal/hlc"
)

// TestShardedEquivalentToReference drives the sharded store with many
// concurrent writers (a mix of Put and PutBatch) while readers and GC race
// against them, then replays the same operations sequentially into the
// single-map reference engine and compares: Latest for every key, and
// ReadVisible at snapshot cutoffs at or above the highest GC threshold (GC
// only promises to preserve reads at snapshots ≥ its threshold). Run under
// -race this doubles as the main concurrency stress for the shard striping.
func TestShardedEquivalentToReference(t *testing.T) {
	const (
		numKeys    = 97 // spread over many shards, prime to avoid aliasing
		numOps     = 4096
		numWriters = 8
		gcMax      = int64(60)
		maxUT      = int64(100)
	)
	rng := rand.New(rand.NewSource(42))

	type op struct {
		key string
		v   *Version
	}
	ops := make([]op, numOps)
	for i := range ops {
		ops[i] = op{
			key: fmt.Sprintf("key-%d", rng.Intn(numKeys)),
			v: &Version{
				Value: []byte(fmt.Sprintf("v%d", i)),
				UT:    hlc.New(rng.Int63n(maxUT)+1, uint16(rng.Intn(4))),
				TxID:  uint64(i), // unique: makes LWW order total
				SrcDC: uint8(rng.Intn(3)),
			},
		}
	}

	sharded := NewSharded(16)

	// Concurrent phase: writers apply disjoint stripes of ops, half via
	// PutBatch; readers and incremental GC race with them until the last
	// writer drains.
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < numWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			var batch []KV
			for i := w; i < numOps; i += numWriters {
				if i%2 == 0 {
					sharded.Put(ops[i].key, ops[i].v)
				} else {
					batch = append(batch, KV{Key: ops[i].key, Version: ops[i].v})
					if len(batch) == 8 {
						sharded.PutBatch(batch)
						batch = nil
					}
				}
			}
			sharded.PutBatch(batch)
		}(w)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			keys := make([]string, 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = fmt.Sprintf("key-%d", rng.Intn(numKeys))
				}
				cutoff := hlc.New(rng.Int63n(maxUT)+1, 0xffff)
				_ = sharded.ReadVisibleBatch(keys, func(v *Version) bool { return v.UT <= cutoff })
				_ = sharded.Latest(keys[0])
				_ = sharded.GC(hlc.New(rng.Int63n(gcMax), 0))
			}
		}(r)
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	// Quiesce: one final GC at the highest threshold used during the race,
	// mirrored on the reference engine below.
	gcAt := hlc.New(gcMax, 0)
	sharded.GC(gcAt)

	ref := newGlobalLockStore()
	for _, o := range ops {
		ref.Put(o.key, o.v)
	}
	ref.GC(gcAt)

	sameVersion := func(a, b *Version) bool {
		if a == nil || b == nil {
			return a == b
		}
		return string(a.Value) == string(b.Value) && a.UT == b.UT &&
			a.TxID == b.TxID && a.SrcDC == b.SrcDC
	}

	for k := 0; k < numKeys; k++ {
		key := fmt.Sprintf("key-%d", k)
		if got, want := sharded.Latest(key), ref.Latest(key); !sameVersion(got, want) {
			t.Fatalf("Latest(%s): sharded %v, reference %v", key, got, want)
		}
		// Snapshot reads at cutoffs >= the GC threshold must agree exactly.
		for trial := 0; trial < 8; trial++ {
			cutoff := hlc.New(gcMax+rng.Int63n(maxUT-gcMax+1), 0xffff)
			pred := func(v *Version) bool { return v.UT <= cutoff }
			got := sharded.ReadVisible(key, pred)
			want := ref.ReadVisible(key, pred)
			if !sameVersion(got, want) {
				t.Fatalf("ReadVisible(%s, ≤%v): sharded %v, reference %v", key, cutoff, got, want)
			}
		}
	}

	// The batched read path must agree with the reference too.
	allKeys := make([]string, numKeys)
	for k := range allKeys {
		allKeys[k] = fmt.Sprintf("key-%d", k)
	}
	all := func(*Version) bool { return true }
	batch := sharded.ReadVisibleBatch(allKeys, all)
	for i, key := range allKeys {
		if want := ref.ReadVisible(key, all); !sameVersion(batch[i], want) {
			t.Fatalf("ReadVisibleBatch[%s]: sharded %v, reference %v", key, batch[i], want)
		}
	}
}

// TestShardedEquivalenceProperty replays short random histories on both
// engines sequentially — including tombstones — and checks reads agree at
// every cutoff, and GC removal counts match.
func TestShardedEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		sharded := NewSharded(8)
		ref := newGlobalLockStore()
		nOps := 1 + rng.Intn(64)
		for i := 0; i < nOps; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(8))
			var val []byte
			if rng.Intn(8) != 0 { // 1-in-8 writes a tombstone
				val = []byte(fmt.Sprintf("v%d", i))
			}
			v := &Version{Value: val, UT: hlc.New(rng.Int63n(30)+1, 0), TxID: uint64(i), SrcDC: uint8(rng.Intn(2))}
			sharded.Put(key, v)
			ref.Put(key, &Version{Value: v.Value, UT: v.UT, TxID: v.TxID, SrcDC: v.SrcDC})
		}
		gcAt := hlc.New(rng.Int63n(35), 0)
		if got, want := sharded.GC(gcAt), ref.GC(gcAt); got != want {
			t.Fatalf("trial %d: GC(%v) removed %d, reference removed %d", trial, gcAt, got, want)
		}
		for cut := int64(0); cut <= 35; cut++ {
			if cut < gcAt.Physical() {
				continue // below the GC threshold reads may legitimately differ
			}
			cutoff := hlc.New(cut, 0xffff)
			pred := func(v *Version) bool { return v.UT <= cutoff }
			for k := 0; k < 8; k++ {
				key := fmt.Sprintf("k%d", k)
				got, want := sharded.ReadVisible(key, pred), ref.ReadVisible(key, pred)
				gotNil, wantNil := got == nil, want == nil
				if gotNil != wantNil {
					t.Fatalf("trial %d: ReadVisible(%s, ≤%d) nil mismatch: sharded %v, reference %v",
						trial, key, cut, got, want)
				}
				if !gotNil && (string(got.Value) != string(want.Value) || got.UT != want.UT || got.TxID != want.TxID) {
					t.Fatalf("trial %d: ReadVisible(%s, ≤%d): sharded %v, reference %v",
						trial, key, cut, got, want)
				}
			}
		}
	}
}
