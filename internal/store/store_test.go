package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"wren/internal/hlc"
)

func ver(ut int64, src uint8, txid uint64, val string) *Version {
	return &Version{Value: []byte(val), UT: hlc.New(ut, 0), TxID: txid, SrcDC: src}
}

func all(*Version) bool { return true }

func TestPutAndReadVisible(t *testing.T) {
	s := New()
	s.Put("k", ver(10, 0, 1, "a"))
	s.Put("k", ver(20, 0, 2, "b"))
	got := s.ReadVisible("k", all)
	if got == nil || string(got.Value) != "b" {
		t.Fatalf("ReadVisible = %v, want b", got)
	}
}

func TestReadVisibleMissingKey(t *testing.T) {
	s := New()
	if got := s.ReadVisible("nope", all); got != nil {
		t.Errorf("missing key should return nil, got %v", got)
	}
}

func TestReadVisiblePredicate(t *testing.T) {
	s := New()
	s.Put("k", ver(10, 0, 1, "old"))
	s.Put("k", ver(20, 0, 2, "new"))
	upTo15 := func(v *Version) bool { return v.UT <= hlc.New(15, 0) }
	got := s.ReadVisible("k", upTo15)
	if got == nil || string(got.Value) != "old" {
		t.Fatalf("snapshot read = %v, want old", got)
	}
	before5 := func(v *Version) bool { return v.UT <= hlc.New(5, 0) }
	if got := s.ReadVisible("k", before5); got != nil {
		t.Errorf("nothing visible before 5, got %v", got)
	}
}

func TestOutOfOrderInsertKeepsLWWOrder(t *testing.T) {
	s := New()
	// Insert in scrambled timestamp order.
	s.Put("k", ver(30, 0, 3, "c"))
	s.Put("k", ver(10, 0, 1, "a"))
	s.Put("k", ver(20, 0, 2, "b"))
	if got := s.ReadVisible("k", all); string(got.Value) != "c" {
		t.Errorf("freshest = %s, want c", got.Value)
	}
	upTo25 := func(v *Version) bool { return v.UT <= hlc.New(25, 0) }
	if got := s.ReadVisible("k", upTo25); string(got.Value) != "b" {
		t.Errorf("snapshot(25) = %s, want b", got.Value)
	}
}

func TestLWWTieBreakBySourceDCAndTxID(t *testing.T) {
	s := New()
	// Same UT: concurrent conflicting writes from different DCs.
	s.Put("k", &Version{Value: []byte("dc0"), UT: hlc.New(10, 0), SrcDC: 0, TxID: 5})
	s.Put("k", &Version{Value: []byte("dc2"), UT: hlc.New(10, 0), SrcDC: 2, TxID: 1})
	s.Put("k", &Version{Value: []byte("dc1"), UT: hlc.New(10, 0), SrcDC: 1, TxID: 9})
	if got := s.ReadVisible("k", all); string(got.Value) != "dc2" {
		t.Errorf("LWW winner = %s, want dc2 (highest SrcDC)", got.Value)
	}
	// Same UT and DC: transaction id breaks the tie.
	s.Put("j", &Version{Value: []byte("tx1"), UT: hlc.New(10, 0), SrcDC: 0, TxID: 1})
	s.Put("j", &Version{Value: []byte("tx2"), UT: hlc.New(10, 0), SrcDC: 0, TxID: 2})
	if got := s.ReadVisible("j", all); string(got.Value) != "tx2" {
		t.Errorf("LWW winner = %s, want tx2", got.Value)
	}
}

func TestVersionLessTotalOrderProperty(t *testing.T) {
	f := func(ut1, ut2 uint32, src1, src2 uint8, id1, id2 uint16) bool {
		a := &Version{UT: hlc.Timestamp(ut1), SrcDC: src1, TxID: uint64(id1)}
		b := &Version{UT: hlc.Timestamp(ut2), SrcDC: src2, TxID: uint64(id2)}
		equal := ut1 == ut2 && src1 == src2 && id1 == id2
		if equal {
			return !a.Less(b) && !b.Less(a)
		}
		// Exactly one direction for distinct versions (totality/antisymmetry).
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCPreservesSnapshotBase(t *testing.T) {
	s := New()
	s.Put("k", ver(10, 0, 1, "v10"))
	s.Put("k", ver(20, 0, 2, "v20"))
	s.Put("k", ver(30, 0, 3, "v30"))
	s.Put("k", ver(40, 0, 4, "v40"))

	removed := s.GC(hlc.New(25, 0))
	if removed != 1 {
		t.Errorf("GC removed %d, want 1 (only v10)", removed)
	}
	// A transaction reading at snapshot 25 must still see v20.
	upTo25 := func(v *Version) bool { return v.UT <= hlc.New(25, 0) }
	if got := s.ReadVisible("k", upTo25); got == nil || string(got.Value) != "v20" {
		t.Fatalf("snapshot base lost: got %v", got)
	}
	if s.VersionsOf("k") != 3 {
		t.Errorf("VersionsOf = %d, want 3", s.VersionsOf("k"))
	}
}

func TestGCNothingToPrune(t *testing.T) {
	s := New()
	s.Put("k", ver(10, 0, 1, "a"))
	if removed := s.GC(hlc.New(5, 0)); removed != 0 {
		t.Errorf("GC below all versions removed %d, want 0", removed)
	}
	if removed := s.GC(hlc.New(10, 0)); removed != 0 {
		t.Errorf("GC with single version removed %d, want 0", removed)
	}
}

func TestGCAllOldVersions(t *testing.T) {
	s := New()
	for i := 1; i <= 100; i++ {
		s.Put("k", ver(int64(i), 0, uint64(i), fmt.Sprintf("v%d", i)))
	}
	removed := s.GC(hlc.New(1000, 0))
	if removed != 99 {
		t.Errorf("GC removed %d, want 99", removed)
	}
	if got := s.ReadVisible("k", all); string(got.Value) != "v100" {
		t.Errorf("latest = %s, want v100", got.Value)
	}
}

func TestGCPropertyNeverBreaksSnapshotReads(t *testing.T) {
	// Property: after GC(oldest), any snapshot read at ts >= oldest returns
	// the same version as before GC.
	f := func(utsRaw []uint8, gcAtRaw, readAtRaw uint8) bool {
		if len(utsRaw) == 0 {
			return true
		}
		s := New()
		maxUT := int64(0)
		for i, u := range utsRaw {
			ut := int64(u) + 1
			if ut > maxUT {
				maxUT = ut
			}
			s.Put("k", ver(ut, 0, uint64(i), fmt.Sprintf("v%d-%d", ut, i)))
		}
		gcAt := int64(gcAtRaw)
		readAt := gcAt + int64(readAtRaw) // readAt >= gcAt
		pred := func(v *Version) bool { return v.UT <= hlc.New(readAt, 0) }
		before := s.ReadVisible("k", pred)
		s.GC(hlc.New(gcAt, 0))
		after := s.ReadVisible("k", pred)
		if before == nil {
			return after == nil
		}
		return after != nil && string(after.Value) == string(before.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLatest(t *testing.T) {
	s := New()
	if s.Latest("k") != nil {
		t.Error("Latest of missing key should be nil")
	}
	s.Put("k", ver(10, 0, 1, "a"))
	s.Put("k", ver(5, 0, 2, "b"))
	if got := s.Latest("k"); string(got.Value) != "a" {
		t.Errorf("Latest = %s, want a", got.Value)
	}
}

func TestCounters(t *testing.T) {
	s := New()
	s.Put("a", ver(1, 0, 1, "x"))
	s.Put("a", ver(2, 0, 2, "y"))
	s.Put("b", ver(1, 0, 3, "z"))
	if s.Keys() != 2 {
		t.Errorf("Keys = %d, want 2", s.Keys())
	}
	if s.Versions() != 3 {
		t.Errorf("Versions = %d, want 3", s.Versions())
	}
	if s.VersionsOf("a") != 2 {
		t.Errorf("VersionsOf(a) = %d, want 2", s.VersionsOf("a"))
	}
}

func TestForEachKey(t *testing.T) {
	s := New()
	s.Put("a", ver(1, 0, 1, "x"))
	s.Put("b", ver(1, 0, 2, "y"))
	seen := map[string]bool{}
	s.ForEachKey(func(k string) { seen[k] = true })
	if !seen["a"] || !seen["b"] || len(seen) != 2 {
		t.Errorf("ForEachKey visited %v", seen)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= 500; i++ {
				key := fmt.Sprintf("k%d", i%10)
				s.Put(key, ver(int64(i), uint8(w), uint64(i), "v"))
			}
		}(w)
	}
	// Readers and GC racing with writers.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", rng.Intn(10))
				_ = s.ReadVisible(key, all)
				_ = s.GC(hlc.New(int64(rng.Intn(100)), 0))
			}
		}()
	}
	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers are in wg too; signal readers once a while has passed.
	// Simplest: wait for writers via counting separately.
	close(stop)
	<-done
	if s.Keys() == 0 {
		t.Error("store empty after concurrent writes")
	}
}

// TestPruneChainBoundedByBase pins the cross-tier GC primitive: removals
// are bounded by the caller's base version, so a write that raced in
// AFTER the caller's drop-whole-chain decision (it is newer than base)
// must survive — an unconditional chain delete would silently lose an
// acknowledged committed update.
func TestPruneChainBoundedByBase(t *testing.T) {
	s := NewSharded(2)
	old := &Version{Value: []byte("old"), UT: 10, TxID: 1}
	tomb := &Version{Value: nil, UT: 20, TxID: 2}
	s.Put("k", old)
	s.Put("k", tomb)

	// Plain prune: versions strictly older than base go, base stays.
	if got := s.PruneChain("k", tomb, false); got != 1 {
		t.Fatalf("PruneChain(!dropWhole) removed %d, want 1", got)
	}
	if got := s.VersionsOf("k"); got != 1 {
		t.Fatalf("VersionsOf = %d, want 1 (the base)", got)
	}

	// dropWhole with a version newer than base present — the racing-write
	// shape: only versions up to and including base are removed.
	racing := &Version{Value: []byte("racing"), UT: 30, TxID: 3}
	s.Put("k", racing)
	if got := s.PruneChain("k", tomb, true); got != 1 {
		t.Fatalf("PruneChain(dropWhole, racing write) removed %d, want 1 (the tombstone)", got)
	}
	if lv := s.Latest("k"); lv != racing {
		t.Fatalf("racing write lost: Latest = %+v", lv)
	}

	// dropWhole with nothing newer: the whole chain goes.
	if got := s.PruneChain("k", racing, true); got != 1 {
		t.Fatalf("PruneChain(dropWhole) removed %d, want 1", got)
	}
	if got := s.Keys(); got != 0 {
		t.Fatalf("Keys = %d after whole-chain drop, want 0", got)
	}
	// Absent keys and bases older than everything are no-ops.
	if got := s.PruneChain("absent", tomb, true); got != 0 {
		t.Fatalf("PruneChain(absent) = %d, want 0", got)
	}
}
