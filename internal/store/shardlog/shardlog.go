// Package shardlog is the per-shard append machinery shared by the
// durable storage engines (store/wal, store/sst): one log file per memory
// stripe, buffered record appends with rollback-or-freeze on failure, and
// the group-commit fsync discipline. Keeping it in one place means a
// durability fix lands in every engine at once instead of drifting
// between near-identical copies.
package shardlog

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"wren/internal/wire"
)

// Shard pairs one log file with its append state. Engines hold one Shard
// per memory stripe; Mu also covers the memory-stripe insert of an
// append, so a snapshot-and-rewrite (WAL compaction, SST memtable freeze)
// can never interleave between the log write and the insert.
type Shard struct {
	Mu     sync.Mutex
	F      *os.File
	Enc    *wire.Encoder // reusable append buffer, guarded by Mu
	Size   int64         // bytes of intact records in F (rollback point)
	Failed bool          // append path broken; log frozen until rewritten/rotated
	Dirty  bool          // has unsynced appends
}

// AppendLocked writes Enc's buffered records to the log file and marks
// the shard dirty. Caller holds Mu; failures are reported through onErr.
//
// A failed or short write must not leave a torn record mid-log: recovery
// stops at the first bad record, so appending past it would make every
// later record — even fsynced ones — unreachable after a restart. The
// failed append is rolled back by truncating to the last intact offset;
// if even that fails the log is frozen (Failed; memory stays
// authoritative) until the engine rewrites or rotates it.
func (s *Shard) AppendLocked(onErr func(error)) {
	if s.Enc.Len() == 0 || s.Failed {
		return
	}
	if _, err := s.F.Write(s.Enc.Bytes()); err != nil {
		onErr(fmt.Errorf("append: %w", err))
		if terr := s.F.Truncate(s.Size); terr == nil {
			if _, terr = s.F.Seek(s.Size, 0); terr == nil {
				return
			}
		}
		s.Failed = true
		onErr(fmt.Errorf("append rollback failed, freezing shard log: %w", err))
		return
	}
	s.Size += int64(len(s.Enc.Bytes()))
	s.Dirty = true
}

// SyncIfDirty captures the file handle under the shard lock if the shard
// has unsynced appends and fsyncs it outside the lock, so appends are not
// stalled behind a sync the interval policy opted out of waiting for.
func (s *Shard) SyncIfDirty(onErr func(error)) {
	s.Mu.Lock()
	var f *os.File
	if s.Dirty {
		f = s.F
		s.Dirty = false
	}
	s.Mu.Unlock()
	if f != nil {
		syncFile(f, onErr)
	}
}

// SyncFiles forces the given log handles to stable storage concurrently:
// one group-commit sync phase whose latency is the slowest single fsync,
// not the sum of one serialized fsync per stripe.
//
// Callers MUST capture each handle under its shard lock at append time
// (not at sync time): an engine that rewrites or rotates logs in the
// background (WAL compaction, SST memtable freeze) may swap the shard's
// current file between the append and this sync, and syncing the
// replacement would silently leave the just-appended records volatile. A
// captured handle the background work has already closed is skipped as
// success — the file that replaced it was fsynced before the swap, so
// the records are stable through it.
func SyncFiles(files []*os.File, onErr func(error)) {
	if len(files) == 1 {
		syncFile(files[0], onErr)
		return
	}
	var wg sync.WaitGroup
	for _, f := range files {
		wg.Add(1)
		go func(f *os.File) {
			defer wg.Done()
			syncFile(f, onErr)
		}(f)
	}
	wg.Wait()
}

func syncFile(f *os.File, onErr func(error)) {
	if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
		onErr(fmt.Errorf("sync: %w", err))
	}
}
