// Package enginetest is the conformance suite for store.Engine
// implementations. Every backend — the in-memory lock-striped engine, the
// WAL engine, future memtable+SST engines — must pass the same suite, so
// the protocol layers can treat backends as interchangeable.
package enginetest

import (
	"fmt"
	"sync"
	"testing"

	"wren/internal/hlc"
	"wren/internal/store"
)

// Factory opens a fresh, empty engine for one subtest. The suite calls
// Close on every engine it opens; factories needing extra cleanup should
// register it with t.Cleanup.
type Factory func(t *testing.T) store.Engine

// Run exercises the Engine contract against engines produced by open.
func Run(t *testing.T, open Factory) {
	t.Run("PutReadVisible", func(t *testing.T) { testPutReadVisible(t, open(t)) })
	t.Run("LastWriterWins", func(t *testing.T) { testLastWriterWins(t, open(t)) })
	t.Run("BatchAlignment", func(t *testing.T) { testBatchAlignment(t, open(t)) })
	t.Run("BatchInto", func(t *testing.T) { testBatchInto(t, open(t)) })
	t.Run("TombstoneReadsAndGC", func(t *testing.T) { testTombstones(t, open(t)) })
	t.Run("GCAccounting", func(t *testing.T) { testGCAccounting(t, open(t)) })
	t.Run("CountsAndIteration", func(t *testing.T) { testCounts(t, open(t)) })
	t.Run("Scan", func(t *testing.T) { testScan(t, open(t)) })
	t.Run("ScanConcurrent", func(t *testing.T) { testScanConcurrent(t, open(t)) })
	t.Run("ConcurrentUse", func(t *testing.T) { testConcurrent(t, open(t)) })
	t.Run("Healthy", func(t *testing.T) { testHealthy(t, open(t)) })
	t.Run("CloseIdempotent", func(t *testing.T) { testCloseIdempotent(t, open(t)) })
}

// ReopenFactory binds one subtest to a fixed data directory: the returned
// opener recovers the same state every time it is called. Durable engines
// pass it to RunDurable.
type ReopenFactory func(t *testing.T) func() store.Engine

// RunDurable exercises the recovery side of the Engine contract against
// engines that persist state across Close/Open cycles: every committed
// version — values, tombstones, dependency vectors, empty values — must
// survive a clean close, post-recovery writes must survive another cycle,
// and deleted keys must stay deleted.
func RunDurable(t *testing.T, factory ReopenFactory) {
	t.Run("RecoveryRoundTrip", func(t *testing.T) { testRecoveryRoundTrip(t, factory(t)) })
	t.Run("RecoverThenAppend", func(t *testing.T) { testRecoverThenAppend(t, factory(t)) })
	t.Run("DeleteStaysDeleted", func(t *testing.T) { testDeleteStaysDeleted(t, factory(t)) })
}

func version(val string, ut hlc.Timestamp, tx uint64) *store.Version {
	var b []byte
	if val != "" {
		b = []byte(val)
	} else {
		b = []byte{}
	}
	return &store.Version{Value: b, UT: ut, RDT: ut, TxID: tx}
}

func all(*store.Version) bool { return true }

func upTo(ts hlc.Timestamp) store.VisibleFunc {
	return func(v *store.Version) bool { return v.UT <= ts }
}

func testPutReadVisible(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	if got := e.ReadVisible("missing", all); got != nil {
		t.Fatalf("read of missing key = %+v, want nil", got)
	}
	e.Put("k", version("v1", 10, 1))
	e.Put("k", version("v2", 20, 2))

	if got := e.ReadVisible("k", all); got == nil || string(got.Value) != "v2" {
		t.Fatalf("freshest visible = %+v, want v2", got)
	}
	if got := e.ReadVisible("k", upTo(15)); got == nil || string(got.Value) != "v1" {
		t.Fatalf("snapshot@15 = %+v, want v1", got)
	}
	if got := e.ReadVisible("k", upTo(5)); got != nil {
		t.Fatalf("snapshot@5 = %+v, want nil", got)
	}
}

func testLastWriterWins(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	// Insert out of timestamp order; Latest must still follow LWW order:
	// UT, then SrcDC, then TxID.
	e.Put("k", version("late", 30, 1))
	e.Put("k", version("early", 10, 2))
	e.Put("k", &store.Version{Value: []byte("tie-high-dc"), UT: 30, RDT: 0, TxID: 1, SrcDC: 1})

	if got := e.Latest("k"); got == nil || string(got.Value) != "tie-high-dc" {
		t.Fatalf("Latest = %+v, want the SrcDC=1 tie-breaker winner", got)
	}
	if got := e.VersionsOf("k"); got != 3 {
		t.Fatalf("VersionsOf = %d, want 3", got)
	}
	if got := e.Latest("absent"); got != nil {
		t.Fatalf("Latest(absent) = %+v, want nil", got)
	}
}

func testBatchAlignment(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	var kvs []store.KV
	for i := 0; i < 100; i++ {
		kvs = append(kvs, store.KV{
			Key:     fmt.Sprintf("key-%03d", i),
			Version: version(fmt.Sprintf("val-%03d", i), hlc.Timestamp(100+i), uint64(i)),
		})
	}
	e.PutBatch(kvs)

	keys := []string{"key-000", "no-such-key", "key-050", "key-099"}
	got := e.ReadVisibleBatch(keys, all)
	if len(got) != len(keys) {
		t.Fatalf("batch result length %d, want %d", len(got), len(keys))
	}
	if got[0] == nil || string(got[0].Value) != "val-000" {
		t.Errorf("got[0] = %+v, want val-000", got[0])
	}
	if got[1] != nil {
		t.Errorf("got[1] = %+v, want nil for missing key", got[1])
	}
	if got[2] == nil || string(got[2].Value) != "val-050" {
		t.Errorf("got[2] = %+v, want val-050", got[2])
	}
	if got[3] == nil || string(got[3].Value) != "val-099" {
		t.Errorf("got[3] = %+v, want val-099", got[3])
	}
	if e.Keys() != 100 || e.Versions() != 100 {
		t.Errorf("Keys/Versions = %d/%d, want 100/100", e.Keys(), e.Versions())
	}
	// Empty batches and empty key sets are no-ops, not panics.
	e.PutBatch(nil)
	if out := e.ReadVisibleBatch(nil, all); len(out) != 0 {
		t.Errorf("empty batch read returned %d entries", len(out))
	}
}

// testBatchInto verifies the caller-buffer batch read: results must match
// ReadVisibleBatch exactly, the supplied buffer must be reused when large
// enough (including clearing stale entries), and a too-small buffer must
// grow transparently.
func testBatchInto(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	var kvs []store.KV
	for i := 0; i < 40; i++ {
		kvs = append(kvs, store.KV{
			Key:     fmt.Sprintf("key-%03d", i),
			Version: version(fmt.Sprintf("val-%03d", i), hlc.Timestamp(100+i), uint64(i)),
		})
	}
	e.PutBatch(kvs)

	keys := []string{"key-000", "missing-a", "key-020", "key-039", "missing-b"}
	want := e.ReadVisibleBatch(keys, all)

	// Oversized buffer pre-filled with garbage: every slot must be
	// rewritten, none left stale, and the backing array reused.
	buf := make([]*store.Version, 8)
	garbage := version("garbage", 1, 999)
	for i := range buf {
		buf[i] = garbage
	}
	got := e.ReadVisibleBatchInto(keys, all, buf)
	if len(got) != len(keys) {
		t.Fatalf("Into result length %d, want %d", len(got), len(keys))
	}
	if &got[0] != &buf[0] {
		t.Error("Into did not reuse a large-enough caller buffer")
	}
	for i := range keys {
		if (got[i] == nil) != (want[i] == nil) {
			t.Fatalf("slot %d: Into=%+v, Batch=%+v", i, got[i], want[i])
		}
		if got[i] != nil && string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("slot %d: Into=%q, Batch=%q", i, got[i].Value, want[i].Value)
		}
		if got[i] == garbage {
			t.Fatalf("slot %d: stale buffer entry survived", i)
		}
	}

	// Undersized (nil) buffer grows.
	if got := e.ReadVisibleBatchInto(keys, all, nil); len(got) != len(keys) || got[0] == nil {
		t.Fatalf("Into with nil buffer = %v", got)
	}
	// Empty key set with a dirty buffer returns an empty slice.
	if got := e.ReadVisibleBatchInto(nil, all, buf); len(got) != 0 {
		t.Fatalf("Into with no keys returned %d entries", len(got))
	}
	// Single-key fast path.
	one := e.ReadVisibleBatchInto([]string{"key-007"}, all, buf[:0])
	if len(one) != 1 || one[0] == nil || string(one[0].Value) != "val-007" {
		t.Fatalf("single-key Into = %v", one)
	}
}

func testTombstones(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	e.Put("k", version("live", 10, 1))
	e.Put("k", &store.Version{Value: nil, UT: 20, RDT: 20, TxID: 2}) // tombstone

	// The tombstone is the freshest visible version; callers treat its nil
	// Value as absence. The older live version is still reachable from
	// older snapshots.
	if got := e.ReadVisible("k", all); got == nil || got.Value != nil {
		t.Fatalf("freshest = %+v, want the tombstone (nil Value)", got)
	}
	if got := e.ReadVisible("k", upTo(15)); got == nil || string(got.Value) != "live" {
		t.Fatalf("snapshot@15 = %+v, want the live version", got)
	}

	// Once the deletion is stable (oldest snapshot past the tombstone),
	// GC drops the whole chain.
	res := e.GCStats(30)
	if res.Removed != 2 || res.DroppedKeys != 1 {
		t.Fatalf("GCStats = %+v, want Removed=2 DroppedKeys=1", res)
	}
	if e.Keys() != 0 {
		t.Fatalf("Keys = %d after tombstone GC, want 0", e.Keys())
	}
}

func testGCAccounting(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	for i := 0; i < 10; i++ {
		e.Put("hot", version(fmt.Sprintf("v%d", i), hlc.Timestamp(10*(i+1)), uint64(i)))
	}
	// Oldest snapshot at 55: versions 10..50 are prunable except the
	// newest ≤55 (the version a snapshot@55 reads), i.e. 4 removals.
	res := e.GCStats(55)
	if res.Removed != 4 {
		t.Fatalf("GCStats(55).Removed = %d, want 4", res.Removed)
	}
	sum := 0
	for _, n := range res.PerShard {
		sum += n
	}
	if sum != res.Removed {
		t.Fatalf("PerShard sums to %d, want %d", sum, res.Removed)
	}
	if got := e.VersionsOf("hot"); got != 6 {
		t.Fatalf("VersionsOf after GC = %d, want 6", got)
	}
	if got := e.ReadVisible("hot", upTo(55)); got == nil || string(got.Value) != "v4" {
		t.Fatalf("snapshot@55 after GC = %+v, want v4 (UT=50)", got)
	}
	if got := e.GC(200); got != 5 {
		t.Fatalf("GC(200) = %d, want 5", got)
	}
}

func testCounts(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	if e.NumShards() <= 0 || e.NumShards()&(e.NumShards()-1) != 0 {
		t.Fatalf("NumShards = %d, want a positive power of two", e.NumShards())
	}
	want := map[string]bool{}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%02d", i)
		e.Put(k, version("v", hlc.Timestamp(i+1), uint64(i)))
		e.Put(k, version("w", hlc.Timestamp(i+100), uint64(i+100)))
		want[k] = false
	}
	if e.Keys() != 50 || e.Versions() != 100 {
		t.Fatalf("Keys/Versions = %d/%d, want 50/100", e.Keys(), e.Versions())
	}
	seen := 0
	e.ForEachKey(func(k string) {
		covered, ok := want[k]
		if !ok {
			t.Errorf("ForEachKey yielded unknown key %q", k)
			return
		}
		if covered {
			t.Errorf("ForEachKey yielded %q twice", k)
		}
		want[k] = true
		seen++
		// Re-entrancy: callbacks may read the engine.
		_ = e.Latest(k)
	})
	if seen != 50 {
		t.Errorf("ForEachKey yielded %d keys, want 50", seen)
	}
}

// testScan pins the range-scan contract: ascending key order, inclusive
// start / exclusive end bounds, "" meaning to-the-last-key, snapshot
// visibility per key, tombstone elision, and early stop.
func testScan(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	collect := func(start, end string, visible store.VisibleFunc) (keys []string, vals []string) {
		if err := e.Scan(start, end, visible, func(k string, v *store.Version) bool {
			keys = append(keys, k)
			vals = append(vals, string(v.Value))
			return true
		}); err != nil {
			t.Fatalf("Scan(%q, %q): %v", start, end, err)
		}
		return keys, vals
	}

	// Empty engine: no callbacks, no error.
	if keys, _ := collect("", "", all); len(keys) != 0 {
		t.Fatalf("scan of empty engine yielded %v", keys)
	}

	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%02d", i)
		e.Put(k, version(fmt.Sprintf("old-%02d", i), hlc.Timestamp(10+i), uint64(i)))
		e.Put(k, version(fmt.Sprintf("new-%02d", i), hlc.Timestamp(100+i), uint64(100+i)))
	}
	// A deleted key must be elided; one key deleted then re-created must
	// show its newest live value.
	e.Put("key-05", &store.Version{Value: nil, UT: 500, RDT: 500, TxID: 500})
	e.Put("key-07", &store.Version{Value: nil, UT: 500, RDT: 500, TxID: 501})
	e.Put("key-07", version("reborn", 600, 502))

	keys, vals := collect("", "", all)
	if len(keys) != 29 {
		t.Fatalf("full scan yielded %d keys, want 29 (tombstone elided): %v", len(keys), keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order: %q before %q", keys[i-1], keys[i])
		}
	}
	for i, k := range keys {
		if k == "key-05" {
			t.Fatal("scan yielded deleted key-05")
		}
		want := "new-" + k[len("key-"):]
		if k == "key-07" {
			want = "reborn"
		}
		if vals[i] != want {
			t.Fatalf("key %q scanned value %q, want %q", k, vals[i], want)
		}
	}

	// Bounds: start inclusive, end exclusive.
	keys, _ = collect("key-10", "key-13", all)
	if len(keys) != 3 || keys[0] != "key-10" || keys[2] != "key-12" {
		t.Fatalf("bounded scan = %v, want [key-10 key-11 key-12]", keys)
	}
	// Start past every key, and an empty range.
	if keys, _ = collect("key-99", "", all); len(keys) != 0 {
		t.Fatalf("scan past the last key yielded %v", keys)
	}
	if keys, _ = collect("key-10", "key-10", all); len(keys) != 0 {
		t.Fatalf("empty range yielded %v", keys)
	}

	// Snapshot visibility: at ts 50 only the old versions exist, and
	// neither deletion has happened yet.
	keys, vals = collect("key-04", "key-08", upTo(50))
	if len(keys) != 4 || vals[0] != "old-04" || vals[1] != "old-05" || vals[3] != "old-07" {
		t.Fatalf("snapshot scan = %v / %v, want old-04..old-07", keys, vals)
	}

	// Early stop: fn returning false ends the scan.
	n := 0
	if err := e.Scan("", "", all, func(string, *store.Version) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 5 {
		t.Fatalf("early-stopped scan made %d callbacks, want 5", n)
	}
}

// testScanConcurrent pins that scans tolerate racing writes: every key
// written before the scan started must appear, in order, with some
// committed value — concurrent writes may or may not be observed but
// must never corrupt the iteration.
func testScanConcurrent(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	const stable = 50
	for i := 0; i < stable; i++ {
		e.Put(fmt.Sprintf("stable-%02d", i), version("s", hlc.Timestamp(i+1), uint64(i)))
	}
	stopWriters := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopWriters:
				return
			default:
			}
			e.Put(fmt.Sprintf("hot-%02d", i%20), version("w", hlc.Timestamp(1000+i), uint64(i)))
		}
	}()
	for round := 0; round < 20; round++ {
		var got []string
		if err := e.Scan("stable-", "stable-zzz", all, func(k string, v *store.Version) bool {
			if v == nil || v.Value == nil {
				t.Errorf("scan yielded key %q with no live version", k)
			}
			got = append(got, k)
			return true
		}); err != nil {
			t.Fatalf("Scan during writes: %v", err)
		}
		if len(got) != stable {
			t.Fatalf("scan round %d yielded %d stable keys, want %d", round, len(got), stable)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				t.Fatalf("scan round %d out of order: %q before %q", round, got[i-1], got[i])
			}
		}
	}
	close(stopWriters)
	wg.Wait()
}

func testConcurrent(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	const (
		writers = 4
		readers = 4
		perG    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("key-%d", i%17)
				ut := hlc.Timestamp(w*perG + i + 1)
				if i%3 == 0 {
					e.PutBatch([]store.KV{
						{Key: key, Version: version("a", ut, uint64(i))},
						{Key: fmt.Sprintf("key-%d", (i+1)%17), Version: version("b", ut, uint64(i))},
					})
				} else {
					e.Put(key, version("c", ut, uint64(i)))
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys := []string{"key-0", "key-5", "key-11"}
			for i := 0; i < perG; i++ {
				_ = e.ReadVisible("key-3", all)
				_ = e.ReadVisibleBatch(keys, all)
				if i%50 == 0 {
					_ = e.GC(hlc.Timestamp(i))
				}
			}
		}()
	}
	wg.Wait()
	if e.Keys() == 0 {
		t.Error("no keys survived the concurrent workload")
	}
}

// testHealthy pins the write-path health signal: a fresh engine is
// healthy and stays healthy through ordinary writes, reads and GC — the
// signal must only fire on real write-path failures (covered by the
// engine-specific failure-injection tests).
func testHealthy(t *testing.T, e store.Engine) {
	defer func() { _ = e.Close() }()
	if err := e.Healthy(); err != nil {
		t.Fatalf("fresh engine unhealthy: %v", err)
	}
	for i := 0; i < 50; i++ {
		e.Put(fmt.Sprintf("key-%d", i%7), version("v", hlc.Timestamp(i+1), uint64(i)))
	}
	_ = e.ReadVisible("key-0", all)
	_ = e.GC(10)
	if err := e.Healthy(); err != nil {
		t.Fatalf("engine unhealthy after ordinary use: %v", err)
	}
}

// sameVersion compares the fields recovery must preserve.
func sameVersion(a, b *store.Version) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if (a.Value == nil) != (b.Value == nil) || string(a.Value) != string(b.Value) {
		return false
	}
	if a.UT != b.UT || a.RDT != b.RDT || a.TxID != b.TxID || a.SrcDC != b.SrcDC {
		return false
	}
	if len(a.DV) != len(b.DV) {
		return false
	}
	for i := range a.DV {
		if a.DV[i] != b.DV[i] {
			return false
		}
	}
	return true
}

// RequireSameState fails unless got holds exactly the state of want —
// the assertion every recovery test reduces to. Exported so engine
// packages can reuse it in their own crash-torture tests.
func RequireSameState(t *testing.T, got store.Engine, want store.Engine) {
	t.Helper()
	if got.Keys() != want.Keys() || got.Versions() != want.Versions() {
		t.Fatalf("state mismatch: got %d keys/%d versions, want %d/%d",
			got.Keys(), got.Versions(), want.Keys(), want.Versions())
	}
	want.ForEachKey(func(k string) {
		if got.VersionsOf(k) != want.VersionsOf(k) {
			t.Fatalf("key %q: got %d versions, want %d", k, got.VersionsOf(k), want.VersionsOf(k))
		}
		if !sameVersion(got.Latest(k), want.Latest(k)) {
			t.Fatalf("key %q: Latest mismatch:\n got %+v\nwant %+v", k, got.Latest(k), want.Latest(k))
		}
	})
}

func testRecoveryRoundTrip(t *testing.T, open func() store.Engine) {
	ref := store.NewMemoryEngine(4)
	e := open()
	var kvs []store.KV
	for i := 0; i < 200; i++ {
		ver := version(fmt.Sprintf("val-%d", i), hlc.Timestamp(i+1), uint64(i))
		if i%7 == 0 {
			ver.Value = nil // tombstone
		}
		if i%5 == 0 {
			ver.DV = []hlc.Timestamp{hlc.Timestamp(i), hlc.Timestamp(i + 1), hlc.Timestamp(i + 2)}
		}
		kvs = append(kvs, store.KV{Key: fmt.Sprintf("key-%d", i%37), Version: ver})
	}
	e.PutBatch(kvs)
	ref.PutBatch(kvs)
	// An empty value must stay distinguishable from a tombstone.
	empty := &store.Version{Value: []byte{}, UT: 1000, TxID: 999}
	e.Put("empty-val", empty)
	ref.Put("empty-val", empty)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := open()
	defer func() { _ = re.Close() }()
	RequireSameState(t, re, ref)
	if lv := re.Latest("empty-val"); lv == nil || lv.Value == nil || len(lv.Value) != 0 {
		t.Fatalf("empty value recovered as %+v, want non-nil empty", lv)
	}
}

func testRecoverThenAppend(t *testing.T, open func() store.Engine) {
	ref := store.NewMemoryEngine(4)
	e := open()
	for i := 0; i < 60; i++ {
		v := version(fmt.Sprintf("v%d", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(fmt.Sprintf("key-%d", i%13), v)
		ref.Put(fmt.Sprintf("key-%d", i%13), v)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := open()
	after := version("post-recovery", 10_000, 777)
	re.Put("key-after", after)
	ref.Put("key-after", after)
	if err := re.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}

	re2 := open()
	defer func() { _ = re2.Close() }()
	RequireSameState(t, re2, ref)
}

func testDeleteStaysDeleted(t *testing.T, open func() store.Engine) {
	e := open()
	e.Put("gone", version("live", 10, 1))
	e.Put("gone", &store.Version{Value: nil, UT: 20, RDT: 20, TxID: 2}) // tombstone
	e.Put("kept", version("stays", 10, 3))
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := open()
	if got := re.ReadVisible("gone", all); got == nil || got.Value != nil {
		t.Fatalf("recovered freshest of deleted key = %+v, want the tombstone", got)
	}
	// Once the deletion is stable, GC drops the chain — and the drop must
	// itself survive another restart.
	if res := re.GCStats(100); res.DroppedKeys != 1 {
		t.Fatalf("GCStats dropped %d keys, want 1", res.DroppedKeys)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re2 := open()
	defer func() { _ = re2.Close() }()
	// The engine's durable form may legitimately still hold the chain
	// (logs and runs drop garbage lazily, at compaction), but the key
	// must read as absent: either the chain is gone or the tombstone is
	// still its freshest version.
	if got := re2.ReadVisible("gone", all); got != nil && got.Value != nil {
		t.Fatalf("deleted key resurrected after GC + restart: %+v", got)
	}
	if got := re2.ReadVisible("kept", all); got == nil || string(got.Value) != "stays" {
		t.Fatalf("surviving key lost: %+v", got)
	}
}

func testCloseIdempotent(t *testing.T, e store.Engine) {
	e.Put("k", version("v", 1, 1))
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
