package store

import "wren/internal/hlc"

// Engine is the pluggable storage abstraction every partition server writes
// through. The protocol layers (core, cure) program against this interface
// only, so persistence backends — the in-memory lock-striped map, the
// per-shard WAL in store/wal, future memtable+SST engines — slot in without
// touching protocol code.
//
// All methods must be safe for concurrent use. Version pointers handed to
// Put/PutBatch are owned by the engine afterwards; callers must not mutate
// them. Versions returned by reads are shared and must be treated as
// immutable.
type Engine interface {
	// Put inserts a new version into the chain of key, keeping the chain
	// in last-writer-wins order.
	Put(key string, v *Version)
	// PutBatch inserts many versions with at most one lock acquisition per
	// touched shard. This is the write hot path.
	PutBatch(kvs []KV)
	// ReadVisible returns the freshest version of key satisfying visible,
	// or nil.
	ReadVisible(key string, visible VisibleFunc) *Version
	// ReadVisibleBatch resolves many keys under one snapshot predicate; the
	// result is aligned with keys, nil where nothing is visible.
	ReadVisibleBatch(keys []string, visible VisibleFunc) []*Version
	// ReadVisibleBatchInto is ReadVisibleBatch with a caller-supplied result
	// buffer: out is truncated/extended to len(keys) reusing its capacity
	// and returned. With a large-enough buffer the call performs no heap
	// allocation — this is the read hot path for pooled slice reads.
	ReadVisibleBatchInto(keys []string, visible VisibleFunc, out []*Version) []*Version
	// Latest returns the newest version of key regardless of visibility.
	Latest(key string) *Version
	// GC prunes version chains against the oldest snapshot still visible to
	// a running transaction and returns the number of versions removed.
	GC(oldest hlc.Timestamp) int
	// GCStats is GC with full per-shard accounting.
	GCStats(oldest hlc.Timestamp) GCResult
	// Keys returns the number of keys with at least one version.
	Keys() int
	// Versions returns the total number of stored versions.
	Versions() int
	// VersionsOf returns the number of versions currently stored for key.
	VersionsOf(key string) int
	// NumShards returns the number of lock stripes (a power of two).
	NumShards() int
	// ForEachKey calls fn for every key; fn runs without shard locks held.
	ForEachKey(fn func(key string))
	// Scan streams the keys in [start, end) in ascending key order,
	// invoking fn with the freshest version of each key that satisfies
	// visible. Keys whose freshest visible version is a tombstone are
	// elided — like ReadVisible, a visible deletion reads as absence. An
	// empty end means "to the last key". fn returning false stops the scan
	// early. fn runs without shard locks held; writes that race with a
	// scan may or may not be observed, but never corrupt the iteration.
	// Version pointers handed to fn are shared, stable and must be treated
	// as immutable — engines that stream blocks from disk materialize the
	// winning version before invoking fn, so retaining it is safe.
	Scan(start, end string, visible VisibleFunc, fn func(key string, v *Version) bool) error
	// Healthy reports the first write-path failure the engine has hit, or
	// nil while fully healthy. Durable engines keep serving from memory
	// after a log or flush failure, so without this signal a silently
	// degraded engine is indistinguishable from a healthy one until Close;
	// servers and benchmarks poll Healthy to detect it while running.
	Healthy() error
	// Close releases engine resources (files, background syncers). The
	// engine must not be used afterwards. Close is idempotent.
	Close() error
}

// MemoryEngine is the purely in-memory engine: the lock-striped version
// store. It is the default backend and the reference implementation of the
// Engine contract.
type MemoryEngine = Store

// NewMemoryEngine returns an empty in-memory engine with at least n shards
// (0 selects DefaultShards).
func NewMemoryEngine(n int) *MemoryEngine { return NewSharded(n) }

var _ Engine = (*Store)(nil)
