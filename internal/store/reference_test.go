package store

import (
	"sync"

	"wren/internal/hlc"
)

// engine is the surface shared by the sharded store and the reference
// engine, so equivalence tests and benchmarks can run either.
type engine interface {
	Put(key string, v *Version)
	ReadVisible(key string, visible VisibleFunc) *Version
	Latest(key string) *Version
	GC(oldest hlc.Timestamp) int
}

var (
	_ engine = (*Store)(nil)
	_ engine = (*globalLockStore)(nil)
)

// globalLockStore is the seed storage engine: one RWMutex over a single
// chain map, so every operation across all keys serializes on one lock and
// GC is stop-the-world. It is kept as the behavioral reference model and as
// the baseline in the parallel benchmarks.
type globalLockStore struct {
	mu     sync.RWMutex
	chains map[string][]*Version
}

func newGlobalLockStore() *globalLockStore {
	return &globalLockStore{chains: make(map[string][]*Version)}
}

func (s *globalLockStore) Put(key string, v *Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chains[key] = insertLocked(s.chains[key], v)
}

func (s *globalLockStore) ReadVisible(key string, visible VisibleFunc) *Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ReadVisibleChain(s.chains[key], visible)
}

func (s *globalLockStore) Latest(key string) *Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[key]
	if len(chain) == 0 {
		return nil
	}
	return chain[len(chain)-1]
}

func (s *globalLockStore) GC(oldest hlc.Timestamp) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for key, chain := range s.chains {
		keepFrom := -1
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].UT <= oldest {
				keepFrom = i
				break
			}
		}
		if keepFrom >= 0 && keepFrom == len(chain)-1 && chain[keepFrom].Value == nil {
			removed += len(chain)
			delete(s.chains, key)
			continue
		}
		if keepFrom <= 0 {
			continue
		}
		removed += keepFrom
		newChain := make([]*Version, len(chain)-keepFrom)
		copy(newChain, chain[keepFrom:])
		s.chains[key] = newChain
	}
	return removed
}
