// Package fsutil holds the small filesystem disciplines every durable
// storage engine must follow identically: exclusive data-directory
// locking, directory fsyncs after renames/creations, and the persisted
// shard-count meta file that pins the key→shard mapping of a directory at
// creation time. Sharing them keeps the WAL and SST engines from drifting
// on the details that decide whether a data directory survives crashes.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// lockName is the advisory-lock file every durable engine locks,
// whatever its type. One shared name is what makes the lock meaningful
// across engine types: with per-engine names, a wal engine and an sst
// engine could both "exclusively" own the same directory.
const lockName = "store.lock"

// markerName is the engine-type marker file written on first claim, so a
// directory created by one engine type fails fast when opened by another
// instead of silently serving empty state.
const markerName = "store.engine"

// ClaimDir takes an exclusive advisory lock on the data directory and
// verifies its engine-type marker, enforcing the one-engine-per-directory
// requirement in both dimensions: a second engine of ANY type — or a
// second server process pointed at the same data dir — fails at startup
// instead of silently interleaving appends, and a directory created by a
// different engine type (whose files this engine would ignore, appearing
// empty) is rejected instead of adopted. The lock dies with the process,
// so a crash never leaves a stale lock behind; the marker is written
// atomically and fsynced on first claim.
func ClaimDir(dir, engine string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lock %s: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("data dir %s is in use by another engine: %w", dir, err)
	}
	if err := checkMarker(dir, engine); err != nil {
		_ = f.Close()
		return nil, err
	}
	return f, nil
}

func checkMarker(dir, engine string) error {
	path := filepath.Join(dir, markerName)
	b, err := os.ReadFile(path)
	if err == nil {
		if got := strings.TrimSpace(string(b)); got != engine {
			return fmt.Errorf("data dir %s was created by the %q engine, not %q — refusing to adopt it",
				dir, got, engine)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return fmt.Errorf("read engine marker: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(engine+"\n"), 0o644); err != nil {
		return fmt.Errorf("write engine marker: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("write engine marker: %w", err)
	}
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("sync dir: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory so file creations and renames inside it
// survive power loss, not just the file contents.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadOrInitShards returns the stripe count the data directory was created
// with, persisting the resolved count (atomically, fsynced) on first open.
// The key→file mapping is fixed the moment the first record is written:
// reopening with a different stripe count would read too few files or
// route records into the wrong one, so the persisted count is
// authoritative and a differing option is overridden by the caller. A
// count outside (0, maxShards] or not a power of two fails loudly — a
// clamped or guessed value would silently desynchronize the mapping.
func LoadOrInitShards(dir, metaName string, resolved, maxShards int) (int, error) {
	path := filepath.Join(dir, metaName)
	b, err := os.ReadFile(path)
	if err == nil {
		var n int
		if _, serr := fmt.Sscanf(string(b), "shards=%d", &n); serr != nil ||
			n <= 0 || n > maxShards || n&(n-1) != 0 {
			return 0, fmt.Errorf("corrupt meta file %s: %q", path, b)
		}
		return n, nil
	}
	if !os.IsNotExist(err) {
		return 0, fmt.Errorf("read meta: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("shards=%d\n", resolved)), 0o644); err != nil {
		return 0, fmt.Errorf("write meta: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("write meta: %w", err)
	}
	if err := SyncDir(dir); err != nil {
		return 0, fmt.Errorf("sync dir: %w", err)
	}
	return resolved, nil
}
