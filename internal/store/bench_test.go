package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wren/internal/hlc"
)

func BenchmarkPutSequential(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put("key", &Version{Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i)})
	}
}

func BenchmarkReadVisibleHot(b *testing.B) {
	s := New()
	for i := 0; i < 64; i++ {
		s.Put("key", &Version{Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i)})
	}
	cutoff := hlc.New(32, 0)
	pred := func(v *Version) bool { return v.UT <= cutoff }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.ReadVisible("key", pred) == nil {
			b.Fatal("missing version")
		}
	}
}

func BenchmarkReadVisibleManyKeys(b *testing.B) {
	s := New()
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("key-%d", k)
		for i := 0; i < 4; i++ {
			s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i)})
		}
	}
	pred := func(*Version) bool { return true }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ReadVisible(fmt.Sprintf("key-%d", i%1000), pred)
	}
}

func BenchmarkGC(b *testing.B) {
	// Setup cost (rebuilding the store) is included; GC dominates it by
	// construction, and avoiding timer restarts keeps the benchmark fast.
	for i := 0; i < b.N; i++ {
		s := New()
		for k := 0; k < 100; k++ {
			key := fmt.Sprintf("key-%d", k)
			for v := 0; v < 50; v++ {
				s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(int64(v), 0), TxID: uint64(v)})
			}
		}
		s.GC(hlc.New(45, 0))
	}
}

// --- Parallel benchmarks: seed global-lock engine vs sharded engine ------

const benchKeySpace = 1024

var benchKeys = func() []string {
	keys := make([]string, benchKeySpace)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-key-%04d", i)
	}
	return keys
}()

// benchEngines runs fn against both storage engines so their numbers sit
// side by side in the output: engine=global is the seed single-RWMutex
// store, engine=sharded the lock-striped one.
func benchEngines(b *testing.B, fn func(b *testing.B, mk func() engine)) {
	b.Run("engine=global", func(b *testing.B) {
		fn(b, func() engine { return newGlobalLockStore() })
	})
	b.Run("engine=sharded", func(b *testing.B) {
		fn(b, func() engine { return New() })
	})
}

// runParallel spreads b.N iterations over g goroutines, passing each worker
// its id and a distinct iteration counter.
func runParallel(b *testing.B, g int, body func(worker, iter int)) {
	var wg sync.WaitGroup
	var next atomic.Int64
	const chunk = 256
	b.ResetTimer()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				start := next.Add(chunk) - chunk
				if start >= int64(b.N) {
					return
				}
				end := start + chunk
				if end > int64(b.N) {
					end = int64(b.N)
				}
				for i := start; i < end; i++ {
					body(w, int(i))
				}
			}
		}(w)
	}
	wg.Wait()
}

var benchGoroutines = []int{1, 4, 8, 16}

func BenchmarkParallelPut(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() engine) {
		for _, g := range benchGoroutines {
			b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
				s := mk()
				val := []byte("v")
				b.ReportAllocs()
				runParallel(b, g, func(w, i int) {
					s.Put(benchKeys[i%benchKeySpace], &Version{
						Value: val, UT: hlc.New(int64(i), 0), TxID: uint64(w)<<32 | uint64(i),
					})
				})
			})
		}
	})
}

func BenchmarkParallelReadVisible(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() engine) {
		for _, g := range benchGoroutines {
			b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
				s := mk()
				for i, key := range benchKeys {
					for v := 0; v < 4; v++ {
						s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(int64(v+1), 0), TxID: uint64(i*4 + v)})
					}
				}
				cutoff := hlc.New(3, 0)
				pred := func(v *Version) bool { return v.UT <= cutoff }
				b.ReportAllocs()
				runParallel(b, g, func(w, i int) {
					if s.ReadVisible(benchKeys[(i*7+w)%benchKeySpace], pred) == nil {
						b.Error("missing version")
					}
				})
			})
		}
	})
}

// BenchmarkParallelMixed is the acceptance workload: a read-heavy mix (one
// Put per four ReadVisible) over a shared key space, the shape of a
// partition serving slice requests while the apply loop installs commits.
func BenchmarkParallelMixed(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() engine) {
		for _, g := range benchGoroutines {
			b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
				s := mk()
				for i, key := range benchKeys {
					s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(1, 0), TxID: uint64(i)})
				}
				val := []byte("v")
				all := func(*Version) bool { return true }
				b.ReportAllocs()
				runParallel(b, g, func(w, i int) {
					key := benchKeys[(i*13+w)%benchKeySpace]
					if i%5 == 0 {
						s.Put(key, &Version{Value: val, UT: hlc.New(int64(i), 0), TxID: uint64(w)<<32 | uint64(i)})
					} else if s.ReadVisible(key, all) == nil {
						b.Error("missing version")
					}
				})
			})
		}
	})
}

// BenchmarkReadLatencyUnderGC measures what the striping is really for on
// the read path: the seed engine's GC holds the one write lock for a scan
// of EVERY chain in the store, stalling all reads for the whole pass, while
// per-shard GC holds one stripe (1/64 of the scan) at a time. Reported
// p99/max read latencies show the stop-the-world stall directly, on any
// core count. Mean ns/op is similar by construction (total work is equal);
// the tail is the point.
func BenchmarkReadLatencyUnderGC(b *testing.B) {
	const (
		gcKeys     = 20000
		gcVersions = 4
	)
	keys := make([]string, gcKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("gc-key-%05d", i)
	}
	benchEngines(b, func(b *testing.B, mk func() engine) {
		s := mk()
		for i, key := range keys {
			for v := 2; v <= gcVersions+1; v++ {
				s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(int64(v), 0), TxID: uint64(i*10 + v)})
			}
		}
		// Churn: refill every chain with a stale version, then GC the whole
		// store to prune it again, forever.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j, key := range keys {
					s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(1, 0), TxID: uint64(i*gcKeys + j)})
				}
				s.GC(hlc.New(2, 0))
			}
		}()

		all := func(*Version) bool { return true }
		lat := make([]int64, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := nanotime()
			if s.ReadVisible(keys[(i*31)%gcKeys], all) == nil {
				b.Error("missing version")
			}
			lat[i] = nanotime() - t0
		}
		b.StopTimer()
		close(stop)
		wg.Wait()

		sortInt64(lat)
		b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
		b.ReportMetric(float64(lat[len(lat)-1]), "max-ns")
	})
}

func nanotime() int64 { return time.Now().UnixNano() }

func sortInt64(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// BenchmarkBatchVsSingle contrasts the batched hot-path APIs against
// per-version locking on the sharded engine (the batch APIs do not exist on
// the seed engine — that is the point of them).
func BenchmarkBatchVsSingle(b *testing.B) {
	const batchSize = 16
	b.Run("PutBatch", func(b *testing.B) {
		s := New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			batch := make([]KV, batchSize)
			for j := range batch {
				batch[j] = KV{Key: benchKeys[(i*batchSize+j)%benchKeySpace], Version: &Version{
					Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i*batchSize + j),
				}}
			}
			s.PutBatch(batch)
		}
	})
	b.Run("PutLoop", func(b *testing.B) {
		s := New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batchSize; j++ {
				s.Put(benchKeys[(i*batchSize+j)%benchKeySpace], &Version{
					Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i*batchSize + j),
				})
			}
		}
	})
	b.Run("ReadVisibleBatch", func(b *testing.B) {
		s := New()
		for _, key := range benchKeys {
			s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(1, 0), TxID: 1})
		}
		keys := benchKeys[:batchSize]
		all := func(*Version) bool { return true }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.ReadVisibleBatch(keys, all)
		}
	})
	b.Run("ReadVisibleLoop", func(b *testing.B) {
		s := New()
		for _, key := range benchKeys {
			s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(1, 0), TxID: 1})
		}
		keys := benchKeys[:batchSize]
		all := func(*Version) bool { return true }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				_ = s.ReadVisible(k, all)
			}
		}
	})
}
