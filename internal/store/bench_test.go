package store

import (
	"fmt"
	"testing"

	"wren/internal/hlc"
)

func BenchmarkPutSequential(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put("key", &Version{Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i)})
	}
}

func BenchmarkReadVisibleHot(b *testing.B) {
	s := New()
	for i := 0; i < 64; i++ {
		s.Put("key", &Version{Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i)})
	}
	cutoff := hlc.New(32, 0)
	pred := func(v *Version) bool { return v.UT <= cutoff }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.ReadVisible("key", pred) == nil {
			b.Fatal("missing version")
		}
	}
}

func BenchmarkReadVisibleManyKeys(b *testing.B) {
	s := New()
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("key-%d", k)
		for i := 0; i < 4; i++ {
			s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(int64(i), 0), TxID: uint64(i)})
		}
	}
	pred := func(*Version) bool { return true }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ReadVisible(fmt.Sprintf("key-%d", i%1000), pred)
	}
}

func BenchmarkGC(b *testing.B) {
	// Setup cost (rebuilding the store) is included; GC dominates it by
	// construction, and avoiding timer restarts keeps the benchmark fast.
	for i := 0; i < b.N; i++ {
		s := New()
		for k := 0; k < 100; k++ {
			key := fmt.Sprintf("key-%d", k)
			for v := 0; v < 50; v++ {
				s.Put(key, &Version{Value: []byte("v"), UT: hlc.New(int64(v), 0), TxID: uint64(v)})
			}
		}
		s.GC(hlc.New(45, 0))
	}
}
