package store_test

import (
	"testing"

	"wren/internal/store"
	"wren/internal/store/enginetest"
)

// TestMemoryEngineConformance runs the shared engine conformance suite
// against the in-memory lock-striped engine, at the default and a tiny
// shard count (the tiny count forces heavy intra-shard contention).
func TestMemoryEngineConformance(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		return store.NewMemoryEngine(0)
	})
}

func TestMemoryEngineConformanceOneShard(t *testing.T) {
	enginetest.Run(t, func(t *testing.T) store.Engine {
		return store.NewMemoryEngine(1)
	})
}
