// Package backend selects and opens a storage engine by name. It is the
// single place that knows every concrete engine, so the protocol servers
// (core, cure) and every configuration layer above them can treat the
// backend as an opaque string validated and resolved here.
package backend

import (
	"fmt"

	"wren/internal/store"
	"wren/internal/store/sst"
	"wren/internal/store/wal"
)

// Backend names.
const (
	// Memory is the in-memory lock-striped engine (the default). State is
	// lost on restart.
	Memory = "memory"
	// WAL is the durable engine: the memory engine fronted by per-shard
	// append-only logs that are replayed on startup.
	WAL = "wal"
	// SST is the memtable+sorted-run engine: a WAL covers only the active
	// memtable, background flushes emit immutable sorted runs that serve
	// snapshot reads lock-free, and merge compaction folds runs together.
	SST = "sst"
)

// Names lists every recognized backend, for flag help and sweeps.
var Names = []string{Memory, WAL, SST}

// Options describes the engine one partition server wants.
type Options struct {
	// Backend is Memory, WAL, SST, or "" (which selects Memory).
	Backend string
	// Shards is the lock-stripe count (0 selects store.DefaultShards).
	Shards int
	// DataDir is the directory a durable backend writes under. Required
	// for WAL and SST; ignored by Memory. Each server must get its own
	// directory.
	DataDir string
	// Fsync is the WAL group-commit policy shared by the durable
	// backends: wal.FsyncAlways, wal.FsyncInterval (the "" default) or
	// wal.FsyncNever.
	Fsync string
}

// Validate checks a backend selection the way ServerConfig.validate checks
// StoreShards: recognized name, directory present when required, known
// fsync policy.
func Validate(name, dataDir, fsync string) error {
	switch name {
	case "", Memory:
		return nil
	case WAL, SST:
		if dataDir == "" {
			return fmt.Errorf("backend %q requires a data directory", name)
		}
		if _, err := wal.ParseFsync(fsync); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown store backend %q (want %q, %q or %q)", name, Memory, WAL, SST)
	}
}

// Open builds the engine described by opts.
func Open(opts Options) (store.Engine, error) {
	if err := Validate(opts.Backend, opts.DataDir, opts.Fsync); err != nil {
		return nil, err
	}
	switch opts.Backend {
	case WAL:
		return wal.Open(wal.Options{
			Dir:    opts.DataDir,
			Shards: opts.Shards,
			Fsync:  opts.Fsync,
		})
	case SST:
		return sst.Open(sst.Options{
			Dir:    opts.DataDir,
			Shards: opts.Shards,
			Fsync:  opts.Fsync,
		})
	default:
		return store.NewMemoryEngine(opts.Shards), nil
	}
}
