package backend

import (
	"testing"

	"wren/internal/store"
	"wren/internal/store/wal"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name, backend, dir, fsync string
		wantErr                   bool
	}{
		{"default", "", "", "", false},
		{"memory", Memory, "", "", false},
		{"memory ignores fsync", Memory, "", "sometimes", false},
		{"wal with dir", WAL, "/tmp/x", "", false},
		{"wal all policies", WAL, "/tmp/x", wal.FsyncAlways, false},
		{"wal without dir", WAL, "", "", true},
		{"wal bad fsync", WAL, "/tmp/x", "sometimes", true},
		{"unknown", "rocksdb", "/tmp/x", "", true},
	}
	for _, c := range cases {
		if err := Validate(c.backend, c.dir, c.fsync); (err != nil) != c.wantErr {
			t.Errorf("%s: Validate(%q,%q,%q) = %v, wantErr=%v", c.name, c.backend, c.dir, c.fsync, err, c.wantErr)
		}
	}
}

func TestOpenSelectsEngine(t *testing.T) {
	eng, err := Open(Options{Backend: "", Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.(*store.MemoryEngine); !ok {
		t.Errorf("default backend opened %T, want *store.MemoryEngine", eng)
	}
	_ = eng.Close()

	weng, err := Open(Options{Backend: WAL, Shards: 8, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := weng.(*wal.Engine); !ok {
		t.Errorf("wal backend opened %T, want *wal.Engine", weng)
	}
	if weng.NumShards() != 8 {
		t.Errorf("NumShards = %d, want 8", weng.NumShards())
	}
	_ = weng.Close()

	if _, err := Open(Options{Backend: WAL}); err == nil {
		t.Error("wal backend without DataDir should fail to open")
	}
	if _, err := Open(Options{Backend: "rocksdb"}); err == nil {
		t.Error("unknown backend should fail to open")
	}
}
