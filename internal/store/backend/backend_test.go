package backend

import (
	"testing"

	"wren/internal/store"
	"wren/internal/store/sst"
	"wren/internal/store/wal"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name, backend, dir, fsync string
		wantErr                   bool
	}{
		{"default", "", "", "", false},
		{"memory", Memory, "", "", false},
		{"memory ignores fsync", Memory, "", "sometimes", false},
		{"wal with dir", WAL, "/tmp/x", "", false},
		{"wal all policies", WAL, "/tmp/x", wal.FsyncAlways, false},
		{"wal without dir", WAL, "", "", true},
		{"wal bad fsync", WAL, "/tmp/x", "sometimes", true},
		{"sst with dir", SST, "/tmp/x", "", false},
		{"sst all policies", SST, "/tmp/x", wal.FsyncNever, false},
		{"sst without dir", SST, "", "", true},
		{"sst bad fsync", SST, "/tmp/x", "sometimes", true},
		{"unknown", "rocksdb", "/tmp/x", "", true},
	}
	for _, c := range cases {
		if err := Validate(c.backend, c.dir, c.fsync); (err != nil) != c.wantErr {
			t.Errorf("%s: Validate(%q,%q,%q) = %v, wantErr=%v", c.name, c.backend, c.dir, c.fsync, err, c.wantErr)
		}
	}
}

func TestOpenSelectsEngine(t *testing.T) {
	eng, err := Open(Options{Backend: "", Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.(*store.MemoryEngine); !ok {
		t.Errorf("default backend opened %T, want *store.MemoryEngine", eng)
	}
	_ = eng.Close()

	weng, err := Open(Options{Backend: WAL, Shards: 8, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := weng.(*wal.Engine); !ok {
		t.Errorf("wal backend opened %T, want *wal.Engine", weng)
	}
	if weng.NumShards() != 8 {
		t.Errorf("NumShards = %d, want 8", weng.NumShards())
	}
	_ = weng.Close()

	seng, err := Open(Options{Backend: SST, Shards: 8, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := seng.(*sst.Engine); !ok {
		t.Errorf("sst backend opened %T, want *sst.Engine", seng)
	}
	if seng.NumShards() != 8 {
		t.Errorf("NumShards = %d, want 8", seng.NumShards())
	}
	_ = seng.Close()

	if _, err := Open(Options{Backend: WAL}); err == nil {
		t.Error("wal backend without DataDir should fail to open")
	}
	if _, err := Open(Options{Backend: SST}); err == nil {
		t.Error("sst backend without DataDir should fail to open")
	}
	if _, err := Open(Options{Backend: "rocksdb"}); err == nil {
		t.Error("unknown backend should fail to open")
	}
}

// TestCrossEngineDirRejected: a data directory created by one durable
// engine must be refused by the other — each ignores the other's files,
// so adopting the directory would silently serve empty state (and two
// live engines would interleave writes into one directory).
func TestCrossEngineDirRejected(t *testing.T) {
	for _, c := range []struct{ first, second string }{{WAL, SST}, {SST, WAL}} {
		t.Run(c.first+"-then-"+c.second, func(t *testing.T) {
			dir := t.TempDir()
			eng, err := Open(Options{Backend: c.first, DataDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			eng.Put("k", &store.Version{Value: []byte("v"), UT: 1})

			// While the first engine is live, the shared lock rejects the
			// second regardless of type.
			if _, err := Open(Options{Backend: c.second, DataDir: dir}); err == nil {
				t.Fatalf("%s opened a directory locked by a live %s engine", c.second, c.first)
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			// After a clean close, the engine-type marker still refuses the
			// mismatched engine...
			if _, err := Open(Options{Backend: c.second, DataDir: dir}); err == nil {
				t.Fatalf("%s adopted a closed %s data directory", c.second, c.first)
			}
			// ...while the original type reopens and recovers fine.
			re, err := Open(Options{Backend: c.first, DataDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := re.Latest("k"); got == nil || string(got.Value) != "v" {
				t.Fatalf("recovered Latest = %+v, want v", got)
			}
			_ = re.Close()
		})
	}
}
