package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/enginetest"
)

func mustOpen(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := Open(opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return e
}

// TestWALEngineConformance runs the shared engine conformance suite
// against the WAL engine under every fsync policy.
func TestWALEngineConformance(t *testing.T) {
	for _, policy := range []string{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy, func(t *testing.T) {
			enginetest.Run(t, func(t *testing.T) store.Engine {
				return mustOpen(t, Options{Dir: t.TempDir(), Shards: 4, Fsync: policy})
			})
		})
	}
}

// TestWALDurable runs the shared recovery suite (clean close/reopen
// cycles preserve every version; deletes stay deleted).
func TestWALDurable(t *testing.T) {
	enginetest.RunDurable(t, func(t *testing.T) func() store.Engine {
		dir := t.TempDir()
		return func() store.Engine {
			return mustOpen(t, Options{Dir: dir, Shards: 4, Fsync: FsyncAlways})
		}
	})
}

func v(val string, ut hlc.Timestamp, tx uint64) *store.Version {
	return &store.Version{Value: []byte(val), UT: ut, RDT: ut / 2, TxID: tx, SrcDC: uint8(tx % 3)}
}

// sameVersion compares the fields that recovery must preserve.
func sameVersion(a, b *store.Version) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if (a.Value == nil) != (b.Value == nil) || string(a.Value) != string(b.Value) {
		return false
	}
	if a.UT != b.UT || a.RDT != b.RDT || a.TxID != b.TxID || a.SrcDC != b.SrcDC {
		return false
	}
	if len(a.DV) != len(b.DV) {
		return false
	}
	for i := range a.DV {
		if a.DV[i] != b.DV[i] {
			return false
		}
	}
	return true
}

// requireSameState fails unless got holds exactly the state of want.
func requireSameState(t *testing.T, got store.Engine, want *store.Store) {
	t.Helper()
	if got.Keys() != want.Keys() || got.Versions() != want.Versions() {
		t.Fatalf("state mismatch: got %d keys/%d versions, want %d/%d",
			got.Keys(), got.Versions(), want.Keys(), want.Versions())
	}
	want.ForEachKey(func(k string) {
		if got.VersionsOf(k) != want.VersionsOf(k) {
			t.Fatalf("key %q: got %d versions, want %d", k, got.VersionsOf(k), want.VersionsOf(k))
		}
		if !sameVersion(got.Latest(k), want.Latest(k)) {
			t.Fatalf("key %q: Latest mismatch:\n got %+v\nwant %+v", k, got.Latest(k), want.Latest(k))
		}
	})
}

// TestRecoveryRoundTrip closes an engine and reopens it from the same
// directory: every version — values, tombstones, Cure dependency vectors,
// all metadata — must survive.
func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ref := store.NewMemoryEngine(4)
	e := mustOpen(t, Options{Dir: dir, Shards: 4, Fsync: FsyncNever})

	var kvs []store.KV
	for i := 0; i < 200; i++ {
		ver := v(fmt.Sprintf("val-%d", i), hlc.Timestamp(i+1), uint64(i))
		if i%7 == 0 {
			ver.Value = nil // tombstone
		}
		if i%5 == 0 {
			ver.DV = []hlc.Timestamp{hlc.Timestamp(i), hlc.Timestamp(i + 1), hlc.Timestamp(i + 2)}
		}
		kvs = append(kvs, store.KV{Key: fmt.Sprintf("key-%d", i%37), Version: ver})
	}
	e.PutBatch(kvs)
	ref.PutBatch(kvs)
	// An empty value must stay distinguishable from a tombstone.
	empty := &store.Version{Value: []byte{}, UT: 1000, TxID: 999}
	e.Put("empty-val", empty)
	ref.Put("empty-val", empty)

	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 4, Fsync: FsyncNever})
	defer re.Close()
	if re.Metrics().Recovered() == 0 {
		t.Fatal("recovery replayed no records")
	}
	if re.Metrics().TruncatedShards() != 0 {
		t.Fatalf("clean shutdown produced %d truncated shards", re.Metrics().TruncatedShards())
	}
	requireSameState(t, re, ref)
	if lv := re.Latest("empty-val"); lv == nil || lv.Value == nil || len(lv.Value) != 0 {
		t.Fatalf("empty value recovered as %+v, want non-nil empty", lv)
	}
}

// TestCrashRecoveryTornTail is the crash-torture test: it simulates a kill
// mid-PutBatch by truncating the shard log inside the final record, then
// reopens and verifies the recovered state matches a reference engine fed
// only the fully-persisted puts.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	// One shard so there is exactly one log with a known record order.
	e := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	logPath := filepath.Join(dir, "shard-00000.log")

	const puts = 50
	sizes := make([]int64, 0, puts) // log size after each put
	ref := store.NewMemoryEngine(1)
	for i := 0; i < puts; i++ {
		key := fmt.Sprintf("key-%d", i%11)
		ver := v(fmt.Sprintf("payload-%d-some-bytes-to-make-records-wide", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(key, ver)
		st, err := os.Stat(logPath)
		if err != nil {
			t.Fatalf("stat log: %v", err)
		}
		sizes = append(sizes, st.Size())
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the final record: cut the log a few bytes past the end of the
	// second-to-last record, i.e. mid-way through the last one.
	cut := sizes[puts-2] + 5
	if cut >= sizes[puts-1] {
		t.Fatalf("test setup: cut %d not inside the last record (%d..%d)", cut, sizes[puts-2], sizes[puts-1])
	}
	if err := os.Truncate(logPath, cut); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	// The reference engine holds every put except the torn last one.
	for i := 0; i < puts-1; i++ {
		key := fmt.Sprintf("key-%d", i%11)
		ref.Put(key, v(fmt.Sprintf("payload-%d-some-bytes-to-make-records-wide", i), hlc.Timestamp(i+1), uint64(i)))
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	if re.Metrics().TruncatedShards() != 1 {
		t.Errorf("TruncatedShards = %d, want 1", re.Metrics().TruncatedShards())
	}
	if re.Metrics().Recovered() != puts-1 {
		t.Errorf("Recovered = %d, want %d", re.Metrics().Recovered(), puts-1)
	}
	requireSameState(t, re, ref)

	// The torn tail must be gone from disk, and the log must accept fresh
	// appends that survive another restart.
	if st, _ := os.Stat(logPath); st.Size() != sizes[puts-2] {
		t.Errorf("log size after recovery = %d, want %d (torn tail truncated)", st.Size(), sizes[puts-2])
	}
	after := v("post-recovery", 10_000, 777)
	re.Put("key-after", after)
	ref.Put("key-after", after)
	if err := re.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	re2 := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	defer re2.Close()
	requireSameState(t, re2, ref)
}

// TestCrashRecoveryGarbageTail checks that a tail of random garbage (a
// crash mid-header, or a corrupt record) is truncated, not fatal.
func TestCrashRecoveryGarbageTail(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	ref := store.NewMemoryEngine(1)
	for i := 0; i < 10; i++ {
		ver := v(fmt.Sprintf("v%d", i), hlc.Timestamp(i+1), uint64(i))
		e.Put("k", ver)
		ref.Put("k", ver)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	logPath := filepath.Join(dir, "shard-00000.log")
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible-looking header (huge length) followed by junk.
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	re := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncAlways})
	defer re.Close()
	if re.Metrics().TruncatedShards() != 1 {
		t.Errorf("TruncatedShards = %d, want 1", re.Metrics().TruncatedShards())
	}
	requireSameState(t, re, ref)
}

// TestCompaction drives GC past the compaction threshold and verifies the
// shard log is rewritten smaller while preserving live state.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncNever, CompactThreshold: 50})
	logPath := filepath.Join(dir, "shard-00000.log")

	// 100 versions of one key; all but the newest are prunable.
	for i := 0; i < 100; i++ {
		e.Put("hot", v(fmt.Sprintf("v%d", i), hlc.Timestamp(i+1), uint64(i)))
	}
	before, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if removed := e.GC(1000); removed != 99 {
		t.Fatalf("GC removed %d, want 99", removed)
	}
	if e.Metrics().Compactions() != 1 {
		t.Fatalf("Compactions = %d, want 1", e.Metrics().Compactions())
	}
	after, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("log did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}

	// Appends after compaction land in the rewritten log; recovery sees
	// the compacted state plus the new writes.
	e.Put("hot", v("final", 5000, 500))
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncNever})
	defer re.Close()
	if got := re.VersionsOf("hot"); got != 2 {
		t.Fatalf("recovered VersionsOf(hot) = %d, want 2 (survivor + final)", got)
	}
	if lv := re.Latest("hot"); lv == nil || string(lv.Value) != "final" {
		t.Fatalf("recovered Latest = %+v, want final", lv)
	}
	// Dropped counters reset: a second small GC must not re-compact.
	if e2 := re.GC(6000); e2 != 1 {
		t.Fatalf("post-recovery GC removed %d, want 1", e2)
	}
}

// TestShardCountPersistedAcrossReopen: the stripe count is fixed at
// creation (wal.meta); reopening with a different Shards option must
// adopt the persisted count instead of mis-routing or ignoring logs.
func TestShardCountPersistedAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 8, Fsync: FsyncAlways})
	ref := store.NewMemoryEngine(8)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		ver := v(fmt.Sprintf("val-%d", i), hlc.Timestamp(i+1), uint64(i))
		e.Put(key, ver)
		ref.Put(key, ver)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	for _, requested := range []int{2, 64, 0} {
		re := mustOpen(t, Options{Dir: dir, Shards: requested, Fsync: FsyncAlways})
		if re.NumShards() != 8 {
			t.Fatalf("reopen with Shards=%d: NumShards = %d, want persisted 8", requested, re.NumShards())
		}
		requireSameState(t, re, ref)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// A corrupt meta file must fail loudly, not guess.
	if err := os.WriteFile(filepath.Join(dir, "wal.meta"), []byte("shards=7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Error("Open with corrupt meta (non-power-of-two) should fail")
	}
}

// TestAppendFailureFreezesLog: when an append and its rollback both fail,
// the shard log must freeze (no further appends that recovery could not
// reach past a torn record) while memory keeps serving; a compaction
// rewrite from live state repairs the log.
func TestAppendFailureFreezesLog(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 1, Fsync: FsyncNever, CompactThreshold: 1})
	e.Put("k", v("before", 1, 1))
	if err := e.Healthy(); err != nil {
		t.Fatalf("healthy engine reported %v", err)
	}

	// Force every write and truncate to fail by closing the file out from
	// under the shard (same package: reach into the unexported state).
	sh := e.shards[0]
	sh.Mu.Lock()
	_ = sh.F.Close()
	sh.Mu.Unlock()

	e.Put("k", v("during", 2, 2))
	sh.Mu.Lock()
	frozen := sh.Failed
	sh.Mu.Unlock()
	if !frozen {
		t.Fatal("shard log not frozen after append+rollback failure")
	}
	// The failure must be visible to Healthy immediately — not only at
	// Close — so servers and benchmarks can detect the degraded log.
	if err := e.Healthy(); err == nil {
		t.Fatal("Healthy() = nil after append+rollback failure")
	}
	// Memory stays authoritative; further appends are skipped, not torn.
	if lv := e.Latest("k"); lv == nil || string(lv.Value) != "during" {
		t.Fatalf("memory lost the write: %+v", lv)
	}
	e.Put("k", v("after", 3, 3))

	// Compaction (threshold 1, GC drops 2 old versions) rewrites the log
	// from memory and thaws the shard.
	if removed := e.GC(10); removed != 2 {
		t.Fatalf("GC removed %d, want 2", removed)
	}
	sh.Mu.Lock()
	frozen = sh.Failed
	sh.Mu.Unlock()
	if frozen {
		t.Fatal("compaction did not repair the frozen shard log")
	}
	e.Put("k", v("final", 4, 4))
	if err := e.Close(); err == nil {
		t.Fatal("Close should surface the recorded append failure")
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 1})
	defer re.Close()
	if lv := re.Latest("k"); lv == nil || string(lv.Value) != "final" {
		t.Fatalf("post-repair writes not recovered: %+v", lv)
	}
}

// TestExclusiveDirLock: a second engine on a live data directory must
// fail at Open instead of interleaving appends; Close releases the lock.
func TestExclusiveDirLock(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir})
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("second Open on a live data dir should fail")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := mustOpen(t, Options{Dir: dir}) // lock released by Close
	_ = e2.Close()
}

// TestOpenRejectsBadPolicy covers option validation.
func TestOpenRejectsBadPolicy(t *testing.T) {
	if _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Error("Open with unknown fsync policy should fail")
	}
	if _, err := ParseFsync(""); err != nil {
		t.Errorf("ParseFsync(\"\") = %v, want default", err)
	}
}

// BenchmarkEnginePutBatch compares write throughput of the memory engine
// and the WAL engine under each fsync policy (the CI bench smoke).
func BenchmarkEnginePutBatch(b *testing.B) {
	const batch = 64
	mkBatch := func(i int) []store.KV {
		kvs := make([]store.KV, batch)
		for j := range kvs {
			kvs[j] = store.KV{
				Key:     fmt.Sprintf("key-%d", (i*batch+j)%4096),
				Version: v("sixteen-byte-val", hlc.Timestamp(i*batch+j+1), uint64(j)),
			}
		}
		return kvs
	}
	run := func(b *testing.B, e store.Engine) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.PutBatch(mkBatch(i))
		}
		b.StopTimer()
		_ = e.Close()
	}
	b.Run("memory", func(b *testing.B) {
		run(b, store.NewMemoryEngine(0))
	})
	for _, policy := range []string{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run("wal-"+policy, func(b *testing.B) {
			e, err := Open(Options{Dir: b.TempDir(), Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			run(b, e)
		})
	}
}

// TestGroupCommitFsyncAlways exercises the coalesced group-commit sync:
// under fsync=always a multi-shard PutBatch appends to every touched log
// and then runs ONE concurrent sync phase instead of a serialized fsync
// per stripe. Every record must be durable (and recoverable) once PutBatch
// returns, exactly as with the old per-stripe sync.
func TestGroupCommitFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	e := mustOpen(t, Options{Dir: dir, Shards: 8, Fsync: FsyncAlways})

	// A batch wide enough to touch many of the 8 shard logs at once.
	var kvs []store.KV
	for i := 0; i < 64; i++ {
		kvs = append(kvs, store.KV{
			Key:     fmt.Sprintf("group-%03d", i),
			Version: v(fmt.Sprintf("val-%03d", i), hlc.Timestamp(100+i), uint64(i)),
		})
	}
	e.PutBatch(kvs)
	// A second batch over the same keys: appends after the first sync phase
	// must land behind intact records in every log.
	for i := range kvs {
		kvs[i].Version = v(fmt.Sprintf("new-%03d", i), hlc.Timestamp(500+i), uint64(1000+i))
	}
	e.PutBatch(kvs)

	touched := 0
	for si := 0; si < e.NumShards(); si++ {
		if fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%05d.log", si))); err == nil && fi.Size() > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Fatalf("batch touched %d shard logs; the group-sync path needs several", touched)
	}

	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := mustOpen(t, Options{Dir: dir, Shards: 8, Fsync: FsyncAlways})
	defer func() { _ = re.Close() }()
	if got := re.Versions(); got != 128 {
		t.Fatalf("recovered %d versions, want 128", got)
	}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("group-%03d", i)
		latest := re.Latest(k)
		if latest == nil || string(latest.Value) != fmt.Sprintf("new-%03d", i) {
			t.Fatalf("key %s: recovered Latest = %+v", k, latest)
		}
	}
}
