// Package wal implements a durable storage engine: the in-memory
// lock-striped version store fronted by per-shard append-only log files.
//
// Every Put appends one record to the log of the shard that owns the key —
// the same FNV-1a striping the in-memory engine uses, so shard i's log
// holds exactly the versions resident in memory stripe i. Records are
// length-prefixed and CRC32-checksummed, and their payloads reuse the
// internal/wire encoder. Group commit batches all of a PutBatch's records
// for one shard into a single write syscall; the fsync policy decides when
// the OS buffer is forced to disk (per batch, on a timer, or never).
//
// On startup the engine replays every shard log into the in-memory shards.
// A torn final record — the footprint of a crash mid-append — is detected
// by its length prefix or checksum and truncated away, together with
// anything after it. GC feeds compaction: once garbage collection has
// dropped enough versions from a shard, that shard's log is rewritten from
// live memory state (to a temp file, fsynced, atomically renamed), bounding
// log growth to the live data set plus the compaction threshold.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/fsutil"
	"wren/internal/store/logrec"
	"wren/internal/store/shardlog"
	"wren/internal/wire"
)

// Fsync policies: when an appended record is forced to stable storage.
const (
	// FsyncAlways syncs after every Put/PutBatch (group commit): no
	// committed-and-applied write is ever lost, at one fsync per shard a
	// batch touches (a batch spread over many stripes pays many fsyncs).
	FsyncAlways = "always"
	// FsyncInterval syncs dirty logs on a background timer (default 10ms):
	// a crash loses at most the last interval's writes. The default.
	FsyncInterval = "interval"
	// FsyncNever leaves flushing to the OS page cache: fastest, survives
	// process crashes (the data is in kernel buffers) but not power loss.
	FsyncNever = "never"
)

// ParseFsync canonicalizes a policy name ("" selects FsyncInterval).
func ParseFsync(s string) (string, error) {
	switch s {
	case "":
		return FsyncInterval, nil
	case FsyncAlways, FsyncInterval, FsyncNever:
		return s, nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

const (
	// DefaultFsyncInterval is the timer period of the FsyncInterval policy.
	DefaultFsyncInterval = 10 * time.Millisecond
	// DefaultCompactThreshold is the number of GC-dropped versions a shard
	// accumulates before its log is rewritten from live state.
	DefaultCompactThreshold = 4096
)

// Options configures a WAL engine.
type Options struct {
	// Dir is the directory holding the shard logs. Created if missing. One
	// engine must own it exclusively.
	Dir string
	// Shards is the stripe count (0 selects store.DefaultShards; rounded up
	// to a power of two). Logs are per stripe, so this also sets the group-
	// commit fan-in.
	Shards int
	// Fsync is one of FsyncAlways, FsyncInterval, FsyncNever ("" selects
	// FsyncInterval).
	Fsync string
	// FsyncInterval overrides the sync timer period for the interval policy
	// (0 selects DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CompactThreshold overrides how many dropped versions trigger a shard
	// log rewrite (0 selects DefaultCompactThreshold; negative disables
	// compaction).
	CompactThreshold int
}

// walShard is the shared per-shard log state plus this engine's
// compaction accounting. Shard.Mu also covers the memory-stripe insert of
// an append, so compaction's snapshot-and-rewrite can never miss a
// version that is in the log but not yet in memory (or vice versa).
type walShard struct {
	shardlog.Shard
	dropped int // versions GC removed since the last compaction (under Mu)
}

// Engine is the durable WAL-backed storage engine.
type Engine struct {
	mem    *store.Store
	dir    string
	fsync  string
	compat int // compaction threshold (<0 disables)
	mask   uint32
	shards []*walShard

	lock *os.File // exclusive advisory lock on the data directory

	mu      sync.Mutex // guards err, closed
	err     error      // first append/sync error, surfaced by Close
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
	metrics Metrics
}

// Metrics counts engine-level events for tests and monitoring.
type Metrics struct {
	mu          sync.Mutex
	compactions int
	recovered   int
	truncated   int
}

// Compactions returns how many shard-log rewrites have run.
func (m *Metrics) Compactions() int { m.mu.Lock(); defer m.mu.Unlock(); return m.compactions }

// Recovered returns how many records startup recovery replayed.
func (m *Metrics) Recovered() int { m.mu.Lock(); defer m.mu.Unlock(); return m.recovered }

// TruncatedShards returns how many shard logs had a torn tail cut off
// during recovery.
func (m *Metrics) TruncatedShards() int { m.mu.Lock(); defer m.mu.Unlock(); return m.truncated }

var _ store.Engine = (*Engine)(nil)

// Open creates or recovers a WAL engine in opts.Dir: existing shard logs
// are replayed into memory (truncating a torn tail), missing ones are
// created empty.
func Open(opts Options) (*Engine, error) {
	policy, err := ParseFsync(opts.Fsync)
	if err != nil {
		return nil, err
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	compact := opts.CompactThreshold
	if compact == 0 {
		compact = DefaultCompactThreshold
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	lock, err := fsutil.ClaimDir(opts.Dir, "wal")
	if err != nil {
		return nil, err
	}

	mem := store.NewSharded(opts.Shards)
	// The key→log mapping is fixed the moment the first record is written:
	// reopening with a different stripe count would read too few logs or
	// compact records into the wrong one. The count persisted at creation
	// is therefore authoritative; a differing Shards option is overridden.
	// The bound matters: a count above store.MaxShards would be clamped
	// by the memory engine, desynchronizing the log↔stripe mapping
	// compaction relies on.
	n, err := fsutil.LoadOrInitShards(opts.Dir, "wal.meta", mem.NumShards(), store.MaxShards)
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	if n != mem.NumShards() {
		mem = store.NewSharded(n)
	}
	e := &Engine{
		mem:    mem,
		dir:    opts.Dir,
		fsync:  policy,
		compat: compact,
		mask:   uint32(n - 1),
		shards: make([]*walShard, n),
		lock:   lock,
		stop:   make(chan struct{}),
	}
	for si := 0; si < n; si++ {
		sh := &walShard{Shard: shardlog.Shard{Enc: wire.NewEncoder()}}
		if err := e.recoverShard(si, sh); err != nil {
			// Close whatever opened before the failure.
			for _, prev := range e.shards {
				if prev != nil && prev.F != nil {
					_ = prev.F.Close()
				}
			}
			_ = lock.Close()
			return nil, err
		}
		e.shards[si] = sh
	}
	// One directory sync covers every shard log created (or truncated)
	// above, so a fresh data dir survives power loss as a unit.
	if err := fsutil.SyncDir(opts.Dir); err != nil {
		_ = e.Close()
		return nil, fmt.Errorf("wal: sync dir: %w", err)
	}
	if policy == FsyncInterval {
		e.wg.Add(1)
		go e.fsyncLoop(opts.FsyncInterval)
	}
	return e, nil
}

// shardPath names shard si's log file.
func (e *Engine) shardPath(si int) string {
	return filepath.Join(e.dir, fmt.Sprintf("shard-%05d.log", si))
}

// recoverShard replays shard si's log into memory and leaves the file open
// for appending. The log is streamed through a bounded read buffer — never
// materialized whole — so startup heap is set by record size, not log
// size. A record whose length prefix or checksum does not hold — a torn
// tail from a crash mid-append — is truncated away along with everything
// after it.
func (e *Engine) recoverShard(si int, sh *walShard) error {
	path := e.shardPath(si)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", path, err)
	}
	size, err := f.Seek(0, 2)
	if err == nil {
		_, err = f.Seek(0, 0)
	}
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: seek %s: %w", path, err)
	}

	var kvs []store.KV
	good := logrec.ScanReader(bufio.NewReaderSize(f, 1<<16), func(key string, v *store.Version) {
		kvs = append(kvs, store.KV{Key: key, Version: v})
	})
	e.mem.PutBatch(kvs)
	e.metrics.mu.Lock()
	e.metrics.recovered += len(kvs)
	if good < size {
		e.metrics.truncated++
	}
	e.metrics.mu.Unlock()

	if good < size {
		if err := f.Truncate(good); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: seek %s: %w", path, err)
	}
	sh.F = f
	sh.Size = good
	return nil
}

// recordErr remembers the first append/sync failure, printing it to
// stderr right away — an operator must learn that durability degraded
// when it happens, not at Close. The memory stripes stay authoritative
// for reads either way; Healthy surfaces the error to callers that want
// to stop acknowledging writes (or fail a benchmark) on degradation.
func (e *Engine) recordErr(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	first := e.err == nil
	if first {
		e.err = err
	}
	e.mu.Unlock()
	if first {
		fmt.Fprintf(os.Stderr, "wal: durability degraded in %s: %v\n", e.dir, err)
	}
}

// onErr adapts recordErr to the shardlog callbacks, prefixing the engine
// name.
func (e *Engine) onErr(err error) { e.recordErr(fmt.Errorf("wal: %w", err)) }

// appendLocked writes Enc's buffered records to the shard log (rollback
// on failure, freeze on rollback failure — see shardlog.Shard) and
// applies the fsync policy. Caller holds sh.Mu. With deferSync set, the
// FsyncAlways sync is skipped — the caller (PutBatch's group commit)
// issues one coalesced sync phase for every touched shard after all
// appends land.
func (e *Engine) appendLocked(sh *walShard, deferSync bool) {
	sh.AppendLocked(e.onErr)
	if e.fsync == FsyncAlways && !deferSync && !sh.Failed {
		if err := sh.F.Sync(); err != nil {
			e.recordErr(fmt.Errorf("wal: sync: %w", err))
		}
		sh.Dirty = false
	}
}

// Put implements store.Engine.
func (e *Engine) Put(key string, v *store.Version) {
	sh := e.shards[store.Fingerprint(key)&e.mask]
	sh.Mu.Lock()
	sh.Enc.Reset()
	logrec.Append(sh.Enc, key, v)
	e.appendLocked(sh, false)
	// The memory insert happens under the WAL shard lock so compaction's
	// snapshot-and-rewrite can never interleave between log and memory.
	e.mem.Put(key, v)
	sh.Mu.Unlock()
}

// PutBatch implements store.Engine: all records of one batch destined for
// the same shard are appended with a single write (group commit). Under
// FsyncAlways the batch pays ONE coalesced sync phase across every touched
// shard log — the fsyncs run concurrently after all appends land — instead
// of one serialized fsync per stripe. Versions become readable from the
// memory stripes as each shard's append lands, before the sync phase
// completes; this matches the system's durability unit (the applied
// transaction — servers acknowledge commits before the apply tick), and
// PutBatch still returns only after every touched log is on stable storage.
func (e *Engine) PutBatch(kvs []store.KV) {
	switch len(kvs) {
	case 0:
		return
	case 1:
		e.Put(kvs[0].Key, kvs[0].Version)
		return
	}
	groupSync := e.fsync == FsyncAlways
	var touched []*os.File
	store.ForEachShardGroup(e.mask, kvs, func(id uint32, group []store.KV) {
		sh := e.shards[id]
		sh.Mu.Lock()
		sh.Enc.Reset()
		for _, kv := range group {
			logrec.Append(sh.Enc, kv.Key, kv.Version)
		}
		e.appendLocked(sh, groupSync)
		e.mem.PutBatch(group)
		if groupSync && !sh.Failed {
			// Capture the handle under the lock, at append time: a
			// compaction may swap sh.F before the sync phase runs, and the
			// records must be fsynced through THIS handle (or already be
			// stable via the rewrite that closed it).
			touched = append(touched, sh.F)
			sh.Dirty = false
		}
		sh.Mu.Unlock()
	})
	if groupSync {
		shardlog.SyncFiles(touched, e.onErr)
	}
}

// ReadVisible implements store.Engine.
func (e *Engine) ReadVisible(key string, visible store.VisibleFunc) *store.Version {
	return e.mem.ReadVisible(key, visible)
}

// ReadVisibleBatch implements store.Engine.
func (e *Engine) ReadVisibleBatch(keys []string, visible store.VisibleFunc) []*store.Version {
	return e.mem.ReadVisibleBatch(keys, visible)
}

// ReadVisibleBatchInto implements store.Engine: reads are always served by
// the memory stripes, so the caller-buffer fast path passes straight
// through.
func (e *Engine) ReadVisibleBatchInto(keys []string, visible store.VisibleFunc, out []*store.Version) []*store.Version {
	return e.mem.ReadVisibleBatchInto(keys, visible, out)
}

// Latest implements store.Engine.
func (e *Engine) Latest(key string) *store.Version { return e.mem.Latest(key) }

// GC implements store.Engine.
func (e *Engine) GC(oldest hlc.Timestamp) int { return e.GCStats(oldest).Removed }

// GCStats implements store.Engine: it prunes the memory stripes, then
// rewrites any shard log whose dropped-version count crossed the
// compaction threshold.
func (e *Engine) GCStats(oldest hlc.Timestamp) store.GCResult {
	res := e.mem.GCStats(oldest)
	if e.compat < 0 {
		return res
	}
	for si, n := range res.PerShard {
		if n == 0 {
			continue
		}
		sh := e.shards[si]
		sh.Mu.Lock()
		sh.dropped += n
		compact := sh.dropped >= e.compat
		sh.Mu.Unlock()
		if compact {
			e.compactShard(si)
		}
	}
	return res
}

// compactShard rewrites shard si's log from live memory state: encode the
// surviving versions into a temp file, fsync it, and atomically rename it
// over the old log. Appends to the shard are blocked for the duration.
func (e *Engine) compactShard(si int) {
	sh := e.shards[si]
	sh.Mu.Lock()
	defer sh.Mu.Unlock()

	snap := e.mem.ShardSnapshot(si)
	path := e.shardPath(si)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		e.recordErr(fmt.Errorf("wal: compact %s: %w", path, err))
		return
	}
	// Stream the rewrite through a throwaway encoder and a buffered
	// writer: sh.Enc lives as long as the engine, and Reset keeps buffer
	// capacity, so encoding a whole shard into it would pin a
	// snapshot-sized allocation per shard forever.
	w := bufio.NewWriterSize(f, 1<<16)
	enc := wire.NewEncoder()
	var written int64
	for _, kv := range snap {
		enc.Reset()
		logrec.Append(enc, kv.Key, kv.Version)
		if _, err = w.Write(enc.Bytes()); err != nil {
			break
		}
		written += int64(len(enc.Bytes()))
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		e.recordErr(fmt.Errorf("wal: compact %s: %w", path, err))
		_ = f.Close()
		_ = os.Remove(tmp)
		return
	}

	// f still refers to the inode that now lives at path (rename moved
	// it), positioned at its end — it becomes the append handle directly,
	// so there is no reopen step that could fail and leave appends going
	// to a dead file.
	_ = sh.F.Close()
	sh.F = f
	sh.Size = written
	sh.dropped = 0
	sh.Dirty = false
	sh.Failed = false // the rewrite from live memory state repairs a frozen log
	// Persist the rename itself: without the directory sync a power loss
	// could revert the name to the pre-compaction inode, losing every
	// post-compaction append.
	if derr := fsutil.SyncDir(e.dir); derr != nil {
		e.recordErr(fmt.Errorf("wal: compact %s: sync dir: %w", path, derr))
	}
	e.metrics.mu.Lock()
	e.metrics.compactions++
	e.metrics.mu.Unlock()
}

// Keys implements store.Engine.
func (e *Engine) Keys() int { return e.mem.Keys() }

// Versions implements store.Engine.
func (e *Engine) Versions() int { return e.mem.Versions() }

// VersionsOf implements store.Engine.
func (e *Engine) VersionsOf(key string) int { return e.mem.VersionsOf(key) }

// NumShards implements store.Engine.
func (e *Engine) NumShards() int { return e.mem.NumShards() }

// ForEachKey implements store.Engine.
func (e *Engine) ForEachKey(fn func(key string)) { e.mem.ForEachKey(fn) }

// Scan implements store.Engine: reads are always served by the memory
// stripes, so the ordered iteration passes straight through.
func (e *Engine) Scan(start, end string, visible store.VisibleFunc, fn func(key string, v *store.Version) bool) error {
	return e.mem.Scan(start, end, visible, fn)
}

// Healthy implements store.Engine: it returns the first append, sync or
// compaction failure the engine has recorded, or nil while the write path
// is fully intact. After a failure the engine keeps serving reads and
// writes from the memory stripes, so without this signal a frozen shard
// log is invisible until Close.
func (e *Engine) Healthy() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Metrics returns the engine's counters.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// fsyncLoop flushes dirty shard logs on a timer (FsyncInterval policy).
func (e *Engine) fsyncLoop(every time.Duration) {
	defer e.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.syncDirty()
		case <-e.stop:
			return
		}
	}
}

// syncDirty flushes dirty shard logs (interval policy). An append racing
// in re-sets Dirty, keeping the one-interval loss bound; a concurrent
// compaction may close a captured handle, which shardlog skips — the log
// installed in its place was synced before the swap.
func (e *Engine) syncDirty() {
	for _, sh := range e.shards {
		sh.SyncIfDirty(e.onErr)
	}
}

// Close implements store.Engine: it stops the sync loop, forces every log
// to stable storage (a clean shutdown is always fully durable, whatever
// the fsync policy), closes the files, and returns the first error any
// append, sync or compaction hit.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		err := e.err
		e.mu.Unlock()
		return err
	}
	e.closed = true
	e.mu.Unlock()

	close(e.stop)
	e.wg.Wait()
	for _, sh := range e.shards {
		sh.Mu.Lock()
		if err := sh.F.Sync(); err != nil {
			e.recordErr(fmt.Errorf("wal: close sync: %w", err))
		}
		if err := sh.F.Close(); err != nil {
			e.recordErr(fmt.Errorf("wal: close: %w", err))
		}
		sh.Mu.Unlock()
	}
	_ = e.lock.Close() // releases the directory lock
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
