// Package wal implements a durable storage engine: the in-memory
// lock-striped version store fronted by per-shard append-only log files.
//
// Every Put appends one record to the log of the shard that owns the key —
// the same FNV-1a striping the in-memory engine uses, so shard i's log
// holds exactly the versions resident in memory stripe i. Records are
// length-prefixed and CRC32-checksummed, and their payloads reuse the
// internal/wire encoder. Group commit batches all of a PutBatch's records
// for one shard into a single write syscall; the fsync policy decides when
// the OS buffer is forced to disk (per batch, on a timer, or never).
//
// On startup the engine replays every shard log into the in-memory shards.
// A torn final record — the footprint of a crash mid-append — is detected
// by its length prefix or checksum and truncated away, together with
// anything after it. GC feeds compaction: once garbage collection has
// dropped enough versions from a shard, that shard's log is rewritten from
// live memory state (to a temp file, fsynced, atomically renamed), bounding
// log growth to the live data set plus the compaction threshold.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/wire"
)

// Fsync policies: when an appended record is forced to stable storage.
const (
	// FsyncAlways syncs after every Put/PutBatch (group commit): no
	// committed-and-applied write is ever lost, at one fsync per shard a
	// batch touches (a batch spread over many stripes pays many fsyncs).
	FsyncAlways = "always"
	// FsyncInterval syncs dirty logs on a background timer (default 10ms):
	// a crash loses at most the last interval's writes. The default.
	FsyncInterval = "interval"
	// FsyncNever leaves flushing to the OS page cache: fastest, survives
	// process crashes (the data is in kernel buffers) but not power loss.
	FsyncNever = "never"
)

// ParseFsync canonicalizes a policy name ("" selects FsyncInterval).
func ParseFsync(s string) (string, error) {
	switch s {
	case "":
		return FsyncInterval, nil
	case FsyncAlways, FsyncInterval, FsyncNever:
		return s, nil
	default:
		return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

const (
	// recordHeader is the per-record framing: 4-byte little-endian payload
	// length plus 4-byte CRC32 (IEEE) of the payload.
	recordHeader = 8

	// DefaultFsyncInterval is the timer period of the FsyncInterval policy.
	DefaultFsyncInterval = 10 * time.Millisecond
	// DefaultCompactThreshold is the number of GC-dropped versions a shard
	// accumulates before its log is rewritten from live state.
	DefaultCompactThreshold = 4096
)

// Options configures a WAL engine.
type Options struct {
	// Dir is the directory holding the shard logs. Created if missing. One
	// engine must own it exclusively.
	Dir string
	// Shards is the stripe count (0 selects store.DefaultShards; rounded up
	// to a power of two). Logs are per stripe, so this also sets the group-
	// commit fan-in.
	Shards int
	// Fsync is one of FsyncAlways, FsyncInterval, FsyncNever ("" selects
	// FsyncInterval).
	Fsync string
	// FsyncInterval overrides the sync timer period for the interval policy
	// (0 selects DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CompactThreshold overrides how many dropped versions trigger a shard
	// log rewrite (0 selects DefaultCompactThreshold; negative disables
	// compaction).
	CompactThreshold int
}

// walShard pairs one log file with its append state. The mutex also covers
// the memory-stripe insert of an append, so compaction's snapshot-and-
// rewrite can never miss a version that is in the log but not yet in
// memory (or vice versa).
type walShard struct {
	mu      sync.Mutex
	f       *os.File
	enc     *wire.Encoder // reusable append buffer, guarded by mu
	size    int64         // bytes of intact records in f (rollback point)
	failed  bool          // append path broken; log frozen until compaction
	dirty   bool          // has unsynced appends (interval policy)
	dropped int           // versions GC removed since the last compaction
}

// Engine is the durable WAL-backed storage engine.
type Engine struct {
	mem    *store.Store
	dir    string
	fsync  string
	compat int // compaction threshold (<0 disables)
	mask   uint32
	shards []*walShard

	lock *os.File // exclusive advisory lock on the data directory

	mu      sync.Mutex // guards err, closed
	err     error      // first append/sync error, surfaced by Close
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
	metrics Metrics
}

// Metrics counts engine-level events for tests and monitoring.
type Metrics struct {
	mu          sync.Mutex
	compactions int
	recovered   int
	truncated   int
}

// Compactions returns how many shard-log rewrites have run.
func (m *Metrics) Compactions() int { m.mu.Lock(); defer m.mu.Unlock(); return m.compactions }

// Recovered returns how many records startup recovery replayed.
func (m *Metrics) Recovered() int { m.mu.Lock(); defer m.mu.Unlock(); return m.recovered }

// TruncatedShards returns how many shard logs had a torn tail cut off
// during recovery.
func (m *Metrics) TruncatedShards() int { m.mu.Lock(); defer m.mu.Unlock(); return m.truncated }

var _ store.Engine = (*Engine)(nil)

// Open creates or recovers a WAL engine in opts.Dir: existing shard logs
// are replayed into memory (truncating a torn tail), missing ones are
// created empty.
func Open(opts Options) (*Engine, error) {
	policy, err := ParseFsync(opts.Fsync)
	if err != nil {
		return nil, err
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	compact := opts.CompactThreshold
	if compact == 0 {
		compact = DefaultCompactThreshold
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	lock, err := acquireLock(opts.Dir)
	if err != nil {
		return nil, err
	}

	mem := store.NewSharded(opts.Shards)
	// The key→log mapping is fixed the moment the first record is written:
	// reopening with a different stripe count would read too few logs or
	// compact records into the wrong one. The count persisted at creation
	// is therefore authoritative; a differing Shards option is overridden.
	n, err := loadOrInitShards(opts.Dir, mem.NumShards())
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	if n != mem.NumShards() {
		mem = store.NewSharded(n)
	}
	e := &Engine{
		mem:    mem,
		dir:    opts.Dir,
		fsync:  policy,
		compat: compact,
		mask:   uint32(n - 1),
		shards: make([]*walShard, n),
		lock:   lock,
		stop:   make(chan struct{}),
	}
	for si := 0; si < n; si++ {
		sh := &walShard{enc: wire.NewEncoder()}
		if err := e.recoverShard(si, sh); err != nil {
			// Close whatever opened before the failure.
			for _, prev := range e.shards {
				if prev != nil && prev.f != nil {
					_ = prev.f.Close()
				}
			}
			_ = lock.Close()
			return nil, err
		}
		e.shards[si] = sh
	}
	// One directory sync covers every shard log created (or truncated)
	// above, so a fresh data dir survives power loss as a unit.
	if err := syncDir(opts.Dir); err != nil {
		_ = e.Close()
		return nil, fmt.Errorf("wal: sync dir: %w", err)
	}
	if policy == FsyncInterval {
		e.wg.Add(1)
		go e.fsyncLoop(opts.FsyncInterval)
	}
	return e, nil
}

// acquireLock takes an exclusive advisory lock on the data directory,
// enforcing the one-engine-per-directory requirement: a second engine (or
// a second server process pointed at the same -data-dir) fails at startup
// instead of silently interleaving appends. The lock dies with the
// process, so a crash never leaves a stale lock behind.
func acquireLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("wal: data dir %s is in use by another engine: %w", dir, err)
	}
	return f, nil
}

// syncDir fsyncs a directory so file creations and renames inside it
// survive power loss, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadOrInitShards returns the stripe count the data directory was created
// with, persisting the resolved count (atomically, fsynced) on first open.
func loadOrInitShards(dir string, resolved int) (int, error) {
	path := filepath.Join(dir, "wal.meta")
	b, err := os.ReadFile(path)
	if err == nil {
		var n int
		if _, serr := fmt.Sscanf(string(b), "shards=%d", &n); serr != nil ||
			n <= 0 || n > store.MaxShards || n&(n-1) != 0 {
			// The bound matters: a count above store.MaxShards would be
			// clamped by the memory engine, desynchronizing the log↔stripe
			// mapping compaction relies on.
			return 0, fmt.Errorf("wal: corrupt meta file %s: %q", path, b)
		}
		return n, nil
	}
	if !os.IsNotExist(err) {
		return 0, fmt.Errorf("wal: read meta: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("shards=%d\n", resolved)), 0o644); err != nil {
		return 0, fmt.Errorf("wal: write meta: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("wal: write meta: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("wal: sync dir: %w", err)
	}
	return resolved, nil
}

// shardPath names shard si's log file.
func (e *Engine) shardPath(si int) string {
	return filepath.Join(e.dir, fmt.Sprintf("shard-%05d.log", si))
}

// recoverShard replays shard si's log into memory and leaves the file open
// for appending. A record whose length prefix or checksum does not hold —
// a torn tail from a crash mid-append — is truncated away along with
// everything after it.
func (e *Engine) recoverShard(si int, sh *walShard) error {
	path := e.shardPath(si)
	buf, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: read %s: %w", path, err)
	}

	var kvs []store.KV
	good := 0 // byte offset of the end of the last intact record
	for off := 0; off < len(buf); {
		rest := buf[off:]
		if len(rest) < recordHeader {
			break // torn header
		}
		plen := binary.LittleEndian.Uint32(rest[:4])
		// No upper bound on plen beyond the file itself: a record of any
		// size that was fully written and checksums clean is valid — an
		// arbitrary cap here would make a large committed value poison
		// every record behind it. Corrupt lengths fail the bounds check or
		// the CRC below.
		if recordHeader+int(plen) > len(rest) {
			break // torn payload (or a corrupt length running off the file)
		}
		payload := rest[recordHeader : recordHeader+int(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break // corrupt record
		}
		key, v, derr := decodeRecord(payload)
		if derr != nil {
			break // payload does not parse: treat like a torn record
		}
		kvs = append(kvs, store.KV{Key: key, Version: v})
		off += recordHeader + int(plen)
		good = off
	}
	e.mem.PutBatch(kvs)
	e.metrics.mu.Lock()
	e.metrics.recovered += len(kvs)
	if good < len(buf) {
		e.metrics.truncated++
	}
	e.metrics.mu.Unlock()

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", path, err)
	}
	if good < len(buf) {
		if err := f.Truncate(int64(good)); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: seek %s: %w", path, err)
	}
	sh.f = f
	sh.size = int64(good)
	return nil
}

// appendRecord encodes one version as a framed record at the end of enc's
// buffer and back-patches the length and checksum.
func appendRecord(enc *wire.Encoder, key string, v *store.Version) {
	off := enc.Reserve(recordHeader)
	enc.String(key)
	enc.Bool(v.Value == nil)
	enc.BytesField(v.Value)
	enc.Timestamp(v.UT)
	enc.Timestamp(v.RDT)
	enc.Uvarint(v.TxID)
	enc.Byte(v.SrcDC)
	enc.Timestamps(v.DV)
	buf := enc.Bytes()
	payload := buf[off+recordHeader:]
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[off+4:], crc32.ChecksumIEEE(payload))
}

// decodeRecord parses one record payload back into a version.
func decodeRecord(payload []byte) (string, *store.Version, error) {
	d := wire.NewDecoder(payload)
	key := d.String()
	tombstone := d.Bool()
	raw := d.BytesField()
	v := &store.Version{
		UT:    d.Timestamp(),
		RDT:   d.Timestamp(),
		TxID:  d.Uvarint(),
		SrcDC: d.Byte(),
		DV:    d.Timestamps(),
	}
	if err := d.Err(); err != nil {
		return "", nil, err
	}
	if !tombstone {
		v.Value = append([]byte{}, raw...)
	}
	return key, v, nil
}

// recordErr remembers the first append/sync failure, printing it to
// stderr right away — an operator must learn that durability degraded
// when it happens, not at Close. The memory stripes stay authoritative
// for reads either way. (A write-path health signal servers could stop
// acking on is tracked in ROADMAP.md.)
func (e *Engine) recordErr(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	first := e.err == nil
	if first {
		e.err = err
	}
	e.mu.Unlock()
	if first {
		fmt.Fprintf(os.Stderr, "wal: durability degraded in %s: %v\n", e.dir, err)
	}
}

// appendLocked writes enc's buffered records to the shard log and applies
// the fsync policy. Caller holds sh.mu. With deferSync set, the FsyncAlways
// sync is skipped — the caller (PutBatch's group commit) issues one
// coalesced sync phase for every touched shard after all appends land.
//
// A failed or short write must not leave a torn record mid-log: recovery
// stops at the first bad record, so appending past it would make every
// later record — even fsynced ones — unreachable after a restart. The
// failed append is rolled back by truncating to the last intact offset;
// if even that fails the log is frozen (memory stays authoritative) until
// a compaction rewrites it from live state.
func (e *Engine) appendLocked(sh *walShard, deferSync bool) {
	if sh.enc.Len() == 0 || sh.failed {
		return
	}
	if _, err := sh.f.Write(sh.enc.Bytes()); err != nil {
		e.recordErr(fmt.Errorf("wal: append: %w", err))
		if terr := sh.f.Truncate(sh.size); terr == nil {
			_, terr = sh.f.Seek(sh.size, 0)
			if terr == nil {
				return
			}
		}
		sh.failed = true
		e.recordErr(fmt.Errorf("wal: append rollback failed, freezing shard log: %w", err))
		return
	}
	sh.size += int64(len(sh.enc.Bytes()))
	if e.fsync == FsyncAlways && !deferSync {
		if err := sh.f.Sync(); err != nil {
			e.recordErr(fmt.Errorf("wal: sync: %w", err))
		}
	} else {
		sh.dirty = true
	}
}

// syncShards forces the touched shard logs to stable storage concurrently:
// one group-commit sync phase whose latency is the slowest single fsync,
// not the sum of one serialized fsync per stripe (the ROADMAP's
// fsync=always hot-path cost). The file handle is captured under the shard
// lock; a concurrent compaction may close it underneath, which is harmless
// — the log compaction installs in its place is synced before the swap.
func (e *Engine) syncShards(shards []*walShard) {
	if len(shards) == 1 {
		e.syncShard(shards[0])
		return
	}
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *walShard) {
			defer wg.Done()
			e.syncShard(sh)
		}(sh)
	}
	wg.Wait()
}

func (e *Engine) syncShard(sh *walShard) {
	sh.mu.Lock()
	f := sh.f
	sh.dirty = false
	sh.mu.Unlock()
	if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
		e.recordErr(fmt.Errorf("wal: sync: %w", err))
	}
}

// Put implements store.Engine.
func (e *Engine) Put(key string, v *store.Version) {
	sh := e.shards[store.Fingerprint(key)&e.mask]
	sh.mu.Lock()
	sh.enc.Reset()
	appendRecord(sh.enc, key, v)
	e.appendLocked(sh, false)
	// The memory insert happens under the WAL shard lock so compaction's
	// snapshot-and-rewrite can never interleave between log and memory.
	e.mem.Put(key, v)
	sh.mu.Unlock()
}

// PutBatch implements store.Engine: all records of one batch destined for
// the same shard are appended with a single write (group commit). Under
// FsyncAlways the batch pays ONE coalesced sync phase across every touched
// shard log — the fsyncs run concurrently after all appends land — instead
// of one serialized fsync per stripe. Versions become readable from the
// memory stripes as each shard's append lands, before the sync phase
// completes; this matches the system's durability unit (the applied
// transaction — servers acknowledge commits before the apply tick), and
// PutBatch still returns only after every touched log is on stable storage.
func (e *Engine) PutBatch(kvs []store.KV) {
	switch len(kvs) {
	case 0:
		return
	case 1:
		e.Put(kvs[0].Key, kvs[0].Version)
		return
	}
	groupSync := e.fsync == FsyncAlways
	var touched []*walShard
	store.ForEachShardGroup(e.mask, kvs, func(id uint32, group []store.KV) {
		sh := e.shards[id]
		sh.mu.Lock()
		sh.enc.Reset()
		for _, kv := range group {
			appendRecord(sh.enc, kv.Key, kv.Version)
		}
		e.appendLocked(sh, groupSync)
		e.mem.PutBatch(group)
		sh.mu.Unlock()
		if groupSync {
			touched = append(touched, sh)
		}
	})
	if groupSync {
		e.syncShards(touched)
	}
}

// ReadVisible implements store.Engine.
func (e *Engine) ReadVisible(key string, visible store.VisibleFunc) *store.Version {
	return e.mem.ReadVisible(key, visible)
}

// ReadVisibleBatch implements store.Engine.
func (e *Engine) ReadVisibleBatch(keys []string, visible store.VisibleFunc) []*store.Version {
	return e.mem.ReadVisibleBatch(keys, visible)
}

// ReadVisibleBatchInto implements store.Engine: reads are always served by
// the memory stripes, so the caller-buffer fast path passes straight
// through.
func (e *Engine) ReadVisibleBatchInto(keys []string, visible store.VisibleFunc, out []*store.Version) []*store.Version {
	return e.mem.ReadVisibleBatchInto(keys, visible, out)
}

// Latest implements store.Engine.
func (e *Engine) Latest(key string) *store.Version { return e.mem.Latest(key) }

// GC implements store.Engine.
func (e *Engine) GC(oldest hlc.Timestamp) int { return e.GCStats(oldest).Removed }

// GCStats implements store.Engine: it prunes the memory stripes, then
// rewrites any shard log whose dropped-version count crossed the
// compaction threshold.
func (e *Engine) GCStats(oldest hlc.Timestamp) store.GCResult {
	res := e.mem.GCStats(oldest)
	if e.compat < 0 {
		return res
	}
	for si, n := range res.PerShard {
		if n == 0 {
			continue
		}
		sh := e.shards[si]
		sh.mu.Lock()
		sh.dropped += n
		compact := sh.dropped >= e.compat
		sh.mu.Unlock()
		if compact {
			e.compactShard(si)
		}
	}
	return res
}

// compactShard rewrites shard si's log from live memory state: encode the
// surviving versions into a temp file, fsync it, and atomically rename it
// over the old log. Appends to the shard are blocked for the duration.
func (e *Engine) compactShard(si int) {
	sh := e.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	snap := e.mem.ShardSnapshot(si)
	path := e.shardPath(si)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		e.recordErr(fmt.Errorf("wal: compact %s: %w", path, err))
		return
	}
	// Stream the rewrite through a throwaway encoder and a buffered
	// writer: sh.enc lives as long as the engine, and Reset keeps buffer
	// capacity, so encoding a whole shard into it would pin a
	// snapshot-sized allocation per shard forever.
	w := bufio.NewWriterSize(f, 1<<16)
	enc := wire.NewEncoder()
	var written int64
	for _, kv := range snap {
		enc.Reset()
		appendRecord(enc, kv.Key, kv.Version)
		if _, err = w.Write(enc.Bytes()); err != nil {
			break
		}
		written += int64(len(enc.Bytes()))
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		e.recordErr(fmt.Errorf("wal: compact %s: %w", path, err))
		_ = f.Close()
		_ = os.Remove(tmp)
		return
	}

	// f still refers to the inode that now lives at path (rename moved
	// it), positioned at its end — it becomes the append handle directly,
	// so there is no reopen step that could fail and leave appends going
	// to a dead file.
	_ = sh.f.Close()
	sh.f = f
	sh.size = written
	sh.dropped = 0
	sh.dirty = false
	sh.failed = false // the rewrite from live memory state repairs a frozen log
	// Persist the rename itself: without the directory sync a power loss
	// could revert the name to the pre-compaction inode, losing every
	// post-compaction append.
	if derr := syncDir(e.dir); derr != nil {
		e.recordErr(fmt.Errorf("wal: compact %s: sync dir: %w", path, derr))
	}
	e.metrics.mu.Lock()
	e.metrics.compactions++
	e.metrics.mu.Unlock()
}

// Keys implements store.Engine.
func (e *Engine) Keys() int { return e.mem.Keys() }

// Versions implements store.Engine.
func (e *Engine) Versions() int { return e.mem.Versions() }

// VersionsOf implements store.Engine.
func (e *Engine) VersionsOf(key string) int { return e.mem.VersionsOf(key) }

// NumShards implements store.Engine.
func (e *Engine) NumShards() int { return e.mem.NumShards() }

// ForEachKey implements store.Engine.
func (e *Engine) ForEachKey(fn func(key string)) { e.mem.ForEachKey(fn) }

// Metrics returns the engine's counters.
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// Dir returns the engine's data directory.
func (e *Engine) Dir() string { return e.dir }

// fsyncLoop flushes dirty shard logs on a timer (FsyncInterval policy).
func (e *Engine) fsyncLoop(every time.Duration) {
	defer e.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.syncDirty()
		case <-e.stop:
			return
		}
	}
}

func (e *Engine) syncDirty() {
	for _, sh := range e.shards {
		sh.mu.Lock()
		var f *os.File
		if sh.dirty {
			f = sh.f
			sh.dirty = false
		}
		sh.mu.Unlock()
		if f == nil {
			continue
		}
		// Sync outside the shard lock so appends are not stalled behind
		// the fsync this policy opted out of waiting for. An append racing
		// in re-sets dirty, keeping the one-interval loss bound. A
		// concurrent compaction may close f under us — harmless, since the
		// log it installs in f's place is synced before the swap.
		if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
			e.recordErr(fmt.Errorf("wal: sync: %w", err))
		}
	}
}

// Close implements store.Engine: it stops the sync loop, forces every log
// to stable storage (a clean shutdown is always fully durable, whatever
// the fsync policy), closes the files, and returns the first error any
// append, sync or compaction hit.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		err := e.err
		e.mu.Unlock()
		return err
	}
	e.closed = true
	e.mu.Unlock()

	close(e.stop)
	e.wg.Wait()
	for _, sh := range e.shards {
		sh.mu.Lock()
		if err := sh.f.Sync(); err != nil {
			e.recordErr(fmt.Errorf("wal: close sync: %w", err))
		}
		if err := sh.f.Close(); err != nil {
			e.recordErr(fmt.Errorf("wal: close: %w", err))
		}
		sh.mu.Unlock()
	}
	_ = e.lock.Close() // releases the directory lock
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
