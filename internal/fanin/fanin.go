// Package fanin implements the completion-counter fan-in for transactional
// reads. A coordinator fans a TxReadReq out as one SliceReq per remote
// partition; instead of parking a goroutine per in-flight read to collect
// the responses (a goroutine stack, channel allocations, and scheduler
// wakeups per read), each arriving SliceResp folds its items into the
// shared TxRead and decrements a counter — the LAST arrival assembles and
// returns the TxReadResp for the caller to send. No goroutine ever waits.
//
// Both protocol servers (core, cure) share this mechanism; it is what
// replaces their per-read goAsync goroutine.
package fanin

import (
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/transport"
	"wren/internal/wire"
)

// TxRead is the in-flight state of one transactional read. It is pooled:
// Start draws from the pool and the final Finish returns it.
type TxRead struct {
	from    transport.NodeID
	created time.Time

	// remaining counts outstanding contributions: one per registered
	// remote slice call plus one held by the coordinator itself (released
	// by its own Finish after all calls are registered, so a fast response
	// can never complete the read before registration is done).
	remaining atomic.Int32

	// mu guards resp while multiple SliceResps fold in concurrently. It is
	// per-read, never shared across requests — contention is bounded by
	// one read's own fan-out, not by server load.
	mu   sync.Mutex
	resp *wire.TxReadResp
}

var pool = sync.Pool{New: func() any { return new(TxRead) }}

// Fanout is the reusable per-read key grouping both protocol servers pool:
// Groups[p] collects the keys partition p owns, Touched lists the
// non-empty groups in first-touch order. It replaces the map-allocating
// per-partition grouping on the read hot path. Not safe for concurrent
// use; callers draw one from a pool per read.
type Fanout struct {
	Groups  [][]string
	Touched []int
}

// Reset prepares the scratch for a deployment with the given partition
// count, clearing only the groups the previous read touched.
func (f *Fanout) Reset(parts int) {
	if cap(f.Groups) < parts {
		f.Groups = make([][]string, parts)
	}
	f.Groups = f.Groups[:parts]
	for _, p := range f.Touched {
		f.Groups[p] = f.Groups[p][:0]
	}
	f.Touched = f.Touched[:0]
}

// Add appends key to partition p's group, recording first touches.
func (f *Fanout) Add(p int, key string) {
	if len(f.Groups[p]) == 0 {
		f.Touched = append(f.Touched, p)
	}
	f.Groups[p] = append(f.Groups[p], key)
}

// Start begins a fan-in for a read issued by client `from` under the
// client-visible request id reqID, expecting `calls` remote slice
// responses. The returned TxRead must be registered under each remote
// call's request id, then completed once with Finish by the coordinator.
func Start(from transport.NodeID, reqID uint64, calls int) *TxRead {
	r := pool.Get().(*TxRead)
	r.from = from
	r.created = time.Now()
	r.remaining.Store(int32(calls) + 1)
	r.resp = wire.GetTxReadResp()
	r.resp.ReqID = reqID
	return r
}

// Created returns when the fan-in started, for staleness sweeps.
func (r *TxRead) Created() time.Time { return r.created }

// From returns the client the fan-in answers, so staleness sweeps can
// release per-connection admission slots for reads that will never finish.
func (r *TxRead) From() transport.NodeID { return r.from }

// Items and SetItems expose the response's item buffer for direct,
// copy-free appends by the coordinator's local fast path. They are safe
// ONLY before the first remote call is registered: until then no other
// goroutine can reach the fan-in, so no lock is needed and no staging
// buffer or extra copy is paid.
func (r *TxRead) Items() []wire.Item { return r.resp.Items }

// SetItems stores the (possibly reallocated) buffer back. See Items.
func (r *TxRead) SetItems(items []wire.Item) { r.resp.Items = items }

// ChunkThreshold is the slice size at or above which Fold retains the
// arriving buffer by reference (as a TxReadResp chunk) instead of copying
// it item by item into the flat response. Small slices still copy: the
// per-chunk bookkeeping and the pool miss of a detached buffer cost more
// than a short memmove.
const ChunkThreshold = 64

// Fold merges one slice result into the response. Safe to call from
// concurrent response handlers.
//
// Large slices are folded without copying: the buffer is detached whole
// into the response's Chunks, and Fold returns true to tell the caller
// that ownership of items moved into the response — the caller must strip
// the slice from its pooled SliceResp (set Items = nil) before releasing
// the message, or the pool would hand the same backing array to two owners.
func (r *TxRead) Fold(items []wire.Item, blockedMicros int64) (stolen bool) {
	r.mu.Lock()
	if len(items) >= ChunkThreshold {
		r.resp.Chunks = append(r.resp.Chunks, items)
		stolen = true
	} else {
		r.resp.Items = append(r.resp.Items, items...)
	}
	if blockedMicros > r.resp.BlockedMicros {
		r.resp.BlockedMicros = blockedMicros
	}
	r.mu.Unlock()
	return stolen
}

// Finish releases one contribution. When it was the last, Finish returns
// the assembled response, its destination, and true — the caller must send
// the response (its ownership passes to the receiver) and must not touch r
// afterwards: the TxRead is already back in the pool.
func (r *TxRead) Finish() (*wire.TxReadResp, transport.NodeID, bool) {
	if r.remaining.Add(-1) != 0 {
		return nil, transport.NodeID{}, false
	}
	resp, to := r.resp, r.from
	r.resp = nil
	pool.Put(r)
	return resp, to, true
}
