package fanin

import (
	"sync"
	"testing"

	"wren/internal/transport"
	"wren/internal/wire"
)

func TestSingleContribution(t *testing.T) {
	from := transport.ClientID(0, 1)
	fi := Start(from, 99, 0)
	fi.Fold([]wire.Item{{Key: "k", Value: []byte("v")}}, 0)
	resp, to, last := fi.Finish()
	if !last {
		t.Fatal("sole Finish must complete the read")
	}
	if to != from || resp.ReqID != 99 || len(resp.Items) != 1 {
		t.Fatalf("resp = %+v to %v", resp, to)
	}
	wire.PutTxReadResp(resp)
}

func TestLastArrivalAssembles(t *testing.T) {
	const calls = 4
	fi := Start(transport.ClientID(0, 0), 7, calls)
	// Coordinator finishes first: response must wait for all remote calls.
	if _, _, last := fi.Finish(); last {
		t.Fatal("coordinator Finish completed before remote calls")
	}
	var wg sync.WaitGroup
	out := make(chan *wire.TxReadResp, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fi.Fold([]wire.Item{{Key: "k", TxID: uint64(i)}}, int64(i))
			if resp, _, last := fi.Finish(); last {
				out <- resp
			}
		}(i)
	}
	wg.Wait()
	close(out)
	var resps []*wire.TxReadResp
	for r := range out {
		resps = append(resps, r)
	}
	if len(resps) != 1 {
		t.Fatalf("exactly one contributor must assemble; got %d", len(resps))
	}
	resp := resps[0]
	if len(resp.Items) != calls {
		t.Fatalf("assembled %d items, want %d", len(resp.Items), calls)
	}
	if resp.BlockedMicros != calls-1 {
		t.Fatalf("BlockedMicros = %d, want max %d", resp.BlockedMicros, calls-1)
	}
	wire.PutTxReadResp(resp)
}

func TestPooledReuse(t *testing.T) {
	// A completed fan-in's TxRead returns to the pool; a subsequent Start
	// must hand out fresh state however the previous read ended.
	for i := 0; i < 100; i++ {
		fi := Start(transport.ClientID(0, 0), uint64(i), 1)
		fi.Fold([]wire.Item{{Key: "a"}}, 0)
		if _, _, last := fi.Finish(); last {
			t.Fatal("first Finish of two must not complete")
		}
		resp, _, last := fi.Finish()
		if !last {
			t.Fatal("second Finish must complete")
		}
		if resp.ReqID != uint64(i) || len(resp.Items) != 1 {
			t.Fatalf("iteration %d: stale pooled state: %+v", i, resp)
		}
		wire.PutTxReadResp(resp)
	}
}
