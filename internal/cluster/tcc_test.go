package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wren/internal/checker"
)

// tccHarness drives a cluster with checker-instrumented writers and
// readers, optionally under network-partition chaos, and verifies that the
// observed history is TCC-clean and that replicas converge.
type tccHarness struct {
	t       *testing.T
	cl      *Cluster
	chk     *checker.Checker
	allKeys []string
	byOwner map[string][]string
}

func newTCCHarness(t *testing.T, proto Protocol, dcs, parts int) *tccHarness {
	t.Helper()
	cfg := fastConfig(proto, dcs, parts)
	cfg.ClockSkew = time.Millisecond
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	h := &tccHarness{
		t:       t,
		cl:      cl,
		chk:     checker.New(),
		byOwner: make(map[string][]string),
	}
	// One writer session per DC, each owning a handful of keys.
	for dc := 0; dc < dcs; dc++ {
		owner := fmt.Sprintf("w%d", dc)
		for j := 0; j < 5; j++ {
			k := fmt.Sprintf("tcc-%d-%d", dc, j)
			h.byOwner[owner] = append(h.byOwner[owner], k)
			h.allKeys = append(h.allKeys, k)
		}
	}
	return h
}

// runWriter performs checker-instrumented write transactions (and
// occasional cross-owner reads, creating inter-session causal edges) until
// stop closes.
func (h *tccHarness) runWriter(dc int, stop <-chan struct{}, wg *sync.WaitGroup, errs chan<- error) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		owner := fmt.Sprintf("w%d", dc)
		own := h.byOwner[owner]
		client, err := h.cl.NewClient(dc, 0)
		if err != nil {
			errs <- err
			return
		}
		defer client.Close()
		rng := rand.New(rand.NewSource(int64(dc) + 42))
		for {
			select {
			case <-stop:
				return
			default:
			}

			// Occasionally read a random mix of keys to pick up causal
			// dependencies on other writers.
			if rng.Intn(4) == 0 {
				if err := h.snapshotRead(client, owner, rng); err != nil {
					errs <- err
					return
				}
			}

			// Write 1-3 of the session's own keys atomically.
			n := 1 + rng.Intn(3)
			keys := make([]string, 0, n)
			seen := map[string]bool{}
			for len(keys) < n {
				k := own[rng.Intn(len(own))]
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
			wt := h.chk.WriteTx(owner, keys)
			tx, err := client.Begin()
			if err != nil {
				errs <- err
				return
			}
			for k, v := range wt.Values() {
				if err := tx.Write(k, v); err != nil {
					errs <- err
					return
				}
			}
			if _, err := tx.Commit(); err != nil {
				errs <- err
				return
			}
			wt.Committed()
		}
	}()
}

// runReader performs checker-instrumented snapshot reads until stop closes.
func (h *tccHarness) runReader(dc, idx int, stop <-chan struct{}, wg *sync.WaitGroup, errs chan<- error) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		session := fmt.Sprintf("r%d-%d", dc, idx)
		client, err := h.cl.NewClient(dc, idx%h.cl.Config().NumPartitions)
		if err != nil {
			errs <- err
			return
		}
		defer client.Close()
		rng := rand.New(rand.NewSource(int64(dc*100+idx) + 7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := h.snapshotRead(client, session, rng); err != nil {
				errs <- err
				return
			}
		}
	}()
}

// snapshotRead reads a random subset of all keys in one transaction and
// feeds the observations to the checker.
func (h *tccHarness) snapshotRead(client Client, session string, rng *rand.Rand) error {
	n := 2 + rng.Intn(5)
	if n > len(h.allKeys) {
		n = len(h.allKeys)
	}
	keys := make([]string, 0, n)
	seen := map[string]bool{}
	for len(keys) < n {
		k := h.allKeys[rng.Intn(len(h.allKeys))]
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	tx, err := client.Begin()
	if err != nil {
		return err
	}
	got, err := tx.Read(keys...)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}
	rt := h.chk.ReadTx(session)
	for _, k := range keys {
		rt.Observe(k, got[k])
	}
	rt.Close()
	return nil
}

// verifyConvergence waits until every replica of every key agrees.
func (h *tccHarness) verifyConvergence(timeout time.Duration) {
	h.t.Helper()
	cfg := h.cl.Config()
	deadline := time.Now().Add(timeout)
	for {
		diverged := ""
		for _, key := range h.allKeys {
			p := partitionOf(key, cfg.NumPartitions)
			var want string
			for dc := 0; dc < cfg.NumDCs; dc++ {
				var got string
				if cfg.Protocol == Wren {
					if v := h.cl.WrenServer(dc, p).Store().Latest(key); v != nil {
						got = string(v.Value)
					}
				} else {
					if v := h.cl.CureServer(dc, p).Store().Latest(key); v != nil {
						got = string(v.Value)
					}
				}
				if dc == 0 {
					want = got
				} else if got != want {
					diverged = fmt.Sprintf("key %q: DC0=%q DC%d=%q", key, want, dc, got)
				}
			}
		}
		if diverged == "" {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("replicas did not converge: %s", diverged)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runTCCWorkload is the shared body of the conformance tests.
func runTCCWorkload(t *testing.T, proto Protocol, dcs, parts int, duration time.Duration, chaos bool) {
	h := newTCCHarness(t, proto, dcs, parts)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	for dc := 0; dc < dcs; dc++ {
		h.runWriter(dc, stop, &wg, errs)
		h.runReader(dc, 1, stop, &wg, errs)
		h.runReader(dc, 2, stop, &wg, errs)
	}

	if chaos {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(99))
			for {
				select {
				case <-stop:
					// Heal everything on exit.
					for a := 0; a < dcs; a++ {
						for b := a + 1; b < dcs; b++ {
							h.cl.Network().SetDCLinkDown(a, b, false)
						}
					}
					return
				default:
				}
				a, b := rng.Intn(dcs), rng.Intn(dcs)
				if a == b {
					continue
				}
				h.cl.Network().SetDCLinkDown(a, b, true)
				time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
				h.cl.Network().SetDCLinkDown(a, b, false)
				time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
			}
		}()
	}

	timer := time.NewTimer(duration)
	select {
	case err := <-errs:
		close(stop)
		wg.Wait()
		t.Fatalf("workload error: %v", err)
	case <-timer.C:
	}
	close(stop)
	wg.Wait()

	if err := h.chk.Err(); err != nil {
		t.Fatalf("TCC violations detected:\n%v", err)
	}
	h.verifyConvergence(15 * time.Second)
}

func TestTCCConformanceWren(t *testing.T) {
	runTCCWorkload(t, Wren, 2, 4, 1500*time.Millisecond, false)
}

func TestTCCConformanceCure(t *testing.T) {
	runTCCWorkload(t, Cure, 2, 4, 1200*time.Millisecond, false)
}

func TestTCCConformanceHCure(t *testing.T) {
	runTCCWorkload(t, HCure, 2, 4, 1200*time.Millisecond, false)
}

func TestTCCConformanceWrenSingleDC(t *testing.T) {
	runTCCWorkload(t, Wren, 1, 4, time.Second, false)
}

func TestTCCChaosWren(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	runTCCWorkload(t, Wren, 3, 2, 2500*time.Millisecond, true)
}

func TestTCCChaosCure(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	runTCCWorkload(t, Cure, 3, 2, 2*time.Second, true)
}
