package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestReadPathStress hammers the lock-free read path with concurrent
// transactional reads while commits, replication applies, BiST gossip and
// aggressive GC churn the same servers — on both storage engines and all
// three protocols. Run under -race in CI, it is the structural guard for
// the contention-free read path: the atomic stable-time publication,
// striped request maps, completion-counter fan-ins and pooled messages all
// get exercised against every writer-side code path at once.
func TestReadPathStress(t *testing.T) {
	variants := []struct {
		name    string
		proto   Protocol
		backend string
	}{
		{"wren-memory", Wren, "memory"},
		{"wren-wal", Wren, "wal"},
		{"wren-sst", Wren, "sst"},
		{"cure-memory", Cure, "memory"},
		{"hcure-wal", HCure, "wal"},
		{"hcure-sst", HCure, "sst"},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			stressReadPath(t, v.proto, v.backend)
		})
	}
}

func stressReadPath(t *testing.T, proto Protocol, backendName string) {
	cl, err := New(Config{
		Protocol:       proto,
		NumDCs:         2,
		NumPartitions:  2,
		InterDCLatency: 2 * time.Millisecond,
		ClockSkew:      500 * time.Microsecond,
		ApplyInterval:  time.Millisecond,
		GossipInterval: time.Millisecond,
		GCInterval:     5 * time.Millisecond, // aggressive: GC races every read
		StoreBackend:   backendName,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Key pool spread across both partitions.
	const numKeys = 32
	keys := make([]string, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("stress%04d", i)
	}
	seedClient, err := cl.NewClient(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := seedClient.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := tx.Write(k, []byte("seed0000")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	seedClient.Close()
	// Let the seed replicate so remote readers don't race pure absence.
	time.Sleep(50 * time.Millisecond)

	const (
		readers  = 3
		writers  = 2
		deleters = 1
		duration = 700 * time.Millisecond
	)
	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		readOps   atomic.Uint64
		writeOps  atomic.Uint64
		failures  atomic.Uint64
		badValues atomic.Uint64
	)
	fail := func(format string, args ...any) {
		if failures.Add(1) < 5 {
			t.Errorf(format, args...)
		}
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client, err := cl.NewClient(r%cl.Config().NumDCs, -1)
			if err != nil {
				fail("reader client: %v", err)
				return
			}
			defer client.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := client.Begin()
				if err != nil {
					fail("reader begin: %v", err)
					return
				}
				batch := []string{
					keys[i%numKeys], keys[(i+7)%numKeys],
					keys[(i+13)%numKeys], keys[(i+21)%numKeys],
				}
				vals, err := tx.Read(batch...)
				if err != nil {
					fail("read: %v", err)
					_ = tx.Abort()
					return
				}
				for k, v := range vals {
					// Every live value in this workload is exactly 8 bytes;
					// anything else means a torn or misrouted read.
					if len(v) != 8 {
						badValues.Add(1)
						fail("key %s: bad value %q", k, v)
					}
				}
				if _, err := tx.Commit(); err != nil {
					fail("reader commit: %v", err)
					return
				}
				readOps.Add(1)
				i++
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := cl.NewClient(w%cl.Config().NumDCs, -1)
			if err != nil {
				fail("writer client: %v", err)
				return
			}
			defer client.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := client.Begin()
				if err != nil {
					fail("writer begin: %v", err)
					return
				}
				val := []byte(fmt.Sprintf("w%02dv%04d", w, i%10000))
				_ = tx.Write(keys[(w*11+i)%numKeys], val)
				_ = tx.Write(keys[(w*11+i+5)%numKeys], val)
				if _, err := tx.Commit(); err != nil {
					fail("writer commit: %v", err)
					return
				}
				writeOps.Add(1)
				i++
			}
		}(w)
	}

	for d := 0; d < deleters; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := cl.NewClient(0, -1)
			if err != nil {
				fail("deleter client: %v", err)
				return
			}
			defer client.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Delete a key, then immediately rewrite it, so readers race
				// tombstones and GC races tombstone-only chains.
				k := keys[numKeys-1-(i%4)]
				tx, err := client.Begin()
				if err != nil {
					fail("deleter begin: %v", err)
					return
				}
				_ = tx.Delete(k)
				if _, err := tx.Commit(); err != nil {
					fail("delete commit: %v", err)
					return
				}
				tx, err = client.Begin()
				if err != nil {
					fail("deleter begin2: %v", err)
					return
				}
				_ = tx.Write(k, []byte("reborn00"))
				if _, err := tx.Commit(); err != nil {
					fail("rewrite commit: %v", err)
					return
				}
				i++
				time.Sleep(time.Millisecond)
			}
		}()
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d operations failed (%d bad values)", failures.Load(), badValues.Load())
	}
	if readOps.Load() == 0 || writeOps.Load() == 0 {
		t.Fatalf("stress made no progress: reads=%d writes=%d", readOps.Load(), writeOps.Load())
	}
	// No engine may have recorded a write-path failure under the churn: a
	// silently-frozen shard log would otherwise survive until Close.
	if err := cl.EnginesHealthy(); err != nil {
		t.Fatalf("storage engine degraded during stress: %v", err)
	}
	t.Logf("%s: %d read txs, %d write txs, GC racing every 5ms", cl.Config().Protocol, readOps.Load(), writeOps.Load())
}
