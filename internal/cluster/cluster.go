// Package cluster assembles complete deployments — M data centers times N
// partitions — of Wren, Cure or H-Cure servers over a simulated network,
// mirroring the paper's evaluation platform (§V-A): up to 5 replication
// sites, up to 16 partitions per site, clients collocated with their
// coordinator partition, and NTP-like clock skew between servers.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"wren/internal/core"
	"wren/internal/cure"
	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/transport/chaos"
	"wren/internal/transport/pool"
)

// Protocol selects the consistency protocol a cluster runs.
type Protocol int

// Supported protocols.
const (
	// Wren is the paper's contribution: CANToR + BDT + BiST.
	Wren Protocol = iota + 1
	// Cure is the state-of-the-art baseline with vector snapshots and
	// blocking reads on physical clocks.
	Cure
	// HCure is Cure with hybrid logical clocks (removes only the
	// clock-skew component of blocking).
	HCure
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Wren:
		return "Wren"
	case Cure:
		return "Cure"
	case HCure:
		return "H-Cure"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config describes a deployment.
type Config struct {
	// Protocol selects Wren, Cure or HCure.
	Protocol Protocol
	// NumDCs is the number of replication sites (the paper uses 3 and 5).
	NumDCs int
	// NumPartitions is the number of partitions per DC (4, 8 or 16).
	NumPartitions int
	// IntraDCLatency is the one-way latency between nodes in one DC.
	// Zero selects 100µs.
	IntraDCLatency time.Duration
	// InterDCLatency is the uniform one-way WAN latency. Ignored when
	// UseAWSLatencies is set. Zero selects 10ms.
	InterDCLatency time.Duration
	// UseAWSLatencies replaces the uniform WAN latency with the paper's
	// five-region EC2 matrix scaled by LatencyScale.
	UseAWSLatencies bool
	// LatencyScale scales the AWS matrix (1.0 = realistic). Zero means 1.0.
	LatencyScale float64
	// ClockSkew is the maximum absolute clock offset; each server draws an
	// offset uniformly from [-ClockSkew, +ClockSkew].
	ClockSkew time.Duration
	// ApplyInterval, GossipInterval, GCInterval are the protocol timers
	// (ΔR, ΔG, GC period). Zeros select the package defaults; a negative
	// GCInterval disables GC.
	ApplyInterval  time.Duration
	GossipInterval time.Duration
	GCInterval     time.Duration
	// RepairInterval paces each server's degraded-mode probation exit
	// (txlog repair + write readmission). Zero selects the replica-runtime
	// default; negative disables automatic repair, keeping a degraded
	// server read-only until restart — what degradation tests want.
	RepairInterval time.Duration
	// ClientFailover makes sessions returned by NewClient retry a commit
	// refused with a read-only error once, against a different healthy
	// coordinator partition, instead of surfacing the error immediately.
	ClientFailover bool
	// BlockingCommit enables the commit-blocks-until-stable ablation on
	// Wren servers (the "simple solution" the paper rejects in §III-B).
	BlockingCommit bool
	// GossipTree selects tree-based BiST aggregation on Wren servers
	// instead of all-to-all broadcast (paper §IV-B).
	GossipTree bool
	// StoreShards is the number of lock stripes in each server's version
	// store. Zero selects the store default (64); values are rounded up to
	// a power of two.
	StoreShards int
	// StoreBackend selects each server's storage engine: "" or "memory"
	// for the in-memory engine, "wal" for the durable per-shard log
	// engine, "sst" for the memtable+sorted-run engine. An empty value
	// can also be overridden by the WREN_STORE_BACKEND environment
	// variable, which is how CI runs the whole suite against each durable
	// backend.
	StoreBackend string
	// DataDir is the root directory durable backends write under; every
	// server gets its own dc<m>-p<n> subdirectory, so one root serves the
	// whole deployment. When the backend is "wal" and DataDir is empty, a
	// temporary directory is created and removed again on Close.
	DataDir string
	// FsyncPolicy is the WAL group-commit policy: "always", "interval"
	// (the "" default) or "never".
	FsyncPolicy string
	// DisableTxLog turns off the durable transaction-lifecycle log that
	// servers with a durable backend keep by default: commit records
	// written before acknowledgements, a persisted per-DC replication
	// cursor, and restart recovery of acknowledged-but-unapplied
	// transactions. Disabling it regresses the durability unit to the
	// applied transaction (used to benchmark the commit-logging cost).
	DisableTxLog bool
	// Seed makes clock-skew assignment reproducible.
	Seed int64
	// RequestTimeout bounds client round trips. Zero selects 10s.
	RequestTimeout time.Duration
	// Chaos interposes a fault-injecting wrapper between the deployment and
	// its simulated network; the Chaos() accessor then exposes partition
	// cuts and per-link loss/delay/duplication rules at runtime.
	Chaos bool
	// ChaosSeed seeds the chaos wrapper's fault decisions (reproducible
	// runs). Only meaningful with Chaos set.
	ChaosSeed int64
	// RetryAttempts is the client retry budget: timed-out idempotent
	// requests are retried this many extra times (Begin failing over to
	// alternate coordinators), and an unacknowledged commit is resolved by
	// up to this many 2PC termination probes instead of being resent. Zero
	// keeps sessions single-attempt.
	RetryAttempts int
	// RetryBackoff is the base client retry backoff (doubling, capped).
	// Zero selects the client default.
	RetryBackoff time.Duration
	// ClientPoolLinks multiplexes all of a DC's client sessions over a
	// shared connection pool with this many links instead of registering
	// one network endpoint per session: requests from many sessions
	// pipeline concurrently over the pool's links and responses are
	// demultiplexed by request id. Zero keeps the legacy
	// one-endpoint-per-session wiring.
	ClientPoolLinks int
	// MaxInflightPerConn bounds how many admitted requests one client
	// connection may have outstanding per server; excess requests are shed
	// with a BusyResp that clients treat as backpressure (delay + retry).
	// Zero selects the replica default; negative disables admission
	// control.
	MaxInflightPerConn int
	// DisableDecisionBatch turns off the fsync=always coordinator-decision
	// group commit on every server (benchmark ablation).
	DisableDecisionBatch bool
}

func (c *Config) fillDefaults() {
	if c.IntraDCLatency == 0 {
		c.IntraDCLatency = 100 * time.Microsecond
	}
	if c.InterDCLatency == 0 {
		c.InterDCLatency = 10 * time.Millisecond
	}
	if c.LatencyScale == 0 {
		c.LatencyScale = 1.0
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.StoreBackend == "" {
		c.StoreBackend = os.Getenv("WREN_STORE_BACKEND")
	}
	if c.FsyncPolicy == "" {
		c.FsyncPolicy = os.Getenv("WREN_FSYNC")
	}
}

// Tx is the protocol-independent transaction handle.
type Tx interface {
	// ID returns the coordinator-assigned transaction id.
	ID() uint64
	// Read returns the values of keys within the transaction snapshot.
	Read(keys ...string) (map[string][]byte, error)
	// Write buffers an update; it becomes visible atomically at commit.
	Write(key string, value []byte) error
	// Delete buffers a deletion; at commit it installs a tombstone that
	// hides every older version, and the key reads as absent.
	Delete(key string) error
	// Commit finishes the transaction and returns its commit timestamp
	// (zero for read-only transactions).
	Commit() (hlc.Timestamp, error)
	// Abort abandons the transaction.
	Abort() error
	// Blocked reports how long the transaction's reads were blocked
	// server-side (always zero for Wren).
	Blocked() time.Duration
	// Coordinator returns the coordinator partition the transaction ran on.
	Coordinator() int
}

// Client is the protocol-independent client session.
type Client interface {
	// Begin starts a transaction.
	Begin() (Tx, error)
	// Close ends the session.
	Close()
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config
	net *transport.Memory
	// chaosNet wraps net when cfg.Chaos is set; servers and clients are
	// registered on it so every message crosses the fault injector.
	chaosNet *chaos.Network

	wrenServers [][]*core.Server
	cureServers [][]*cure.Server

	// ephemeralDataDir is a temp dir created for a durable backend when the
	// caller supplied none; Close removes it.
	ephemeralDataDir string

	mu        sync.Mutex
	clientSeq int
	closed    bool
	// pools holds one lazily built client connection pool per DC when
	// Config.ClientPoolLinks is set; sessions bind to their DC's pool
	// instead of registering an endpoint of their own.
	pools []*pool.Pool
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	if cfg.NumDCs <= 0 || cfg.NumPartitions <= 0 {
		return nil, fmt.Errorf("cluster: invalid topology %dx%d", cfg.NumDCs, cfg.NumPartitions)
	}
	switch cfg.Protocol {
	case Wren, Cure, HCure:
	default:
		return nil, fmt.Errorf("cluster: unknown protocol %v", cfg.Protocol)
	}

	var latency transport.LatencyFunc
	if cfg.UseAWSLatencies {
		latency = transport.MatrixLatency(cfg.IntraDCLatency,
			transport.AWSLatencies(cfg.LatencyScale), cfg.InterDCLatency)
	} else {
		latency = transport.UniformLatency(cfg.IntraDCLatency, cfg.InterDCLatency)
	}
	net := transport.NewMemory(latency)
	var fabric transport.Network = net
	var chaosNet *chaos.Network
	if cfg.Chaos {
		chaosNet = chaos.New(net, cfg.ChaosSeed)
		fabric = chaosNet
	}

	var ephemeral string
	if cfg.StoreBackend != "" && cfg.StoreBackend != "memory" && cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "wren-data-*")
		if err != nil {
			fabric.Close()
			return nil, fmt.Errorf("cluster: temp data dir: %w", err)
		}
		cfg.DataDir = dir
		ephemeral = dir
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	skewFor := func() time.Duration {
		if cfg.ClockSkew <= 0 {
			return 0
		}
		span := cfg.ClockSkew.Microseconds()
		return time.Duration(rng.Int63n(2*span+1)-span) * time.Microsecond
	}

	c := &Cluster{cfg: cfg, net: net, chaosNet: chaosNet, ephemeralDataDir: ephemeral}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}
	for dc := 0; dc < cfg.NumDCs; dc++ {
		var wrenRow []*core.Server
		var cureRow []*cure.Server
		for p := 0; p < cfg.NumPartitions; p++ {
			src := hlc.OffsetSource{Base: hlc.SystemSource{}, Offset: skewFor()}
			switch cfg.Protocol {
			case Wren:
				srv, err := core.NewServer(core.ServerConfig{
					DC: dc, Partition: p,
					NumDCs: cfg.NumDCs, NumPartitions: cfg.NumPartitions,
					Network: fabric, ClockSource: src,
					ApplyInterval:  cfg.ApplyInterval,
					GossipInterval: cfg.GossipInterval,
					GCInterval:     cfg.GCInterval,
					RepairInterval: cfg.RepairInterval,
					BlockingCommit: cfg.BlockingCommit,
					GossipTree:     cfg.GossipTree,
					StoreShards:    cfg.StoreShards,
					StoreBackend:   cfg.StoreBackend,
					DataDir:        cfg.DataDir,
					FsyncPolicy:    cfg.FsyncPolicy,
					DisableTxLog:   cfg.DisableTxLog,

					MaxInflightPerConn:   cfg.MaxInflightPerConn,
					DisableDecisionBatch: cfg.DisableDecisionBatch,
				})
				if err != nil {
					c.wrenServers = append(c.wrenServers, wrenRow)
					return fail(err)
				}
				srv.Start()
				wrenRow = append(wrenRow, srv)
			case Cure, HCure:
				srv, err := cure.NewServer(cure.ServerConfig{
					DC: dc, Partition: p,
					NumDCs: cfg.NumDCs, NumPartitions: cfg.NumPartitions,
					Network: fabric, ClockSource: src,
					UseHLC:         cfg.Protocol == HCure,
					ApplyInterval:  cfg.ApplyInterval,
					GossipInterval: cfg.GossipInterval,
					GCInterval:     cfg.GCInterval,
					RepairInterval: cfg.RepairInterval,
					StoreShards:    cfg.StoreShards,
					StoreBackend:   cfg.StoreBackend,
					DataDir:        cfg.DataDir,
					FsyncPolicy:    cfg.FsyncPolicy,
					DisableTxLog:   cfg.DisableTxLog,

					MaxInflightPerConn:   cfg.MaxInflightPerConn,
					DisableDecisionBatch: cfg.DisableDecisionBatch,
				})
				if err != nil {
					c.cureServers = append(c.cureServers, cureRow)
					return fail(err)
				}
				srv.Start()
				cureRow = append(cureRow, srv)
			}
		}
		if wrenRow != nil {
			c.wrenServers = append(c.wrenServers, wrenRow)
		}
		if cureRow != nil {
			c.cureServers = append(c.cureServers, cureRow)
		}
	}
	return c, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Network exposes the underlying simulated network for byte accounting and
// partition injection.
func (c *Cluster) Network() *transport.Memory { return c.net }

// Chaos returns the fault-injection wrapper, or nil when the cluster was
// built without Config.Chaos. Tests use it to cut and heal DC links and to
// impose loss/delay/duplication rules while the deployment is running.
func (c *Cluster) Chaos() *chaos.Network { return c.chaosNet }

// fabric is the network deployments actually register on: the chaos
// wrapper when present, the raw simulated network otherwise.
func (c *Cluster) fabric() transport.Network {
	if c.chaosNet != nil {
		return c.chaosNet
	}
	return c.net
}

// poolNodeBase offsets pool-endpoint node indices far above per-session
// client indices, so pooled link ids can never collide with the ids of
// legacy unpooled sessions on the same fabric.
const poolNodeBase = 1 << 20

// poolForDC returns the DC's shared client connection pool, building it on
// first use. Caller holds c.mu.
func (c *Cluster) poolForDC(dc int) (*pool.Pool, error) {
	if c.pools == nil {
		c.pools = make([]*pool.Pool, c.cfg.NumDCs)
	}
	if c.pools[dc] != nil {
		return c.pools[dc], nil
	}
	eps := make([]pool.Endpoint, c.cfg.ClientPoolLinks)
	for i := range eps {
		eps[i] = pool.Endpoint{
			ID:  transport.ClientID(dc, poolNodeBase+i),
			Net: c.fabric(),
		}
	}
	p, err := pool.New(eps)
	if err != nil {
		return nil, err
	}
	c.pools[dc] = p
	return p, nil
}

// NewClient opens a client session in the given DC. A non-negative
// coordinator fixes the coordinator partition (the paper collocates each
// client with one partition); a negative value picks a random coordinator
// per transaction. With Config.ClientPoolLinks set, the session does not
// get a network endpoint of its own: it binds to one link of the DC's
// shared connection pool and its requests pipeline there alongside every
// other session's.
func (c *Cluster) NewClient(dc, coordinator int) (Client, error) {
	if dc < 0 || dc >= c.cfg.NumDCs {
		return nil, fmt.Errorf("cluster: DC %d out of range", dc)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: closed")
	}
	c.clientSeq++
	idx := c.clientSeq
	var conn *pool.Conn
	if c.cfg.ClientPoolLinks > 0 {
		p, err := c.poolForDC(dc)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		conn = p.Bind()
	}
	c.mu.Unlock()

	var sess session
	switch c.cfg.Protocol {
	case Wren:
		cfg := core.ClientConfig{
			DC: dc, ClientIndex: idx,
			NumPartitions:        c.cfg.NumPartitions,
			Network:              c.fabric(),
			CoordinatorPartition: coordinator,
			RequestTimeout:       c.cfg.RequestTimeout,
			Retry: core.RetryPolicy{
				Attempts: c.cfg.RetryAttempts,
				Backoff:  c.cfg.RetryBackoff,
			},
		}
		if conn != nil {
			cfg.Conn = conn
		}
		cl, err := core.NewClient(cfg)
		if err != nil {
			return nil, err
		}
		sess = wrenClient{cl}
	default:
		cfg := cure.ClientConfig{
			DC: dc, ClientIndex: idx,
			NumDCs:               c.cfg.NumDCs,
			NumPartitions:        c.cfg.NumPartitions,
			Network:              c.fabric(),
			CoordinatorPartition: coordinator,
			RequestTimeout:       c.cfg.RequestTimeout,
			Retry: cure.RetryPolicy{
				Attempts: c.cfg.RetryAttempts,
				Backoff:  c.cfg.RetryBackoff,
			},
		}
		if conn != nil {
			cfg.Conn = conn
		}
		cl, err := cure.NewClient(cfg)
		if err != nil {
			return nil, err
		}
		sess = cureClient{cl}
	}
	if c.cfg.ClientFailover {
		return &failoverClient{sess: sess, numPartitions: c.cfg.NumPartitions}, nil
	}
	return sess, nil
}

// ClientPool returns the DC's shared connection pool for stats inspection,
// or nil when the cluster runs unpooled or no session has bound yet.
func (c *Cluster) ClientPool(dc int) *pool.Pool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pools == nil {
		return nil
	}
	return c.pools[dc]
}

// WrenServer returns the Wren server at (dc, partition); nil for other
// protocols.
func (c *Cluster) WrenServer(dc, partition int) *core.Server {
	if c.cfg.Protocol != Wren {
		return nil
	}
	return c.wrenServers[dc][partition]
}

// CureServer returns the Cure server at (dc, partition); nil for Wren.
func (c *Cluster) CureServer(dc, partition int) *cure.Server {
	if c.cfg.Protocol == Wren {
		return nil
	}
	return c.cureServers[dc][partition]
}

// LocalUpdateVisible reports whether an update committed in this DC at
// timestamp ct has become visible to new transactions started in the same
// DC at partition p — the quantity behind the paper's Figure 7b "local
// visibility" CDF.
func (c *Cluster) LocalUpdateVisible(dc, p int, ct hlc.Timestamp) bool {
	switch c.cfg.Protocol {
	case Wren:
		// Visible once inside the local stable snapshot.
		lst, _ := c.wrenServers[dc][p].StableTimes()
		return lst >= ct
	default:
		// Visible as soon as the origin partition has applied it: Cure
		// snapshots use the coordinator's current clock as local entry.
		return c.cureServers[dc][p].LocalVersionClock() >= ct
	}
}

// RemoteUpdateVisible reports whether an update committed in srcDC at ct is
// visible to new transactions in dc (≠ srcDC) at partition p.
func (c *Cluster) RemoteUpdateVisible(dc, p, srcDC int, ct hlc.Timestamp) bool {
	switch c.cfg.Protocol {
	case Wren:
		// Remote updates are visible once stable: RST has passed their
		// commit time (BiST aggregates all remote DCs into one scalar).
		_, rst := c.wrenServers[dc][p].StableTimes()
		return rst >= ct
	default:
		// Cure tracks per-DC stability: the stable-vector entry for the
		// source DC must pass the commit time.
		gsv := c.cureServers[dc][p].StableVector()
		return gsv[srcDC] >= ct
	}
}

// EnginesHealthy returns the first storage-engine write-path failure any
// server in the deployment has recorded, or nil while every engine is
// fully healthy. Durable backends keep acknowledging from memory after a
// log or flush failure, so benchmarks and tests use this to detect a
// silently degraded shard log instead of discovering it at shutdown.
func (c *Cluster) EnginesHealthy() error {
	for dc, row := range c.wrenServers {
		for p, s := range row {
			if err := s.EngineHealthy(); err != nil {
				return fmt.Errorf("dc%d/p%d: %w", dc, p, err)
			}
		}
	}
	for dc, row := range c.cureServers {
		for p, s := range row {
			if err := s.EngineHealthy(); err != nil {
				return fmt.Errorf("dc%d/p%d: %w", dc, p, err)
			}
		}
	}
	return nil
}

// Healthy returns the first write-path durability failure — storage engine
// or transaction log — any server in the deployment has recorded, or nil
// while every server is fully healthy. Unlike EnginesHealthy this covers
// the whole durable write path; a non-nil result means at least one server
// has shed into read-only admission.
func (c *Cluster) Healthy() error {
	for dc, row := range c.wrenServers {
		for p, s := range row {
			if err := s.Healthy(); err != nil {
				return fmt.Errorf("dc%d/p%d: %w", dc, p, err)
			}
		}
	}
	for dc, row := range c.cureServers {
		for p, s := range row {
			if err := s.Healthy(); err != nil {
				return fmt.Errorf("dc%d/p%d: %w", dc, p, err)
			}
		}
	}
	return nil
}

// ShedRequests sums, across every server, the requests refused at
// per-connection admission control (each answered with a BusyResp that the
// client retried after backoff). Benchmarks report it so shedding under
// overload is visible rather than silently folded into latency.
func (c *Cluster) ShedRequests() uint64 {
	var total uint64
	for _, row := range c.wrenServers {
		for _, s := range row {
			total += s.ShedRequests()
		}
	}
	for _, row := range c.cureServers {
		for _, s := range row {
			total += s.ShedRequests()
		}
	}
	return total
}

// CommittedTxCount sums committed-transaction counters across all servers.
func (c *Cluster) CommittedTxCount() uint64 {
	var total uint64
	switch c.cfg.Protocol {
	case Wren:
		for _, row := range c.wrenServers {
			for _, s := range row {
				total += s.Metrics().TxCommitted.Load()
			}
		}
	default:
		for _, row := range c.cureServers {
			for _, s := range row {
				total += s.Metrics().TxCommitted.Load()
			}
		}
	}
	return total
}

// Close stops every server and the network, and removes the data
// directory if the cluster created it itself.
func (c *Cluster) Close() { c.stop(false) }

// Kill hard-stops the deployment, skipping every shutdown courtesy: no
// final apply tick, no commit-list flush, no replies to parked readers —
// the closest an in-process cluster gets to SIGKILL. Recovery tests use it
// with an explicit DataDir to prove that a restarted cluster serves every
// ACKNOWLEDGED transaction from its transaction logs and reconverges its
// DCs from the replication cursors. In-flight messages (including queued
// inter-DC Replicate traffic) die with the network. An ephemeral data
// directory is still removed — nothing could ever reopen it.
func (c *Cluster) Kill() { c.stop(true) }

func (c *Cluster) stop(kill bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()

	var wg sync.WaitGroup
	for _, row := range c.wrenServers {
		for _, s := range row {
			wg.Add(1)
			go func(s *core.Server) {
				defer wg.Done()
				if kill {
					s.Kill()
				} else {
					s.Stop()
				}
			}(s)
		}
	}
	for _, row := range c.cureServers {
		for _, s := range row {
			wg.Add(1)
			go func(s *cure.Server) {
				defer wg.Done()
				if kill {
					s.Kill()
				} else {
					s.Stop()
				}
			}(s)
		}
	}
	wg.Wait()
	for _, p := range c.pools {
		if p != nil {
			p.Close()
		}
	}
	// Closing the chaos wrapper drains its links and closes the inner
	// simulated network.
	c.fabric().Close()
	if c.ephemeralDataDir != "" {
		_ = os.RemoveAll(c.ephemeralDataDir)
	}
}

// session is the protocol-side surface the failover wrapper needs beyond
// the public Client interface: explicit-coordinator begins, health probes,
// and read-only error detection.
type session interface {
	Client
	beginAt(coordinator int) (Tx, error)
	health(partition int) (readOnly bool, detail string, err error)
	isReadOnly(err error) bool
	// isAborted reports a commit that definitely did not land and whose
	// transaction id the coordinator has fenced — the other replay-safe
	// refusal besides read-only admission.
	isAborted(err error) bool
}

// wrenClient adapts *core.Client to the Client interface.
type wrenClient struct{ c *core.Client }

func (w wrenClient) Begin() (Tx, error) {
	tx, err := w.c.Begin()
	if err != nil {
		return nil, err
	}
	return tx, nil
}

func (w wrenClient) beginAt(coordinator int) (Tx, error) {
	tx, err := w.c.BeginAt(coordinator)
	if err != nil {
		return nil, err
	}
	return tx, nil
}

func (w wrenClient) health(partition int) (bool, string, error) { return w.c.Health(partition) }

func (w wrenClient) isReadOnly(err error) bool { return errors.Is(err, core.ErrReadOnly) }

func (w wrenClient) isAborted(err error) bool { return errors.Is(err, core.ErrAborted) }

func (w wrenClient) Close() { w.c.Close() }

// cureClient adapts *cure.Client to the Client interface.
type cureClient struct{ c *cure.Client }

func (cc cureClient) Begin() (Tx, error) {
	tx, err := cc.c.Begin()
	if err != nil {
		return nil, err
	}
	return tx, nil
}

func (cc cureClient) beginAt(coordinator int) (Tx, error) {
	tx, err := cc.c.BeginAt(coordinator)
	if err != nil {
		return nil, err
	}
	return tx, nil
}

func (cc cureClient) health(partition int) (bool, string, error) { return cc.c.Health(partition) }

func (cc cureClient) isReadOnly(err error) bool { return errors.Is(err, cure.ErrReadOnly) }

func (cc cureClient) isAborted(err error) bool { return errors.Is(err, cure.ErrAborted) }

func (cc cureClient) Close() { cc.c.Close() }

// failoverClient wraps a session so that a commit refused with a read-only
// error is retried ONCE against a different healthy coordinator partition
// instead of surfacing the refusal immediately. The refusal means the
// transaction did not commit anywhere, so replaying the buffered write set
// through a fresh transaction on the same session is safe — and the
// session's causal state (Wren's hwt and write cache, Cure's dependency
// vector) guarantees the retried commit still lands strictly after
// everything the session has observed.
type failoverClient struct {
	sess          session
	numPartitions int
}

func (f *failoverClient) Begin() (Tx, error) {
	tx, err := f.sess.Begin()
	if err != nil {
		return nil, err
	}
	return &failoverTx{Tx: tx, f: f}, nil
}

func (f *failoverClient) Close() { f.sess.Close() }

// writeOp is one buffered mutation, recorded in arrival order so a replay
// preserves last-write-wins within the transaction.
type writeOp struct {
	key   string
	value []byte
	del   bool
}

// failoverTx records the transaction's mutations so a refused commit can
// be replayed on a different coordinator.
type failoverTx struct {
	Tx
	f      *failoverClient
	writes []writeOp
}

func (t *failoverTx) Write(key string, value []byte) error {
	if err := t.Tx.Write(key, value); err != nil {
		return err
	}
	t.writes = append(t.writes, writeOp{key: key, value: value})
	return nil
}

func (t *failoverTx) Delete(key string) error {
	if err := t.Tx.Delete(key); err != nil {
		return err
	}
	t.writes = append(t.writes, writeOp{key: key, del: true})
	return nil
}

func (t *failoverTx) Commit() (hlc.Timestamp, error) {
	ct, err := t.Tx.Commit()
	if err == nil {
		return ct, err
	}
	failed := t.Tx.Coordinator()
	alt := -1
	switch {
	case t.f.sess.isReadOnly(err):
		// The refused coordinator is degraded; probe the remaining
		// partitions for a healthy one and replay there. If none answers
		// healthy, the original refusal stands.
		for p := 0; p < t.f.numPartitions; p++ {
			if p == failed {
				continue
			}
			if ro, _, herr := t.f.sess.health(p); herr == nil && !ro {
				alt = p
				break
			}
		}
	case t.f.sess.isAborted(err):
		// The commit is fenced: it can never land, so replaying is safe.
		// The coordinator may merely be unreachable rather than unhealthy,
		// so skip the health hunt and go straight to the next partition —
		// the session's own retry policy keeps failing over from there.
		alt = (failed + 1) % t.f.numPartitions
	default:
		return ct, err
	}
	if alt < 0 || alt == failed {
		return 0, err
	}
	retry, berr := t.f.sess.beginAt(alt)
	if berr != nil {
		return 0, err
	}
	for _, w := range t.writes {
		var werr error
		if w.del {
			werr = retry.Delete(w.key)
		} else {
			werr = retry.Write(w.key, w.value)
		}
		if werr != nil {
			_ = retry.Abort()
			return 0, err
		}
	}
	// A second refusal (or any other failure) surfaces directly: the
	// failover retries once, it does not hunt.
	return retry.Commit()
}

var (
	_ Tx = (*core.Tx)(nil)
	_ Tx = (*cure.Tx)(nil)
)
