package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"wren/internal/core"
	"wren/internal/cure"
	"wren/internal/txlog"
)

// TestLifecycleConformance runs every transaction-lifecycle scenario over
// the full protocol × durable-backend matrix. The scenarios exercise the
// shared replica runtime (internal/replica) end to end — crash-torture of
// the commit-record log, replication-cursor resend, health-driven
// read-only admission, the probation readmit path, and client-side
// commit failover — so a regression in the protocol-agnostic core, or in
// either protocol's wiring onto it, fails here under a name that says
// which protocol, backend and lifecycle stage broke.
func TestLifecycleConformance(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T, proto Protocol, backend string)
	}{
		// A kill between the commit ACK and the apply tick must lose
		// nothing: recovery replays the commit-record log.
		{"crash-between-ack-and-apply", testCrashBetweenAckAndApply},
		// A kill after local apply but before Replicate traffic lands
		// must reconverge from the persisted replication cursors.
		{"crash-before-replicate", testCrashBeforeReplicate},
		// A degraded transaction log sheds the server into read-only
		// admission: writes refused, reads still served.
		{"readonly-admission", testReadOnlyRefusal},
		// With automatic repair enabled, a degraded server exits
		// probation and readmits writes without a restart.
		{"probation-readmit", testProbationReadmit},
		// With client failover enabled, a commit refused by a degraded
		// coordinator lands through a healthy one instead.
		{"failover-commit", testFailoverCommit},
	}
	for _, proto := range []Protocol{Wren, Cure, HCure} {
		for _, backend := range []string{"wal", "sst"} {
			for _, sc := range scenarios {
				proto, backend, sc := proto, backend, sc
				t.Run(fmt.Sprintf("%s/%s/%s", proto, backend, sc.name), func(t *testing.T) {
					sc.run(t, proto, backend)
				})
			}
		}
	}
}

// lifecycleServer is the per-server surface the degradation scenarios
// need; both *core.Server and *cure.Server satisfy it.
type lifecycleServer interface {
	TxLog() *txlog.Log
	ReadOnly() bool
	Healthy() error
}

func lifecycleServerAt(cl *Cluster, dc, p int) lifecycleServer {
	if s := cl.WrenServer(dc, p); s != nil {
		return s
	}
	return cl.CureServer(dc, p)
}

// isReadOnlyErr matches either protocol's typed read-only refusal.
func isReadOnlyErr(err error) bool {
	return errors.Is(err, core.ErrReadOnly) || errors.Is(err, cure.ErrReadOnly)
}

// keyOwnedBy finds a key the given partition owns, with a prefix unique
// enough that parallel subtests never collide in a shared store.
func keyOwnedBy(prefix string, p, parts int) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s-%d", prefix, i)
		if partitionOf(k, parts) == p {
			return k
		}
	}
}

func commitVia(t *testing.T, client Client, kvs map[string]string) error {
	t.Helper()
	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range kvs {
		if err := tx.Write(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	_, err = tx.Commit()
	return err
}

// testReadOnlyRefusal is the backend-parameterized core of the admission
// story (TestReadOnlyAdmission covers the wire health probe in depth):
// degrading one partition's transaction log refuses writes through it as
// coordinator and as 2PC cohort, while healthy partitions keep committing
// and reads keep flowing.
func testReadOnlyRefusal(t *testing.T, proto Protocol, backend string) {
	cfg := crashConfig(proto, 1, t.TempDir(), backend)
	cfg.RepairInterval = -1 // pin the degradation: no automatic readmit
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	prefix := fmt.Sprintf("conform-ro-%s-%s", proto, backend)
	k0 := keyOwnedBy(prefix+"-a", 0, cfg.NumPartitions)
	k1 := keyOwnedBy(prefix+"-b", 1, cfg.NumPartitions)

	client0, err := cl.NewClient(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client0.Close()
	client1, err := cl.NewClient(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client1.Close()

	if err := commitVia(t, client0, map[string]string{k0: "v", k1: "v"}); err != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}

	lifecycleServerAt(cl, 0, 1).TxLog().InjectFailure(errors.New("injected log failure"))
	if !lifecycleServerAt(cl, 0, 1).ReadOnly() || lifecycleServerAt(cl, 0, 0).ReadOnly() {
		t.Fatal("ReadOnly flags wrong after injection")
	}
	if cl.Healthy() == nil {
		t.Fatal("Cluster.Healthy must surface the injected failure")
	}

	// Refused through the degraded partition as COHORT (coordinator 0)...
	if err := commitVia(t, client0, map[string]string{k1: "w"}); !isReadOnlyErr(err) {
		t.Fatalf("cohort-degraded commit: got %v, want read-only refusal", err)
	}
	// ...and as COORDINATOR, even for a write set it does not own.
	if err := commitVia(t, client1, map[string]string{k0: "w"}); !isReadOnlyErr(err) {
		t.Fatalf("coordinator-degraded commit: got %v, want read-only refusal", err)
	}
	// Healthy partitions keep committing.
	if err := commitVia(t, client0, map[string]string{k0: "w2"}); err != nil {
		t.Fatalf("healthy-partition commit refused: %v", err)
	}
	// Reads — including of the degraded partition's keys — keep flowing.
	rtx, err := client0.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rtx.Read(k0, k1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtx.Commit(); err != nil {
		t.Fatalf("read-only commit must be admitted in degraded mode: %v", err)
	}
	if string(got[k1]) != "v" {
		t.Fatalf("read of degraded partition's key = %q, want %q", got[k1], "v")
	}
}

// testProbationReadmit proves the degraded-mode probation exit: with a
// short RepairInterval the runtime's lifecycle loop repairs the log
// (compaction rewrite + probe append) and readmits writes without a
// restart — the satellite behaviour layered on txlog.Repair.
func testProbationReadmit(t *testing.T, proto Protocol, backend string) {
	cfg := crashConfig(proto, 1, t.TempDir(), backend)
	// Retried on every lifecycle tick (1s cadence) once degraded.
	cfg.RepairInterval = 50 * time.Millisecond
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	prefix := fmt.Sprintf("conform-probation-%s-%s", proto, backend)
	k1 := keyOwnedBy(prefix, 1, cfg.NumPartitions)
	client, err := cl.NewClient(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := commitVia(t, client, map[string]string{k1: "before"}); err != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}

	srv := lifecycleServerAt(cl, 0, 1)
	srv.TxLog().InjectFailure(errors.New("injected log failure"))
	if !srv.ReadOnly() {
		t.Fatal("server not read-only after injection")
	}

	// The lifecycle loop must repair the log and readmit writes. The
	// injected error is synthetic — the log file underneath is intact —
	// so the compaction rewrite and probe append succeed on the first
	// attempt after the next tick.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if !srv.ReadOnly() {
			if err := commitVia(t, client, map[string]string{k1: "after"}); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never readmitted writes: ReadOnly=%v Healthy=%v",
				srv.ReadOnly(), srv.Healthy())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cl.Healthy(); err != nil {
		t.Fatalf("cluster still degraded after readmit: %v", err)
	}
	// The readmitted write is really there.
	rtx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rtx.Read(k1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtx.Commit(); err != nil {
		t.Fatal(err)
	}
	if string(got[k1]) != "after" {
		t.Fatalf("post-readmit read = %q, want %q", got[k1], "after")
	}
}

// testFailoverCommit proves the client-side failover satellite: with
// ClientFailover enabled, a commit refused by a degraded coordinator is
// replayed once through a healthy partition and succeeds, carrying the
// session's causal state with it.
func testFailoverCommit(t *testing.T, proto Protocol, backend string) {
	cfg := crashConfig(proto, 1, t.TempDir(), backend)
	cfg.RepairInterval = -1 // the failed coordinator must STAY failed
	cfg.ClientFailover = true
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	prefix := fmt.Sprintf("conform-failover-%s-%s", proto, backend)
	// Owned by partition 1 so the replayed 2PC avoids the degraded log.
	k1 := keyOwnedBy(prefix, 1, cfg.NumPartitions)
	client, err := cl.NewClient(0, 0) // collocated with the soon-degraded coordinator
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := commitVia(t, client, map[string]string{k1: "before"}); err != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}

	// Degrade the COORDINATOR the session is collocated with.
	lifecycleServerAt(cl, 0, 0).TxLog().InjectFailure(errors.New("injected log failure"))
	if !lifecycleServerAt(cl, 0, 0).ReadOnly() {
		t.Fatal("coordinator not read-only after injection")
	}

	// The commit must land anyway: the session detects the read-only
	// refusal, probes for a healthy coordinator and replays there.
	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(k1, []byte("after")); err != nil {
		t.Fatal(err)
	}
	ct, err := tx.Commit()
	if err != nil {
		t.Fatalf("failover commit refused: %v", err)
	}
	if ct == 0 {
		t.Fatal("failover commit returned a zero commit timestamp")
	}
	// The coordinator is still degraded — the commit went around it, not
	// through a silent repair.
	if !lifecycleServerAt(cl, 0, 0).ReadOnly() {
		t.Fatal("degraded coordinator unexpectedly readmitted writes")
	}

	// Read-your-writes through the same session sees the failed-over
	// commit (served from the session's causal state even before the
	// origin snapshot catches up).
	rtx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rtx.Read(k1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtx.Commit(); err != nil {
		t.Fatal(err)
	}
	if string(got[k1]) != "after" {
		t.Fatalf("post-failover read = %q, want %q", got[k1], "after")
	}
}
