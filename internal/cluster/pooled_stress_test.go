package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wren/internal/core"
	"wren/internal/transport/chaos"
)

// TestPooledPipeliningStress funnels many sessions through a SINGLE pooled
// link under chaos drops and duplicates, with a deliberately small
// per-connection admission bound so the server sheds under the pile-up.
// Every session writes values carrying its own identity and immediately
// reads them back, so the test catches the two ways a multiplexed
// connection can go wrong:
//
//   - cross-session leakage: a response (or chaos duplicate) delivered to
//     the wrong session would surface another session's value — the
//     session-id check fails;
//   - lost ordering or lost requests: within one session a commit
//     overtaking its own reads, or a shed request silently vanishing,
//     breaks read-your-writes — the monotone iteration check fails or the
//     run deadlocks instead of finishing.
//
// Run with -race: the demux path (striped pending map, recycled waiter
// channels, admission counters) is exactly what the detector should see
// hammered.
func TestPooledPipeliningStress(t *testing.T) {
	cl, err := New(Config{
		Protocol:           Wren,
		NumDCs:             1,
		NumPartitions:      2,
		IntraDCLatency:     50 * time.Microsecond,
		ClientPoolLinks:    1, // every session pipelines over ONE link
		MaxInflightPerConn: 4, // force admission sheds
		RequestTimeout:     2 * time.Second,
		RetryAttempts:      10,
		RetryBackoff:       time.Millisecond,
		Chaos:              true,
		ChaosSeed:          7,
		Seed:               7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Chaos().SetClientRule(0, chaos.Rule{DropProb: 0.02, DupProb: 0.05})

	const sessions = 12
	const iters = 25
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			client, err := cl.NewClient(0, s%2)
			if err != nil {
				errCh <- err
				return
			}
			defer client.Close()
			key := fmt.Sprintf("stress-%d", s)
			lastCommitted := -1
			for i := 0; i < iters; i++ {
				val := fmt.Sprintf("s%d-i%d", s, i)
				tx, err := client.Begin()
				if err != nil {
					errCh <- fmt.Errorf("session %d: begin: %w", s, err)
					return
				}
				got, err := tx.Read(key)
				if err != nil {
					errCh <- fmt.Errorf("session %d: read: %w", s, err)
					return
				}
				if raw, okRead := got[key]; okRead && raw != nil {
					sid, idx, perr := parseStressValue(string(raw))
					if perr != nil {
						errCh <- fmt.Errorf("session %d: %w", s, perr)
						return
					}
					if sid != s {
						errCh <- fmt.Errorf("session %d read session %d's value %q — response leaked across sessions", s, sid, raw)
						return
					}
					if idx < lastCommitted {
						errCh <- fmt.Errorf("session %d: read own write %d after committing %d — lost read-your-writes", s, idx, lastCommitted)
						return
					}
				} else if lastCommitted >= 0 {
					errCh <- fmt.Errorf("session %d: own committed write vanished (last committed iteration %d)", s, lastCommitted)
					return
				}
				if err := tx.Write(key, []byte(val)); err != nil {
					errCh <- fmt.Errorf("session %d: write: %w", s, err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					// A fenced abort is the retry machinery resolving a
					// lost commit response: the transaction provably did
					// NOT land, so the session continues without counting
					// the iteration. Anything else is a real failure.
					if errors.Is(err, core.ErrAborted) {
						continue
					}
					errCh <- fmt.Errorf("session %d: commit: %w", s, err)
					return
				}
				lastCommitted = i
			}
		}(s)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("stress run wedged: some request never resolved")
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// The pool must drain completely: an entry left in the pending map is
	// a request that never resolved.
	if p := cl.ClientPool(0); p != nil {
		if n := p.Pending(); n != 0 {
			t.Fatalf("pool leaks %d pending entries after drain", n)
		}
		t.Logf("pool stats: %+v, server sheds: %d, chaos: %+v",
			p.Stats(), cl.ShedRequests(), cl.Chaos().Stats())
	} else {
		t.Fatal("cluster built no pool despite ClientPoolLinks=1")
	}
}

func parseStressValue(v string) (session, iter int, err error) {
	var rest string
	var ok bool
	if rest, ok = strings.CutPrefix(v, "s"); !ok {
		return 0, 0, fmt.Errorf("malformed stress value %q", v)
	}
	sid, idx, ok := strings.Cut(rest, "-i")
	if !ok {
		return 0, 0, fmt.Errorf("malformed stress value %q", v)
	}
	if session, err = strconv.Atoi(sid); err != nil {
		return 0, 0, fmt.Errorf("malformed stress value %q", v)
	}
	if iter, err = strconv.Atoi(idx); err != nil {
		return 0, 0, fmt.Errorf("malformed stress value %q", v)
	}
	return session, iter, nil
}
