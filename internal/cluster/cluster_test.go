package cluster

import (
	"fmt"
	"testing"
	"time"
)

func fastConfig(p Protocol, dcs, parts int) Config {
	return Config{
		Protocol:       p,
		NumDCs:         dcs,
		NumPartitions:  parts,
		InterDCLatency: 3 * time.Millisecond,
		ApplyInterval:  time.Millisecond,
		GossipInterval: time.Millisecond,
		GCInterval:     -1,
		RequestTimeout: 5 * time.Second,
	}
}

func TestClusterLifecycleAllProtocols(t *testing.T) {
	for _, proto := range []Protocol{Wren, Cure, HCure} {
		t.Run(proto.String(), func(t *testing.T) {
			cl, err := New(fastConfig(proto, 2, 2))
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			c, err := cl.NewClient(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			tx, err := c.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Write("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			ct, err := tx.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if ct == 0 {
				t.Fatal("commit timestamp should be nonzero for a write tx")
			}

			// Read back (may be served from cache in Wren, or block
			// briefly in Cure).
			tx2, err := c.Begin()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tx2.Read("k")
			if err != nil {
				t.Fatal(err)
			}
			if string(got["k"]) != "v" {
				t.Fatalf("read back %q", got["k"])
			}
			if _, err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Config{Protocol: Wren, NumDCs: 0, NumPartitions: 1}); err == nil {
		t.Error("zero DCs should be rejected")
	}
	if _, err := New(Config{Protocol: Protocol(99), NumDCs: 1, NumPartitions: 1}); err == nil {
		t.Error("unknown protocol should be rejected")
	}
	cl, err := New(fastConfig(Wren, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.NewClient(5, 0); err == nil {
		t.Error("out-of-range DC should be rejected")
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	cl, err := New(fastConfig(Wren, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	cl.Close()
	if _, err := cl.NewClient(0, 0); err == nil {
		t.Error("NewClient after Close should fail")
	}
}

func TestVisibilityProbesAdvance(t *testing.T) {
	for _, proto := range []Protocol{Wren, Cure} {
		t.Run(proto.String(), func(t *testing.T) {
			cl, err := New(fastConfig(proto, 2, 2))
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			c, err := cl.NewClient(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			tx, err := c.Begin()
			if err != nil {
				t.Fatal(err)
			}
			key := "probe"
			_ = tx.Write(key, []byte("v"))
			ct, err := tx.Commit()
			if err != nil {
				t.Fatal(err)
			}
			p := partitionOf(key, 2)
			deadline := time.Now().Add(5 * time.Second)
			for !cl.LocalUpdateVisible(0, p, ct) {
				if time.Now().After(deadline) {
					t.Fatal("local visibility never reached")
				}
				time.Sleep(time.Millisecond)
			}
			for !cl.RemoteUpdateVisible(1, p, 0, ct) {
				if time.Now().After(deadline) {
					t.Fatal("remote visibility never reached")
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

func TestCommittedTxCount(t *testing.T) {
	cl, err := New(fastConfig(Wren, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		_ = tx.Write(fmt.Sprintf("k%d", i), []byte("v"))
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.CommittedTxCount(); got != 5 {
		t.Fatalf("CommittedTxCount = %d, want 5", got)
	}
}

func TestProtocolString(t *testing.T) {
	if Wren.String() != "Wren" || Cure.String() != "Cure" || HCure.String() != "H-Cure" {
		t.Error("protocol names wrong")
	}
	if Protocol(0).String() != "Protocol(0)" {
		t.Error("unknown protocol format wrong")
	}
}
