package cluster

import "wren/internal/sharding"

// partitionOf mirrors the production key-to-partition mapping.
func partitionOf(key string, parts int) int {
	return sharding.PartitionOf(key, parts)
}
