package cluster

import (
	"fmt"
	"testing"
	"time"
)

// These tests crash-torture the two durability gaps the transaction log
// closes (previously the top open items in ROADMAP.md), on every durable
// backend with fsync=always:
//
//   - a kill between the commit ACK and the apply tick must lose nothing:
//     the restarted cluster serves every acknowledged transaction from
//     its commit-record logs;
//   - a kill after local apply but before Replicate traffic lands must
//     not leave DCs durably diverged: the restarted origin re-sends the
//     tail above each peer's replication cursor and the DCs reconverge.
//
// Kill skips every shutdown courtesy (no final apply, no commit-list
// flush); with fsync=always each acknowledgement implies its records were
// fsynced before it was sent, so the reopened directory holds exactly
// what a SIGKILL would have left. (In-process, writes already handed to
// the OS survive a real SIGKILL too — what a process kill can lose, and
// what Kill therefore withholds, is the user-space shutdown work.)

// crashConfig is the shared deployment shape for the crash tests.
func crashConfig(proto Protocol, dcs int, dataDir string, backend string) Config {
	return Config{
		Protocol:      proto,
		NumDCs:        dcs,
		NumPartitions: 2,
		StoreBackend:  backend,
		DataDir:       dataDir,
		FsyncPolicy:   "always",
		// Keep chains intact so Latest comparisons are deterministic.
		GCInterval: -1,
	}
}

// The crash scenarios run from the TestLifecycleConformance matrix in
// lifecycle_conformance_test.go, which covers every protocol × durable
// backend combination.

func testCrashBetweenAckAndApply(t *testing.T, proto Protocol, backend string) {
	dataDir := t.TempDir()
	cfg := crashConfig(proto, 1, dataDir, backend)
	// Freeze the apply tick: every acknowledged commit stays on the commit
	// list, never reaching the engine — the exact ack-to-apply window.
	cfg.ApplyInterval = time.Hour

	want := map[string]string{}
	func() {
		cl, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer cl.Kill()
		client, err := cl.NewClient(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()

		for i := 0; i < 6; i++ {
			tx, err := client.Begin()
			if err != nil {
				t.Fatal(err)
			}
			// Two keys per transaction so most commits span both
			// partitions (multi-cohort 2PC) and recovery must keep them
			// atomic.
			k1, k2 := fmt.Sprintf("ack-a-%d", i), fmt.Sprintf("ack-b-%d", i)
			v1, v2 := fmt.Sprintf("v1-%d", i), fmt.Sprintf("v2-%d", i)
			if err := tx.Write(k1, []byte(v1)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(k2, []byte(v2)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
			want[k1], want[k2] = v1, v2
		}

		// The gap must be real: nothing acknowledged has reached the
		// engine (the apply tick is frozen), so without the transaction
		// log this kill would lose every commit above.
		for k := range want {
			p := partitionOf(k, cfg.NumPartitions)
			var applied bool
			if proto == Wren {
				applied = cl.WrenServer(0, p).Store().Latest(k) != nil
			} else {
				applied = cl.CureServer(0, p).Store().Latest(k) != nil
			}
			if applied {
				t.Fatalf("precondition broken: %q already applied before the kill", k)
			}
		}
		// defer cl.Kill() is the crash.
	}()

	// Second life: normal apply interval; every acknowledged transaction
	// must come back through txlog recovery (replay or re-driven outcome).
	cfg.ApplyInterval = 0
	cl, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer cl.Close()
	client, err := cl.NewClient(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		tx, err := client.Begin()
		if err != nil {
			t.Fatal(err)
		}
		got, err := tx.Read(keys...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		missing := ""
		for k, v := range want {
			if string(got[k]) != v {
				missing = fmt.Sprintf("key %q = %q, want %q", k, got[k], v)
			}
		}
		if missing == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("acknowledged transactions lost across the kill: %s", missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testCrashBeforeReplicate(t *testing.T, proto Protocol, backend string) {
	dataDir := t.TempDir()
	cfg := crashConfig(proto, 2, dataDir, backend)

	want := map[string]string{}
	func() {
		cl, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer cl.Kill()
		// Cut the WAN first: Replicate traffic to DC1 queues on the dead
		// link and dies with the kill — the origin applies locally but the
		// remote DC never hears about it.
		cl.Network().SetDCLinkDown(0, 1, true)

		client, err := cl.NewClient(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		var lastCT int64
		var lastKey string
		for i := 0; i < 5; i++ {
			tx, err := client.Begin()
			if err != nil {
				t.Fatal(err)
			}
			k, v := fmt.Sprintf("repl-%d", i), fmt.Sprintf("val-%d", i)
			if err := tx.Write(k, []byte(v)); err != nil {
				t.Fatal(err)
			}
			ct, err := tx.Commit()
			if err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
			want[k] = v
			lastCT, lastKey = int64(ct), k
		}
		// Wait until the last commit is APPLIED at its origin partition:
		// the kill then lands after local apply, before replication.
		p := partitionOf(lastKey, cfg.NumPartitions)
		deadline := time.Now().Add(10 * time.Second)
		for !appliedLocally(cl, proto, p, lastCT) {
			if time.Now().After(deadline) {
				t.Fatal("final commit never applied locally")
			}
			time.Sleep(2 * time.Millisecond)
		}
		// The remote DC must not have the data (the link is down).
		for k := range want {
			rp := partitionOf(k, cfg.NumPartitions)
			var leaked bool
			if proto == Wren {
				leaked = cl.WrenServer(1, rp).Store().Latest(k) != nil
			} else {
				leaked = cl.CureServer(1, rp).Store().Latest(k) != nil
			}
			if leaked {
				t.Fatalf("precondition broken: %q reached DC1 despite the partition", k)
			}
		}
	}()

	// Second life: the healed cluster must reconverge from the persisted
	// replication cursors — DC1 receives the re-sent tail.
	cl, err := New(cfg)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer cl.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		diverged := ""
		for k, v := range want {
			p := partitionOf(k, cfg.NumPartitions)
			for dc := 0; dc < 2; dc++ {
				var got string
				if proto == Wren {
					if ver := cl.WrenServer(dc, p).Store().Latest(k); ver != nil {
						got = string(ver.Value)
					}
				} else {
					if ver := cl.CureServer(dc, p).Store().Latest(k); ver != nil {
						got = string(ver.Value)
					}
				}
				if got != v {
					diverged = fmt.Sprintf("dc%d key %q = %q, want %q", dc, k, got, v)
				}
			}
		}
		if diverged == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("DCs did not reconverge after the kill: %s", diverged)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func appliedLocally(cl *Cluster, proto Protocol, p int, ct int64) bool {
	if proto == Wren {
		return int64(cl.WrenServer(0, p).LocalVersionClock()) >= ct
	}
	return int64(cl.CureServer(0, p).LocalVersionClock()) >= ct
}
