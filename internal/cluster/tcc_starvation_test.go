package cluster

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestTCCConformanceUnderStarvation is the codified repro for the two
// scheduling-sensitive installed-snapshot races fixed alongside it (both
// produced causal/atomic violations and monotonic-read regressions in
// TestTCCConformance{Cure,HCure} whenever the host was heavily
// oversubscribed — ~25–50% of runs on a starved 1-CPU box):
//
//  1. handlePrepareReq computed its TickPast proposal BEFORE registering
//     the transaction in the pending list; an applyTick preempting the
//     goroutine between the two statements published a version-clock bound
//     at or above the proposal, and the transaction later committed inside
//     the installed region (fixed in core and cure: proposal and
//     registration are atomic under s.mu).
//  2. Cure/H-Cure run applyTick concurrently (apply loop + the eager
//     install attempt of every parked read); a tick preempted between
//     taking its committed batch and writing it to the engine let a
//     second tick publish a larger bound with those writes still in
//     flight (fixed with applyMu serializing the tick end to end).
//
// The test oversubscribes the scheduler with spinning goroutines — the
// injected scheduling delay that stretches both preemption windows from
// nanoseconds to milliseconds — and runs the checker workload on all three
// protocols. It burns several CPU-seconds by design, so it only runs when
// WREN_STARVATION_TEST is set (CI smoke stays deterministic); the plain
// TestTCCConformance* tests cover the fixed code on every run.
func TestTCCConformanceUnderStarvation(t *testing.T) {
	if os.Getenv("WREN_STARVATION_TEST") == "" {
		t.Skip("set WREN_STARVATION_TEST=1 to run the scheduler-starvation repro")
	}
	// 4 spinners per core reliably reproduced both races before the fix.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4*runtime.GOMAXPROCS(0); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	for _, tc := range []struct {
		name  string
		proto Protocol
	}{
		{"HCure", HCure},
		{"Cure", Cure},
		{"Wren", Wren},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runTCCWorkload(t, tc.proto, 2, 4, 1200*time.Millisecond, false)
		})
	}
}
