package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"wren/internal/core"
	"wren/internal/store"
	"wren/internal/transport/chaos"
)

// chaosConfig is fastConfig plus the fault injector and a client retry
// budget sized for the short request timeouts these tests run with.
func chaosConfig(p Protocol, dcs, parts int) Config {
	cfg := fastConfig(p, dcs, parts)
	cfg.Chaos = true
	cfg.ChaosSeed = 42
	cfg.RetryAttempts = 5
	cfg.RetryBackoff = 2 * time.Millisecond
	return cfg
}

func storeOf(cl *Cluster, dc, p int) store.Engine {
	if cl.Config().Protocol == Wren {
		return cl.WrenServer(dc, p).Store()
	}
	return cl.CureServer(dc, p).Store()
}

// waitConverged polls until every DC's store holds an identical latest
// version for each key (same commit timestamp, transaction id and value).
// A non-nil expected value additionally pins what that version must hold —
// the acked write a client observed must be the one that replicated.
func waitConverged(t *testing.T, cl *Cluster, want map[string][]byte, timeout time.Duration) {
	t.Helper()
	cfg := cl.Config()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		lastErr = nil
		for key, val := range want {
			p := partitionOf(key, cfg.NumPartitions)
			ref := storeOf(cl, 0, p).Latest(key)
			if ref == nil {
				lastErr = fmt.Errorf("key %q: no version in dc0", key)
				break
			}
			if val != nil && !bytes.Equal(ref.Value, val) {
				lastErr = fmt.Errorf("key %q: dc0 holds %q, acked write was %q", key, ref.Value, val)
				break
			}
			for dc := 1; dc < cfg.NumDCs; dc++ {
				got := storeOf(cl, dc, p).Latest(key)
				if got == nil {
					lastErr = fmt.Errorf("key %q: missing in dc%d", key, dc)
					break
				}
				if got.UT != ref.UT || got.TxID != ref.TxID || !bytes.Equal(got.Value, ref.Value) {
					lastErr = fmt.Errorf("key %q: dc%d diverged (ut=%v tx=%d val=%q, dc0 ut=%v tx=%d val=%q)",
						key, dc, got.UT, got.TxID, got.Value, ref.UT, ref.TxID, ref.Value)
					break
				}
			}
			if lastErr != nil {
				break
			}
		}
		if lastErr == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("DCs did not converge: %v", lastErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// assertExactlyOnce checks that keys written exactly once exist as exactly
// one stored version in every DC — a duplicated replication frame or a
// re-driven commit would surface as a second version on the chain.
func assertExactlyOnce(t *testing.T, cl *Cluster, keys []string) {
	t.Helper()
	cfg := cl.Config()
	for _, key := range keys {
		p := partitionOf(key, cfg.NumPartitions)
		for dc := 0; dc < cfg.NumDCs; dc++ {
			if n := storeOf(cl, dc, p).VersionsOf(key); n != 1 {
				t.Errorf("key %q: dc%d stores %d versions, want exactly 1", key, dc, n)
			}
		}
	}
}

func commitKV(t *testing.T, c Client, key string, val []byte) {
	t.Helper()
	tx, err := c.Begin()
	if err != nil {
		t.Fatalf("begin for %q: %v", key, err)
	}
	if err := tx.Write(key, val); err != nil {
		t.Fatalf("write %q: %v", key, err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatalf("commit %q: %v", key, err)
	}
}

// TestChaosCutMidCommitConvergence cuts the inter-DC link in both
// directions mid-workload: commits in the origin DC must keep succeeding
// (2PC and acknowledgement are intra-DC), reads in the isolated DC must
// stay responsive (and nonblocking on Wren), and after healing every DC
// must converge to identical versions with no acked transaction lost or
// double-applied.
func TestChaosCutMidCommitConvergence(t *testing.T) {
	for _, proto := range []Protocol{Wren, Cure, HCure} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := chaosConfig(proto, 2, 2)
			cfg.ClientFailover = true
			cl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			ch := cl.Chaos()

			writer, err := cl.NewClient(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer writer.Close()

			want := make(map[string][]byte)
			var keys []string
			put := func(i int) {
				key := fmt.Sprintf("cut-%02d", i)
				val := []byte(fmt.Sprintf("v%02d", i))
				commitKV(t, writer, key, val)
				want[key] = val
				keys = append(keys, key)
			}
			for i := 0; i < 10; i++ {
				put(i)
			}

			// Partition the DCs in both directions mid-stream.
			ch.Cut(0, 1)
			ch.Cut(1, 0)

			// Acked writes must keep landing in the origin DC.
			for i := 10; i < 20; i++ {
				put(i)
			}

			// The isolated DC keeps serving reads from its stable snapshot.
			reader, err := cl.NewClient(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer reader.Close()
			rtx, err := reader.Begin()
			if err != nil {
				t.Fatalf("begin in isolated DC: %v", err)
			}
			if _, err := rtx.Read("cut-00"); err != nil {
				t.Fatalf("read in isolated DC: %v", err)
			}
			if proto == Wren && rtx.Blocked() != 0 {
				t.Fatalf("Wren read blocked %v during partition", rtx.Blocked())
			}
			if _, err := rtx.Commit(); err != nil {
				t.Fatalf("read-only commit in isolated DC: %v", err)
			}

			ch.HealAll()
			waitConverged(t, cl, want, 20*time.Second)
			assertExactlyOnce(t, cl, keys)
		})
	}
}

// TestChaosLossyClientLinks runs a write workload through client links
// that drop and duplicate frames. Sessions retry idempotent requests and
// resolve unacknowledged commits through termination probes; every
// acknowledged write must survive exactly once, and commits the client
// could not resolve must still leave all DCs in agreement.
func TestChaosLossyClientLinks(t *testing.T) {
	for _, proto := range []Protocol{Wren, Cure, HCure} {
		t.Run(proto.String(), func(t *testing.T) {
			cfg := chaosConfig(proto, 2, 2)
			cfg.ClientFailover = true
			cfg.RequestTimeout = 250 * time.Millisecond
			cl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			ch := cl.Chaos()

			c, err := cl.NewClient(0, -1)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			ch.SetClientRule(0, chaos.Rule{DropProb: 0.05, DupProb: 0.05})

			want := make(map[string][]byte) // acked writes: value pinned
			var acked []string
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("loss-%02d", i)
				val := []byte(fmt.Sprintf("v%02d", i))
				tx, err := c.Begin()
				if err != nil {
					// Begin exhausted its retries; nothing was started.
					continue
				}
				// Exercise the read-retry path alongside the writes.
				if _, err := tx.Read("loss-00"); err != nil {
					_ = tx.Abort()
					continue
				}
				if err := tx.Write(key, val); err != nil {
					t.Fatalf("write %q: %v", key, err)
				}
				if _, err := tx.Commit(); err != nil {
					// In-doubt or aborted: the write may or may not exist.
					// Cross-DC agreement is still required, value pinning
					// is not.
					want[key] = nil
					continue
				}
				want[key] = val
				acked = append(acked, key)
			}
			if len(acked) < 20 {
				t.Fatalf("only %d/40 commits acknowledged; retry policy ineffective", len(acked))
			}

			ch.ClearRules()
			// Keys whose commit stayed unresolved may have no version at
			// all; converge only on keys at least one DC has applied.
			resolved := make(map[string][]byte)
			for key, val := range want {
				if val != nil {
					resolved[key] = val
					continue
				}
				p := partitionOf(key, cfg.NumPartitions)
				for dc := 0; dc < cfg.NumDCs; dc++ {
					if storeOf(cl, dc, p).Latest(key) != nil {
						resolved[key] = nil
						break
					}
				}
			}
			waitConverged(t, cl, resolved, 20*time.Second)
			assertExactlyOnce(t, cl, acked)
		})
	}
}

// TestChaosFenceDelayedCommit delays a CommitReq far beyond the request
// timeout. The client's termination probe must overtake the crawling
// commit, fence the transaction id, and return ErrAborted — after which
// the session safely re-runs the write. When the original CommitReq
// finally surfaces it must find the id fenced: the second write wins and
// exactly one version exists.
func TestChaosFenceDelayedCommit(t *testing.T) {
	cfg := chaosConfig(Wren, 1, 2)
	cfg.RetryAttempts = 8
	cfg.RetryBackoff = 5 * time.Millisecond
	cfg.RequestTimeout = 150 * time.Millisecond
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ch := cl.Chaos()

	c, err := cl.NewClient(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("fence-k", []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Push the CommitReq two seconds out, then restore the link shortly
	// after: probes issued once the rule is cleared are scheduled at their
	// real send time and overtake the delayed commit in the link queue.
	const commitDelay = 2 * time.Second
	ch.SetClientRule(0, chaos.Rule{Delay: commitDelay})
	ruleSet := time.Now()
	restore := time.AfterFunc(300*time.Millisecond, func() {
		ch.SetClientRule(0, chaos.Rule{})
	})
	defer restore.Stop()

	if _, err := tx.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("delayed commit: want ErrAborted via termination probe, got %v", err)
	}

	// The fence licenses a re-run on the same session.
	commitKV(t, c, "fence-k", []byte("v2"))

	// Let the original CommitReq surface and be refused, then verify it
	// left no trace: the re-run's value stands, as the only version.
	time.Sleep(commitDelay - time.Since(ruleSet) + 300*time.Millisecond)
	p := partitionOf("fence-k", cfg.NumPartitions)
	v := storeOf(cl, 0, p).Latest("fence-k")
	if v == nil || !bytes.Equal(v.Value, []byte("v2")) {
		t.Fatalf("fenced commit resurfaced: latest=%v", v)
	}
	if n := storeOf(cl, 0, p).VersionsOf("fence-k"); n != 1 {
		t.Fatalf("fence-k has %d versions, want 1 (fenced commit must never apply)", n)
	}
}

// TestChaosReplicationLossResync drops half the replication frames
// between DCs, then clears the loss and relies on the transaction log's
// live resync (stalled-cursor detection) to re-ship the unconfirmed tail.
// Requires a durable backend: only the txlog tracks the unreplicated tail.
func TestChaosReplicationLossResync(t *testing.T) {
	if b := os.Getenv("WREN_STORE_BACKEND"); b == "" || b == "memory" {
		t.Skip("live resync needs a durable txlog backend (WREN_STORE_BACKEND=wal|sst)")
	}
	cfg := chaosConfig(Wren, 2, 2)
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ch := cl.Chaos()

	c, err := cl.NewClient(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ch.SetDCRule(0, 1, chaos.Rule{DropProb: 0.5})

	want := make(map[string][]byte)
	var keys []string
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("rsync-%02d", i)
		val := []byte(fmt.Sprintf("v%02d", i))
		commitKV(t, c, key, val)
		want[key] = val
		keys = append(keys, key)
	}

	ch.ClearRules()
	// Stall detection needs liveResyncStallTicks lifecycle ticks (1s
	// cadence) before the tail is re-shipped; allow ample slack.
	waitConverged(t, cl, want, 25*time.Second)
	assertExactlyOnce(t, cl, keys)
}
