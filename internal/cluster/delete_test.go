package cluster

import (
	"testing"
	"time"

	"wren/internal/sharding"
)

// TestDeleteEndToEnd exercises deletion through every protocol: a deleted
// key reads as absent in the writer's session immediately, in the writer's
// DC once the tombstone is stable, and in remote DCs once it replicates —
// and the tombstone hides the older live version rather than exposing it.
func TestDeleteEndToEnd(t *testing.T) {
	for _, proto := range []Protocol{Wren, Cure, HCure} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			cl, err := New(Config{
				Protocol:       proto,
				NumDCs:         2,
				NumPartitions:  2,
				InterDCLatency: time.Millisecond,
				GCInterval:     50 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer cl.Close()

			local, err := cl.NewClient(0, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer local.Close()
			remote, err := cl.NewClient(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()

			const key = "doomed"
			tx, err := local.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(key, []byte("alive")); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// The value must reach the remote DC before we delete it, so
			// the tombstone has something to hide.
			waitForValue(t, remote, key, "alive")

			// Delete — and read-your-delete within the same transaction.
			tx, err = local.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Delete(key); err != nil {
				t.Fatal(err)
			}
			if got, err := tx.Read(key); err != nil {
				t.Fatal(err)
			} else if _, present := got[key]; present {
				t.Fatalf("key visible inside its own deleting transaction: %q", got[key])
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// Session causality: the deleting session must never see the
			// key again (Wren: write cache; Cure: dependency vector).
			tx, err = local.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if got, err := tx.Read(key); err != nil {
				t.Fatal(err)
			} else if _, present := got[key]; present {
				t.Fatalf("deleting session still reads %q after commit", got[key])
			}
			_ = tx.Abort()

			// Remote DC: the tombstone replicates and the key disappears.
			waitForAbsent(t, remote, key)

			// GC: once the deletion is stable everywhere, the owning
			// partition drops the chain entirely.
			p := sharding.PartitionOf(key, 2)
			deadline := time.Now().Add(10 * time.Second)
			for {
				var versions int
				if proto == Wren {
					versions = cl.WrenServer(0, p).Store().VersionsOf(key)
				} else {
					versions = cl.CureServer(0, p).Store().VersionsOf(key)
				}
				if versions == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("tombstoned chain not GCed: %d versions remain", versions)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

func waitForValue(t *testing.T, c Client, key, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		got, err := tx.Read(key)
		if err != nil {
			t.Fatal(err)
		}
		_ = tx.Abort()
		if string(got[key]) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %q never reached value %q (got %q)", key, want, got[key])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitForAbsent(t *testing.T, c Client, key string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		got, err := tx.Read(key)
		if err != nil {
			t.Fatal(err)
		}
		_ = tx.Abort()
		if _, present := got[key]; !present {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %q still visible as %q; tombstone never took effect", key, got[key])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
