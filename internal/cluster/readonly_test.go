package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"wren/internal/core"
	"wren/internal/cure"
)

// TestReadOnlyAdmission proves the servers ACT on the durability health
// signal (the open ROADMAP item "servers act on Engine.Healthy"): once a
// server's transaction log degrades, new writes through it — as
// coordinator or as 2PC cohort — are refused with the typed read-only
// error, reads keep flowing on their nonblocking path, healthy partitions
// keep committing, and the state is observable through the HealthReq wire
// probe that backs wren-cli's health command.
func TestReadOnlyAdmission(t *testing.T) {
	for _, proto := range []Protocol{Wren, HCure} {
		t.Run(proto.String(), func(t *testing.T) { testReadOnlyAdmission(t, proto) })
	}
}

func testReadOnlyAdmission(t *testing.T, proto Protocol) {
	cfg := Config{
		Protocol:      proto,
		NumDCs:        1,
		NumPartitions: 2,
		StoreBackend:  "wal",
		DataDir:       t.TempDir(),
		// Pin the degradation: this test asserts the STICKY read-only
		// state, so the automatic probation exit must stay off (the
		// readmit path has its own conformance scenario).
		RepairInterval: -1,
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Keys owned by each partition, found by probing the hash.
	ownedBy := func(p int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("ro-%s-%d", proto, i)
			if partitionOf(k, cfg.NumPartitions) == p {
				return k
			}
		}
	}
	k0, k1 := ownedBy(0), ownedBy(1)

	client, err := cl.NewClient(0, 0) // coordinator partition 0
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	commit := func(keys ...string) error {
		tx, err := client.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := tx.Write(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		_, err = tx.Commit()
		return err
	}
	if err := commit(k0, k1); err != nil {
		t.Fatalf("healthy commit failed: %v", err)
	}

	// Degrade partition 1's transaction log. Partition 0 stays healthy.
	injected := errors.New("injected log failure")
	var wantErr error
	if proto == Wren {
		cl.WrenServer(0, 1).TxLog().InjectFailure(injected)
		wantErr = core.ErrReadOnly
		if !cl.WrenServer(0, 1).ReadOnly() || cl.WrenServer(0, 0).ReadOnly() {
			t.Fatal("ReadOnly flags wrong after injection")
		}
	} else {
		cl.CureServer(0, 1).TxLog().InjectFailure(injected)
		wantErr = cure.ErrReadOnly
		if !cl.CureServer(0, 1).ReadOnly() || cl.CureServer(0, 0).ReadOnly() {
			t.Fatal("ReadOnly flags wrong after injection")
		}
	}
	if err := cl.Healthy(); err == nil {
		t.Fatal("Cluster.Healthy must surface the injected failure")
	}
	if cl.EnginesHealthy() != nil {
		t.Fatal("EnginesHealthy must stay engine-only (the engine is fine)")
	}

	// A write touching the degraded partition as COHORT (healthy
	// coordinator 0) must be refused via the 2PC abort path.
	if err := commit(k1); !errors.Is(err, wantErr) {
		t.Fatalf("cohort-degraded commit: got %v, want %v", err, wantErr)
	}
	// Direct writes through the degraded COORDINATOR must be refused too.
	cl1, err := cl.NewClient(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	tx, err := cl1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(k0, []byte("w")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); !errors.Is(err, wantErr) {
		t.Fatalf("coordinator-degraded commit: got %v, want %v", err, wantErr)
	}

	// Writes confined to healthy partitions still commit...
	if err := commit(k0); err != nil {
		t.Fatalf("healthy-partition commit refused: %v", err)
	}
	// ...and reads — including of the degraded partition's keys — keep
	// their nonblocking path on both servers.
	rtx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rtx.Read(k0, k1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rtx.Commit(); err != nil {
		t.Fatalf("read-only commit must be admitted in degraded mode: %v", err)
	}
	if string(got[k1]) != "v" {
		t.Fatalf("read of degraded partition's key = %q, want %q", got[k1], "v")
	}

	// The degraded state is observable over the wire (wren-cli health).
	probe := func(p int) (bool, string) {
		t.Helper()
		if proto == Wren {
			c, err := core.NewClient(core.ClientConfig{
				DC: 0, ClientIndex: 9000 + p, NumPartitions: cfg.NumPartitions,
				Network: cl.Network(), CoordinatorPartition: p,
				RequestTimeout: 5 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ro, detail, err := c.Health(p)
			if err != nil {
				t.Fatal(err)
			}
			return ro, detail
		}
		c, err := cure.NewClient(cure.ClientConfig{
			DC: 0, ClientIndex: 9000 + p, NumDCs: 1, NumPartitions: cfg.NumPartitions,
			Network: cl.Network(), CoordinatorPartition: p,
			RequestTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ro, detail, err := c.Health(p)
		if err != nil {
			t.Fatal(err)
		}
		return ro, detail
	}
	if ro, _ := probe(0); ro {
		t.Fatal("health probe reports partition 0 read-only")
	}
	if ro, detail := probe(1); !ro || detail == "" {
		t.Fatalf("health probe missed the degradation: readOnly=%v detail=%q", ro, detail)
	}
}
