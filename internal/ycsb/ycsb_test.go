package ycsb

import (
	"math/rand"
	"testing"

	"wren/internal/sharding"
)

func TestMixNames(t *testing.T) {
	tests := []struct {
		mix  Mix
		want string
	}{
		{Mix95, "95:5"},
		{Mix90, "90:10"},
		{Mix50, "50:50"},
		{Mix{}, "0:0"},
	}
	for _, tt := range tests {
		if got := tt.mix.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestWorkloadKeyPoolsRespectSharding(t *testing.T) {
	w, err := NewWorkload(Config{NumPartitions: 4, KeysPerPartition: 50})
	if err != nil {
		t.Fatal(err)
	}
	for p, keys := range w.AllKeys() {
		if len(keys) != 50 {
			t.Errorf("partition %d has %d keys, want 50", p, len(keys))
		}
		for _, k := range keys {
			if got := sharding.PartitionOf(k, 4); got != p {
				t.Errorf("key %q in pool %d but hashes to %d", k, p, got)
			}
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := NewWorkload(Config{NumPartitions: 0}); err == nil {
		t.Error("zero partitions should be rejected")
	}
	if _, err := NewWorkload(Config{NumPartitions: 2, PartitionsPerTx: 4}); err == nil {
		t.Error("PartitionsPerTx > NumPartitions should be rejected")
	}
	if _, err := NewWorkload(Config{NumPartitions: 2, Mix: Mix{Reads: -1, Writes: 1}}); err == nil {
		t.Error("negative mix should be rejected")
	}
}

func TestGeneratorComposition(t *testing.T) {
	w, err := NewWorkload(Config{
		Mix: Mix95, NumPartitions: 8, PartitionsPerTx: 4, KeysPerPartition: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := w.NewGenerator(1)
	for i := 0; i < 100; i++ {
		tx := g.Next()
		if len(tx.ReadKeys) != 19 {
			t.Fatalf("reads = %d, want 19", len(tx.ReadKeys))
		}
		if len(tx.Writes) != 1 {
			t.Fatalf("writes = %d, want 1", len(tx.Writes))
		}
		// Touched partitions must be within the configured bound.
		parts := map[int]bool{}
		for _, k := range tx.ReadKeys {
			parts[sharding.PartitionOf(k, 8)] = true
		}
		for _, wr := range tx.Writes {
			parts[sharding.PartitionOf(wr.Key, 8)] = true
		}
		if len(parts) > 4 {
			t.Fatalf("transaction touched %d partitions, want <= 4", len(parts))
		}
	}
}

func TestGeneratorNoDuplicateKeysInTx(t *testing.T) {
	w, err := NewWorkload(Config{
		Mix: Mix50, NumPartitions: 4, PartitionsPerTx: 2, KeysPerPartition: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := w.NewGenerator(2)
	for i := 0; i < 200; i++ {
		tx := g.Next()
		seen := map[string]bool{}
		for _, k := range tx.ReadKeys {
			if seen[k] {
				t.Fatalf("duplicate key %q in transaction", k)
			}
			seen[k] = true
		}
		for _, wr := range tx.Writes {
			if seen[wr.Key] {
				t.Fatalf("duplicate key %q in transaction", wr.Key)
			}
			seen[wr.Key] = true
		}
	}
}

func TestGeneratorValueSize(t *testing.T) {
	w, err := NewWorkload(Config{
		Mix: Mix50, NumPartitions: 2, PartitionsPerTx: 1, KeysPerPartition: 30, ValueSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := w.NewGenerator(3)
	tx := g.Next()
	for _, wr := range tx.Writes {
		if len(wr.Value) != 8 {
			t.Errorf("value size = %d, want 8", len(wr.Value))
		}
	}
}

func TestGeneratorUsesExactlyPPartitionsWhenPossible(t *testing.T) {
	w, err := NewWorkload(Config{
		Mix: Mix{Reads: 8, Writes: 0}, NumPartitions: 8, PartitionsPerTx: 8,
		KeysPerPartition: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := w.NewGenerator(4)
	tx := g.Next()
	parts := map[int]bool{}
	for _, k := range tx.ReadKeys {
		parts[sharding.PartitionOf(k, 8)] = true
	}
	if len(parts) != 8 {
		t.Errorf("8 reads over p=8 should touch all 8 partitions, got %d", len(parts))
	}
}

func TestZipfianBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfian(100, 0.99, rng)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v >= 100 {
			t.Fatalf("zipfian out of range: %d", v)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 1000
	z := NewZipfian(n, 0.99, rng)
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be far more popular than the median rank, and the top
	// 10% of ranks should cover the majority of draws (strong skew).
	if counts[0] < counts[n/2]*10 {
		t.Errorf("rank 0 (%d draws) should dominate median rank (%d draws)",
			counts[0], counts[n/2])
	}
	top := 0
	for i := 0; i < n/10; i++ {
		top += counts[i]
	}
	if float64(top)/draws < 0.5 {
		t.Errorf("top 10%% of keys got %.1f%% of draws, want > 50%%",
			100*float64(top)/draws)
	}
}

func TestZipfianUniformWhenThetaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 10
	z := NewZipfian(n, 0.0, rng)
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		ratio := float64(c) / (draws / n)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("theta=0 should be near uniform; rank %d ratio %.2f", i, ratio)
		}
	}
}

func TestZipfianSingleElement(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	z := NewZipfian(1, 0.99, rng)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("single-element zipfian must always return 0")
		}
	}
	z0 := NewZipfian(0, 0.99, rng)
	if z0.Next() != 0 {
		t.Fatal("zero-element zipfian must clamp to n=1")
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	w, err := NewWorkload(Config{NumPartitions: 4, KeysPerPartition: 50})
	if err != nil {
		t.Fatal(err)
	}
	g1 := w.NewGenerator(42)
	g2 := w.NewGenerator(42)
	for i := 0; i < 20; i++ {
		tx1, tx2 := g1.Next(), g2.Next()
		if len(tx1.ReadKeys) != len(tx2.ReadKeys) {
			t.Fatal("same seed should give same transactions")
		}
		for j := range tx1.ReadKeys {
			if tx1.ReadKeys[j] != tx2.ReadKeys[j] {
				t.Fatal("same seed should give same read keys")
			}
		}
	}
}
