// Package ycsb generates the paper's benchmark workloads (§V-A): YCSB-style
// transactions with configurable read:write ratios (95:5, 90:10, 50:50),
// a fixed number of partitions involved per transaction, zipfian key
// selection within each partition (θ=0.99, YCSB's default), and small
// 8-byte items.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"

	"wren/internal/sharding"
)

// Mix describes a transaction composition. The paper's workloads run
// 19 reads + 1 write (95:5), 18 reads + 2 writes (90:10) and
// 10 reads + 10 writes (50:50).
type Mix struct {
	Reads  int
	Writes int
}

// Predefined mixes from the paper, plus a read-only mix used by the
// read-path benchmark suite (the paper's workloads always include writes;
// reads-only isolates the nonblocking read path itself).
var (
	Mix100 = Mix{Reads: 20, Writes: 0}
	Mix95  = Mix{Reads: 19, Writes: 1}
	Mix90  = Mix{Reads: 18, Writes: 2}
	Mix50  = Mix{Reads: 10, Writes: 10}
	AllMix = []Mix{Mix95, Mix90, Mix50}
)

// Name returns the conventional "r:w" label for the mix.
func (m Mix) Name() string {
	total := m.Reads + m.Writes
	if total == 0 {
		return "0:0"
	}
	return fmt.Sprintf("%d:%d", m.Reads*100/total, m.Writes*100/total)
}

// Config parameterizes a workload.
type Config struct {
	// Mix is the transaction composition.
	Mix Mix
	// PartitionsPerTx is p: how many distinct partitions a transaction
	// touches (the paper uses 2, 4 and 8).
	PartitionsPerTx int
	// NumPartitions is N, the partitions per DC.
	NumPartitions int
	// KeysPerPartition sizes each partition's keyspace.
	KeysPerPartition int
	// ValueSize is the item payload size; the paper uses 8 bytes.
	ValueSize int
	// ZipfTheta is the zipfian skew; the paper (and YCSB) use 0.99.
	ZipfTheta float64
}

func (c *Config) fillDefaults() {
	if c.PartitionsPerTx == 0 {
		c.PartitionsPerTx = 4
	}
	if c.KeysPerPartition == 0 {
		c.KeysPerPartition = 1000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 8
	}
	if c.ZipfTheta == 0 {
		c.ZipfTheta = 0.99
	}
	if c.Mix.Reads == 0 && c.Mix.Writes == 0 {
		c.Mix = Mix95
	}
}

// Workload holds the precomputed key pools and distribution state shared by
// all generator instances of one experiment.
type Workload struct {
	cfg Config
	// keys[p] lists the keys owned by partition p.
	keys [][]string
}

// NewWorkload builds the per-partition key pools. Keys are generated so
// they hash to their partition under the production sharding function,
// keeping the generator and the servers in agreement.
func NewWorkload(cfg Config) (*Workload, error) {
	cfg.fillDefaults()
	if cfg.NumPartitions <= 0 {
		return nil, fmt.Errorf("ycsb: NumPartitions must be positive")
	}
	if cfg.PartitionsPerTx > cfg.NumPartitions {
		return nil, fmt.Errorf("ycsb: PartitionsPerTx %d exceeds NumPartitions %d",
			cfg.PartitionsPerTx, cfg.NumPartitions)
	}
	if cfg.Mix.Reads+cfg.Mix.Writes <= 0 {
		return nil, fmt.Errorf("ycsb: empty transaction mix")
	}
	w := &Workload{cfg: cfg, keys: make([][]string, cfg.NumPartitions)}
	counts := make([]int, cfg.NumPartitions)
	needed := cfg.NumPartitions * cfg.KeysPerPartition
	for i := 0; needed > 0; i++ {
		k := fmt.Sprintf("user%08d", i)
		p := sharding.PartitionOf(k, cfg.NumPartitions)
		if counts[p] >= cfg.KeysPerPartition {
			continue
		}
		w.keys[p] = append(w.keys[p], k)
		counts[p]++
		needed--
	}
	return w, nil
}

// Config returns the workload configuration (with defaults filled).
func (w *Workload) Config() Config { return w.cfg }

// AllKeys returns every key in the workload, grouped by partition.
func (w *Workload) AllKeys() [][]string { return w.keys }

// Tx is one generated transaction: the keys to read and the writes to
// apply after the reads (the paper's transactions execute all reads in
// parallel, then all writes in parallel).
type Tx struct {
	ReadKeys []string
	Writes   []WriteOp
}

// WriteOp is a single key-value write.
type WriteOp struct {
	Key   string
	Value []byte
}

// Generator produces transactions for one client thread. Not safe for
// concurrent use: each thread owns one Generator.
type Generator struct {
	w    *Workload
	rng  *rand.Rand
	zipf *Zipfian
	perm []int
	seq  uint64
}

// NewGenerator returns a thread-local generator with its own random state.
func (w *Workload) NewGenerator(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		w:    w,
		rng:  rng,
		zipf: NewZipfian(uint64(w.cfg.KeysPerPartition), w.cfg.ZipfTheta, rng),
		perm: make([]int, w.cfg.NumPartitions),
	}
}

// Next generates one transaction: p distinct partitions chosen uniformly,
// keys chosen zipfian within each partition, reads and writes distributed
// round-robin across the chosen partitions.
func (g *Generator) Next() Tx {
	cfg := g.w.cfg
	// Partial Fisher-Yates: choose the first PartitionsPerTx of a shuffle.
	for i := range g.perm {
		g.perm[i] = i
	}
	for i := 0; i < cfg.PartitionsPerTx; i++ {
		j := i + g.rng.Intn(len(g.perm)-i)
		g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
	}
	parts := g.perm[:cfg.PartitionsPerTx]

	tx := Tx{
		ReadKeys: make([]string, 0, cfg.Mix.Reads),
		Writes:   make([]WriteOp, 0, cfg.Mix.Writes),
	}
	seen := make(map[string]struct{}, cfg.Mix.Reads+cfg.Mix.Writes)
	pick := func(p int) string {
		for {
			k := g.w.keys[p][g.zipf.Next()]
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				return k
			}
			// On collision fall back to a uniform draw so the loop always
			// terminates quickly even under extreme skew.
			k = g.w.keys[p][g.rng.Intn(len(g.w.keys[p]))]
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				return k
			}
		}
	}
	for i := 0; i < cfg.Mix.Reads; i++ {
		tx.ReadKeys = append(tx.ReadKeys, pick(parts[i%len(parts)]))
	}
	for i := 0; i < cfg.Mix.Writes; i++ {
		g.seq++
		tx.Writes = append(tx.Writes, WriteOp{
			Key:   pick(parts[i%len(parts)]),
			Value: g.value(),
		})
	}
	return tx
}

// value builds a payload of the configured size, varying content so that
// convergence checks can distinguish writers.
func (g *Generator) value() []byte {
	v := make([]byte, g.w.cfg.ValueSize)
	g.rng.Read(v)
	return v
}

// Zipfian draws integers in [0, n) with a zipfian distribution using the
// Gray et al. algorithm, as in YCSB's ZipfianGenerator.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipfian builds a zipfian source over [0, n) with skew theta.
func NewZipfian(n uint64, theta float64, rng *rand.Rand) *Zipfian {
	if n == 0 {
		n = 1
	}
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next zipfian value. Rank 0 is the most popular.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
