// Package stats provides the measurement primitives used by the benchmark
// harness: concurrent histograms with percentile queries, CDF extraction
// (the paper's Figure 7b), running counters and rate computation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe log-bucketed histogram of non-negative
// microsecond values. Buckets grow geometrically, giving ~4% relative error
// across nine decades, which is ample for latency distributions.
type Histogram struct {
	mu      sync.Mutex
	counts  []uint64
	total   uint64
	sum     float64
	minimum int64
	maximum int64
}

const (
	histBucketsPerDecade = 64
	histMaxValue         = int64(1) << 40 // ~12 days in µs; more than enough
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	n := bucketIndex(histMaxValue) + 2
	return &Histogram{
		counts:  make([]uint64, n),
		minimum: math.MaxInt64,
	}
}

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	// log-scale bucket: index = floor(log2(v) * histBucketsPerDecade / log2(10))
	lg := math.Log2(float64(v))
	idx := int(lg*histBucketsPerDecade/math.Log2(10)) + 1
	return idx
}

func bucketLowerBound(idx int) int64 {
	if idx <= 0 {
		return 0
	}
	return int64(math.Pow(2, float64(idx-1)*math.Log2(10)/histBucketsPerDecade))
}

// Record adds a single observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v > histMaxValue {
		v = histMaxValue
	}
	idx := bucketIndex(v)
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += float64(v)
	if v < h.minimum {
		h.minimum = v
	}
	if v > h.maximum {
		h.maximum = v
	}
}

// RecordDuration adds a duration observation in microseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Microseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of observations, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.minimum
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maximum
}

// Percentile returns an approximation of the p-th percentile (0 < p <= 100),
// or 0 if the histogram is empty.
func (h *Histogram) Percentile(p float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.minimum
	}
	if p >= 100 {
		return h.maximum
	}
	rank := uint64(math.Ceil(float64(h.total) * p / 100))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lb := bucketLowerBound(i)
			if lb < h.minimum {
				lb = h.minimum
			}
			if lb > h.maximum {
				lb = h.maximum
			}
			return lb
		}
	}
	return h.maximum
}

// CDFPoint is a single (value, cumulative fraction) sample of a CDF.
type CDFPoint struct {
	Value    int64   // observation value (µs)
	Fraction float64 // cumulative probability in (0, 1]
}

// CDF extracts up to maxPoints evenly spaced points of the empirical CDF.
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return nil
	}
	var pts []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		lb := bucketLowerBound(i)
		if lb < h.minimum {
			lb = h.minimum
		}
		if lb > h.maximum {
			lb = h.maximum
		}
		pts = append(pts, CDFPoint{Value: lb, Fraction: float64(cum) / float64(h.total)})
	}
	if maxPoints > 0 && len(pts) > maxPoints {
		out := make([]CDFPoint, 0, maxPoints)
		step := float64(len(pts)) / float64(maxPoints)
		for i := 0; i < maxPoints; i++ {
			out = append(out, pts[int(float64(i)*step)])
		}
		out[len(out)-1] = pts[len(pts)-1]
		pts = out
	}
	return pts
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	counts := make([]uint64, len(other.counts))
	copy(counts, other.counts)
	total, sum, mn, mx := other.total, other.sum, other.minimum, other.maximum
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		if i < len(h.counts) {
			h.counts[i] += c
		}
	}
	h.total += total
	h.sum += sum
	if total > 0 {
		if mn < h.minimum {
			h.minimum = mn
		}
		if mx > h.maximum {
			h.maximum = mx
		}
	}
}

// Counter is a concurrency-safe monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// MeanOf returns the arithmetic mean of a float64 slice, or 0 if empty.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// PercentileOf returns the p-th percentile of a slice by sorting a copy.
// It returns 0 for an empty slice.
func PercentileOf(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// MeanCDF averages several per-partition CDFs pointwise by percentile, the
// way the paper computes Figure 7b ("we first obtain the CDF on every
// partition and then we compute the mean for each percentile").
func MeanCDF(cdfs [][]CDFPoint, percentiles []float64) []CDFPoint {
	if len(cdfs) == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, len(percentiles))
	for _, p := range percentiles {
		var sum float64
		var n int
		for _, cdf := range cdfs {
			v, ok := valueAtFraction(cdf, p)
			if ok {
				sum += float64(v)
				n++
			}
		}
		if n > 0 {
			out = append(out, CDFPoint{Value: int64(sum / float64(n)), Fraction: p})
		}
	}
	return out
}

func valueAtFraction(cdf []CDFPoint, frac float64) (int64, bool) {
	if len(cdf) == 0 {
		return 0, false
	}
	for _, pt := range cdf {
		if pt.Fraction >= frac {
			return pt.Value, true
		}
	}
	return cdf[len(cdf)-1].Value, true
}

// FormatMicros renders a microsecond quantity as a human-friendly string.
func FormatMicros(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
