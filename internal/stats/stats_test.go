package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
	if h.CDF(10) != nil {
		t.Error("empty histogram CDF should be nil")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Mean() != 1000 {
		t.Errorf("Mean = %f, want 1000", h.Mean())
	}
	if h.Min() != 1000 || h.Max() != 1000 {
		t.Errorf("Min/Max = %d/%d, want 1000/1000", h.Min(), h.Max())
	}
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 1000 {
			t.Errorf("Percentile(%v) = %d, want 1000", p, got)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-50)
	if h.Min() != 0 {
		t.Errorf("negative value should clamp to 0, Min = %d", h.Min())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(42))
	// Uniform [0, 100000): p50 should be near 50000 within bucket error.
	for i := 0; i < 100000; i++ {
		h.Record(int64(rng.Intn(100000)))
	}
	p50 := float64(h.Percentile(50))
	if p50 < 45000 || p50 > 55000 {
		t.Errorf("p50 = %f, want ~50000", p50)
	}
	p99 := float64(h.Percentile(99))
	if p99 < 94000 || p99 > 100000 {
		t.Errorf("p99 = %f, want ~99000", p99)
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for p := 1.0; p <= 100; p += 7 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramCDFMonotoneAndComplete(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Record(int64(rng.Intn(1_000_000)))
	}
	cdf := h.CDF(50)
	if len(cdf) == 0 {
		t.Fatal("CDF should not be empty")
	}
	prevV, prevF := int64(-1), 0.0
	for _, pt := range cdf {
		if pt.Value < prevV {
			t.Errorf("CDF values not monotone: %d after %d", pt.Value, prevV)
		}
		if pt.Fraction < prevF {
			t.Errorf("CDF fractions not monotone: %f after %f", pt.Fraction, prevF)
		}
		prevV, prevF = pt.Value, pt.Fraction
	}
	if last := cdf[len(cdf)-1].Fraction; math.Abs(last-1.0) > 1e-9 {
		t.Errorf("CDF should end at 1.0, got %f", last)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(100)
	a.Record(200)
	b.Record(300)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("merged Count = %d, want 3", a.Count())
	}
	if a.Max() != 300 {
		t.Errorf("merged Max = %d, want 300", a.Max())
	}
	if a.Min() != 100 {
		t.Errorf("merged Min = %d, want 100", a.Min())
	}
	if got := a.Mean(); math.Abs(got-200) > 1e-9 {
		t.Errorf("merged Mean = %f, want 200", got)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				h.Record(int64(rng.Intn(10000)))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Millisecond)
	if h.Min() != 3000 {
		t.Errorf("RecordDuration stored %d, want 3000", h.Min())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(10)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 4*1000+4*10 {
		t.Errorf("Counter = %d, want 4040", got)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("MeanOf(nil) should be 0")
	}
	if got := MeanOf([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanOf = %f, want 2", got)
	}
}

func TestPercentileOf(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 3},
		{100, 5},
	}
	for _, tt := range tests {
		if got := PercentileOf(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("PercentileOf(%v) = %f, want %f", tt.p, got, tt.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("PercentileOf must not mutate its input")
	}
	if PercentileOf(nil, 50) != 0 {
		t.Error("PercentileOf(nil) should be 0")
	}
}

func TestMeanCDF(t *testing.T) {
	cdf1 := []CDFPoint{{Value: 100, Fraction: 0.5}, {Value: 200, Fraction: 1.0}}
	cdf2 := []CDFPoint{{Value: 300, Fraction: 0.5}, {Value: 400, Fraction: 1.0}}
	out := MeanCDF([][]CDFPoint{cdf1, cdf2}, []float64{0.5, 1.0})
	if len(out) != 2 {
		t.Fatalf("MeanCDF returned %d points, want 2", len(out))
	}
	if out[0].Value != 200 {
		t.Errorf("mean at 0.5 = %d, want 200", out[0].Value)
	}
	if out[1].Value != 300 {
		t.Errorf("mean at 1.0 = %d, want 300", out[1].Value)
	}
	if MeanCDF(nil, []float64{0.5}) != nil {
		t.Error("MeanCDF(nil) should be nil")
	}
}

func TestFormatMicros(t *testing.T) {
	tests := []struct {
		us   int64
		want string
	}{
		{500, "500µs"},
		{1500, "1.50ms"},
		{2_500_000, "2.50s"},
	}
	for _, tt := range tests {
		if got := FormatMicros(tt.us); got != tt.want {
			t.Errorf("FormatMicros(%d) = %q, want %q", tt.us, got, tt.want)
		}
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	// Property: a value must land in a bucket whose lower bound <= value.
	f := func(v uint32) bool {
		idx := bucketIndex(int64(v))
		lb := bucketLowerBound(idx)
		return lb <= int64(v) || v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
