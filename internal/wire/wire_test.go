package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"wren/internal/hlc"
)

// roundTrip encodes m, decodes it back, and compares.
func roundTrip(t *testing.T, m Message) {
	t.Helper()
	payload := Encode(m)
	if got, want := len(payload)+headerSize, Size(m); got != want {
		t.Errorf("%v: Size() = %d, but encoded+header = %d", m.Kind(), want, got)
	}
	back, err := Decode(m.Kind(), payload)
	if err != nil {
		t.Fatalf("%v: Decode: %v", m.Kind(), err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Errorf("%v: round trip mismatch:\n got %#v\nwant %#v", m.Kind(), back, m)
	}
}

func ts(p int64, l uint16) hlc.Timestamp { return hlc.New(p, l) }

func TestRoundTripAllKinds(t *testing.T) {
	msgs := []Message{
		&StartTxReq{ReqID: 1, LST: ts(100, 1), RST: ts(90, 0)},
		&StartTxReq{ReqID: 2, DV: []hlc.Timestamp{ts(1, 0), ts(2, 0), ts(3, 0)}},
		&StartTxResp{ReqID: 3, TxID: 77, LST: ts(100, 1), RST: ts(90, 0)},
		&StartTxResp{ReqID: 4, TxID: 78, SV: []hlc.Timestamp{ts(5, 5), ts(6, 6)}},
		&TxReadReq{ReqID: 5, TxID: 77, Keys: []string{"a", "bb", "ccc"}},
		&TxReadReq{ReqID: 6, TxID: 78},
		&TxReadResp{ReqID: 7, Items: []Item{
			{Key: "a", Value: []byte{1, 2}, UT: ts(10, 0), RDT: ts(5, 0), TxID: 3, SrcDC: 1},
			{Key: "b", Value: nil, UT: ts(11, 0), RDT: ts(6, 0), TxID: 4, SrcDC: 2,
				DV: []hlc.Timestamp{ts(1, 0), ts(2, 0)}},
		}, BlockedMicros: 1234},
		&CommitReq{ReqID: 8, TxID: 77, HWT: ts(55, 3), Writes: []KV{
			{Key: "x", Value: []byte("v1")},
			{Key: "y", Value: []byte("v2")},
		}},
		&CommitResp{ReqID: 9, CT: ts(123, 4)},
		&SliceReq{ReqID: 10, Keys: []string{"k"}, LT: ts(50, 0), RT: ts(40, 0)},
		&SliceReq{ReqID: 11, Keys: []string{"k"}, SV: []hlc.Timestamp{ts(1, 1)}},
		&SliceResp{ReqID: 12, Items: []Item{{Key: "k", Value: []byte("v"),
			UT: ts(9, 9), RDT: ts(8, 8), TxID: 2, SrcDC: 0}}, BlockedMicros: 42},
		&PrepareReq{ReqID: 13, TxID: 99, LT: ts(1, 1), RT: ts(2, 2), HT: ts(3, 3),
			Writes: []KV{{Key: "w", Value: []byte("z")}}},
		&PrepareResp{ReqID: 14, TxID: 99, PT: ts(77, 7)},
		&CommitTx{TxID: 99, CT: ts(88, 8)},
		&Replicate{SrcDC: 2, Partition: 5, Txs: []ReplTx{
			{TxID: 1, CT: ts(10, 1), RST: ts(9, 0), Writes: []KV{{Key: "a", Value: []byte("b")}}},
			{TxID: 2, CT: ts(10, 1), RST: ts(9, 0), DV: []hlc.Timestamp{ts(1, 0)},
				Writes: []KV{{Key: "c", Value: []byte("d")}, {Key: "e", Value: nil}}},
		}},
		&Heartbeat{SrcDC: 1, Partition: 3, TS: ts(1000, 0)},
		&StableBroadcast{Partition: 4, Local: ts(500, 1), RemoteMin: ts(400, 2)},
		&StableBroadcast{Partition: 4, VV: []hlc.Timestamp{ts(1, 0), ts(2, 0), ts(3, 0)}},
		&GCBroadcast{Partition: 6, Oldest: ts(333, 3)},
		&CommitResp{ReqID: 15, Code: CommitErrReadOnly, Err: "durability degraded"},
		&PrepareResp{ReqID: 16, TxID: 100, Err: "txlog frozen"},
		&Replicate{SrcDC: 1, Partition: 2, Resync: true, Txs: []ReplTx{
			{TxID: 3, CT: ts(11, 0), Writes: []KV{{Key: "r", Value: []byte("s")}}},
		}},
		&CommitAck{TxID: 99, Partition: 7},
		&ReplicateAck{DC: 2, Partition: 5, UpTo: ts(444, 4), Resync: true},
		&HealthReq{ReqID: 17},
		&HealthResp{ReqID: 18, ReadOnly: true, Err: "wal: sync: broken"},
		&TxStatusReq{TxID: 321},
		&TxStatusResp{TxID: 321, CT: ts(555, 5), Committed: true},
		&ScanReq{ReqID: 19, Start: "a", End: "m", Limit: 100, LT: ts(50, 0), RT: ts(40, 0)},
		&ScanReq{ReqID: 20, Start: "", End: "", LT: ts(1, 0), RT: ts(1, 0)},
		&ScanResp{ReqID: 21, Items: []Item{{Key: "k", Value: []byte("v"),
			UT: ts(9, 9), RDT: ts(8, 8), TxID: 2, SrcDC: 1}}, More: true},
	}
	for _, m := range msgs {
		roundTrip(t, m)
	}
}

func TestRoundTripEmptyValues(t *testing.T) {
	// nil vs empty byte slices normalize to nil after a round trip through
	// decodeKVs/decodeItems; check semantic equality explicitly.
	m := &CommitReq{ReqID: 1, TxID: 2, Writes: []KV{{Key: "k", Value: nil}}}
	payload := Encode(m)
	back, err := Decode(m.Kind(), payload)
	if err != nil {
		t.Fatal(err)
	}
	got := back.(*CommitReq)
	if got.Writes[0].Key != "k" || len(got.Writes[0].Value) != 0 {
		t.Errorf("empty value mishandled: %#v", got.Writes[0])
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	if _, err := Decode(Kind(200), nil); err == nil {
		t.Error("Decode of unknown kind should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := &PrepareReq{ReqID: 13, TxID: 99, LT: ts(1, 1), RT: ts(2, 2), HT: ts(3, 3),
		Writes: []KV{{Key: "w", Value: []byte("z")}}}
	payload := Encode(m)
	for cut := 0; cut < len(payload); cut++ {
		if _, err := Decode(m.Kind(), payload[:cut]); err == nil {
			// Some prefixes may decode by luck into valid shorter fields;
			// the critical property is that we never panic. But for this
			// message layout every strict prefix must fail.
			t.Errorf("Decode of %d-byte prefix unexpectedly succeeded", cut)
		}
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []Kind{
		KindStartTxReq, KindStartTxResp, KindTxReadReq, KindTxReadResp,
		KindCommitReq, KindCommitResp, KindSliceReq, KindSliceResp,
		KindPrepareReq, KindPrepareResp, KindCommitTx, KindReplicate,
		KindHeartbeat, KindStableBroadcast, KindGCBroadcast,
	}
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		kind := kinds[rng.Intn(len(kinds))]
		// Must not panic; errors are fine.
		_, _ = Decode(kind, buf)
	}
}

func TestWrenVsCureMetadataSizes(t *testing.T) {
	// A Wren replicated update carries 2 timestamps; a Cure update carries
	// an M-entry vector. With M=5 the Cure message must be strictly larger,
	// and the delta must be exactly (M)*8 bytes per tx (vector entries) plus
	// the 1-byte length prefix delta.
	wrenTx := ReplTx{TxID: 1, CT: ts(10, 0), RST: ts(9, 0),
		Writes: []KV{{Key: "key12345", Value: []byte("12345678")}}}
	cureTx := wrenTx
	cureTx.DV = []hlc.Timestamp{ts(1, 0), ts(2, 0), ts(3, 0), ts(4, 0), ts(5, 0)}

	wrenMsg := &Replicate{SrcDC: 0, Partition: 0, Txs: []ReplTx{wrenTx}}
	cureMsg := &Replicate{SrcDC: 0, Partition: 0, Txs: []ReplTx{cureTx}}

	wrenSize, cureSize := Size(wrenMsg), Size(cureMsg)
	if wrenSize >= cureSize {
		t.Errorf("Wren replicate (%dB) should be smaller than Cure (%dB)", wrenSize, cureSize)
	}
	if delta := cureSize - wrenSize; delta != 5*8 {
		t.Errorf("metadata delta = %dB, want 40B for a 5-entry vector", delta)
	}

	// Stabilization: Wren sends 2 scalars, Cure sends the full vector.
	wrenStable := &StableBroadcast{Partition: 1, Local: ts(1, 0), RemoteMin: ts(2, 0)}
	cureStable := &StableBroadcast{Partition: 1,
		VV: []hlc.Timestamp{ts(1, 0), ts(2, 0), ts(3, 0), ts(4, 0), ts(5, 0)}}
	if Size(wrenStable) >= Size(cureStable) {
		t.Errorf("Wren stabilization (%dB) should be smaller than Cure (%dB)",
			Size(wrenStable), Size(cureStable))
	}
}

func TestItemRoundTripProperty(t *testing.T) {
	f := func(key string, val []byte, ut, rdt uint64, txid uint64, src uint8) bool {
		it := Item{Key: key, Value: val, UT: hlc.Timestamp(ut), RDT: hlc.Timestamp(rdt),
			TxID: txid, SrcDC: src}
		m := &TxReadResp{ReqID: 1, Items: []Item{it}}
		back, err := Decode(m.Kind(), Encode(m))
		if err != nil {
			return false
		}
		got := back.(*TxReadResp).Items[0]
		return got.Key == key && string(got.Value) == string(val) &&
			got.UT == it.UT && got.RDT == it.RDT && got.TxID == txid && got.SrcDC == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindStartTxReq; k <= KindScanResp; k++ {
		if s := k.String(); s == "" || s[0] == 'K' && s[1] == 'i' {
			t.Errorf("Kind %d has no name: %q", k, s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind String() format wrong")
	}
	for c := ClassClient; c <= ClassControl; c++ {
		if s := c.String(); s == "" {
			t.Errorf("Class %d has no name", c)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class String() format wrong")
	}
}

func TestSizeIsAllocationFree(t *testing.T) {
	m := &Replicate{SrcDC: 1, Partition: 2, Txs: []ReplTx{
		{TxID: 1, CT: ts(1, 0), RST: ts(2, 0), Writes: []KV{{Key: "abc", Value: []byte("def")}}},
	}}
	allocs := testing.AllocsPerRun(100, func() {
		_ = Size(m)
	})
	// One alloc allowed for the encoder itself; payload must not allocate.
	if allocs > 1 {
		t.Errorf("Size allocates %.1f times per call, want <= 1", allocs)
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := NewEncoder()
	e.Uvarint(300)
	e.Fixed64(0xDEADBEEF)
	e.Byte(7)
	e.Bool(true)
	e.Bool(false)
	e.String("hello")
	e.BytesField([]byte{1, 2, 3})
	e.Strings([]string{"a", "b"})
	e.Timestamps([]hlc.Timestamp{ts(5, 5)})

	d := NewDecoder(e.Bytes())
	if v := d.Uvarint(); v != 300 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Fixed64(); v != 0xDEADBEEF {
		t.Errorf("Fixed64 = %x", v)
	}
	if v := d.Byte(); v != 7 {
		t.Errorf("Byte = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := d.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if v := d.BytesField(); len(v) != 3 || v[2] != 3 {
		t.Errorf("BytesField = %v", v)
	}
	if v := d.Strings(); len(v) != 2 || v[1] != "b" {
		t.Errorf("Strings = %v", v)
	}
	if v := d.Timestamps(); len(v) != 1 || v[0] != ts(5, 5) {
		t.Errorf("Timestamps = %v", v)
	}
	if d.Err() != nil {
		t.Errorf("decoder error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
}

func TestDecoderErrorsStick(t *testing.T) {
	d := NewDecoder([]byte{})
	_ = d.Fixed64() // fails
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads must return zero values, not panic.
	if d.Uvarint() != 0 || d.Byte() != 0 || d.String() != "" {
		t.Error("reads after error should return zero values")
	}
}
