package wire

import (
	"fmt"

	"wren/internal/hlc"
)

// Kind identifies a message type on the wire.
type Kind uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	KindStartTxReq Kind = iota + 1
	KindStartTxResp
	KindTxReadReq
	KindTxReadResp
	KindCommitReq
	KindCommitResp
	KindSliceReq
	KindSliceResp
	KindPrepareReq
	KindPrepareResp
	KindCommitTx
	KindReplicate
	KindHeartbeat
	KindStableBroadcast
	KindGCBroadcast
	KindCommitAck
	KindReplicateAck
	KindHealthReq
	KindHealthResp
	KindTxStatusReq
	KindTxStatusResp
	KindScanReq
	KindScanResp
	KindBusyResp
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindStartTxReq:
		return "StartTxReq"
	case KindStartTxResp:
		return "StartTxResp"
	case KindTxReadReq:
		return "TxReadReq"
	case KindTxReadResp:
		return "TxReadResp"
	case KindCommitReq:
		return "CommitReq"
	case KindCommitResp:
		return "CommitResp"
	case KindSliceReq:
		return "SliceReq"
	case KindSliceResp:
		return "SliceResp"
	case KindPrepareReq:
		return "PrepareReq"
	case KindPrepareResp:
		return "PrepareResp"
	case KindCommitTx:
		return "CommitTx"
	case KindReplicate:
		return "Replicate"
	case KindHeartbeat:
		return "Heartbeat"
	case KindStableBroadcast:
		return "StableBroadcast"
	case KindGCBroadcast:
		return "GCBroadcast"
	case KindCommitAck:
		return "CommitAck"
	case KindReplicateAck:
		return "ReplicateAck"
	case KindHealthReq:
		return "HealthReq"
	case KindHealthResp:
		return "HealthResp"
	case KindTxStatusReq:
		return "TxStatusReq"
	case KindTxStatusResp:
		return "TxStatusResp"
	case KindScanReq:
		return "ScanReq"
	case KindScanResp:
		return "ScanResp"
	case KindBusyResp:
		return "BusyResp"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Class groups message kinds for byte accounting (paper Figure 7a).
type Class uint8

// Accounting classes.
const (
	// ClassClient covers client<->coordinator traffic.
	ClassClient Class = iota + 1
	// ClassTransaction covers intra-DC coordinator<->cohort traffic
	// (slice reads, 2PC prepare/commit).
	ClassTransaction
	// ClassReplication covers inter-DC update propagation and heartbeats.
	ClassReplication
	// ClassStabilization covers intra-DC stable-time gossip
	// (BiST in Wren, vector exchange in Cure).
	ClassStabilization
	// ClassControl covers garbage-collection coordination.
	ClassControl
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassClient:
		return "client"
	case ClassTransaction:
		return "transaction"
	case ClassReplication:
		return "replication"
	case ClassStabilization:
		return "stabilization"
	case ClassControl:
		return "control"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Message is implemented by every wire message.
type Message interface {
	Kind() Kind
	Class() Class
	encodeTo(e *Encoder)
	decodeFrom(d *Decoder)
}

// Item is a versioned key-value pair as shipped to clients and replicas.
// It mirrors the paper's tuple ⟨k, v, ut, rdt, id_T, sr⟩. For Cure/H-Cure,
// DV carries the M-entry dependency vector instead of (UT, RDT); Wren items
// leave DV nil — that difference is exactly the BDT metadata saving.
type Item struct {
	Key   string
	Value []byte
	UT    hlc.Timestamp // update (commit) time; summarizes local deps
	RDT   hlc.Timestamp // remote dependency time; summarizes remote deps
	TxID  uint64
	SrcDC uint8
	DV    []hlc.Timestamp // Cure only: one entry per DC
}

func (it *Item) encodeTo(e *Encoder) {
	e.String(it.Key)
	e.BytesField(it.Value)
	e.Timestamp(it.UT)
	e.Timestamp(it.RDT)
	e.Uvarint(it.TxID)
	e.Byte(it.SrcDC)
	e.Timestamps(it.DV)
}

func (it *Item) decodeFrom(d *Decoder) {
	it.Key = d.String()
	it.Value = append([]byte(nil), d.BytesField()...)
	it.UT = d.Timestamp()
	it.RDT = d.Timestamp()
	it.TxID = d.Uvarint()
	it.SrcDC = d.Byte()
	it.DV = d.Timestamps()
}

// KV is a raw write buffered in a transaction's write set. Tombstone marks
// a delete: the write installs the store's deletion marker (a nil-valued
// version) instead of a value. The flag is explicit on the wire because a
// zero-length Value cannot distinguish "empty value" from "deleted" after
// decoding.
type KV struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// VersionValue returns the value a storage engine should keep for this
// write: nil for a tombstone (the engine's deletion marker), a non-nil
// slice — possibly empty — otherwise.
func (kv KV) VersionValue() []byte {
	if kv.Tombstone {
		return nil
	}
	if kv.Value == nil {
		return []byte{}
	}
	return kv.Value
}

func encodeKVs(e *Encoder, kvs []KV) {
	e.Uvarint(uint64(len(kvs)))
	for i := range kvs {
		e.String(kvs[i].Key)
		e.BytesField(kvs[i].Value)
		e.Bool(kvs[i].Tombstone)
	}
}

func decodeKVs(d *Decoder) []KV {
	n := d.Uvarint()
	if !d.checkLen(n) || n == 0 {
		return nil
	}
	out := make([]KV, n)
	for i := range out {
		out[i].Key = d.String()
		out[i].Value = append([]byte(nil), d.BytesField()...)
		out[i].Tombstone = d.Bool()
	}
	return out
}

func encodeItems(e *Encoder, items []Item) {
	e.Uvarint(uint64(len(items)))
	for i := range items {
		items[i].encodeTo(e)
	}
}

func decodeItems(d *Decoder) []Item {
	n := d.Uvarint()
	if !d.checkLen(n) || n == 0 {
		return nil
	}
	out := make([]Item, n)
	for i := range out {
		out[i].decodeFrom(d)
	}
	return out
}

// StartTxReq opens a transaction (Alg. 1 line 2). Wren clients piggyback
// their last seen LST/RST; Cure clients piggyback their dependency vector.
type StartTxReq struct {
	ReqID uint64
	LST   hlc.Timestamp
	RST   hlc.Timestamp
	DV    []hlc.Timestamp // Cure: client's causal dependency vector
}

// Kind implements Message.
func (*StartTxReq) Kind() Kind { return KindStartTxReq }

// Class implements Message.
func (*StartTxReq) Class() Class { return ClassClient }

func (m *StartTxReq) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Timestamp(m.LST)
	e.Timestamp(m.RST)
	e.Timestamps(m.DV)
}

func (m *StartTxReq) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.LST = d.Timestamp()
	m.RST = d.Timestamp()
	m.DV = d.Timestamps()
}

// StartTxResp carries the transaction id and snapshot (Alg. 2 line 6).
type StartTxResp struct {
	ReqID uint64
	TxID  uint64
	LST   hlc.Timestamp   // Wren: local snapshot time
	RST   hlc.Timestamp   // Wren: remote snapshot time
	SV    []hlc.Timestamp // Cure: snapshot vector, one entry per DC
}

// Kind implements Message.
func (*StartTxResp) Kind() Kind { return KindStartTxResp }

// Class implements Message.
func (*StartTxResp) Class() Class { return ClassClient }

func (m *StartTxResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Uvarint(m.TxID)
	e.Timestamp(m.LST)
	e.Timestamp(m.RST)
	e.Timestamps(m.SV)
}

func (m *StartTxResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.TxID = d.Uvarint()
	m.LST = d.Timestamp()
	m.RST = d.Timestamp()
	m.SV = d.Timestamps()
}

// TxReadReq asks the coordinator to read a set of keys within a transaction.
type TxReadReq struct {
	ReqID uint64
	TxID  uint64
	Keys  []string
}

// Kind implements Message.
func (*TxReadReq) Kind() Kind { return KindTxReadReq }

// Class implements Message.
func (*TxReadReq) Class() Class { return ClassClient }

func (m *TxReadReq) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Uvarint(m.TxID)
	e.Strings(m.Keys)
}

func (m *TxReadReq) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.TxID = d.Uvarint()
	m.Keys = d.Strings()
}

// TxReadResp returns the items visible in the transaction snapshot.
// Missing keys are simply absent from Items.
type TxReadResp struct {
	ReqID uint64
	Items []Item
	// Chunks are extra item slices folded in by reference for very large
	// read sets: instead of copying a big SliceResp's items into Items
	// (one monolithic append), the fan-in detaches the arriving buffer and
	// retains it whole. The field is wire-transparent — encoding flattens
	// Items then Chunks into one item sequence and decoding always yields
	// a flat Items — so only in-process consumers see chunks. Readers must
	// iterate Items AND every chunk.
	Chunks [][]Item
	// BlockedMicros is the maximum time any constituent slice read spent
	// blocked waiting for a snapshot to be installed (Cure/H-Cure only;
	// always 0 in Wren). Feeds the paper's Figure 3b.
	BlockedMicros int64
}

// Kind implements Message.
func (*TxReadResp) Kind() Kind { return KindTxReadResp }

// Class implements Message.
func (*TxReadResp) Class() Class { return ClassClient }

func (m *TxReadResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	n := len(m.Items)
	for _, c := range m.Chunks {
		n += len(c)
	}
	e.Uvarint(uint64(n))
	for i := range m.Items {
		m.Items[i].encodeTo(e)
	}
	for _, c := range m.Chunks {
		for i := range c {
			c[i].encodeTo(e)
		}
	}
	e.Uvarint(uint64(m.BlockedMicros))
}

func (m *TxReadResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.Items = decodeItems(d)
	m.BlockedMicros = int64(d.Uvarint())
}

// CommitReq ships the write set to the coordinator (Alg. 1 line 27).
type CommitReq struct {
	ReqID  uint64
	TxID   uint64
	HWT    hlc.Timestamp // client's highest write (last commit) time
	Writes []KV
}

// Kind implements Message.
func (*CommitReq) Kind() Kind { return KindCommitReq }

// Class implements Message.
func (*CommitReq) Class() Class { return ClassClient }

func (m *CommitReq) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Uvarint(m.TxID)
	e.Timestamp(m.HWT)
	encodeKVs(e, m.Writes)
}

func (m *CommitReq) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.TxID = d.Uvarint()
	m.HWT = d.Timestamp()
	m.Writes = decodeKVs(d)
}

// Commit error codes carried by CommitResp. Values are part of the wire
// format; do not reorder.
const (
	// CommitOK means the transaction committed (or was read-only).
	CommitOK uint8 = iota
	// CommitErrReadOnly means the server refused the write: its durability
	// is degraded (a failed storage engine or transaction log) and it has
	// shed into read-only admission. Clients surface this as a typed error
	// so callers can retry against a healthy replica.
	CommitErrReadOnly
	// CommitErrAborted means the transaction is fenced: a termination
	// probe already answered "not committed" for this id, so a late or
	// duplicated CommitReq must be refused — otherwise a client that
	// failed over after the probe could see its transaction applied twice.
	CommitErrAborted
)

// CommitResp returns the commit timestamp, or a typed refusal when the
// server is in read-only admission.
type CommitResp struct {
	ReqID uint64
	CT    hlc.Timestamp
	Code  uint8  // CommitOK, CommitErrReadOnly or CommitErrAborted
	Err   string // human-readable detail when Code != CommitOK
}

// Kind implements Message.
func (*CommitResp) Kind() Kind { return KindCommitResp }

// Class implements Message.
func (*CommitResp) Class() Class { return ClassClient }

func (m *CommitResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Timestamp(m.CT)
	e.Byte(m.Code)
	e.String(m.Err)
}

func (m *CommitResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.CT = d.Timestamp()
	m.Code = d.Byte()
	m.Err = d.String()
}

// SliceReq is the coordinator-to-cohort read (Alg. 2 line 12). Wren sends
// the (lt, rt) snapshot; Cure sends the snapshot vector SV.
type SliceReq struct {
	ReqID uint64
	Keys  []string
	LT    hlc.Timestamp
	RT    hlc.Timestamp
	SV    []hlc.Timestamp
}

// Kind implements Message.
func (*SliceReq) Kind() Kind { return KindSliceReq }

// Class implements Message.
func (*SliceReq) Class() Class { return ClassTransaction }

func (m *SliceReq) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Strings(m.Keys)
	e.Timestamp(m.LT)
	e.Timestamp(m.RT)
	e.Timestamps(m.SV)
}

func (m *SliceReq) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.Keys = d.Strings()
	m.LT = d.Timestamp()
	m.RT = d.Timestamp()
	m.SV = d.Timestamps()
}

// SliceResp returns the freshest visible versions for a slice read.
type SliceResp struct {
	ReqID         uint64
	Items         []Item
	BlockedMicros int64 // time the read spent blocked (Cure/H-Cure)
}

// Kind implements Message.
func (*SliceResp) Kind() Kind { return KindSliceResp }

// Class implements Message.
func (*SliceResp) Class() Class { return ClassTransaction }

func (m *SliceResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	encodeItems(e, m.Items)
	e.Uvarint(uint64(m.BlockedMicros))
}

func (m *SliceResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.Items = decodeItems(d)
	m.BlockedMicros = int64(d.Uvarint())
}

// PrepareReq is the first phase of the 2PC commit (Alg. 2 line 22).
type PrepareReq struct {
	ReqID  uint64
	TxID   uint64
	LT     hlc.Timestamp // transaction's local snapshot time
	RT     hlc.Timestamp // transaction's remote snapshot time
	HT     hlc.Timestamp // max timestamp seen by the client
	SV     []hlc.Timestamp
	Writes []KV
}

// Kind implements Message.
func (*PrepareReq) Kind() Kind { return KindPrepareReq }

// Class implements Message.
func (*PrepareReq) Class() Class { return ClassTransaction }

func (m *PrepareReq) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Uvarint(m.TxID)
	e.Timestamp(m.LT)
	e.Timestamp(m.RT)
	e.Timestamp(m.HT)
	e.Timestamps(m.SV)
	encodeKVs(e, m.Writes)
}

func (m *PrepareReq) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.TxID = d.Uvarint()
	m.LT = d.Timestamp()
	m.RT = d.Timestamp()
	m.HT = d.Timestamp()
	m.SV = d.Timestamps()
	m.Writes = decodeKVs(d)
}

// PrepareResp carries the cohort's proposed commit timestamp, or a
// non-empty Err when the cohort refused the prepare (degraded durability:
// the cohort could not log the write set, so the coordinator must abort).
type PrepareResp struct {
	ReqID uint64
	TxID  uint64
	PT    hlc.Timestamp
	Err   string
}

// Kind implements Message.
func (*PrepareResp) Kind() Kind { return KindPrepareResp }

// Class implements Message.
func (*PrepareResp) Class() Class { return ClassTransaction }

func (m *PrepareResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Uvarint(m.TxID)
	e.Timestamp(m.PT)
	e.String(m.Err)
}

func (m *PrepareResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.TxID = d.Uvarint()
	m.PT = d.Timestamp()
	m.Err = d.String()
}

// CommitTx is the second phase of the 2PC commit (Alg. 2 line 26). A zero
// CT aborts: the cohort drops the prepared transaction instead of
// committing it (used when a degraded cohort refused its prepare). After a
// restart, coordinators re-send CommitTx for every unresolved logged
// decision; cohorts deduplicate by transaction id.
type CommitTx struct {
	TxID uint64
	CT   hlc.Timestamp
}

// Kind implements Message.
func (*CommitTx) Kind() Kind { return KindCommitTx }

// Class implements Message.
func (*CommitTx) Class() Class { return ClassTransaction }

func (m *CommitTx) encodeTo(e *Encoder) {
	e.Uvarint(m.TxID)
	e.Timestamp(m.CT)
}

func (m *CommitTx) decodeFrom(d *Decoder) {
	m.TxID = d.Uvarint()
	m.CT = d.Timestamp()
}

// ReplTx is one committed transaction inside a replication batch.
type ReplTx struct {
	TxID   uint64
	CT     hlc.Timestamp   // commit time (= ut of all written items)
	RST    hlc.Timestamp   // remote dependency time of all written items
	DV     []hlc.Timestamp // Cure: dependency vector
	Writes []KV
}

// Replicate propagates applied transactions to the peer replicas of the
// same partition in remote DCs (Alg. 4 line 14). Transactions with equal
// commit timestamps are packed into one message, as in the paper.
//
// Resync marks a re-sent batch: after a restart, the sender replays the
// committed transactions above the receiver's replication cursor, and the
// receiver deduplicates each transaction against its storage engine before
// applying — ordinary batches skip that check, keeping the steady-state
// apply path untouched.
type Replicate struct {
	SrcDC     uint8
	Partition uint16
	Resync    bool
	// Prev chains ordinary batches per destination: the commit timestamp
	// of the last transaction the sender previously shipped to this DC
	// (zero when unknown, e.g. the first batch after a restart). A
	// receiver whose watermark is below Prev is missing an earlier batch
	// and must refuse this one unacknowledged, so the sender's stalled
	// replication cursor triggers a dedupe-safe resync instead of the
	// stream silently applying past a gap. Resync batches are replayed
	// from the cursor in order and carry no chain.
	Prev hlc.Timestamp
	Txs  []ReplTx
}

// Kind implements Message.
func (*Replicate) Kind() Kind { return KindReplicate }

// Class implements Message.
func (*Replicate) Class() Class { return ClassReplication }

func (m *Replicate) encodeTo(e *Encoder) {
	e.Byte(m.SrcDC)
	e.Uvarint(uint64(m.Partition))
	e.Bool(m.Resync)
	e.Timestamp(m.Prev)
	e.Uvarint(uint64(len(m.Txs)))
	for i := range m.Txs {
		t := &m.Txs[i]
		e.Uvarint(t.TxID)
		e.Timestamp(t.CT)
		e.Timestamp(t.RST)
		e.Timestamps(t.DV)
		encodeKVs(e, t.Writes)
	}
}

func (m *Replicate) decodeFrom(d *Decoder) {
	m.SrcDC = d.Byte()
	m.Partition = uint16(d.Uvarint())
	m.Resync = d.Bool()
	m.Prev = d.Timestamp()
	n := d.Uvarint()
	if !d.checkLen(n) {
		return
	}
	if n == 0 {
		return
	}
	m.Txs = make([]ReplTx, n)
	for i := range m.Txs {
		t := &m.Txs[i]
		t.TxID = d.Uvarint()
		t.CT = d.Timestamp()
		t.RST = d.Timestamp()
		t.DV = d.Timestamps()
		t.Writes = decodeKVs(d)
	}
}

// Heartbeat advances the receiver's version-vector entry for the sender's
// DC when no transactions are committing (Alg. 4 line 20).
type Heartbeat struct {
	SrcDC     uint8
	Partition uint16
	TS        hlc.Timestamp
}

// Kind implements Message.
func (*Heartbeat) Kind() Kind { return KindHeartbeat }

// Class implements Message.
func (*Heartbeat) Class() Class { return ClassReplication }

func (m *Heartbeat) encodeTo(e *Encoder) {
	e.Byte(m.SrcDC)
	e.Uvarint(uint64(m.Partition))
	e.Timestamp(m.TS)
}

func (m *Heartbeat) decodeFrom(d *Decoder) {
	m.SrcDC = d.Byte()
	m.Partition = uint16(d.Uvarint())
	m.TS = d.Timestamp()
}

// StableBroadcast is the intra-DC stabilization exchange. In Wren (BiST) it
// carries exactly two scalars: the sender's local version clock and the
// minimum over its remote version-vector entries. In Cure it carries the
// full M-entry version vector in VV — the size difference is the paper's
// Figure 7a "Stabl." bar.
//
// With the tree topology (paper §IV-B: "partitions within a DC are
// organized as a tree to reduce communication costs"), leaf contributions
// flow to an aggregator and come back with Aggregate set: Local/RemoteMin
// then carry the DC-wide LST/RST rather than one partition's contribution.
type StableBroadcast struct {
	Partition uint16
	Aggregate bool
	Local     hlc.Timestamp
	RemoteMin hlc.Timestamp
	VV        []hlc.Timestamp // Cure only
}

// Kind implements Message.
func (*StableBroadcast) Kind() Kind { return KindStableBroadcast }

// Class implements Message.
func (*StableBroadcast) Class() Class { return ClassStabilization }

func (m *StableBroadcast) encodeTo(e *Encoder) {
	e.Uvarint(uint64(m.Partition))
	e.Bool(m.Aggregate)
	e.Timestamp(m.Local)
	e.Timestamp(m.RemoteMin)
	e.Timestamps(m.VV)
}

func (m *StableBroadcast) decodeFrom(d *Decoder) {
	m.Partition = uint16(d.Uvarint())
	m.Aggregate = d.Bool()
	m.Local = d.Timestamp()
	m.RemoteMin = d.Timestamp()
	m.VV = d.Timestamps()
}

// CommitAck confirms to the coordinator that a cohort holds a DURABLE
// commit record for the transaction (fsync-policy-bound, like every
// durability statement in the system). Once every cohort has acknowledged,
// the coordinator's logged decision is resolved and no longer needs
// re-driving after a restart. Only sent when the transaction log is
// enabled.
type CommitAck struct {
	TxID      uint64
	Partition uint16 // the acknowledging cohort
}

// Kind implements Message.
func (*CommitAck) Kind() Kind { return KindCommitAck }

// Class implements Message.
func (*CommitAck) Class() Class { return ClassTransaction }

func (m *CommitAck) encodeTo(e *Encoder) {
	e.Uvarint(m.TxID)
	e.Uvarint(uint64(m.Partition))
}

func (m *CommitAck) decodeFrom(d *Decoder) {
	m.TxID = d.Uvarint()
	m.Partition = uint16(d.Uvarint())
}

// ReplicateAck confirms to the sending replica that every transaction of a
// Replicate batch up to UpTo has been applied by the receiver. The sender
// advances its persisted replication cursor for the acknowledging DC, so a
// restart re-sends only the unconfirmed tail. Resync echoes the batch's
// Resync flag: only the re-sent tail's own acknowledgement may lift the
// sender's post-restart cursor pin — an ack for newer traffic cannot vouch
// for a tail still in flight behind it. Only sent when the transaction log
// is enabled.
type ReplicateAck struct {
	DC        uint8  // the acknowledging (receiver's) DC
	Partition uint16 // the partition the batch belonged to
	UpTo      hlc.Timestamp
	Resync    bool
}

// Kind implements Message.
func (*ReplicateAck) Kind() Kind { return KindReplicateAck }

// Class implements Message.
func (*ReplicateAck) Class() Class { return ClassReplication }

func (m *ReplicateAck) encodeTo(e *Encoder) {
	e.Byte(m.DC)
	e.Uvarint(uint64(m.Partition))
	e.Timestamp(m.UpTo)
	e.Bool(m.Resync)
}

func (m *ReplicateAck) decodeFrom(d *Decoder) {
	m.DC = d.Byte()
	m.Partition = uint16(d.Uvarint())
	m.UpTo = d.Timestamp()
	m.Resync = d.Bool()
}

// HealthReq asks a server for its durability/admission state, so operators
// (wren-cli health) can observe a degraded, read-only server without
// polling process-internal state.
type HealthReq struct {
	ReqID uint64
}

// Kind implements Message.
func (*HealthReq) Kind() Kind { return KindHealthReq }

// Class implements Message.
func (*HealthReq) Class() Class { return ClassClient }

func (m *HealthReq) encodeTo(e *Encoder)   { e.Uvarint(m.ReqID) }
func (m *HealthReq) decodeFrom(d *Decoder) { m.ReqID = d.Uvarint() }

// HealthResp reports a server's durability state: ReadOnly is set when the
// server has shed into read-only admission, and Err carries the first
// recorded write-path failure (empty while fully healthy).
type HealthResp struct {
	ReqID    uint64
	ReadOnly bool
	Err      string
}

// Kind implements Message.
func (*HealthResp) Kind() Kind { return KindHealthResp }

// Class implements Message.
func (*HealthResp) Class() Class { return ClassClient }

func (m *HealthResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Bool(m.ReadOnly)
	e.String(m.Err)
}

func (m *HealthResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.ReadOnly = d.Bool()
	m.Err = d.String()
}

// TxStatusReq is the cooperative termination probe of the 2PC: a cohort
// holding a prepare recovered from its transaction log — whose outcome
// never arrived — asks the transaction's coordinator (derived from the
// transaction id) whether a commit decision exists. Decisions are only
// ever made in the life that ran the 2PC, so the coordinator's answer is
// final: a recovered prepare may only be aborted on an explicit
// "not committed" answer, never on a timeout alone.
//
// Clients reuse the same probe after a commit times out: ReqID is zero
// for cohort probes and non-zero for client probes (routing the reply
// through the client's pending-call table). A "not committed" answer to a
// client probe additionally fences the transaction id at the coordinator,
// so the client may safely re-drive the write set elsewhere.
type TxStatusReq struct {
	ReqID uint64
	TxID  uint64
}

// Kind implements Message.
func (*TxStatusReq) Kind() Kind { return KindTxStatusReq }

// Class implements Message.
func (*TxStatusReq) Class() Class { return ClassTransaction }

func (m *TxStatusReq) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Uvarint(m.TxID)
}

func (m *TxStatusReq) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.TxID = d.Uvarint()
}

// TxStatusResp answers a TxStatusReq: Committed with the decision's CT
// when the coordinator's log retains an unresolved commit decision for
// the transaction, otherwise not committed (the transaction never was, or
// no longer needs to be, committed at the asking cohort).
type TxStatusResp struct {
	ReqID     uint64 // echoed from the probe; zero for cohort probes
	TxID      uint64
	CT        hlc.Timestamp
	Committed bool
}

// Kind implements Message.
func (*TxStatusResp) Kind() Kind { return KindTxStatusResp }

// Class implements Message.
func (*TxStatusResp) Class() Class { return ClassTransaction }

func (m *TxStatusResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.Uvarint(m.TxID)
	e.Timestamp(m.CT)
	e.Bool(m.Committed)
}

func (m *TxStatusResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.TxID = d.Uvarint()
	m.CT = d.Timestamp()
	m.Committed = d.Bool()
}

// GCBroadcast exchanges the oldest snapshot visible to any running
// transaction so partitions can prune version chains (paper §IV-B).
type GCBroadcast struct {
	Partition uint16
	Oldest    hlc.Timestamp
}

// Kind implements Message.
func (*GCBroadcast) Kind() Kind { return KindGCBroadcast }

// Class implements Message.
func (*GCBroadcast) Class() Class { return ClassControl }

func (m *GCBroadcast) encodeTo(e *Encoder) {
	e.Uvarint(uint64(m.Partition))
	e.Timestamp(m.Oldest)
}

func (m *GCBroadcast) decodeFrom(d *Decoder) {
	m.Partition = uint16(d.Uvarint())
	m.Oldest = d.Timestamp()
}

// ScanReq asks one partition for its keys in [Start, End), read at the
// transaction's nonblocking snapshot (lt, rt) — the same visibility cut
// slice reads use, so a scan never blocks behind replication either.
// An empty End means "to the end of the keyspace". Limit bounds the
// number of items returned per partition (0 = unlimited); the client
// merges partitions and re-applies the limit globally.
type ScanReq struct {
	ReqID uint64
	Start string
	End   string
	Limit uint64
	LT    hlc.Timestamp
	RT    hlc.Timestamp
}

// Kind implements Message.
func (*ScanReq) Kind() Kind { return KindScanReq }

// Class implements Message.
func (*ScanReq) Class() Class { return ClassTransaction }

func (m *ScanReq) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	e.String(m.Start)
	e.String(m.End)
	e.Uvarint(m.Limit)
	e.Timestamp(m.LT)
	e.Timestamp(m.RT)
}

func (m *ScanReq) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.Start = d.String()
	m.End = d.String()
	m.Limit = d.Uvarint()
	m.LT = d.Timestamp()
	m.RT = d.Timestamp()
}

// ScanResp returns one partition's visible versions for a range scan, in
// ascending key order. More reports whether the partition had further
// keys beyond the per-partition limit.
type ScanResp struct {
	ReqID uint64
	Items []Item
	More  bool
}

// Kind implements Message.
func (*ScanResp) Kind() Kind { return KindScanResp }

// Class implements Message.
func (*ScanResp) Class() Class { return ClassTransaction }

func (m *ScanResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
	encodeItems(e, m.Items)
	e.Bool(m.More)
}

func (m *ScanResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
	m.Items = decodeItems(d)
	m.More = d.Bool()
}

// BusyResp is the server's admission pushback: the request identified by
// ReqID was shed before ANY processing because its connection exceeded the
// per-connection in-flight cap. Unlike a timeout, a BusyResp proves the
// request did not execute, so resending it after a backoff is safe even
// for a CommitReq. Clients surface it as transport.ErrOverloaded and let
// their RetryPolicy delay and retry.
type BusyResp struct {
	ReqID uint64
}

// Kind implements Message.
func (*BusyResp) Kind() Kind { return KindBusyResp }

// Class implements Message.
func (*BusyResp) Class() Class { return ClassClient }

func (m *BusyResp) encodeTo(e *Encoder) {
	e.Uvarint(m.ReqID)
}

func (m *BusyResp) decodeFrom(d *Decoder) {
	m.ReqID = d.Uvarint()
}

// newMessage allocates an empty message of the given kind.
func newMessage(kind Kind) (Message, error) {
	switch kind {
	case KindStartTxReq:
		return &StartTxReq{}, nil
	case KindStartTxResp:
		return &StartTxResp{}, nil
	case KindTxReadReq:
		return &TxReadReq{}, nil
	case KindTxReadResp:
		return &TxReadResp{}, nil
	case KindCommitReq:
		return &CommitReq{}, nil
	case KindCommitResp:
		return &CommitResp{}, nil
	case KindSliceReq:
		return &SliceReq{}, nil
	case KindSliceResp:
		return &SliceResp{}, nil
	case KindPrepareReq:
		return &PrepareReq{}, nil
	case KindPrepareResp:
		return &PrepareResp{}, nil
	case KindCommitTx:
		return &CommitTx{}, nil
	case KindReplicate:
		return &Replicate{}, nil
	case KindHeartbeat:
		return &Heartbeat{}, nil
	case KindStableBroadcast:
		return &StableBroadcast{}, nil
	case KindGCBroadcast:
		return &GCBroadcast{}, nil
	case KindCommitAck:
		return &CommitAck{}, nil
	case KindReplicateAck:
		return &ReplicateAck{}, nil
	case KindHealthReq:
		return &HealthReq{}, nil
	case KindHealthResp:
		return &HealthResp{}, nil
	case KindTxStatusReq:
		return &TxStatusReq{}, nil
	case KindTxStatusResp:
		return &TxStatusResp{}, nil
	case KindScanReq:
		return &ScanReq{}, nil
	case KindScanResp:
		return &ScanResp{}, nil
	case KindBusyResp:
		return &BusyResp{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
}
