// Package wire defines the messages exchanged by Wren, Cure and H-Cure
// servers and clients, together with a compact binary codec.
//
// The codec matters beyond serialization: the paper's Figure 7a compares the
// bytes exchanged by the replication and stabilization protocols of Wren
// (two scalar timestamps per update/snapshot — BDT/BiST) against Cure (a
// vector with one entry per DC). All byte accounting in the transport layer
// is computed from these encodings, so the measured ratios come from the
// real metadata layout, not from an analytic model.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"wren/internal/hlc"
)

// ErrTruncated is returned when a decode runs out of bytes.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge is returned when a length prefix exceeds sane limits.
var ErrTooLarge = errors.New("wire: length prefix too large")

const (
	// maxSliceLen bounds decoded collection lengths to protect against
	// corrupted or adversarial frames.
	maxSliceLen = 1 << 22
	// headerSize is the per-message framing overhead accounted by Size:
	// a 4-byte length prefix plus a 1-byte kind tag, mirroring the TCP
	// transport's framing.
	headerSize = 5
)

// Encoder serializes message fields into an internal buffer. When sizeOnly
// is set it only counts bytes, which lets Size run without allocating.
type Encoder struct {
	buf      []byte
	n        int
	sizeOnly bool
}

// NewEncoder returns an Encoder that writes into a fresh buffer.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes written (or counted).
func (e *Encoder) Len() int { return e.n }

// Reset clears the encoder for reuse, keeping the buffer capacity. Pooled
// encoders (transport framing, WAL appends) call this between messages so
// steady-state encoding does not allocate.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.n = 0
	e.sizeOnly = false
}

// Reserve appends n zero bytes and returns their offset, so callers can
// back-patch a fixed-size header (length prefix, checksum) after the
// payload is encoded.
func (e *Encoder) Reserve(n int) int {
	off := len(e.buf)
	e.n += n
	if e.sizeOnly {
		return off
	}
	for i := 0; i < n; i++ {
		e.buf = append(e.buf, 0)
	}
	return off
}

func (e *Encoder) writeByte(b byte) {
	e.n++
	if e.sizeOnly {
		return
	}
	e.buf = append(e.buf, b)
}

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	if e.sizeOnly {
		var tmp [binary.MaxVarintLen64]byte
		e.n += binary.PutUvarint(tmp[:], v)
		return
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf = append(e.buf, tmp[:n]...)
	e.n += n
}

// Fixed64 appends a little-endian 8-byte integer. Timestamps use fixed
// width so that message sizes are stable and comparable across protocols.
func (e *Encoder) Fixed64(v uint64) {
	e.n += 8
	if e.sizeOnly {
		return
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	e.buf = append(e.buf, tmp[:]...)
}

// Timestamp appends an hlc.Timestamp.
func (e *Encoder) Timestamp(t hlc.Timestamp) { e.Fixed64(uint64(t)) }

// Timestamps appends a length-prefixed timestamp vector.
func (e *Encoder) Timestamps(ts []hlc.Timestamp) {
	e.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		e.Timestamp(t)
	}
}

// Byte appends a single raw byte.
func (e *Encoder) Byte(b byte) { e.writeByte(b) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.writeByte(1)
	} else {
		e.writeByte(0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.n += len(b)
	if e.sizeOnly {
		return
	}
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.n += len(s)
	if e.sizeOnly {
		return
	}
	e.buf = append(e.buf, s...)
}

// Strings appends a length-prefixed string slice.
func (e *Encoder) Strings(ss []string) {
	e.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Decoder reads message fields from a byte slice.
type Decoder struct {
	buf []byte
	off int
	err error
	// copies makes BytesField return an owned copy instead of a slice
	// aliasing buf, so the caller may reuse buf as scratch (DecodeCopy).
	copies bool
}

// NewDecoder returns a Decoder over the given payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first error encountered while decoding.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

// Fixed64 reads a little-endian 8-byte integer.
func (d *Decoder) Fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Timestamp reads an hlc.Timestamp.
func (d *Decoder) Timestamp() hlc.Timestamp { return hlc.Timestamp(d.Fixed64()) }

// Timestamps reads a length-prefixed timestamp vector. A zero-length vector
// decodes as nil.
func (d *Decoder) Timestamps() []hlc.Timestamp {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > maxSliceLen {
		d.fail(ErrTooLarge)
		return nil
	}
	out := make([]hlc.Timestamp, n)
	for i := range out {
		out[i] = d.Timestamp()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Byte reads a single raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// BytesField reads a length-prefixed byte slice. The result aliases the
// input buffer unless the decoder was built by DecodeCopy; aliasing
// callers that retain it must copy.
func (d *Decoder) BytesField() []byte {
	b := d.rawBytes()
	if d.copies && len(b) > 0 {
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	return b
}

// rawBytes reads a length-prefixed byte slice aliasing the input buffer.
func (d *Decoder) rawBytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxSliceLen {
		d.fail(ErrTooLarge)
		return nil
	}
	if d.off+int(n) > len(d.buf) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// String reads a length-prefixed string. The conversion already copies,
// so copy mode never pays twice.
func (d *Decoder) String() string { return string(d.rawBytes()) }

// Strings reads a length-prefixed string slice.
func (d *Decoder) Strings() []string {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if n > maxSliceLen {
		d.fail(ErrTooLarge)
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Encode serializes a message payload (without framing).
func Encode(m Message) []byte {
	e := NewEncoder()
	m.encodeTo(e)
	return e.Bytes()
}

// EncodeInto serializes a message payload into e, appending to whatever e
// already holds. It lets callers reuse pooled encoders and prepend their
// own framing without an intermediate copy.
func EncodeInto(e *Encoder, m Message) {
	m.encodeTo(e)
}

// Size returns the number of bytes the message occupies on the wire,
// including the frame header. This is the quantity the transport layer
// accounts per message class.
func Size(m Message) int {
	e := &Encoder{sizeOnly: true}
	m.encodeTo(e)
	return e.Len() + headerSize
}

// Decode parses a message of the given kind from payload bytes. Byte
// fields of the result alias payload.
func Decode(kind Kind, payload []byte) (Message, error) {
	return decodeWith(kind, &Decoder{buf: payload})
}

// DecodeCopy parses like Decode but deep-copies every byte field out of
// payload, so the caller may immediately reuse payload as scratch for the
// next frame (the TCP read path does, recycling one buffer per
// connection instead of allocating per frame).
func DecodeCopy(kind Kind, payload []byte) (Message, error) {
	return decodeWith(kind, &Decoder{buf: payload, copies: true})
}

func decodeWith(kind Kind, d *Decoder) (Message, error) {
	m, err := newMessage(kind)
	if err != nil {
		return nil, err
	}
	m.decodeFrom(d)
	if d.err != nil {
		return nil, fmt.Errorf("wire: decode %v: %w", kind, d.err)
	}
	return m, nil
}

// sanity check that header constant fits real framing.
var _ = func() int {
	if headerSize != 4+1 {
		panic("headerSize must match TCP framing")
	}
	return 0
}()

// checkLen validates a collection length against limits; used by message
// decoders for nested collections.
func (d *Decoder) checkLen(n uint64) bool {
	if d.err != nil {
		return false
	}
	if n > maxSliceLen {
		d.fail(ErrTooLarge)
		return false
	}
	if n > uint64(math.MaxInt32) {
		d.fail(ErrTooLarge)
		return false
	}
	return true
}
