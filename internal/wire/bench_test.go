package wire

import (
	"testing"

	"wren/internal/hlc"
)

// benchReplicate builds a replication batch representative of the paper's
// workload: 8-byte values, small keys, per-protocol metadata.
func benchReplicate(dcs int) *Replicate {
	tx := ReplTx{
		TxID: 123456, CT: hlc.New(1_000_000, 3), RST: hlc.New(900_000, 1),
		Writes: []KV{{Key: "user00012345", Value: []byte("8bytes!!")}},
	}
	if dcs > 0 {
		tx.DV = make([]hlc.Timestamp, dcs)
		for i := range tx.DV {
			tx.DV[i] = hlc.New(int64(i)*1000, 0)
		}
	}
	return &Replicate{SrcDC: 1, Partition: 4, Txs: []ReplTx{tx}}
}

func BenchmarkEncodeReplicateWren(b *testing.B) {
	m := benchReplicate(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(m)
	}
}

func BenchmarkEncodeReplicateCure5DC(b *testing.B) {
	m := benchReplicate(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(m)
	}
}

func BenchmarkDecodeReplicateWren(b *testing.B) {
	payload := Encode(benchReplicate(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(KindReplicate, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSizeReplicate(b *testing.B) {
	m := benchReplicate(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Size(m)
	}
}

func BenchmarkEncodeStableBroadcastWren(b *testing.B) {
	m := &StableBroadcast{Partition: 3, Local: hlc.New(1, 0), RemoteMin: hlc.New(2, 0)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(m)
	}
}
