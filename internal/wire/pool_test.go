package wire

import (
	"testing"

	"wren/internal/hlc"
)

func TestPooledMessagesResetOnPut(t *testing.T) {
	req := GetSliceReq()
	req.ReqID = 7
	req.LT, req.RT = 10, 20
	req.Keys = append(req.Keys[:0], "a", "b")
	sv := []hlc.Timestamp{1, 2, 3}
	req.SV = sv
	PutSliceReq(req)

	got := GetSliceReq()
	if got.ReqID != 0 || got.LT != 0 || got.RT != 0 || len(got.Keys) != 0 || got.SV != nil {
		t.Fatalf("pooled SliceReq not reset: %+v", got)
	}
	// The SV backing array must never be recycled: it aliases a
	// transaction's snapshot vector on the coordinator.
	got.SV = append(got.SV, 99)
	if sv[0] != 1 {
		t.Fatal("pooled SliceReq reused the caller's SV backing array")
	}
	PutSliceReq(got)

	resp := GetSliceResp()
	resp.ReqID = 9
	resp.BlockedMicros = 5
	resp.Items = append(resp.Items[:0], Item{Key: "k", Value: []byte("v")})
	PutSliceResp(resp)
	if got := GetSliceResp(); got.ReqID != 0 || got.BlockedMicros != 0 || len(got.Items) != 0 {
		t.Fatalf("pooled SliceResp not reset: %+v", got)
	}

	tr := GetTxReadResp()
	tr.ReqID = 11
	tr.Items = append(tr.Items[:0], Item{Key: "k"})
	PutTxReadResp(tr)
	if got := GetTxReadResp(); got.ReqID != 0 || len(got.Items) != 0 {
		t.Fatalf("pooled TxReadResp not reset: %+v", got)
	}
}

// TestSliceRespEncodeAllocs pins the slice-response encode path at zero
// allocations: a pooled encoder reused across frames (the TCP transport's
// steady state) must encode a populated SliceResp without touching the
// heap. Guards the PR 2 frame-encoder win against regression.
func TestSliceRespEncodeAllocs(t *testing.T) {
	items := make([]Item, 8)
	for i := range items {
		items[i] = Item{Key: "user00000001", Value: []byte("12345678"), UT: 12345, RDT: 99, TxID: 7, SrcDC: 1}
	}
	m := &SliceResp{ReqID: 42, Items: items}
	e := NewEncoder()
	e.Reset()
	EncodeInto(e, m) // warm the buffer to steady-state capacity
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		EncodeInto(e, m)
	})
	if allocs > 0 {
		t.Fatalf("pooled SliceResp encode allocates %.1f/op, want 0 (was 7 with a fresh encoder)", allocs)
	}
}

func BenchmarkSliceRespEncodePooled(b *testing.B) {
	items := make([]Item, 8)
	for i := range items {
		items[i] = Item{Key: "user00000001", Value: []byte("12345678"), UT: 12345, RDT: 99, TxID: 7, SrcDC: 1}
	}
	m := &SliceResp{ReqID: 42, Items: items}
	e := NewEncoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		EncodeInto(e, m)
	}
}
