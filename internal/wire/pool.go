package wire

import "sync"

// Read-path message pools. A slice read allocates three messages per hop
// (SliceReq out, SliceResp back, TxReadResp to the client); pooling them —
// together with the caller-buffer store reads and the pooled frame encoder
// — makes the slice-read hot path allocation-free end to end.
//
// Ownership rule: the RECEIVER releases a pooled message. The in-memory
// transport delivers the sender's pointer directly to the receiving
// handler, so the sender must never touch a message after Send; the
// handler calls the matching Put once it has copied what it needs. Over
// the TCP transport the receiver decodes a fresh message and releases that
// one instead; the sender's copy is simply dropped to the GC (a pool miss,
// not a leak). Releasing is always optional — a dropped message is
// reclaimed by the GC like any other.

var (
	sliceReqPool   = sync.Pool{New: func() any { return new(SliceReq) }}
	sliceRespPool  = sync.Pool{New: func() any { return new(SliceResp) }}
	txReadRespPool = sync.Pool{New: func() any { return new(TxReadResp) }}
)

// GetSliceReq returns an empty SliceReq. Keys keeps the capacity of its
// previous use; append into Keys[:0].
func GetSliceReq() *SliceReq { return sliceReqPool.Get().(*SliceReq) }

// PutSliceReq releases m for reuse. The Keys backing array is retained
// (its strings are cleared so it pins nothing); SV is NOT retained — on
// the coordinator it aliases the transaction's snapshot vector, which must
// never be scribbled on by a later user of the pooled message.
func PutSliceReq(m *SliceReq) {
	clearStrings(m.Keys)
	m.Keys = m.Keys[:0]
	*m = SliceReq{Keys: m.Keys}
	sliceReqPool.Put(m)
}

// GetSliceResp returns an empty SliceResp. Items keeps the capacity of its
// previous use; append into Items[:0].
func GetSliceResp() *SliceResp { return sliceRespPool.Get().(*SliceResp) }

// PutSliceResp releases m for reuse, clearing Items so the pooled slot
// does not pin keys and values of a finished read.
func PutSliceResp(m *SliceResp) {
	clearItems(m.Items)
	m.Items = m.Items[:0]
	*m = SliceResp{Items: m.Items}
	sliceRespPool.Put(m)
}

// GetTxReadResp returns an empty TxReadResp. Items keeps the capacity of
// its previous use; append into Items[:0].
func GetTxReadResp() *TxReadResp { return txReadRespPool.Get().(*TxReadResp) }

// PutTxReadResp releases m for reuse. Chunks are dropped to the GC, not
// retained: their backing arrays were detached from SliceResp messages by
// the fan-in's large-read fast path and belong to no pool anymore.
func PutTxReadResp(m *TxReadResp) {
	clearItems(m.Items)
	m.Items = m.Items[:0]
	*m = TxReadResp{Items: m.Items}
	txReadRespPool.Put(m)
}

func clearItems(items []Item) {
	for i := range items {
		items[i] = Item{}
	}
}

func clearStrings(ss []string) {
	for i := range ss {
		ss[i] = ""
	}
}
