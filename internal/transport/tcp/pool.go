package tcp

import (
	"fmt"

	"wren/internal/transport"
	"wren/internal/transport/pool"
)

// ClientPool is a connection pool whose endpoints are dedicated TCP
// networks: `links` sockets per server in total, shared by every session
// bound to the pool, instead of one socket per server per session.
type ClientPool struct {
	*pool.Pool
	nets []*Network
}

// NewClientPool builds a pool of `links` multiplexed TCP endpoints. Each
// endpoint is a pure-client Network (no listen address) dialing the given
// peers; its node id is base with the node index offset by the link
// number, so the ids of one pool form a contiguous, collision-free block.
// cfg is used as a template: Self and ListenAddr are overridden per link.
func NewClientPool(cfg Config, base transport.NodeID, links int) (*ClientPool, error) {
	if links <= 0 {
		return nil, fmt.Errorf("tcp: pool needs at least one link, got %d", links)
	}
	cp := &ClientPool{}
	eps := make([]pool.Endpoint, 0, links)
	for i := 0; i < links; i++ {
		c := cfg
		c.Self = transport.NodeID{DC: base.DC, Node: base.Node + i}
		c.ListenAddr = ""
		n, err := New(c)
		if err != nil {
			cp.closeNets()
			return nil, err
		}
		cp.nets = append(cp.nets, n)
		eps = append(eps, pool.Endpoint{ID: c.Self, Net: n})
	}
	p, err := pool.New(eps)
	if err != nil {
		cp.closeNets()
		return nil, err
	}
	cp.Pool = p
	return cp, nil
}

// Close shuts down the demux and every link network.
func (cp *ClientPool) Close() {
	if cp.Pool != nil {
		cp.Pool.Close()
	}
	cp.closeNets()
}

func (cp *ClientPool) closeNets() {
	for _, n := range cp.nets {
		n.Close()
	}
}
