// Package tcp implements transport.Network over real TCP sockets, so the
// same partition servers that run in the in-process simulator can be
// deployed as separate OS processes (cmd/wren-server) talked to by real
// clients (cmd/wren-cli).
//
// Framing: every message is [4-byte big-endian frame length][1-byte kind]
// [4-byte from.DC][4-byte from.Node][payload]. One persistent connection is
// kept per destination; writes are serialized per connection, preserving
// the FIFO channel assumption of the protocols. Responses to clients reuse
// the inbound connection the request arrived on, so clients need no listen
// address.
//
// Links self-heal. Each configured peer gets a dedicated writer goroutine
// draining a bounded outbound queue; when a write or read fails the
// connection is torn down and the writer redials with capped exponential
// backoff plus jitter, bumping the link's epoch on every successful
// (re)establishment. A frame that failed mid-write is resent on the next
// epoch — delivery is at-least-once across reconnects, and the protocols
// deduplicate. When the queue is full, Send sheds the message with
// transport.ErrOverloaded instead of blocking the caller. Dead learned
// (inbound) connections are evicted immediately, never poisoning a route.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/transport"
	"wren/internal/wire"
)

const (
	headerLen    = 4 + 1 + 4 + 4
	maxFrameSize = 64 << 20
	// maxRetainedReadBuf caps the per-connection read scratch kept between
	// frames; a rare huge frame doesn't pin its buffer forever.
	maxRetainedReadBuf = 1 << 20
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("tcp: network closed")

// ErrNoRoute is returned when no address or learned connection exists for
// the destination.
var ErrNoRoute = errors.New("tcp: no route to destination")

// Config configures one process's endpoint.
type Config struct {
	// Self is this process's node id.
	Self transport.NodeID
	// ListenAddr is the TCP address to accept peer connections on; empty
	// for pure-client processes that never receive unsolicited messages.
	ListenAddr string
	// Peers maps node ids to their listen addresses.
	Peers map[transport.NodeID]string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s). A stalled peer
	// fails the write, tearing the connection down for redial, instead of
	// wedging the writer goroutine forever.
	WriteTimeout time.Duration
	// MaxQueuedFrames bounds each peer's outbound queue (default 1024).
	// When full, Send returns transport.ErrOverloaded.
	MaxQueuedFrames int
	// RedialBackoff is the base delay before the first redial attempt
	// (default 50ms); it doubles per consecutive failure up to
	// RedialBackoffCap (default 2s), with uniform jitter in [0.5x, 1.5x).
	RedialBackoff    time.Duration
	RedialBackoffCap time.Duration
}

// Stats counts connection lifecycle events since the network was created.
type Stats struct {
	Dials      uint64 // successful connection establishments
	Redials    uint64 // subset of Dials that replaced a failed connection
	Evictions  uint64 // connections torn down after a read/write error
	Overloaded uint64 // sends shed because a peer queue was full
}

// Network is a TCP-backed transport.Network for a single local node.
type Network struct {
	cfg      Config
	listener net.Listener

	mu      sync.Mutex
	handler transport.Handler // handler for Self
	peers   map[transport.NodeID]*peer
	learned map[transport.NodeID]*peerConn // inbound connections by sender
	conns   map[*peerConn]struct{}         // every live connection; pruned on close
	closed  bool

	dials, redials, evictions, overloaded atomic.Uint64

	wg sync.WaitGroup
}

var _ transport.Network = (*Network)(nil)

// New creates the endpoint and, if ListenAddr is set, starts accepting.
func New(cfg Config) (*Network, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.MaxQueuedFrames == 0 {
		cfg.MaxQueuedFrames = 1024
	}
	if cfg.RedialBackoff == 0 {
		cfg.RedialBackoff = 50 * time.Millisecond
	}
	if cfg.RedialBackoffCap == 0 {
		cfg.RedialBackoffCap = 2 * time.Second
	}
	n := &Network{
		cfg:     cfg,
		peers:   make(map[transport.NodeID]*peer),
		learned: make(map[transport.NodeID]*peerConn),
		conns:   make(map[*peerConn]struct{}),
	}
	if cfg.ListenAddr != "" {
		l, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.ListenAddr, err)
		}
		n.listener = l
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *Network) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Register implements transport.Network. Only the local node can be
// registered.
func (n *Network) Register(id transport.NodeID, h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id == n.cfg.Self {
		n.handler = h
	}
}

// Stats returns a snapshot of the connection lifecycle counters.
func (n *Network) Stats() Stats {
	return Stats{
		Dials:      n.dials.Load(),
		Redials:    n.redials.Load(),
		Evictions:  n.evictions.Load(),
		Overloaded: n.overloaded.Load(),
	}
}

// Epoch reports how many times the managed connection to the given peer
// has been successfully (re)established; zero when never connected.
func (n *Network) Epoch(to transport.NodeID) uint64 {
	n.mu.Lock()
	p := n.peers[to]
	n.mu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Send implements transport.Network.
func (n *Network) Send(from, to transport.NodeID, m wire.Message) error {
	if to == n.cfg.Self {
		n.mu.Lock()
		h := n.handler
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if h != nil {
			// Local loopback keeps handler semantics asynchronous-ish but
			// simple; server handlers never block.
			h.HandleMessage(from, m)
		}
		return nil
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if addr, ok := n.cfg.Peers[to]; ok {
		p := n.peers[to]
		if p == nil {
			p = newPeer(n, to, addr)
			n.peers[to] = p
		}
		n.mu.Unlock()
		return p.enqueue(outMsg{from: from, m: m})
	}
	pc := n.learned[to]
	n.mu.Unlock()
	if pc == nil {
		return fmt.Errorf("%w: %v", ErrNoRoute, to)
	}
	// Learned (inbound) connections have no writer goroutine: replies are
	// written synchronously under a deadline, and a dead connection is
	// evicted so the next request's connection can be learned fresh.
	if err := pc.write(from, m, n.cfg.WriteTimeout); err != nil {
		n.evictions.Add(1)
		n.forgetConn(pc, nil)
		return fmt.Errorf("tcp: write to %v: %w", to, err)
	}
	return nil
}

// Close implements transport.Network.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	conns := make([]*peerConn, 0, len(n.conns))
	for pc := range n.conns {
		conns = append(conns, pc)
	}
	listener := n.listener
	n.mu.Unlock()

	if listener != nil {
		_ = listener.Close()
	}
	for _, p := range peers {
		p.close()
	}
	for _, pc := range conns {
		pc.close()
	}
	n.wg.Wait()
}

func (n *Network) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		pc := newPeerConn(conn)
		if !n.trackConn(pc) {
			pc.close()
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(pc, nil)
		}()
	}
}

// trackConn records a live connection for Close; false when already closed.
func (n *Network) trackConn(pc *peerConn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[pc] = struct{}{}
	return true
}

// forgetConn closes pc and removes every route through it: the live-conn
// set, any learned entries, and the owning peer's current connection (so
// the next queued frame redials immediately instead of failing first).
func (n *Network) forgetConn(pc *peerConn, owner *peer) {
	pc.close()
	n.mu.Lock()
	delete(n.conns, pc)
	for id, l := range n.learned {
		if l == pc {
			delete(n.learned, id)
		}
	}
	n.mu.Unlock()
	if owner != nil {
		owner.mu.Lock()
		if owner.conn == pc {
			owner.conn = nil
		}
		owner.mu.Unlock()
	}
}

// readLoop decodes frames and dispatches them to the local handler,
// learning the sender's identity so replies can reuse the connection.
// owner is non-nil for managed (dialed) connections.
func (n *Network) readLoop(pc *peerConn, owner *peer) {
	defer n.forgetConn(pc, owner)
	for {
		from, msg, err := pc.read()
		if err != nil {
			return
		}
		n.mu.Lock()
		if _, hasAddr := n.cfg.Peers[from]; !hasAddr {
			// No configured route back: remember this connection. A fresh
			// connection from the same sender (e.g. a restarted client)
			// replaces the old entry.
			if n.learned[from] != pc {
				n.learned[from] = pc
			}
		}
		h := n.handler
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h.HandleMessage(from, msg)
		}
	}
}

// outMsg is one queued outbound message; frames are encoded at write time
// so the pooled encoder keeps the steady-state path allocation-free.
type outMsg struct {
	from transport.NodeID
	m    wire.Message
}

// peer manages the self-healing link to one configured destination.
type peer struct {
	n    *Network
	to   transport.NodeID
	addr string

	mu     sync.Mutex
	q      []outMsg
	conn   *peerConn // current epoch's connection, nil while down
	epoch  uint64
	closed bool

	notify chan struct{}
	done   chan struct{}
}

func newPeer(n *Network, to transport.NodeID, addr string) *peer {
	p := &peer{
		n:      n,
		to:     to,
		addr:   addr,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		p.run()
	}()
	return p
}

func (p *peer) enqueue(msg outMsg) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if len(p.q) >= p.n.cfg.MaxQueuedFrames {
		p.mu.Unlock()
		p.n.overloaded.Add(1)
		return fmt.Errorf("%w: %d frames queued to %v", transport.ErrOverloaded, p.n.cfg.MaxQueuedFrames, p.to)
	}
	p.q = append(p.q, msg)
	p.mu.Unlock()
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return nil
}

func (p *peer) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pc := p.conn
	p.conn = nil
	p.q = nil
	p.mu.Unlock()
	close(p.done)
	if pc != nil {
		pc.close()
	}
}

// run is the writer loop: peek the head frame, ensure a live connection
// (redialing with backoff as needed), write, and only then pop — a frame
// that fails mid-write is retried on the next connection epoch.
func (p *peer) run() {
	for {
		msg, ok := p.peek()
		if !ok {
			return
		}
		pc := p.ensureConn()
		if pc == nil {
			return // closed while (re)dialing
		}
		if err := pc.write(msg.from, msg.m, p.n.cfg.WriteTimeout); err != nil {
			p.n.evictions.Add(1)
			p.n.forgetConn(pc, p)
			continue // redial and resend the same frame
		}
		p.pop()
	}
}

// peek blocks until a frame is queued, returning false when closed.
func (p *peer) peek() (outMsg, bool) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return outMsg{}, false
		}
		if len(p.q) > 0 {
			msg := p.q[0]
			p.mu.Unlock()
			return msg, true
		}
		p.mu.Unlock()
		select {
		case <-p.notify:
		case <-p.done:
			return outMsg{}, false
		}
	}
}

func (p *peer) pop() {
	p.mu.Lock()
	if len(p.q) > 0 {
		copy(p.q, p.q[1:])
		p.q[len(p.q)-1] = outMsg{}
		p.q = p.q[:len(p.q)-1]
	}
	p.mu.Unlock()
}

// ensureConn returns the live connection, dialing with capped exponential
// backoff plus jitter until it succeeds or the peer closes (nil).
func (p *peer) ensureConn() *peerConn {
	p.mu.Lock()
	pc := p.conn
	p.mu.Unlock()
	if pc != nil {
		return pc
	}

	backoff := p.n.cfg.RedialBackoff
	for {
		d := net.Dialer{Timeout: p.n.cfg.DialTimeout, Cancel: p.done}
		conn, err := d.Dial("tcp", p.addr)
		if err == nil {
			pc = newPeerConn(conn)
			if !p.n.trackConn(pc) {
				pc.close()
				return nil
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				pc.close()
				return nil
			}
			p.conn = pc
			p.epoch++
			redial := p.epoch > 1
			p.mu.Unlock()
			p.n.dials.Add(1)
			if redial {
				p.n.redials.Add(1)
			}
			// Servers reply over the connection the request came from, so
			// read it too.
			p.n.wg.Add(1)
			go func() {
				defer p.n.wg.Done()
				p.n.readLoop(pc, p)
			}()
			return pc
		}
		select {
		case <-p.done:
			return nil
		default:
		}
		// Uniform jitter in [0.5x, 1.5x) de-synchronizes a fleet of
		// peers redialing the same restarted server.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-time.After(sleep):
		case <-p.done:
			return nil
		}
		if backoff *= 2; backoff > p.n.cfg.RedialBackoffCap {
			backoff = p.n.cfg.RedialBackoffCap
		}
	}
}

// peerConn wraps one TCP connection with serialized framed writes and a
// reusable read buffer.
type peerConn struct {
	conn net.Conn

	writeMu sync.Mutex

	readMu  sync.Mutex
	readBuf []byte // scratch reused across frames; decoded with DecodeCopy

	closeOnce sync.Once
}

func newPeerConn(c net.Conn) *peerConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &peerConn{conn: c}
}

// encPool recycles frame encoders across connections: steady-state framing
// costs zero allocations instead of one encoder plus one payload plus one
// frame buffer per message.
var encPool = sync.Pool{New: func() any { return wire.NewEncoder() }}

// encodeFrame serializes m with its frame header into enc's reused buffer:
// [4-byte length][1-byte kind][4-byte from.DC][4-byte from.Node][payload].
func encodeFrame(enc *wire.Encoder, from transport.NodeID, m wire.Message) []byte {
	enc.Reset()
	enc.Reserve(headerLen)
	wire.EncodeInto(enc, m)
	frame := enc.Bytes()
	payloadLen := len(frame) - headerLen
	binary.BigEndian.PutUint32(frame[0:4], uint32(1+4+4+payloadLen))
	frame[4] = byte(m.Kind())
	binary.BigEndian.PutUint32(frame[5:9], uint32(int32(from.DC)))
	binary.BigEndian.PutUint32(frame[9:13], uint32(int32(from.Node)))
	return frame
}

func (pc *peerConn) write(from transport.NodeID, m wire.Message, timeout time.Duration) error {
	enc := encPool.Get().(*wire.Encoder)
	frame := encodeFrame(enc, from, m)

	pc.writeMu.Lock()
	if timeout > 0 {
		_ = pc.conn.SetWriteDeadline(time.Now().Add(timeout))
	}
	_, err := pc.conn.Write(frame)
	pc.writeMu.Unlock()
	encPool.Put(enc)
	return err
}

// read decodes one frame. The frame body lands in a per-connection scratch
// buffer reused across frames; the message is decoded with copy semantics
// (wire.DecodeCopy) so nothing retained by handlers aliases the scratch.
func (pc *peerConn) read() (transport.NodeID, wire.Message, error) {
	pc.readMu.Lock()
	defer pc.readMu.Unlock()

	var lenBuf [4]byte
	if _, err := io.ReadFull(pc.conn, lenBuf[:]); err != nil {
		return transport.NodeID{}, nil, err
	}
	frameLen := binary.BigEndian.Uint32(lenBuf[:])
	if frameLen < 9 || frameLen > maxFrameSize {
		return transport.NodeID{}, nil, fmt.Errorf("tcp: bad frame length %d", frameLen)
	}
	if cap(pc.readBuf) < int(frameLen) ||
		(cap(pc.readBuf) > maxRetainedReadBuf && frameLen <= maxRetainedReadBuf) {
		pc.readBuf = make([]byte, frameLen)
	}
	body := pc.readBuf[:frameLen]
	if _, err := io.ReadFull(pc.conn, body); err != nil {
		return transport.NodeID{}, nil, err
	}
	kind := wire.Kind(body[0])
	from := transport.NodeID{
		DC:   int(int32(binary.BigEndian.Uint32(body[1:5]))),
		Node: int(int32(binary.BigEndian.Uint32(body[5:9]))),
	}
	msg, err := wire.DecodeCopy(kind, body[9:])
	if err != nil {
		return transport.NodeID{}, nil, err
	}
	return from, msg, nil
}

func (pc *peerConn) close() {
	pc.closeOnce.Do(func() { _ = pc.conn.Close() })
}
