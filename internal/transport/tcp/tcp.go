// Package tcp implements transport.Network over real TCP sockets, so the
// same partition servers that run in the in-process simulator can be
// deployed as separate OS processes (cmd/wren-server) talked to by real
// clients (cmd/wren-cli).
//
// Framing: every message is [4-byte big-endian frame length][1-byte kind]
// [4-byte from.DC][4-byte from.Node][payload]. One persistent connection is
// kept per destination; writes are serialized per connection, preserving
// the FIFO channel assumption of the protocols. Responses to clients reuse
// the inbound connection the request arrived on, so clients need no listen
// address.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"wren/internal/transport"
	"wren/internal/wire"
)

const (
	headerLen    = 4 + 1 + 4 + 4
	maxFrameSize = 64 << 20
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("tcp: network closed")

// ErrNoRoute is returned when no address or learned connection exists for
// the destination.
var ErrNoRoute = errors.New("tcp: no route to destination")

// Config configures one process's endpoint.
type Config struct {
	// Self is this process's node id.
	Self transport.NodeID
	// ListenAddr is the TCP address to accept peer connections on; empty
	// for pure-client processes that never receive unsolicited messages.
	ListenAddr string
	// Peers maps node ids to their listen addresses.
	Peers map[transport.NodeID]string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// Network is a TCP-backed transport.Network for a single local node.
type Network struct {
	cfg      Config
	listener net.Listener

	mu       sync.Mutex
	handler  transport.Handler // handler for Self
	outbound map[transport.NodeID]*peerConn
	learned  map[transport.NodeID]*peerConn // inbound connections by sender
	allConns []*peerConn                    // every connection ever opened
	closed   bool

	wg sync.WaitGroup
}

var _ transport.Network = (*Network)(nil)

// New creates the endpoint and, if ListenAddr is set, starts accepting.
func New(cfg Config) (*Network, error) {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	n := &Network{
		cfg:      cfg,
		outbound: make(map[transport.NodeID]*peerConn),
		learned:  make(map[transport.NodeID]*peerConn),
	}
	if cfg.ListenAddr != "" {
		l, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.ListenAddr, err)
		}
		n.listener = l
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *Network) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Register implements transport.Network. Only the local node can be
// registered.
func (n *Network) Register(id transport.NodeID, h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if id == n.cfg.Self {
		n.handler = h
	}
}

// Send implements transport.Network.
func (n *Network) Send(from, to transport.NodeID, m wire.Message) error {
	if to == n.cfg.Self {
		n.mu.Lock()
		h := n.handler
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if h != nil {
			// Local loopback keeps handler semantics asynchronous-ish but
			// simple; server handlers never block.
			h.HandleMessage(from, m)
		}
		return nil
	}
	pc, err := n.connTo(to)
	if err != nil {
		return err
	}
	return pc.write(from, m)
}

func (n *Network) connTo(to transport.NodeID) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if pc, ok := n.outbound[to]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	if pc, ok := n.learned[to]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.cfg.Peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoRoute, to)
	}

	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tcp: dial %v at %s: %w", to, addr, err)
	}
	pc := newPeerConn(conn)

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.outbound[to]; ok {
		// Lost a dial race; keep the first connection.
		n.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	n.outbound[to] = pc
	n.allConns = append(n.allConns, pc)
	n.mu.Unlock()

	// Read responses arriving on this outbound connection too (servers
	// reply over the connection the request came from).
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(pc)
	}()
	return pc, nil
}

// Close implements transport.Network.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := make([]*peerConn, len(n.allConns))
	copy(conns, n.allConns)
	listener := n.listener
	n.mu.Unlock()

	if listener != nil {
		_ = listener.Close()
	}
	for _, pc := range conns {
		pc.close()
	}
	n.wg.Wait()
}

func (n *Network) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		pc := newPeerConn(conn)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			pc.close()
			return
		}
		n.allConns = append(n.allConns, pc)
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.readLoop(pc)
		}()
	}
}

// readLoop decodes frames and dispatches them to the local handler,
// learning the sender's identity so replies can reuse the connection.
func (n *Network) readLoop(pc *peerConn) {
	defer pc.close()
	for {
		from, msg, err := pc.read()
		if err != nil {
			return
		}
		n.mu.Lock()
		if _, known := n.learned[from]; !known {
			if _, out := n.outbound[from]; !out {
				n.learned[from] = pc
			}
		}
		h := n.handler
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h.HandleMessage(from, msg)
		}
	}
}

// peerConn wraps one TCP connection with serialized framed writes.
type peerConn struct {
	conn net.Conn

	writeMu sync.Mutex
	readMu  sync.Mutex

	closeOnce sync.Once
}

func newPeerConn(c net.Conn) *peerConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &peerConn{conn: c}
}

// encPool recycles frame encoders across connections: steady-state framing
// costs zero allocations instead of one encoder plus one payload plus one
// frame buffer per message.
var encPool = sync.Pool{New: func() any { return wire.NewEncoder() }}

// encodeFrame serializes m with its frame header into enc's reused buffer:
// [4-byte length][1-byte kind][4-byte from.DC][4-byte from.Node][payload].
func encodeFrame(enc *wire.Encoder, from transport.NodeID, m wire.Message) []byte {
	enc.Reset()
	enc.Reserve(headerLen)
	wire.EncodeInto(enc, m)
	frame := enc.Bytes()
	payloadLen := len(frame) - headerLen
	binary.BigEndian.PutUint32(frame[0:4], uint32(1+4+4+payloadLen))
	frame[4] = byte(m.Kind())
	binary.BigEndian.PutUint32(frame[5:9], uint32(int32(from.DC)))
	binary.BigEndian.PutUint32(frame[9:13], uint32(int32(from.Node)))
	return frame
}

func (pc *peerConn) write(from transport.NodeID, m wire.Message) error {
	enc := encPool.Get().(*wire.Encoder)
	frame := encodeFrame(enc, from, m)

	pc.writeMu.Lock()
	_, err := pc.conn.Write(frame)
	pc.writeMu.Unlock()
	encPool.Put(enc)
	return err
}

func (pc *peerConn) read() (transport.NodeID, wire.Message, error) {
	pc.readMu.Lock()
	defer pc.readMu.Unlock()

	var lenBuf [4]byte
	if _, err := io.ReadFull(pc.conn, lenBuf[:]); err != nil {
		return transport.NodeID{}, nil, err
	}
	frameLen := binary.BigEndian.Uint32(lenBuf[:])
	if frameLen < 9 || frameLen > maxFrameSize {
		return transport.NodeID{}, nil, fmt.Errorf("tcp: bad frame length %d", frameLen)
	}
	body := make([]byte, frameLen)
	if _, err := io.ReadFull(pc.conn, body); err != nil {
		return transport.NodeID{}, nil, err
	}
	kind := wire.Kind(body[0])
	from := transport.NodeID{
		DC:   int(int32(binary.BigEndian.Uint32(body[1:5]))),
		Node: int(int32(binary.BigEndian.Uint32(body[5:9]))),
	}
	msg, err := wire.Decode(kind, body[9:])
	if err != nil {
		return transport.NodeID{}, nil, err
	}
	return from, msg, nil
}

func (pc *peerConn) close() {
	pc.closeOnce.Do(func() { _ = pc.conn.Close() })
}
