package tcp

import (
	"fmt"
	"testing"
	"time"

	"wren/internal/core"
	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	recvA := make(chan wire.Message, 16)
	a, err := New(Config{
		Self:       transport.ServerID(0, 0),
		ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Register(transport.ServerID(0, 0), transport.HandlerFunc(
		func(from transport.NodeID, m wire.Message) { recvA <- m }))

	recvB := make(chan wire.Message, 16)
	b, err := New(Config{
		Self:       transport.ServerID(0, 1),
		ListenAddr: "127.0.0.1:0",
		Peers: map[transport.NodeID]string{
			transport.ServerID(0, 0): a.Addr(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Register(transport.ServerID(0, 1), transport.HandlerFunc(
		func(from transport.NodeID, m wire.Message) { recvB <- m }))

	// B -> A over a dialed connection.
	want := &wire.Heartbeat{SrcDC: 3, Partition: 7, TS: hlc.New(123, 4)}
	if err := b.Send(transport.ServerID(0, 1), transport.ServerID(0, 0), want); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-recvA:
		got := m.(*wire.Heartbeat)
		if got.TS != want.TS || got.SrcDC != want.SrcDC {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for frame")
	}

	// A -> B over the learned (inbound) connection: A has no peer entry
	// for B, so the reply must reuse the connection B opened.
	reply := &wire.CommitTx{TxID: 9, CT: hlc.New(55, 0)}
	if err := a.Send(transport.ServerID(0, 0), transport.ServerID(0, 1), reply); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-recvB:
		got := m.(*wire.CommitTx)
		if got.TxID != 9 || got.CT != hlc.New(55, 0) {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for learned-route reply")
	}
}

func TestFIFOOverTCP(t *testing.T) {
	recv := make(chan uint64, 1024)
	a, err := New(Config{Self: transport.ServerID(0, 0), ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Register(transport.ServerID(0, 0), transport.HandlerFunc(
		func(_ transport.NodeID, m wire.Message) { recv <- m.(*wire.CommitTx).TxID }))

	b, err := New(Config{
		Self:  transport.ServerID(0, 1),
		Peers: map[transport.NodeID]string{transport.ServerID(0, 0): a.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const count = 500
	for i := uint64(0); i < count; i++ {
		if err := b.Send(transport.ServerID(0, 1), transport.ServerID(0, 0),
			&wire.CommitTx{TxID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < count; i++ {
		select {
		case got := <-recv:
			if got != i {
				t.Fatalf("FIFO violated: got %d, want %d", got, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at message %d", i)
		}
	}
}

func TestSendNoRoute(t *testing.T) {
	n, err := New(Config{Self: transport.ServerID(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	err = n.Send(transport.ServerID(0, 0), transport.ServerID(0, 9), &wire.Heartbeat{})
	if err == nil {
		t.Fatal("expected no-route error")
	}
}

func TestSendAfterClose(t *testing.T) {
	n, err := New(Config{Self: transport.ServerID(0, 0), ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if err := n.Send(transport.ServerID(0, 0), transport.ServerID(0, 0), &wire.Heartbeat{}); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	n.Close() // idempotent
}

// TestWrenOverTCP runs a real 1-DC, 2-partition Wren deployment over TCP
// sockets with a TCP client — the cmd/wren-server + cmd/wren-cli path.
func TestWrenOverTCP(t *testing.T) {
	const (
		dcs   = 1
		parts = 2
	)
	// First pass: bind listeners to learn addresses.
	nets := make([]*Network, parts)
	addrs := make(map[transport.NodeID]string, parts)
	for p := 0; p < parts; p++ {
		n, err := New(Config{Self: transport.ServerID(0, p), ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nets[p] = n
		addrs[transport.ServerID(0, p)] = n.Addr()
	}
	// Inject full peer maps (every server knows every other).
	for p := 0; p < parts; p++ {
		nets[p].cfg.Peers = addrs
	}

	servers := make([]*core.Server, parts)
	for p := 0; p < parts; p++ {
		srv, err := core.NewServer(core.ServerConfig{
			DC: 0, Partition: p, NumDCs: dcs, NumPartitions: parts,
			Network:        nets[p],
			ApplyInterval:  time.Millisecond,
			GossipInterval: time.Millisecond,
			GCInterval:     -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		defer srv.Stop()
		servers[p] = srv
	}

	cliNet, err := New(Config{
		Self:  transport.ClientID(0, 1),
		Peers: addrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cliNet.Close()
	client, err := core.NewClient(core.ClientConfig{
		DC: 0, ClientIndex: 1, NumPartitions: parts,
		Network:              cliNet,
		CoordinatorPartition: 0,
		RequestTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tx.Write(fmt.Sprintf("tcp-key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ct, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ct == 0 {
		t.Fatal("commit over TCP returned zero timestamp")
	}

	tx2, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx2.Read("tcp-key-0", "tcp-key-1", "tcp-key-2", "tcp-key-3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if string(got[fmt.Sprintf("tcp-key-%d", i)]) != "v" {
			t.Fatalf("missing key %d over TCP: %v", i, got)
		}
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}
