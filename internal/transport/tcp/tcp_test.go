package tcp

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"wren/internal/core"
	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	recvA := make(chan wire.Message, 16)
	a, err := New(Config{
		Self:       transport.ServerID(0, 0),
		ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Register(transport.ServerID(0, 0), transport.HandlerFunc(
		func(from transport.NodeID, m wire.Message) { recvA <- m }))

	recvB := make(chan wire.Message, 16)
	b, err := New(Config{
		Self:       transport.ServerID(0, 1),
		ListenAddr: "127.0.0.1:0",
		Peers: map[transport.NodeID]string{
			transport.ServerID(0, 0): a.Addr(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Register(transport.ServerID(0, 1), transport.HandlerFunc(
		func(from transport.NodeID, m wire.Message) { recvB <- m }))

	// B -> A over a dialed connection.
	want := &wire.Heartbeat{SrcDC: 3, Partition: 7, TS: hlc.New(123, 4)}
	if err := b.Send(transport.ServerID(0, 1), transport.ServerID(0, 0), want); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-recvA:
		got := m.(*wire.Heartbeat)
		if got.TS != want.TS || got.SrcDC != want.SrcDC {
			t.Fatalf("got %+v, want %+v", got, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for frame")
	}

	// A -> B over the learned (inbound) connection: A has no peer entry
	// for B, so the reply must reuse the connection B opened.
	reply := &wire.CommitTx{TxID: 9, CT: hlc.New(55, 0)}
	if err := a.Send(transport.ServerID(0, 0), transport.ServerID(0, 1), reply); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-recvB:
		got := m.(*wire.CommitTx)
		if got.TxID != 9 || got.CT != hlc.New(55, 0) {
			t.Fatalf("got %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for learned-route reply")
	}
}

func TestFIFOOverTCP(t *testing.T) {
	recv := make(chan uint64, 1024)
	a, err := New(Config{Self: transport.ServerID(0, 0), ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Register(transport.ServerID(0, 0), transport.HandlerFunc(
		func(_ transport.NodeID, m wire.Message) { recv <- m.(*wire.CommitTx).TxID }))

	b, err := New(Config{
		Self:  transport.ServerID(0, 1),
		Peers: map[transport.NodeID]string{transport.ServerID(0, 0): a.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const count = 500
	for i := uint64(0); i < count; i++ {
		if err := b.Send(transport.ServerID(0, 1), transport.ServerID(0, 0),
			&wire.CommitTx{TxID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < count; i++ {
		select {
		case got := <-recv:
			if got != i {
				t.Fatalf("FIFO violated: got %d, want %d", got, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at message %d", i)
		}
	}
}

func TestSendNoRoute(t *testing.T) {
	n, err := New(Config{Self: transport.ServerID(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	err = n.Send(transport.ServerID(0, 0), transport.ServerID(0, 9), &wire.Heartbeat{})
	if err == nil {
		t.Fatal("expected no-route error")
	}
}

func TestSendAfterClose(t *testing.T) {
	n, err := New(Config{Self: transport.ServerID(0, 0), ListenAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if err := n.Send(transport.ServerID(0, 0), transport.ServerID(0, 0), &wire.Heartbeat{}); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	n.Close() // idempotent
}

// TestWrenOverTCP runs a real 1-DC, 2-partition Wren deployment over TCP
// sockets with a TCP client — the cmd/wren-server + cmd/wren-cli path.
func TestWrenOverTCP(t *testing.T) {
	const (
		dcs   = 1
		parts = 2
	)
	// First pass: bind listeners to learn addresses.
	nets := make([]*Network, parts)
	addrs := make(map[transport.NodeID]string, parts)
	for p := 0; p < parts; p++ {
		n, err := New(Config{Self: transport.ServerID(0, p), ListenAddr: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nets[p] = n
		addrs[transport.ServerID(0, p)] = n.Addr()
	}
	// Inject full peer maps (every server knows every other).
	for p := 0; p < parts; p++ {
		nets[p].cfg.Peers = addrs
	}

	servers := make([]*core.Server, parts)
	for p := 0; p < parts; p++ {
		srv, err := core.NewServer(core.ServerConfig{
			DC: 0, Partition: p, NumDCs: dcs, NumPartitions: parts,
			Network:        nets[p],
			ApplyInterval:  time.Millisecond,
			GossipInterval: time.Millisecond,
			GCInterval:     -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		defer srv.Stop()
		servers[p] = srv
	}

	cliNet, err := New(Config{
		Self:  transport.ClientID(0, 1),
		Peers: addrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cliNet.Close()
	client, err := core.NewClient(core.ClientConfig{
		DC: 0, ClientIndex: 1, NumPartitions: parts,
		Network:              cliNet,
		CoordinatorPartition: 0,
		RequestTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	tx, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := tx.Write(fmt.Sprintf("tcp-key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ct, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ct == 0 {
		t.Fatal("commit over TCP returned zero timestamp")
	}

	tx2, err := client.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx2.Read("tcp-key-0", "tcp-key-1", "tcp-key-2", "tcp-key-3")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if string(got[fmt.Sprintf("tcp-key-%d", i)]) != "v" {
			t.Fatalf("missing key %d over TCP: %v", i, got)
		}
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// startEchoServer runs a Network at listen that echoes every Heartbeat
// back to its sender over the learned (inbound) connection.
func startEchoServer(t *testing.T, self transport.NodeID, listen string) *Network {
	t.Helper()
	var s *Network
	var err error
	// A just-closed listener's port can linger briefly; retry the bind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err = New(Config{Self: self, ListenAddr: listen})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", listen, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.Register(self, transport.HandlerFunc(func(from transport.NodeID, m wire.Message) {
		if hb, ok := m.(*wire.Heartbeat); ok {
			_ = s.Send(self, from, &wire.Heartbeat{TS: hb.TS})
		}
	}))
	return s
}

// TestReconnectAfterServerRestart kills and restarts the server on the
// same address mid-session: the client's managed link must redial
// transparently (new connection epoch) and serve the next request without
// the client being recreated.
func TestReconnectAfterServerRestart(t *testing.T) {
	srvID := transport.ServerID(0, 0)
	cliID := transport.ClientID(0, 1)

	s1 := startEchoServer(t, srvID, "127.0.0.1:0")
	addr := s1.Addr()

	cli, err := New(Config{
		Self:          cliID,
		Peers:         map[transport.NodeID]string{srvID: addr},
		RedialBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	echoes := make(chan hlc.Timestamp, 64)
	cli.Register(cliID, transport.HandlerFunc(func(_ transport.NodeID, m wire.Message) {
		echoes <- m.(*wire.Heartbeat).TS
	}))

	if err := cli.Send(cliID, srvID, &wire.Heartbeat{TS: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-echoes:
	case <-time.After(5 * time.Second):
		t.Fatal("no echo before restart")
	}

	s1.Close()
	time.Sleep(50 * time.Millisecond) // let the client observe the EOF
	s2 := startEchoServer(t, srvID, addr)
	defer s2.Close()

	// The same client object must reach the restarted server. A frame
	// written into the dying socket before the failure was observed can
	// be lost by TCP itself, so resend until the echo arrives.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := cli.Send(cliID, srvID, &wire.Heartbeat{TS: 2}); err != nil {
			t.Fatalf("Send after restart: %v", err)
		}
		select {
		case <-echoes:
		case <-time.After(250 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("restarted server never served the reconnected client")
			}
			continue
		}
		break
	}

	if got := cli.Epoch(srvID); got < 2 {
		t.Fatalf("expected a new connection epoch after restart, epoch=%d", got)
	}
	if st := cli.Stats(); st.Redials == 0 {
		t.Fatalf("expected redials after restart, stats=%+v", st)
	}
}

// TestLearnedConnEvictionOnClientRestart is the learned-route variant:
// when the client side of an inbound connection goes away, the server's
// learned entry must be evicted (not poison the route), and a new
// connection from the same node id must be learned and served.
func TestLearnedConnEvictionOnClientRestart(t *testing.T) {
	srvID := transport.ServerID(0, 0)
	cliID := transport.ClientID(0, 1)

	srv := startEchoServer(t, srvID, "127.0.0.1:0")
	defer srv.Close()
	peers := map[transport.NodeID]string{srvID: srv.Addr()}

	roundTrip := func(cli *Network, echoes chan hlc.Timestamp, ts hlc.Timestamp) {
		t.Helper()
		if err := cli.Send(cliID, srvID, &wire.Heartbeat{TS: ts}); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-echoes:
			if got != ts {
				t.Fatalf("echo = %v, want %v", got, ts)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no echo for ts=%v", ts)
		}
	}

	cli1, err := New(Config{Self: cliID, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	echoes1 := make(chan hlc.Timestamp, 4)
	cli1.Register(cliID, transport.HandlerFunc(func(_ transport.NodeID, m wire.Message) {
		echoes1 <- m.(*wire.Heartbeat).TS
	}))
	roundTrip(cli1, echoes1, 1)

	cli1.Close()
	// The dead learned entry must be evicted rather than cached forever:
	// an unsolicited send to the departed client fails with no-route (or a
	// write error while the eviction races the EOF), never a silent hang.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := srv.Send(srvID, cliID, &wire.Heartbeat{TS: 9}); err != nil && errors.Is(err, ErrNoRoute) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dead learned entry was never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A new session from the same node id is learned afresh and served.
	cli2, err := New(Config{Self: cliID, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	echoes2 := make(chan hlc.Timestamp, 4)
	cli2.Register(cliID, transport.HandlerFunc(func(_ transport.NodeID, m wire.Message) {
		echoes2 <- m.(*wire.Heartbeat).TS
	}))
	roundTrip(cli2, echoes2, 2)
}

// TestSendShedsWhenQueueFull verifies the bounded outbound queue: with
// the destination unreachable, Send fails fast with a typed overload
// error instead of blocking the caller.
func TestSendShedsWhenQueueFull(t *testing.T) {
	srvID := transport.ServerID(0, 0)
	cliID := transport.ClientID(0, 1)
	n, err := New(Config{
		Self:            cliID,
		Peers:           map[transport.NodeID]string{srvID: "127.0.0.1:1"}, // refuses
		MaxQueuedFrames: 4,
		RedialBackoff:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		err := n.Send(cliID, srvID, &wire.Heartbeat{})
		if errors.Is(err, transport.ErrOverloaded) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue to unreachable peer never shed load")
		}
	}
	if st := n.Stats(); st.Overloaded == 0 {
		t.Fatalf("overload not counted: %+v", st)
	}
}

// BenchmarkFrameRead measures the per-frame read path; the body buffer is
// reused across frames, so steady state should not allocate per byte of
// payload.
func BenchmarkFrameRead(b *testing.B) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	pc := newPeerConn(c2)
	frame := encodeFrame(wire.NewEncoder(), transport.ServerID(0, 1),
		&wire.Heartbeat{SrcDC: 1, Partition: 2, TS: hlc.New(7, 7)})
	go func() {
		for {
			if _, err := c1.Write(frame); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pc.read(); err != nil {
			b.Fatal(err)
		}
	}
}
