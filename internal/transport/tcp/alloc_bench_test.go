package tcp

import (
	"encoding/binary"
	"sync"
	"testing"

	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/wire"
)

// benchMsg is a representative replication frame: one transaction, two
// writes — the shape that dominates steady-state traffic.
func benchMsg() wire.Message {
	return &wire.Replicate{SrcDC: 1, Partition: 3, Txs: []wire.ReplTx{{
		TxID: 42, CT: hlc.New(1000, 1), RST: hlc.New(900, 0),
		Writes: []wire.KV{
			{Key: "user:123:profile", Value: []byte("0123456789abcdef")},
			{Key: "user:123:feed", Value: []byte("fedcba9876543210")},
		},
	}}}
}

// encodeFrameAlloc is the pre-pooling frame path, kept as the benchmark
// baseline: a fresh encoder, payload buffer and frame buffer per message.
func encodeFrameAlloc(from transport.NodeID, m wire.Message) []byte {
	payload := wire.Encode(m)
	frame := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(1+4+4+len(payload)))
	frame[4] = byte(m.Kind())
	binary.BigEndian.PutUint32(frame[5:9], uint32(int32(from.DC)))
	binary.BigEndian.PutUint32(frame[9:13], uint32(int32(from.Node)))
	copy(frame[headerLen:], payload)
	return frame
}

// BenchmarkFrameEncode compares per-message allocation of the old
// (allocate-per-frame) and new (pooled encoder) framing paths.
func BenchmarkFrameEncode(b *testing.B) {
	from := transport.ServerID(0, 1)
	m := benchMsg()

	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = encodeFrameAlloc(from, m)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := encPool.Get().(*wire.Encoder)
			_ = encodeFrame(enc, from, m)
			encPool.Put(enc)
		}
	})
}

// TestEncodeFrameMatchesAllocPath pins the pooled framing to the reference
// byte layout and checks a reused encoder does not leak previous frames.
func TestEncodeFrameMatchesAllocPath(t *testing.T) {
	from := transport.ServerID(2, 7)
	enc := wire.NewEncoder()
	msgs := []wire.Message{
		benchMsg(),
		&wire.Heartbeat{SrcDC: 0, Partition: 1, TS: hlc.New(5, 0)},
		benchMsg(),
	}
	for _, m := range msgs {
		want := encodeFrameAlloc(from, m)
		got := encodeFrame(enc, from, m)
		if string(got) != string(want) {
			t.Fatalf("pooled frame differs from reference for %v:\n got %x\nwant %x", m.Kind(), got, want)
		}
	}
}

// TestFrameEncodePooledSteadyStateAllocs verifies the pooled path is
// allocation-free once the pool is warm.
func TestFrameEncodePooledSteadyStateAllocs(t *testing.T) {
	from := transport.ServerID(0, 0)
	m := benchMsg()
	// Warm a private pool so parallel tests cannot steal the encoder.
	pool := sync.Pool{New: func() any { return wire.NewEncoder() }}
	enc := pool.Get().(*wire.Encoder)
	_ = encodeFrame(enc, from, m)
	allocs := testing.AllocsPerRun(100, func() {
		_ = encodeFrame(enc, from, m)
	})
	if allocs > 0 {
		t.Errorf("pooled frame encode allocates %.1f times per message, want 0", allocs)
	}
}
