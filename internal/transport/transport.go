// Package transport provides the messaging substrate used by Wren and Cure
// servers: point-to-point, lossless, FIFO channels (the paper's §II-A
// assumption), with a configurable latency model for simulating a multi-DC
// deployment, injectable inter-DC network partitions, and per-class byte
// accounting from real encoded message sizes (the input to Figure 7a).
//
// The in-memory implementation delivers each (sender, receiver) pair's
// messages through a dedicated FIFO queue drained by one goroutine, so
// delivery order always matches send order, exactly like a TCP connection.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/wire"
)

// NodeID identifies a process in the deployment: a partition server
// (Node < ClientBase) or a client process (Node >= ClientBase), placed in a
// data center.
type NodeID struct {
	DC   int
	Node int
}

// ClientBase is the first Node number used for client processes; partition
// servers are numbered 0..N-1.
const ClientBase = 1 << 16

// ClientID builds the NodeID for the i-th client process of a DC.
func ClientID(dc, i int) NodeID { return NodeID{DC: dc, Node: ClientBase + i} }

// ServerID builds the NodeID for partition n of DC m.
func ServerID(dc, partition int) NodeID { return NodeID{DC: dc, Node: partition} }

// IsClient reports whether the node is a client process.
func (n NodeID) IsClient() bool { return n.Node >= ClientBase }

// String implements fmt.Stringer.
func (n NodeID) String() string {
	if n.IsClient() {
		return fmt.Sprintf("dc%d/client%d", n.DC, n.Node-ClientBase)
	}
	return fmt.Sprintf("dc%d/p%d", n.DC, n.Node)
}

// Handler receives messages delivered by the network. Implementations must
// not block for unbounded time: protocols that need to wait (e.g. Cure's
// blocking reads) park the request and reply asynchronously instead.
type Handler interface {
	HandleMessage(from NodeID, m wire.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, m wire.Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from NodeID, m wire.Message) { f(from, m) }

// Network abstracts message passing so that servers run unchanged over the
// in-memory simulator or real TCP sockets.
type Network interface {
	// Register installs the handler for a node. It must be called before
	// any message is sent to that node.
	Register(id NodeID, h Handler)
	// Send enqueues a message for asynchronous FIFO delivery.
	Send(from, to NodeID, m wire.Message) error
	// Close stops delivery and releases resources.
	Close()
}

// ErrClosed is returned by Send after the network is closed.
var ErrClosed = errors.New("transport: network closed")

// ErrUnknownNode is returned when sending to an unregistered node.
var ErrUnknownNode = errors.New("transport: unknown destination")

// ErrOverloaded is returned by Send when a transport's bounded outbound
// queue for the destination is full: the message is shed instead of
// blocking the caller (protocol handlers must never stall on a slow or
// dead link). Senders treat it as transient and retry with backoff.
var ErrOverloaded = errors.New("transport: outbound queue overloaded")

// ErrTimeout is returned by request/response helpers layered over a
// Network (the client connection pool) when no response arrived within
// the caller's deadline. The request may or may not have executed.
var ErrTimeout = errors.New("transport: request timed out")

// LatencyFunc returns the one-way delivery latency between two nodes.
type LatencyFunc func(from, to NodeID) time.Duration

// UniformLatency builds a LatencyFunc with one intra-DC latency and one
// inter-DC latency.
func UniformLatency(intraDC, interDC time.Duration) LatencyFunc {
	return func(from, to NodeID) time.Duration {
		if from.DC == to.DC {
			return intraDC
		}
		return interDC
	}
}

// MatrixLatency builds a LatencyFunc from a per-DC-pair one-way latency
// matrix; intraDC is used within a DC. Missing pairs fall back to def.
func MatrixLatency(intraDC time.Duration, m map[[2]int]time.Duration, def time.Duration) LatencyFunc {
	return func(from, to NodeID) time.Duration {
		if from.DC == to.DC {
			return intraDC
		}
		if d, ok := m[[2]int{from.DC, to.DC}]; ok {
			return d
		}
		if d, ok := m[[2]int{to.DC, from.DC}]; ok {
			return d
		}
		return def
	}
}

// AWSLatencies returns a one-way inter-DC latency matrix modeled on the
// paper's five EC2 regions, scaled by the given factor (1.0 = realistic;
// benchmarks use smaller factors to compress wall-clock time). Order:
// 0=Virginia, 1=Oregon, 2=Ireland, 3=Mumbai, 4=Sydney.
func AWSLatencies(scale float64) map[[2]int]time.Duration {
	ms := func(f float64) time.Duration {
		return time.Duration(f * scale * float64(time.Millisecond))
	}
	return map[[2]int]time.Duration{
		{0, 1}: ms(35), // Virginia-Oregon
		{0, 2}: ms(40), // Virginia-Ireland
		{0, 3}: ms(91), // Virginia-Mumbai
		{0, 4}: ms(98), // Virginia-Sydney
		{1, 2}: ms(62), // Oregon-Ireland
		{1, 3}: ms(109),
		{1, 4}: ms(70),
		{2, 3}: ms(61),
		{2, 4}: ms(134),
		{3, 4}: ms(111),
	}
}

// classStats accumulates bytes/messages for one accounting class.
type classStats struct {
	msgs       atomic.Uint64
	bytes      atomic.Uint64
	interMsgs  atomic.Uint64
	interBytes atomic.Uint64
}

// Stats is a snapshot of per-class traffic counters.
type Stats struct {
	// Bytes and Msgs are indexed by wire.Class.
	Bytes      map[wire.Class]uint64
	Msgs       map[wire.Class]uint64
	InterBytes map[wire.Class]uint64 // subset crossing DC boundaries
	InterMsgs  map[wire.Class]uint64
}

// Total returns total bytes across all classes.
func (s Stats) Total() uint64 {
	var t uint64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

const numClasses = int(wire.ClassControl) + 1

// Memory is the in-process Network implementation.
type Memory struct {
	latency LatencyFunc

	mu       sync.RWMutex
	handlers map[NodeID]Handler
	links    map[[2]NodeID]*link
	closed   bool

	downMu  sync.RWMutex
	downDCs map[[2]int]bool
	healGen chan struct{} // closed and replaced when a partition heals

	stats [numClasses]classStats

	wg sync.WaitGroup
}

var _ Network = (*Memory)(nil)

// NewMemory builds an in-process network with the given latency model.
// A nil latency function means zero latency everywhere.
func NewMemory(latency LatencyFunc) *Memory {
	if latency == nil {
		latency = func(NodeID, NodeID) time.Duration { return 0 }
	}
	return &Memory{
		latency:  latency,
		handlers: make(map[NodeID]Handler),
		links:    make(map[[2]NodeID]*link),
		downDCs:  make(map[[2]int]bool),
		healGen:  make(chan struct{}),
	}
}

// Register implements Network.
func (n *Memory) Register(id NodeID, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// Send implements Network. The message is enqueued on the (from, to) FIFO
// link and delivered after the link latency. Inter-DC messages wait while
// the DC pair is partitioned (they are queued, not dropped — the paper's
// channels are lossless, like TCP with retries).
func (n *Memory) Send(from, to NodeID, m wire.Message) error {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	if _, ok := n.handlers[to]; !ok {
		n.mu.RUnlock()
		return fmt.Errorf("%w: %v", ErrUnknownNode, to)
	}
	l := n.links[[2]NodeID{from, to}]
	n.mu.RUnlock()

	if l == nil {
		l = n.getOrCreateLink(from, to)
		if l == nil {
			return ErrClosed
		}
	}

	if from != to {
		cls := m.Class()
		sz := uint64(wire.Size(m))
		st := &n.stats[int(cls)]
		st.msgs.Add(1)
		st.bytes.Add(sz)
		if from.DC != to.DC {
			st.interMsgs.Add(1)
			st.interBytes.Add(sz)
		}
	}

	l.enqueue(delivery{
		at:   time.Now().Add(n.latency(from, to)),
		from: from,
		msg:  m,
	})
	return nil
}

func (n *Memory) getOrCreateLink(from, to NodeID) *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	key := [2]NodeID{from, to}
	if l, ok := n.links[key]; ok {
		return l
	}
	l := newLink(n, from, to)
	n.links[key] = l
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		l.run()
	}()
	return l
}

// SetDCLinkDown partitions (or heals) the network between two DCs in both
// directions. While down, messages queue and are delivered after healing.
func (n *Memory) SetDCLinkDown(dcA, dcB int, down bool) {
	if dcA > dcB {
		dcA, dcB = dcB, dcA
	}
	n.downMu.Lock()
	if down {
		n.downDCs[[2]int{dcA, dcB}] = down
		n.downMu.Unlock()
		return
	}
	delete(n.downDCs, [2]int{dcA, dcB})
	// Wake every link blocked on a partition by rotating the heal channel.
	old := n.healGen
	n.healGen = make(chan struct{})
	n.downMu.Unlock()
	close(old)
}

func (n *Memory) isDCLinkDown(dcA, dcB int) (bool, chan struct{}) {
	if dcA > dcB {
		dcA, dcB = dcB, dcA
	}
	n.downMu.RLock()
	defer n.downMu.RUnlock()
	return n.downDCs[[2]int{dcA, dcB}], n.healGen
}

// Stats returns a snapshot of the traffic counters.
func (n *Memory) Stats() Stats {
	s := Stats{
		Bytes:      make(map[wire.Class]uint64, numClasses),
		Msgs:       make(map[wire.Class]uint64, numClasses),
		InterBytes: make(map[wire.Class]uint64, numClasses),
		InterMsgs:  make(map[wire.Class]uint64, numClasses),
	}
	for c := 1; c < numClasses; c++ {
		cls := wire.Class(c)
		s.Bytes[cls] = n.stats[c].bytes.Load()
		s.Msgs[cls] = n.stats[c].msgs.Load()
		s.InterBytes[cls] = n.stats[c].interBytes.Load()
		s.InterMsgs[cls] = n.stats[c].interMsgs.Load()
	}
	return s
}

// ResetStats zeroes the traffic counters (used between benchmark phases).
func (n *Memory) ResetStats() {
	for c := range n.stats {
		n.stats[c].bytes.Store(0)
		n.stats[c].msgs.Store(0)
		n.stats[c].interBytes.Store(0)
		n.stats[c].interMsgs.Store(0)
	}
}

// Close implements Network. It stops all delivery goroutines and waits for
// them to exit; undelivered messages are dropped.
func (n *Memory) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()

	for _, l := range links {
		l.close()
	}
	// Unblock any link waiting on a partition heal.
	n.SetDCLinkDown(-1, -2, false)
	n.wg.Wait()
}

type delivery struct {
	at   time.Time
	from NodeID
	msg  wire.Message
}

// link is a FIFO delivery queue for one (from, to) pair, drained by a
// single goroutine so handler invocation order equals send order.
type link struct {
	net  *Memory
	from NodeID
	to   NodeID

	mu     sync.Mutex
	q      []delivery
	closed bool
	notify chan struct{} // capacity 1: send-side kick
	done   chan struct{}
}

func newLink(n *Memory, from, to NodeID) *link {
	return &link{
		net:    n,
		from:   from,
		to:     to,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

func (l *link) enqueue(d delivery) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.q = append(l.q, d)
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

func (l *link) close() {
	l.mu.Lock()
	alreadyClosed := l.closed
	l.closed = true
	l.mu.Unlock()
	if !alreadyClosed {
		close(l.done)
	}
}

func (l *link) run() {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if len(l.q) == 0 {
			l.mu.Unlock()
			select {
			case <-l.notify:
			case <-l.done:
				return
			}
			continue
		}
		head := l.q[0]
		l.mu.Unlock()

		// Honor link latency.
		if wait := time.Until(head.at); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-l.done:
				timer.Stop()
				return
			}
		}

		// Honor inter-DC partitions: hold delivery until healed.
		if l.from.DC != l.to.DC {
			for {
				down, heal := l.net.isDCLinkDown(l.from.DC, l.to.DC)
				if !down {
					break
				}
				select {
				case <-heal:
				case <-l.done:
					return
				}
			}
		}

		l.mu.Lock()
		if l.closed || len(l.q) == 0 {
			l.mu.Unlock()
			return
		}
		d := l.q[0]
		l.q = l.q[1:]
		l.mu.Unlock()

		l.net.mu.RLock()
		h := l.net.handlers[l.to]
		l.net.mu.RUnlock()
		if h != nil {
			h.HandleMessage(d.from, d.msg)
		}
	}
}
