// Package pool multiplexes many client sessions over a small fixed set of
// transport endpoints. Without it every session registers its own NodeID
// on the network — over TCP that is one socket per server per session, and
// over the in-memory simulator one delivery goroutine and one latency
// timer stream per session — so at thousands of sessions the bottleneck is
// the connection fabric, not the protocol.
//
// A Pool owns N endpoints (NodeIDs registered on a Network) and hands out
// lightweight Conns via Bind. Sessions issue request/response round trips
// through Conn.Call; the pool allocates a pool-unique request id, tags the
// outgoing message with it (via the caller's build closure), and
// demultiplexes responses with the same claim-once discipline as the
// server read fan-in (package fanin): a striped pending map whose
// LoadAndDelete guarantees each response is matched to exactly one waiting
// call — a late, duplicated, or shed response finds no entry and is
// dropped, never delivered to another session.
//
// Pipelining and ordering: many sessions' requests are in flight on one
// endpoint concurrently (that is the pipelining), but each Conn is pinned
// to ONE endpoint at Bind time. Transports deliver FIFO per (from, to)
// pair, so a session's requests arrive at a given server in issue order.
// Combined with the sessions' sequential API — a session does not issue
// its commit until its reads have returned and updated its causal state —
// this preserves the per-session ordering the protocol needs: a commit can
// never overtake the session's own reads.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/stripemap"
	"wren/internal/transport"
	"wren/internal/wire"
)

// Endpoint is one multiplexed link: a NodeID the pool registers on a
// Network. Over TCP each endpoint is its own tcp.Network (one socket per
// server); over the in-memory simulator endpoints share one Memory.
type Endpoint struct {
	ID  transport.NodeID
	Net transport.Network
}

// Pool is the shared connection pool. Safe for concurrent use by any
// number of sessions.
type Pool struct {
	eps     []Endpoint
	pending *stripemap.Map[chan wire.Message]
	reqSeq  atomic.Uint64
	bindSeq atomic.Uint64
	closed  atomic.Bool

	calls    atomic.Uint64
	timeouts atomic.Uint64
	orphans  atomic.Uint64
}

// Stats is a snapshot of the pool's demux counters.
type Stats struct {
	// Calls counts requests successfully handed to a transport.
	Calls uint64
	// Timeouts counts calls that gave up before a response arrived.
	Timeouts uint64
	// Orphans counts responses that matched no waiting call: late
	// responses whose caller timed out, or chaos-duplicated deliveries.
	// Each was dropped, never delivered to another session.
	Orphans uint64
}

// waiterPool recycles the 1-buffered response channels. A channel is only
// returned when it provably has no pending writer (see Call).
var waiterPool = sync.Pool{New: func() any { return make(chan wire.Message, 1) }}

// New builds a pool over the given endpoints and registers its response
// handler on each. Endpoints must not be registered elsewhere.
func New(eps []Endpoint) (*Pool, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("pool: no endpoints")
	}
	p := &Pool{
		eps:     eps,
		pending: stripemap.New[chan wire.Message](0),
	}
	for _, ep := range eps {
		ep.Net.Register(ep.ID, p)
	}
	return p, nil
}

// Conn is a session's handle on the pool: an endpoint affinity plus the
// shared demux state. Conns are cheap; one per session.
type Conn struct {
	p  *Pool
	ep Endpoint
}

// Bind returns a Conn pinned round-robin to one of the pool's endpoints.
// The pin is what preserves per-session FIFO ordering (see package doc).
func (p *Pool) Bind() *Conn {
	i := p.bindSeq.Add(1)
	return &Conn{p: p, ep: p.eps[int(i)%len(p.eps)]}
}

// Call performs one request/response round trip over the session's pinned
// endpoint. build receives the pool-allocated request id and returns the
// message to send; the id must be echoed by the server in the response's
// ReqID field. Errors: the transport Send error verbatim (including
// transport.ErrOverloaded from a full TCP writer queue),
// transport.ErrClosed after Close, or transport.ErrTimeout when no
// response arrived within timeout.
func (c *Conn) Call(to transport.NodeID, timeout time.Duration, build func(reqID uint64) wire.Message) (wire.Message, error) {
	p := c.p
	if p.closed.Load() {
		return nil, transport.ErrClosed
	}
	reqID := p.reqSeq.Add(1)
	ch := waiterPool.Get().(chan wire.Message)
	p.pending.Store(reqID, ch)
	if err := c.ep.Net.Send(c.ep.ID, to, build(reqID)); err != nil {
		// Nothing was sent, so nothing can ever be delivered: the entry
		// and the channel are both safely reclaimed here.
		p.pending.Delete(reqID)
		waiterPool.Put(ch)
		return nil, err
	}
	p.calls.Add(1)
	timer := time.NewTimer(timeout)
	select {
	case resp := <-ch:
		timer.Stop()
		waiterPool.Put(ch)
		return resp, nil
	case <-timer.C:
		p.timeouts.Add(1)
		if _, ok := p.pending.LoadAndDelete(reqID); ok {
			// We won the race against the demux handler: no writer can
			// reach the channel anymore, so it is reusable.
			waiterPool.Put(ch)
			return nil, fmt.Errorf("%w (to %v after %v)", transport.ErrTimeout, to, timeout)
		}
		// The handler claimed the entry concurrently and will (or already
		// did) deposit the response. Drain it if it is already there —
		// then the channel is empty and reusable; otherwise abandon both
		// to the GC rather than risk a stale delivery into a reused slot.
		select {
		case m := <-ch:
			releaseOrphan(m)
			waiterPool.Put(ch)
		default:
		}
		return nil, fmt.Errorf("%w (to %v after %v)", transport.ErrTimeout, to, timeout)
	}
}

// HandleMessage implements transport.Handler: the demux side. Exactly-once
// matching comes from LoadAndDelete — the first delivery for a request id
// claims the waiter, every other delivery is an orphan and is dropped.
func (p *Pool) HandleMessage(_ transport.NodeID, m wire.Message) {
	reqID, ok := responseReqID(m)
	if !ok {
		return
	}
	ch, ok := p.pending.LoadAndDelete(reqID)
	if !ok {
		p.orphans.Add(1)
		releaseOrphan(m)
		return
	}
	ch <- m
}

// releaseOrphan returns an unclaimed pooled response to its pool. Safe:
// an orphan has exactly one owner (us) — a timed-out caller never touches
// responses, and chaos duplicates are deep re-encoded clones, so the
// pointer can never also be in a session's hands.
func releaseOrphan(m wire.Message) {
	if rr, ok := m.(*wire.TxReadResp); ok {
		wire.PutTxReadResp(rr)
	}
}

// responseReqID extracts the correlation id from the client-facing
// response kinds. Unknown kinds (server-to-server traffic misdelivered to
// a pool endpoint) report false and are dropped.
func responseReqID(m wire.Message) (uint64, bool) {
	switch msg := m.(type) {
	case *wire.StartTxResp:
		return msg.ReqID, true
	case *wire.TxReadResp:
		return msg.ReqID, true
	case *wire.CommitResp:
		return msg.ReqID, true
	case *wire.ScanResp:
		return msg.ReqID, true
	case *wire.TxStatusResp:
		return msg.ReqID, true
	case *wire.HealthResp:
		return msg.ReqID, true
	case *wire.BusyResp:
		return msg.ReqID, true
	}
	return 0, false
}

// Stats snapshots the demux counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Calls:    p.calls.Load(),
		Timeouts: p.timeouts.Load(),
		Orphans:  p.orphans.Load(),
	}
}

// Pending returns the number of in-flight calls, for tests asserting that
// a drained workload leaks no demux state.
func (p *Pool) Pending() int { return p.pending.Len() }

// Close marks the pool closed: new Calls fail with transport.ErrClosed,
// in-flight calls time out naturally. The endpoints' networks are NOT
// closed — the pool does not own them (over the in-memory simulator the
// Network is shared with the servers). Callers that built dedicated
// networks per endpoint (the TCP helper) close those themselves.
func (p *Pool) Close() {
	p.closed.Store(true)
}
