package pool

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/wire"
)

// echoServer answers StartTxReq with a StartTxResp echoing the request id
// and the LST field as TxID — a per-call token the tests use to prove a
// response can only ever reach the call that issued its request.
type echoServer struct {
	net *transport.Memory
	id  transport.NodeID

	mu    sync.Mutex
	delay time.Duration
	froms []transport.NodeID
	order []uint64 // LST tokens in arrival order
	mute  bool
}

func newEchoServer(net *transport.Memory, id transport.NodeID) *echoServer {
	s := &echoServer{net: net, id: id}
	net.Register(id, s)
	return s
}

func (s *echoServer) HandleMessage(from transport.NodeID, m wire.Message) {
	req, ok := m.(*wire.StartTxReq)
	if !ok {
		return
	}
	s.mu.Lock()
	s.froms = append(s.froms, from)
	s.order = append(s.order, uint64(req.LST))
	delay, mute := s.delay, s.mute
	s.mu.Unlock()
	if mute {
		return
	}
	resp := &wire.StartTxResp{ReqID: req.ReqID, TxID: uint64(req.LST)}
	if delay > 0 {
		go func() {
			time.Sleep(delay)
			_ = s.net.Send(s.id, from, resp)
		}()
		return
	}
	_ = s.net.Send(s.id, from, resp)
}

func (s *echoServer) setDelay(d time.Duration) {
	s.mu.Lock()
	s.delay = d
	s.mu.Unlock()
}

func (s *echoServer) setMute(m bool) {
	s.mu.Lock()
	s.mute = m
	s.mu.Unlock()
}

func newTestPool(t *testing.T, net *transport.Memory, links int) *Pool {
	t.Helper()
	eps := make([]Endpoint, links)
	for i := range eps {
		eps[i] = Endpoint{ID: transport.ClientID(0, 1000+i), Net: net}
	}
	p, err := New(eps)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestConcurrentCallsExactlyOnce hammers one pool from many goroutines and
// checks every call gets back exactly the response to its own request —
// the no-cross-session-leakage property the demux exists for.
func TestConcurrentCallsExactlyOnce(t *testing.T) {
	net := transport.NewMemory(transport.UniformLatency(0, 0))
	defer net.Close()
	srv := newEchoServer(net, transport.ServerID(0, 0))
	p := newTestPool(t, net, 3)
	defer p.Close()

	const goroutines, calls = 16, 50
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn := p.Bind()
			for i := 0; i < calls; i++ {
				token := uint64(g)<<32 | uint64(i)
				resp, err := conn.Call(srv.id, 5*time.Second, func(reqID uint64) wire.Message {
					return &wire.StartTxReq{ReqID: reqID, LST: hlc.Timestamp(token)}
				})
				if err != nil {
					errCh <- err
					return
				}
				st, ok := resp.(*wire.StartTxResp)
				if !ok {
					errCh <- fmt.Errorf("goroutine %d: unexpected response %T", g, resp)
					return
				}
				if st.TxID != token {
					errCh <- fmt.Errorf("goroutine %d call %d: got token %d, want %d — response leaked across calls", g, i, st.TxID, token)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if n := p.Pending(); n != 0 {
		t.Fatalf("drained pool leaks %d pending entries", n)
	}
	st := p.Stats()
	if st.Calls != goroutines*calls {
		t.Fatalf("calls = %d, want %d", st.Calls, goroutines*calls)
	}
	if st.Orphans != 0 || st.Timeouts != 0 {
		t.Fatalf("unexpected orphans=%d timeouts=%d", st.Orphans, st.Timeouts)
	}
}

// TestTimeoutThenLateResponse times a call out, lets the response arrive
// late, and proves the orphan is dropped — a subsequent call on the same
// conn must receive its own response, never the stale one.
func TestTimeoutThenLateResponse(t *testing.T) {
	net := transport.NewMemory(transport.UniformLatency(0, 0))
	defer net.Close()
	srv := newEchoServer(net, transport.ServerID(0, 0))
	p := newTestPool(t, net, 1)
	defer p.Close()
	conn := p.Bind()

	srv.setDelay(100 * time.Millisecond)
	_, err := conn.Call(srv.id, 5*time.Millisecond, func(reqID uint64) wire.Message {
		return &wire.StartTxReq{ReqID: reqID, LST: 1}
	})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	// Let the delayed response land as an orphan, then issue a fresh call.
	time.Sleep(150 * time.Millisecond)
	srv.setDelay(0)
	resp, err := conn.Call(srv.id, 5*time.Second, func(reqID uint64) wire.Message {
		return &wire.StartTxReq{ReqID: reqID, LST: 2}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(*wire.StartTxResp).TxID; got != 2 {
		t.Fatalf("fresh call got stale token %d, want 2", got)
	}
	if st := p.Stats(); st.Timeouts != 1 || st.Orphans != 1 {
		t.Fatalf("stats = %+v, want 1 timeout and 1 orphan", st)
	}
	if n := p.Pending(); n != 0 {
		t.Fatalf("pool leaks %d pending entries", n)
	}
}

// TestTimeoutNoResponse: a request the server never answers must not leak
// a pending entry past the caller's timeout.
func TestTimeoutNoResponse(t *testing.T) {
	net := transport.NewMemory(transport.UniformLatency(0, 0))
	defer net.Close()
	srv := newEchoServer(net, transport.ServerID(0, 0))
	srv.setMute(true)
	p := newTestPool(t, net, 1)
	defer p.Close()

	_, err := p.Bind().Call(srv.id, 5*time.Millisecond, func(reqID uint64) wire.Message {
		return &wire.StartTxReq{ReqID: reqID}
	})
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if n := p.Pending(); n != 0 {
		t.Fatalf("timed-out call leaks %d pending entries", n)
	}
}

// TestConnEndpointAffinity: all of one Conn's requests leave via one
// endpoint, and arrive in issue order — the property that keeps a
// session's commit from overtaking its own reads.
func TestConnEndpointAffinity(t *testing.T) {
	net := transport.NewMemory(transport.UniformLatency(0, 0))
	defer net.Close()
	srv := newEchoServer(net, transport.ServerID(0, 0))
	p := newTestPool(t, net, 3)
	defer p.Close()
	conn := p.Bind()

	const calls = 25
	for i := 0; i < calls; i++ {
		if _, err := conn.Call(srv.id, 5*time.Second, func(reqID uint64) wire.Message {
			return &wire.StartTxReq{ReqID: reqID, LST: hlc.Timestamp(i)}
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for i, from := range srv.froms {
		if from != srv.froms[0] {
			t.Fatalf("request %d left via %v, earlier ones via %v — conn not pinned", i, from, srv.froms[0])
		}
	}
	for i, tok := range srv.order {
		if tok != uint64(i) {
			t.Fatalf("request %d arrived out of order (token %d)", i, tok)
		}
	}
}

// TestBusyRespDelivered: an admission refusal is a response like any other
// — it must reach the caller that issued the shed request.
func TestBusyRespDelivered(t *testing.T) {
	net := transport.NewMemory(transport.UniformLatency(0, 0))
	defer net.Close()
	id := transport.ServerID(0, 0)
	net.Register(id, transport.HandlerFunc(func(from transport.NodeID, m wire.Message) {
		req := m.(*wire.StartTxReq)
		_ = net.Send(id, from, &wire.BusyResp{ReqID: req.ReqID})
	}))
	p := newTestPool(t, net, 1)
	defer p.Close()

	resp, err := p.Bind().Call(id, 5*time.Second, func(reqID uint64) wire.Message {
		return &wire.StartTxReq{ReqID: reqID}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.BusyResp); !ok {
		t.Fatalf("want BusyResp, got %T", resp)
	}
}

// TestClosedPoolRefusesCalls: Close flips new calls to ErrClosed without
// touching the shared network.
func TestClosedPoolRefusesCalls(t *testing.T) {
	net := transport.NewMemory(transport.UniformLatency(0, 0))
	defer net.Close()
	srv := newEchoServer(net, transport.ServerID(0, 0))
	p := newTestPool(t, net, 1)
	conn := p.Bind()
	p.Close()
	if _, err := conn.Call(srv.id, time.Second, func(reqID uint64) wire.Message {
		return &wire.StartTxReq{ReqID: reqID}
	}); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
