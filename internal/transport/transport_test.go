package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/wire"
)

// collector records received messages in order.
type collector struct {
	mu   sync.Mutex
	msgs []wire.Message
	from []NodeID
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) HandleMessage(from NodeID, m wire.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.from = append(c.from, from)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) waitN(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for %d messages (got %d)", n, i)
		}
	}
}

func (c *collector) snapshot() []wire.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.Message, len(c.msgs))
	copy(out, c.msgs)
	return out
}

func TestMemoryDeliversMessages(t *testing.T) {
	n := NewMemory(nil)
	defer n.Close()
	recv := newCollector()
	a, b := ServerID(0, 0), ServerID(0, 1)
	n.Register(b, recv)

	want := &wire.Heartbeat{SrcDC: 0, Partition: 0, TS: hlc.New(42, 0)}
	if err := n.Send(a, b, want); err != nil {
		t.Fatal(err)
	}
	recv.waitN(t, 1, time.Second)
	got := recv.snapshot()[0].(*wire.Heartbeat)
	if got.TS != want.TS {
		t.Errorf("delivered %v, want %v", got.TS, want.TS)
	}
}

func TestMemoryFIFOOrderPerLink(t *testing.T) {
	n := NewMemory(nil)
	defer n.Close()
	recv := newCollector()
	a, b := ServerID(0, 0), ServerID(0, 1)
	n.Register(b, recv)

	const count = 500
	for i := 0; i < count; i++ {
		if err := n.Send(a, b, &wire.CommitTx{TxID: uint64(i), CT: hlc.New(int64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	recv.waitN(t, count, 5*time.Second)
	for i, m := range recv.snapshot() {
		if got := m.(*wire.CommitTx).TxID; got != uint64(i) {
			t.Fatalf("message %d has TxID %d: FIFO order violated", i, got)
		}
	}
}

func TestMemoryFIFOUnderConcurrentSenders(t *testing.T) {
	// Different senders may interleave, but each sender's stream must
	// arrive in order.
	n := NewMemory(UniformLatency(100*time.Microsecond, time.Millisecond))
	defer n.Close()
	recv := newCollector()
	dst := ServerID(0, 0)
	n.Register(dst, recv)

	const senders, per = 4, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			src := ServerID(1, s)
			for i := 0; i < per; i++ {
				// TxID encodes (sender, seq).
				_ = n.Send(src, dst, &wire.CommitTx{TxID: uint64(s*1_000_000 + i)})
			}
		}(s)
	}
	wg.Wait()
	recv.waitN(t, senders*per, 10*time.Second)

	lastSeq := map[int]int{}
	for _, m := range recv.snapshot() {
		id := m.(*wire.CommitTx).TxID
		s, seq := int(id/1_000_000), int(id%1_000_000)
		if prev, ok := lastSeq[s]; ok && seq != prev+1 {
			t.Fatalf("sender %d: seq %d after %d", s, seq, prev)
		}
		lastSeq[s] = seq
	}
}

func TestMemoryLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	n := NewMemory(UniformLatency(0, lat))
	defer n.Close()
	recv := newCollector()
	a, b := ServerID(0, 0), ServerID(1, 0) // inter-DC
	n.Register(b, recv)

	start := time.Now()
	if err := n.Send(a, b, &wire.Heartbeat{}); err != nil {
		t.Fatal(err)
	}
	recv.waitN(t, 1, time.Second)
	if elapsed := time.Since(start); elapsed < lat {
		t.Errorf("delivered after %v, want >= %v", elapsed, lat)
	}
}

func TestMemoryIntraDCFasterThanInterDC(t *testing.T) {
	n := NewMemory(UniformLatency(time.Millisecond, 50*time.Millisecond))
	defer n.Close()
	local, remote := newCollector(), newCollector()
	n.Register(ServerID(0, 1), local)
	n.Register(ServerID(1, 0), remote)

	src := ServerID(0, 0)
	start := time.Now()
	_ = n.Send(src, ServerID(0, 1), &wire.Heartbeat{})
	_ = n.Send(src, ServerID(1, 0), &wire.Heartbeat{})
	local.waitN(t, 1, time.Second)
	localDone := time.Since(start)
	remote.waitN(t, 1, time.Second)
	remoteDone := time.Since(start)
	if localDone >= remoteDone {
		t.Errorf("intra-DC (%v) should beat inter-DC (%v)", localDone, remoteDone)
	}
}

func TestMemoryUnknownDestination(t *testing.T) {
	n := NewMemory(nil)
	defer n.Close()
	err := n.Send(ServerID(0, 0), ServerID(0, 9), &wire.Heartbeat{})
	if err == nil {
		t.Error("Send to unregistered node should fail")
	}
}

func TestMemorySendAfterClose(t *testing.T) {
	n := NewMemory(nil)
	n.Register(ServerID(0, 1), newCollector())
	n.Close()
	if err := n.Send(ServerID(0, 0), ServerID(0, 1), &wire.Heartbeat{}); err == nil {
		t.Error("Send after Close should fail")
	}
}

func TestMemoryCloseIdempotent(t *testing.T) {
	n := NewMemory(nil)
	n.Close()
	n.Close() // must not panic or deadlock
}

func TestMemoryPartitionQueuesAndHeals(t *testing.T) {
	n := NewMemory(nil)
	defer n.Close()
	recv := newCollector()
	a, b := ServerID(0, 0), ServerID(1, 0)
	n.Register(b, recv)

	n.SetDCLinkDown(0, 1, true)
	if err := n.Send(a, b, &wire.Heartbeat{TS: hlc.New(7, 0)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recv.ch:
		t.Fatal("message delivered across a partitioned link")
	case <-time.After(50 * time.Millisecond):
	}

	n.SetDCLinkDown(0, 1, false)
	recv.waitN(t, 1, time.Second)
	if got := recv.snapshot()[0].(*wire.Heartbeat).TS; got != hlc.New(7, 0) {
		t.Errorf("wrong message after heal: %v", got)
	}
}

func TestMemoryPartitionDoesNotAffectIntraDC(t *testing.T) {
	n := NewMemory(nil)
	defer n.Close()
	recv := newCollector()
	n.Register(ServerID(0, 1), recv)
	n.SetDCLinkDown(0, 1, true)
	defer n.SetDCLinkDown(0, 1, false)
	_ = n.Send(ServerID(0, 0), ServerID(0, 1), &wire.Heartbeat{})
	recv.waitN(t, 1, time.Second)
}

func TestMemoryByteAccounting(t *testing.T) {
	n := NewMemory(nil)
	defer n.Close()
	n.Register(ServerID(0, 1), newCollector())
	n.Register(ServerID(1, 0), newCollector())

	hb := &wire.Heartbeat{SrcDC: 0, Partition: 0, TS: hlc.New(1, 0)}
	stable := &wire.StableBroadcast{Partition: 0, Local: hlc.New(1, 0), RemoteMin: hlc.New(2, 0)}

	_ = n.Send(ServerID(0, 0), ServerID(0, 1), stable) // intra-DC stabilization
	_ = n.Send(ServerID(0, 0), ServerID(1, 0), hb)     // inter-DC replication

	s := n.Stats()
	if got, want := s.Bytes[wire.ClassStabilization], uint64(wire.Size(stable)); got != want {
		t.Errorf("stabilization bytes = %d, want %d", got, want)
	}
	if got, want := s.Bytes[wire.ClassReplication], uint64(wire.Size(hb)); got != want {
		t.Errorf("replication bytes = %d, want %d", got, want)
	}
	if got := s.InterBytes[wire.ClassStabilization]; got != 0 {
		t.Errorf("stabilization inter-DC bytes = %d, want 0", got)
	}
	if got, want := s.InterBytes[wire.ClassReplication], uint64(wire.Size(hb)); got != want {
		t.Errorf("replication inter-DC bytes = %d, want %d", got, want)
	}
	if s.Msgs[wire.ClassReplication] != 1 || s.Msgs[wire.ClassStabilization] != 1 {
		t.Errorf("message counts wrong: %+v", s.Msgs)
	}
	if s.Total() != uint64(wire.Size(stable)+wire.Size(hb)) {
		t.Errorf("Total = %d", s.Total())
	}

	n.ResetStats()
	if n.Stats().Total() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestMemorySelfSendNotCounted(t *testing.T) {
	n := NewMemory(nil)
	defer n.Close()
	recv := newCollector()
	self := ServerID(0, 0)
	n.Register(self, recv)
	_ = n.Send(self, self, &wire.Heartbeat{})
	recv.waitN(t, 1, time.Second)
	if n.Stats().Total() != 0 {
		t.Error("loopback traffic must not be counted as network bytes")
	}
}

func TestMemoryManyNodesStress(t *testing.T) {
	n := NewMemory(UniformLatency(0, 0))
	defer n.Close()
	const nodes = 12
	var received atomic.Uint64
	done := make(chan struct{}, 1)
	const total = nodes * (nodes - 1) * 10
	for i := 0; i < nodes; i++ {
		n.Register(ServerID(i%3, i/3), HandlerFunc(func(NodeID, wire.Message) {
			if received.Add(1) == total {
				done <- struct{}{}
			}
		}))
	}
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := ServerID(i%3, i/3)
			for j := 0; j < nodes; j++ {
				if j == i {
					continue
				}
				dst := ServerID(j%3, j/3)
				for k := 0; k < 10; k++ {
					if err := n.Send(src, dst, &wire.Heartbeat{TS: hlc.New(int64(k), 0)}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d messages delivered", received.Load(), total)
	}
}

func TestNodeIDHelpers(t *testing.T) {
	c := ClientID(2, 3)
	if !c.IsClient() {
		t.Error("ClientID should be a client")
	}
	if c.DC != 2 {
		t.Errorf("DC = %d", c.DC)
	}
	s := ServerID(1, 4)
	if s.IsClient() {
		t.Error("ServerID should not be a client")
	}
	if s.String() != "dc1/p4" {
		t.Errorf("String = %q", s.String())
	}
	if c.String() != "dc2/client3" {
		t.Errorf("String = %q", c.String())
	}
}

func TestMatrixLatency(t *testing.T) {
	m := map[[2]int]time.Duration{{0, 1}: 10 * time.Millisecond}
	f := MatrixLatency(time.Millisecond, m, 99*time.Millisecond)
	if d := f(ServerID(0, 0), ServerID(0, 1)); d != time.Millisecond {
		t.Errorf("intra = %v", d)
	}
	if d := f(ServerID(0, 0), ServerID(1, 0)); d != 10*time.Millisecond {
		t.Errorf("pair = %v", d)
	}
	if d := f(ServerID(1, 0), ServerID(0, 0)); d != 10*time.Millisecond {
		t.Errorf("reverse pair = %v", d)
	}
	if d := f(ServerID(0, 0), ServerID(3, 0)); d != 99*time.Millisecond {
		t.Errorf("default = %v", d)
	}
}

func TestAWSLatencies(t *testing.T) {
	m := AWSLatencies(1.0)
	if len(m) != 10 {
		t.Errorf("expected 10 DC pairs, got %d", len(m))
	}
	half := AWSLatencies(0.5)
	for k, v := range m {
		if half[k] != v/2 {
			t.Errorf("scaling wrong for %v: %v vs %v", k, half[k], v)
		}
	}
}
