// Package chaos wraps any transport.Network with deterministic fault
// injection: per-link message drop, delay, duplication and reordering,
// plus directed DC-to-DC partitions that hold traffic losslessly until
// healed. It composes over both the in-process simulator and the TCP
// transport, and rules are togglable at runtime so a test can cut a WAN
// link in the middle of a 2PC and heal it later.
//
// Faults are decided by a single seeded PRNG at Send time, so a
// single-threaded test replays the same fault sequence for the same seed.
// Duplicated messages are delivered as deep clones (re-encoded and
// decoded with copy semantics), never as a second reference to the same
// pointer — several handlers return messages to sync.Pools after use.
package chaos

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/transport"
	"wren/internal/wire"
)

// Rule describes the fault mix applied to messages sent over a matching
// link. The zero Rule injects nothing.
type Rule struct {
	// DropProb is the probability in [0,1] that a message is silently
	// dropped at send time.
	DropProb float64
	// DupProb is the probability that a message is delivered twice; the
	// second copy is a deep clone scheduled independently.
	DupProb float64
	// Delay postpones delivery by a fixed amount, plus a uniformly random
	// extra in [0, Jitter). Jitter alone is enough to reorder messages,
	// since delivery follows scheduled time, not send order.
	Delay  time.Duration
	Jitter time.Duration
	// ReorderProb is the probability a message is additionally pushed
	// ReorderWindow behind its scheduled delivery, letting messages sent
	// after it overtake. A zero ReorderWindow defaults to 1ms.
	ReorderProb   float64
	ReorderWindow time.Duration
}

func (r Rule) isZero() bool { return r == Rule{} }

// Stats counts injected faults since the network was created.
type Stats struct {
	Sent       uint64 // messages offered to Send (excluding after close)
	Dropped    uint64 // messages silently discarded
	Duplicated uint64 // extra copies injected
	Reordered  uint64 // messages pushed behind their send order
	Held       uint64 // messages queued behind a cut link
	Delivered  uint64 // messages handed to the inner network
}

// Network is a transport.Network that forwards to an inner network
// through per-link fault schedulers.
type Network struct {
	inner transport.Network

	mu       sync.Mutex
	rng      *rand.Rand
	def      Rule
	dcRules  map[[2]int]Rule               // keyed (fromDC, toDC)
	cliRules map[int]Rule                  // keyed by the client endpoint's DC
	links    map[[2]transport.NodeID]*link // only links that ever matched a rule/cut
	cuts     map[[2]int]bool               // directed (fromDC, toDC)
	healGen  chan struct{}                 // closed and replaced on every Heal
	closed   bool

	sent, dropped, duplicated, reordered, held, delivered atomic.Uint64
}

// New wraps inner with fault injection. All faults derive from seed.
func New(inner transport.Network, seed int64) *Network {
	return &Network{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		dcRules:  make(map[[2]int]Rule),
		cliRules: make(map[int]Rule),
		links:    make(map[[2]transport.NodeID]*link),
		cuts:     make(map[[2]int]bool),
		healGen:  make(chan struct{}),
	}
}

// Inner returns the wrapped network.
func (n *Network) Inner() transport.Network { return n.inner }

// Register implements transport.Network by delegating to the inner
// network; handlers are always installed there.
func (n *Network) Register(id transport.NodeID, h transport.Handler) {
	n.inner.Register(id, h)
}

// SetDefaultRule applies r to every link without a more specific rule.
func (n *Network) SetDefaultRule(r Rule) {
	n.mu.Lock()
	n.def = r
	n.mu.Unlock()
}

// SetDCRule applies r to messages flowing fromDC -> toDC (directed).
func (n *Network) SetDCRule(fromDC, toDC int, r Rule) {
	n.mu.Lock()
	n.dcRules[[2]int{fromDC, toDC}] = r
	n.mu.Unlock()
}

// SetClientRule applies r to links where either endpoint is a client in
// the given DC (both request and response directions). It takes
// precedence over DC rules, so tests can stress the client edge without
// touching server-to-server replication.
func (n *Network) SetClientRule(dc int, r Rule) {
	n.mu.Lock()
	n.cliRules[dc] = r
	n.mu.Unlock()
}

// ClearRules removes every rule (default included). Messages already
// scheduled keep their delivery times; cuts are unaffected.
func (n *Network) ClearRules() {
	n.mu.Lock()
	n.def = Rule{}
	n.dcRules = make(map[[2]int]Rule)
	n.cliRules = make(map[int]Rule)
	n.mu.Unlock()
}

// Cut holds all traffic flowing fromDC -> toDC (directed, lossless) until
// Heal. Cutting both directions partitions the DC pair completely.
func (n *Network) Cut(fromDC, toDC int) {
	n.mu.Lock()
	n.cuts[[2]int{fromDC, toDC}] = true
	n.mu.Unlock()
}

// Heal releases a directed cut; held messages resume in order.
func (n *Network) Heal(fromDC, toDC int) {
	n.mu.Lock()
	delete(n.cuts, [2]int{fromDC, toDC})
	// Rotate the heal generation so links parked on the old channel wake.
	close(n.healGen)
	n.healGen = make(chan struct{})
	n.mu.Unlock()
}

// HealAll releases every directed cut.
func (n *Network) HealAll() {
	n.mu.Lock()
	n.cuts = make(map[[2]int]bool)
	close(n.healGen)
	n.healGen = make(chan struct{})
	n.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:       n.sent.Load(),
		Dropped:    n.dropped.Load(),
		Duplicated: n.duplicated.Load(),
		Reordered:  n.reordered.Load(),
		Held:       n.held.Load(),
		Delivered:  n.delivered.Load(),
	}
}

// ruleFor resolves the rule for a (from, to) pair. Precedence: client
// rule (either endpoint a client) > DC rule > default. Callers hold n.mu.
func (n *Network) ruleFor(from, to transport.NodeID) Rule {
	if from.IsClient() {
		if r, ok := n.cliRules[from.DC]; ok {
			return r
		}
	}
	if to.IsClient() {
		if r, ok := n.cliRules[to.DC]; ok {
			return r
		}
	}
	if r, ok := n.dcRules[[2]int{from.DC, to.DC}]; ok {
		return r
	}
	return n.def
}

// Send implements transport.Network. Messages on links with no active
// rule, cut, or backlog pass straight through to the inner network.
func (n *Network) Send(from, to transport.NodeID, m wire.Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return transport.ErrClosed
	}
	n.sent.Add(1)
	rule := n.ruleFor(from, to)
	cut := n.cuts[[2]int{from.DC, to.DC}]
	key := [2]transport.NodeID{from, to}
	l := n.links[key]
	if rule.isZero() && !cut && (l == nil || l.idle()) {
		// Fast path — but never overtake messages still queued on a link
		// created by an earlier rule or cut (FIFO per link is preserved).
		n.mu.Unlock()
		return n.inner.Send(from, to, m)
	}
	if rule.DropProb > 0 && n.rng.Float64() < rule.DropProb {
		n.mu.Unlock()
		n.dropped.Add(1)
		return nil
	}
	if l == nil {
		l = newLink(n, from, to)
		n.links[key] = l
	}
	at := time.Now().Add(n.scheduleLocked(rule))
	var dupAt time.Time
	if rule.DupProb > 0 && n.rng.Float64() < rule.DupProb {
		dupAt = time.Now().Add(n.scheduleLocked(rule))
	}
	n.mu.Unlock()

	l.enqueue(m, at)
	if !dupAt.IsZero() {
		if c := cloneMessage(m); c != nil {
			n.duplicated.Add(1)
			l.enqueue(c, dupAt)
		}
	}
	return nil
}

// scheduleLocked computes the injected latency for one delivery under
// rule. Caller holds n.mu (the PRNG is not otherwise synchronized).
func (n *Network) scheduleLocked(rule Rule) time.Duration {
	d := rule.Delay
	if rule.Jitter > 0 {
		d += time.Duration(n.rng.Int63n(int64(rule.Jitter)))
	}
	if rule.ReorderProb > 0 && n.rng.Float64() < rule.ReorderProb {
		w := rule.ReorderWindow
		if w <= 0 {
			w = time.Millisecond
		}
		d += w
		n.reordered.Add(1)
	}
	return d
}

// Close stops all links and closes the inner network.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, l := range links {
		l.close()
	}
	n.inner.Close()
}

// isCut reports whether the directed DC pair is currently cut, returning
// the heal channel to wait on when it is.
func (n *Network) isCut(fromDC, toDC int) (bool, chan struct{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cuts[[2]int{fromDC, toDC}], n.healGen
}

// cloneMessage deep-copies m via an encode/decode round trip so a
// duplicate delivery never shares pooled state with the original.
func cloneMessage(m wire.Message) wire.Message {
	c, err := wire.Decode(m.Kind(), wire.Encode(m))
	if err != nil {
		return nil
	}
	return c
}

type entry struct {
	at  time.Time
	seq uint64
	m   wire.Message
}

// link schedules deliveries for one (from, to) pair. The queue is kept
// sorted by (at, seq): delivery order follows scheduled time, which is
// what lets a delayed message be overtaken by a later undelayed one.
type link struct {
	n        *Network
	from, to transport.NodeID

	mu     sync.Mutex
	q      []entry
	seq    uint64
	closed bool
	notify chan struct{}
	done   chan struct{}
}

func newLink(n *Network, from, to transport.NodeID) *link {
	l := &link{
		n:      n,
		from:   from,
		to:     to,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	go l.run()
	return l
}

func (l *link) idle() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.q) == 0
}

func (l *link) enqueue(m wire.Message, at time.Time) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.seq++
	e := entry{at: at, seq: l.seq, m: m}
	i := sort.Search(len(l.q), func(i int) bool {
		if l.q[i].at.Equal(e.at) {
			return l.q[i].seq > e.seq
		}
		return l.q[i].at.After(e.at)
	})
	l.q = append(l.q, entry{})
	copy(l.q[i+1:], l.q[i:])
	l.q[i] = e
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

func (l *link) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.q = nil
	l.mu.Unlock()
	close(l.done)
}

func (l *link) run() {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if len(l.q) == 0 {
			l.mu.Unlock()
			select {
			case <-l.notify:
			case <-l.done:
				return
			}
			continue
		}
		head := l.q[0]
		l.mu.Unlock()

		if wait := time.Until(head.at); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-l.notify:
				// An earlier-scheduled entry may have arrived; re-read.
				t.Stop()
				continue
			case <-l.done:
				t.Stop()
				return
			}
		}

		if cut, heal := l.n.isCut(l.from.DC, l.to.DC); cut {
			l.n.held.Add(1)
			select {
			case <-heal:
			case <-l.done:
				return
			}
			continue
		}

		l.mu.Lock()
		if l.closed || len(l.q) == 0 {
			l.mu.Unlock()
			continue
		}
		e := l.q[0]
		copy(l.q, l.q[1:])
		l.q = l.q[:len(l.q)-1]
		l.mu.Unlock()

		l.n.delivered.Add(1)
		_ = l.n.inner.Send(l.from, l.to, e.m)
	}
}
