package chaos

import (
	"sync"
	"testing"
	"time"

	"wren/internal/transport"
	"wren/internal/wire"
)

// collector registers a handler that records received messages.
type collector struct {
	mu   sync.Mutex
	msgs []wire.Message
}

func (c *collector) handle(from transport.NodeID, m wire.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) txIDs() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.msgs))
	for _, m := range c.msgs {
		out = append(out, m.(*wire.CommitTx).TxID)
	}
	return out
}

func newPair(t *testing.T, seed int64) (*Network, transport.NodeID, transport.NodeID, *collector) {
	t.Helper()
	n := New(transport.NewMemory(nil), seed)
	t.Cleanup(n.Close)
	a := transport.ServerID(0, 0)
	b := transport.ServerID(1, 0)
	col := &collector{}
	n.Register(a, transport.HandlerFunc(func(transport.NodeID, wire.Message) {}))
	n.Register(b, transport.HandlerFunc(col.handle))
	return n, a, b, col
}

func send(t *testing.T, n *Network, from, to transport.NodeID, txID uint64) {
	t.Helper()
	if err := n.Send(from, to, &wire.CommitTx{TxID: txID}); err != nil {
		t.Fatalf("Send: %v", err)
	}
}

func waitCount(t *testing.T, col *collector, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for col.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages, have %d", want, col.count())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPassThroughNoRules(t *testing.T) {
	n, a, b, col := newPair(t, 1)
	for i := 0; i < 10; i++ {
		send(t, n, a, b, uint64(i))
	}
	waitCount(t, col, 10)
	if got := n.Stats().Delivered; got != 0 {
		t.Fatalf("fast path should bypass link goroutines, delivered=%d", got)
	}
}

func TestDropIsDeterministic(t *testing.T) {
	run := func(seed int64) int {
		n := New(transport.NewMemory(nil), seed)
		defer n.Close()
		a, b := transport.ServerID(0, 0), transport.ServerID(1, 0)
		col := &collector{}
		n.Register(a, transport.HandlerFunc(func(transport.NodeID, wire.Message) {}))
		n.Register(b, transport.HandlerFunc(col.handle))
		n.SetDCRule(0, 1, Rule{DropProb: 0.5})
		for i := 0; i < 200; i++ {
			if err := n.Send(a, b, &wire.CommitTx{TxID: uint64(i)}); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		want := 200 - int(n.Stats().Dropped)
		deadline := time.Now().Add(5 * time.Second)
		for col.count() < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		return col.count()
	}
	first := run(42)
	if first == 0 || first == 200 {
		t.Fatalf("expected partial delivery at 50%% drop, got %d/200", first)
	}
	if second := run(42); second != first {
		t.Fatalf("same seed diverged: %d vs %d deliveries", first, second)
	}
}

func TestDuplicateDeliversClone(t *testing.T) {
	n, a, b, col := newPair(t, 7)
	n.SetDCRule(0, 1, Rule{DupProb: 1})
	send(t, n, a, b, 99)
	waitCount(t, col, 2)
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.msgs[0] == col.msgs[1] {
		t.Fatal("duplicate delivered the same pointer; pooled messages would be double-freed")
	}
	for _, m := range col.msgs {
		if m.(*wire.CommitTx).TxID != 99 {
			t.Fatalf("clone corrupted: %+v", m)
		}
	}
}

func TestDelayAndReorder(t *testing.T) {
	n, a, b, col := newPair(t, 3)
	// First message pushed far behind; second sent immediately after must
	// overtake it because delivery follows scheduled time.
	n.SetDCRule(0, 1, Rule{Delay: 50 * time.Millisecond})
	send(t, n, a, b, 1)
	n.SetDCRule(0, 1, Rule{})
	send(t, n, a, b, 2)
	waitCount(t, col, 2)
	if ids := col.txIDs(); ids[0] != 2 || ids[1] != 1 {
		t.Fatalf("expected delayed message overtaken, got order %v", ids)
	}
}

func TestCutHoldsLosslesslyUntilHeal(t *testing.T) {
	n, a, b, col := newPair(t, 5)
	n.Cut(0, 1)
	for i := 0; i < 20; i++ {
		send(t, n, a, b, uint64(i))
	}
	time.Sleep(20 * time.Millisecond)
	if got := col.count(); got != 0 {
		t.Fatalf("cut link leaked %d messages", got)
	}
	n.Heal(0, 1)
	waitCount(t, col, 20)
	for i, id := range col.txIDs() {
		if id != uint64(i) {
			t.Fatalf("held messages delivered out of order: %v", col.txIDs())
		}
	}
}

func TestCutIsDirected(t *testing.T) {
	n := New(transport.NewMemory(nil), 9)
	defer n.Close()
	a, b := transport.ServerID(0, 0), transport.ServerID(1, 0)
	colA, colB := &collector{}, &collector{}
	n.Register(a, transport.HandlerFunc(colA.handle))
	n.Register(b, transport.HandlerFunc(colB.handle))
	n.Cut(0, 1)
	send(t, n, a, b, 1) // held
	send(t, n, b, a, 2) // flows: only 0->1 is cut
	waitCount(t, colA, 1)
	if colB.count() != 0 {
		t.Fatal("directed cut leaked forward traffic")
	}
	n.Heal(0, 1)
	waitCount(t, colB, 1)
}

func TestClientRulePrecedence(t *testing.T) {
	n := New(transport.NewMemory(nil), 11)
	defer n.Close()
	srv := transport.ServerID(0, 0)
	cli := transport.ClientID(0, 0)
	colSrv, colCli := &collector{}, &collector{}
	n.Register(srv, transport.HandlerFunc(colSrv.handle))
	n.Register(cli, transport.HandlerFunc(colCli.handle))
	// DC rule drops everything, but the client rule (empty = no faults)
	// wins on links touching a client.
	n.SetDCRule(0, 0, Rule{DropProb: 1})
	n.SetClientRule(0, Rule{})
	send(t, n, cli, srv, 1)
	send(t, n, srv, cli, 2)
	waitCount(t, colSrv, 1)
	waitCount(t, colCli, 1)
}

func TestSendAfterClose(t *testing.T) {
	n, a, b, _ := newPair(t, 13)
	n.Close()
	if err := n.Send(a, b, &wire.CommitTx{}); err != transport.ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
