// Package checker validates Transactional Causal Consistency from observed
// histories. It is the test oracle used by the integration and chaos tests:
// clients route every operation through a Checker, and the Checker reports
// violations of the paper's §II guarantees:
//
//   - causal snapshots: a transaction's reads never observe a version
//     without also observing (at least) every version it causally depends
//     on;
//   - atomic visibility: versions written by one transaction are observed
//     all-or-nothing;
//   - session guarantees: read-your-writes, monotonic reads and writes
//     (no session ever travels backwards in causal time).
//
// Method: every key is owned by exactly one writer session (single-writer
// keys make "which version is newer" well-defined under last-writer-wins),
// and every written value encodes (owner, key, sequence). Each version
// carries a dependency frontier — a map from key to the minimum sequence
// number any observer of this version must subsequently see. A version's
// frontier is the writer's observed frontier at write time plus the other
// keys co-written in the same transaction (which yields the atomicity
// check for free).
package checker

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Checker is the shared oracle. All methods are safe for concurrent use by
// multiple sessions.
type Checker struct {
	mu sync.Mutex
	// deps[key][seq] is the dependency frontier of version seq of key.
	deps map[string]map[int]map[string]int
	// owner[key] is the writer session that owns key.
	owner map[string]string
	// sessions[name] is the per-session observed frontier and counters.
	sessions map[string]*session

	violations []error
}

type session struct {
	frontier map[string]int // minimum next-observable seq per key
	ownSeq   map[string]int // last sequence written per owned key
}

// New returns an empty checker.
func New() *Checker {
	return &Checker{
		deps:     make(map[string]map[int]map[string]int),
		owner:    make(map[string]string),
		sessions: make(map[string]*session),
	}
}

func (c *Checker) session(name string) *session {
	s, ok := c.sessions[name]
	if !ok {
		s = &session{frontier: make(map[string]int), ownSeq: make(map[string]int)}
		c.sessions[name] = s
	}
	return s
}

func (c *Checker) violate(format string, args ...any) {
	c.violations = append(c.violations, fmt.Errorf(format, args...))
}

// Violations returns every violation recorded so far.
func (c *Checker) Violations() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]error, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err returns all violations joined, or nil if the history is TCC-clean.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return errors.Join(c.violations...)
}

// encodeValue builds the on-store value for version seq of key owned by
// owner.
func encodeValue(owner, key string, seq int) []byte {
	return []byte(owner + "|" + key + "|" + strconv.Itoa(seq))
}

// parseValue decodes a stored value. ok is false for foreign values.
func parseValue(v []byte) (owner, key string, seq int, ok bool) {
	parts := strings.Split(string(v), "|")
	if len(parts) != 3 {
		return "", "", 0, false
	}
	seq, err := strconv.Atoi(parts[2])
	if err != nil {
		return "", "", 0, false
	}
	return parts[0], parts[1], seq, true
}

// WriteTx stages one write transaction: it assigns the next sequence number
// to each key and registers the dependency frontiers of the new versions.
type WriteTx struct {
	c       *Checker
	session string
	values  map[string][]byte
	seqs    map[string]int
}

// WriteTx begins a write transaction on the given keys for the session.
// Keys not yet owned are claimed by the session; writing a key owned by a
// different session is a test-programming error and panics.
func (c *Checker) WriteTx(sessionName string, keys []string) *WriteTx {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.session(sessionName)

	wt := &WriteTx{
		c:       c,
		session: sessionName,
		values:  make(map[string][]byte, len(keys)),
		seqs:    make(map[string]int, len(keys)),
	}
	for _, k := range keys {
		if own, ok := c.owner[k]; ok && own != sessionName {
			panic(fmt.Sprintf("checker: key %q owned by %q, written by %q", k, own, sessionName))
		}
		c.owner[k] = sessionName
		seq := s.ownSeq[k] + 1
		s.ownSeq[k] = seq
		wt.seqs[k] = seq
		wt.values[k] = encodeValue(sessionName, k, seq)
	}
	// The version's dependency frontier: everything the writer has
	// observed, plus the co-written keys at their new sequence numbers
	// (atomic visibility), plus its own prior writes.
	base := make(map[string]int, len(s.frontier)+len(keys))
	for k, q := range s.frontier {
		base[k] = q
	}
	for k, q := range s.ownSeq {
		if q > base[k] {
			base[k] = q
		}
	}
	for _, k := range keys {
		if c.deps[k] == nil {
			c.deps[k] = make(map[int]map[string]int)
		}
		c.deps[k][wt.seqs[k]] = base
	}
	return wt
}

// Values returns the encoded values to write, keyed by key.
func (wt *WriteTx) Values() map[string][]byte { return wt.values }

// Committed records that the transaction committed: the session's frontier
// advances past its own writes (read-your-writes from here on).
func (wt *WriteTx) Committed() {
	wt.c.mu.Lock()
	defer wt.c.mu.Unlock()
	s := wt.c.session(wt.session)
	for k, seq := range wt.seqs {
		if seq > s.frontier[k] {
			s.frontier[k] = seq
		}
	}
}

// ReadTx collects the observations of one read snapshot.
type ReadTx struct {
	c        *Checker
	session  string
	observed map[string]int // key -> seq (0 = absent)
}

// ReadTx begins recording a read-only (or read phase of a) transaction.
func (c *Checker) ReadTx(sessionName string) *ReadTx {
	return &ReadTx{
		c:        c,
		session:  sessionName,
		observed: make(map[string]int),
	}
}

// Observe records that the transaction read the given value for key.
// A nil/empty value means the key was absent from the snapshot.
func (rt *ReadTx) Observe(key string, value []byte) {
	seq := 0
	if len(value) > 0 {
		owner, vkey, vseq, ok := parseValue(value)
		if !ok {
			rt.c.mu.Lock()
			rt.c.violate("session %s read unparseable value %q for key %q", rt.session, value, key)
			rt.c.mu.Unlock()
			return
		}
		if vkey != key {
			rt.c.mu.Lock()
			rt.c.violate("session %s read value of key %q under key %q", rt.session, vkey, key)
			rt.c.mu.Unlock()
			return
		}
		_ = owner
		seq = vseq
	}
	rt.observed[key] = seq
}

// Close checks the snapshot against the session's history and the causal
// dependency graph, then merges it into the session frontier. It reports
// the number of violations found in this snapshot.
func (rt *ReadTx) Close() int {
	c := rt.c
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.session(rt.session)
	before := len(c.violations)

	// Session checks: never travel backwards.
	for k, seq := range rt.observed {
		if min := s.frontier[k]; seq < min {
			c.violate("session %s: key %q regressed to seq %d after observing %d",
				rt.session, k, seq, min)
		}
	}

	// Snapshot closure: every observed version's dependency frontier must
	// be satisfied by the same snapshot (this covers both causality and
	// atomic visibility).
	for k, seq := range rt.observed {
		if seq == 0 {
			continue
		}
		dep := c.deps[k][seq]
		if dep == nil {
			c.violate("session %s: key %q@%d has no registered writer", rt.session, k, seq)
			continue
		}
		for dk, dseq := range dep {
			got, read := rt.observed[dk]
			if !read {
				continue // snapshot didn't look at dk; nothing to check
			}
			if got < dseq {
				c.violate("session %s: snapshot has %q@%d but %q@%d (needs >= %d): causal/atomic violation",
					rt.session, k, seq, dk, got, dseq)
			}
		}
	}

	// Merge: the session has now observed these versions and everything
	// they depend on.
	for k, seq := range rt.observed {
		if seq > s.frontier[k] {
			s.frontier[k] = seq
		}
		if seq == 0 {
			continue
		}
		for dk, dseq := range c.deps[k][seq] {
			if dseq > s.frontier[dk] {
				s.frontier[dk] = dseq
			}
		}
	}
	return len(c.violations) - before
}
