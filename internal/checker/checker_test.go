package checker

import (
	"strings"
	"testing"
)

func TestCleanHistoryNoViolations(t *testing.T) {
	c := New()

	// Writer commits x=1, then y=1 (y depends on x).
	w1 := c.WriteTx("w", []string{"x"})
	w1.Committed()
	w2 := c.WriteTx("w", []string{"y"})
	w2.Committed()

	// Reader sees both.
	rt := c.ReadTx("r")
	rt.Observe("x", w1.Values()["x"])
	rt.Observe("y", w2.Values()["y"])
	if n := rt.Close(); n != 0 {
		t.Fatalf("clean history flagged %d violations: %v", n, c.Violations())
	}
	if c.Err() != nil {
		t.Fatalf("Err = %v", c.Err())
	}
}

func TestCausalViolationDetected(t *testing.T) {
	c := New()
	w1 := c.WriteTx("w", []string{"x"})
	w1.Committed()
	w2 := c.WriteTx("w", []string{"y"}) // depends on x@1
	w2.Committed()

	// Snapshot shows y@1 but x absent: causality broken.
	rt := c.ReadTx("r")
	rt.Observe("y", w2.Values()["y"])
	rt.Observe("x", nil)
	if n := rt.Close(); n == 0 {
		t.Fatal("causal violation not detected")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "causal") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStaleDependencyDetected(t *testing.T) {
	c := New()
	wx1 := c.WriteTx("w", []string{"x"})
	wx1.Committed()
	wx2 := c.WriteTx("w", []string{"x"})
	wx2.Committed()
	wy := c.WriteTx("w", []string{"y"}) // depends on x@2
	wy.Committed()

	rt := c.ReadTx("r")
	rt.Observe("y", wy.Values()["y"])
	rt.Observe("x", wx1.Values()["x"]) // stale: x@1 < required x@2
	if rt.Close() == 0 {
		t.Fatal("stale dependency not detected")
	}
}

func TestAtomicityViolationDetected(t *testing.T) {
	c := New()
	// Baseline versions so "absent" isn't the issue.
	w0 := c.WriteTx("w", []string{"a", "b"})
	w0.Committed()
	w1 := c.WriteTx("w", []string{"a", "b"}) // a@2, b@2 atomically
	w1.Committed()

	// Snapshot with a@2 but b@1: torn transaction.
	rt := c.ReadTx("r")
	rt.Observe("a", w1.Values()["a"])
	rt.Observe("b", w0.Values()["b"])
	if rt.Close() == 0 {
		t.Fatal("atomicity violation not detected")
	}
}

func TestMonotonicReadsViolationDetected(t *testing.T) {
	c := New()
	w1 := c.WriteTx("w", []string{"x"})
	w1.Committed()
	w2 := c.WriteTx("w", []string{"x"})
	w2.Committed()

	r1 := c.ReadTx("r")
	r1.Observe("x", w2.Values()["x"])
	if r1.Close() != 0 {
		t.Fatalf("unexpected violations: %v", c.Violations())
	}
	// Second read regresses to the older version.
	r2 := c.ReadTx("r")
	r2.Observe("x", w1.Values()["x"])
	if r2.Close() == 0 {
		t.Fatal("monotonic-reads violation not detected")
	}
}

func TestReadYourWritesViolationDetected(t *testing.T) {
	c := New()
	w1 := c.WriteTx("w", []string{"x"})
	w1.Committed()
	w2 := c.WriteTx("w", []string{"x"})
	w2.Committed()

	// The writer itself reads back the first version: RYW broken.
	rt := c.ReadTx("w")
	rt.Observe("x", w1.Values()["x"])
	if rt.Close() == 0 {
		t.Fatal("read-your-writes violation not detected")
	}
}

func TestAbsentKeyAfterObservationDetected(t *testing.T) {
	c := New()
	w1 := c.WriteTx("w", []string{"x"})
	w1.Committed()
	r1 := c.ReadTx("r")
	r1.Observe("x", w1.Values()["x"])
	if r1.Close() != 0 {
		t.Fatal("unexpected violation")
	}
	r2 := c.ReadTx("r")
	r2.Observe("x", nil) // key vanished
	if r2.Close() == 0 {
		t.Fatal("disappearing key not detected")
	}
}

func TestTransitiveCausalityThroughReads(t *testing.T) {
	c := New()
	// w1 writes x. w2 reads x, then writes y. A snapshot with y but stale
	// x violates causality across sessions.
	wx := c.WriteTx("w1", []string{"x"})
	wx.Committed()

	r := c.ReadTx("w2")
	r.Observe("x", wx.Values()["x"])
	if r.Close() != 0 {
		t.Fatal("unexpected violation")
	}
	wy := c.WriteTx("w2", []string{"y"})
	wy.Committed()

	rt := c.ReadTx("r")
	rt.Observe("y", wy.Values()["y"])
	rt.Observe("x", nil)
	if rt.Close() == 0 {
		t.Fatal("transitive causal violation not detected")
	}
}

func TestUnparseableValue(t *testing.T) {
	c := New()
	rt := c.ReadTx("r")
	rt.Observe("x", []byte("garbage"))
	rt.Close()
	if c.Err() == nil {
		t.Fatal("unparseable value not flagged")
	}
}

func TestWrongKeyValue(t *testing.T) {
	c := New()
	w := c.WriteTx("w", []string{"x"})
	w.Committed()
	rt := c.ReadTx("r")
	rt.Observe("y", w.Values()["x"]) // value of x under key y
	rt.Close()
	if c.Err() == nil {
		t.Fatal("cross-key value not flagged")
	}
}

func TestForeignOwnerPanics(t *testing.T) {
	c := New()
	w := c.WriteTx("w1", []string{"x"})
	w.Committed()
	defer func() {
		if recover() == nil {
			t.Fatal("writing another session's key should panic")
		}
	}()
	c.WriteTx("w2", []string{"x"})
}

func TestUncommittedWriteNotRequired(t *testing.T) {
	c := New()
	w1 := c.WriteTx("w", []string{"x"})
	w1.Committed()
	// A staged-but-never-committed write must not poison the reader: the
	// reader can still legally observe x@1.
	_ = c.WriteTx("w", []string{"x"}) // x@2 staged, never committed
	rt := c.ReadTx("r")
	rt.Observe("x", w1.Values()["x"])
	if rt.Close() != 0 {
		t.Fatalf("uncommitted write caused violations: %v", c.Violations())
	}
}

func TestViolationsAccumulate(t *testing.T) {
	c := New()
	w1 := c.WriteTx("w", []string{"x"})
	w1.Committed()
	w2 := c.WriteTx("w", []string{"x"})
	w2.Committed()

	for i := 0; i < 3; i++ {
		rt := c.ReadTx("r")
		rt.Observe("x", w2.Values()["x"])
		rt.Close()
		bad := c.ReadTx("r")
		bad.Observe("x", w1.Values()["x"])
		bad.Close()
	}
	if len(c.Violations()) != 3 {
		t.Fatalf("expected 3 accumulated violations, got %d", len(c.Violations()))
	}
}
