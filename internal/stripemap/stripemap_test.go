package stripemap

import (
	"sync"
	"testing"
)

func TestBasicOperations(t *testing.T) {
	m := New[string](0)
	if _, ok := m.Load(1); ok {
		t.Fatal("empty map Load should miss")
	}
	m.Store(1, "a")
	m.Store(2, "b")
	if v, ok := m.Load(1); !ok || v != "a" {
		t.Fatalf("Load(1) = %q,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Store(1, "a2") // overwrite
	if v, _ := m.Load(1); v != "a2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len after overwrite = %d, want 2", m.Len())
	}
	m.Delete(2)
	if _, ok := m.Load(2); ok {
		t.Fatal("Delete left the entry")
	}
}

func TestLoadAndDeleteClaimsOnce(t *testing.T) {
	m := New[int](4)
	const key = 42
	m.Store(key, 7)
	const claimers = 16
	var wg sync.WaitGroup
	won := make(chan int, claimers)
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, ok := m.LoadAndDelete(key); ok {
				won <- v
			}
		}()
	}
	wg.Wait()
	close(won)
	var winners []int
	for v := range won {
		winners = append(winners, v)
	}
	if len(winners) != 1 || winners[0] != 7 {
		t.Fatalf("LoadAndDelete claimed %v times (values %v), want exactly once", len(winners), winners)
	}
}

func TestRangeVisitsAll(t *testing.T) {
	m := New[uint64](8)
	const n = 1000
	for i := uint64(0); i < n; i++ {
		m.Store(i, i*2)
	}
	seen := make(map[uint64]uint64, n)
	m.Range(func(k, v uint64) bool {
		seen[k] = v
		return true
	})
	if len(seen) != n {
		t.Fatalf("Range visited %d entries, want %d", len(seen), n)
	}
	for k, v := range seen {
		if v != k*2 {
			t.Fatalf("entry %d = %d, want %d", k, v, k*2)
		}
	}
	// Early termination.
	count := 0
	m.Range(func(uint64, uint64) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Range after false continued: %d visits", count)
	}
}

func TestSequentialKeysSpreadAcrossStripes(t *testing.T) {
	m := New[int](64)
	const n = 4096
	for i := uint64(0); i < n; i++ {
		m.Store(i, 0)
	}
	perStripe := make(map[uint64]int)
	for i := uint64(0); i < n; i++ {
		perStripe[mix(i)&m.mask]++
	}
	if len(perStripe) < 32 {
		t.Fatalf("sequential keys landed in only %d/64 stripes", len(perStripe))
	}
	for stripe, c := range perStripe {
		if c > n/8 {
			t.Fatalf("stripe %d holds %d/%d keys — mixer not spreading", stripe, c, n)
		}
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	m := New[uint64](0)
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * perG)
			for i := uint64(0); i < perG; i++ {
				k := base + i
				m.Store(k, k)
				if v, ok := m.Load(k); !ok || v != k {
					t.Errorf("Load(%d) = %d,%v", k, v, ok)
					return
				}
				if i%2 == 0 {
					m.LoadAndDelete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := m.Len(), goroutines*perG/2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}
