// Package stripemap provides a lock-striped map keyed by uint64, used by
// the partition servers for per-request bookkeeping (open transaction
// contexts, in-flight slice reads). Striping the bookkeeping removes the
// server-wide mutex from the read path: a transactional read touches only
// the stripes its own TxID/ReqID hash to, so reads never serialize behind
// commits, replication applies or gossip — Wren's nonblocking-read property
// holds at the implementation level, not just the protocol level.
//
// Stripes use RWMutexes deliberately: the read-path benchmark suite asserts
// (via the runtime mutex profile) that read handlers never contend a plain
// sync.Mutex, the footprint of server-wide serialization.
package stripemap

import "sync"

// DefaultStripes is the stripe count used when New is given n <= 0. 64
// stripes keep contention negligible at several dozen cores for roughly
// 4KiB fixed overhead.
const DefaultStripes = 64

// stripe pads to a multiple of a cache line so lock traffic on one stripe
// does not false-share with its neighbours.
type stripe[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V
	_  [64 - 24 - 8]byte
}

// Map is a hash map striped over a power-of-two number of independently
// locked stripes. All methods are safe for concurrent use. The zero value
// is not usable; call New.
type Map[V any] struct {
	stripes []stripe[V]
	mask    uint64
}

// New returns an empty map with at least n stripes (n <= 0 selects
// DefaultStripes), rounded up to a power of two.
func New[V any](n int) *Map[V] {
	if n <= 0 {
		n = DefaultStripes
	}
	size := 1
	for size < n {
		size <<= 1
	}
	m := &Map[V]{stripes: make([]stripe[V], size), mask: uint64(size - 1)}
	for i := range m.stripes {
		m.stripes[i].m = make(map[uint64]V)
	}
	return m
}

// mix spreads sequential keys (request counters, transaction sequence
// numbers) across stripes; without it, monotonically assigned IDs would
// all land in a handful of stripes. SplitMix64 finalizer.
func mix(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (m *Map[V]) stripeOf(k uint64) *stripe[V] {
	return &m.stripes[mix(k)&m.mask]
}

// Store sets the value for key k.
func (m *Map[V]) Store(k uint64, v V) {
	s := m.stripeOf(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Load returns the value for key k.
func (m *Map[V]) Load(k uint64) (V, bool) {
	s := m.stripeOf(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// LoadAndDelete atomically removes and returns the value for key k. Only
// one of several concurrent callers observes ok == true, which makes it the
// claim operation for one-shot request state.
func (m *Map[V]) LoadAndDelete(k uint64) (V, bool) {
	s := m.stripeOf(k)
	s.mu.Lock()
	v, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	return v, ok
}

// Delete removes key k.
func (m *Map[V]) Delete(k uint64) {
	s := m.stripeOf(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. It holds one
// stripe read-lock at a time while fn runs; fn must not call back into the
// map. Entries stored or deleted concurrently may or may not be visited.
func (m *Map[V]) Range(fn func(k uint64, v V) bool) {
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
