package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wren/internal/hlc"
	"wren/internal/transport"
	"wren/internal/wire"
)

// Client errors.
var (
	// ErrTxOpen is returned by Begin while another transaction is open on
	// the same session (the paper's clients issue one operation at a time).
	ErrTxOpen = errors.New("core: a transaction is already open on this session")
	// ErrTxDone is returned when operating on a committed or aborted
	// transaction.
	ErrTxDone = errors.New("core: transaction already finished")
	// ErrTimeout is returned when the coordinator does not answer in time.
	ErrTimeout = errors.New("core: request timed out")
	// ErrClosed is returned after the client session is closed.
	ErrClosed = errors.New("core: client closed")
	// ErrReadOnly is returned by Commit when the server refused the write
	// because its durability is degraded (a failed storage engine or
	// transaction log shed it into read-only admission). The transaction
	// did not commit; callers can retry against a different coordinator or
	// surface the outage. Matched with errors.Is.
	ErrReadOnly = errors.New("core: server is read-only (durability degraded)")
	// ErrAborted is returned by Commit when the transaction definitely did
	// not commit: the coordinator answered a termination probe "not
	// committed" and thereby fenced the transaction id, so the original
	// commit can never land late. The session may safely re-run the
	// transaction. Matched with errors.Is.
	ErrAborted = errors.New("core: transaction aborted")
	// ErrInDoubt is returned by Commit when the acknowledgement was lost
	// and every termination probe also went unanswered: the transaction may
	// or may not have committed. It wraps the original failure, so
	// errors.Is(err, ErrTimeout) still holds. Matched with errors.Is.
	ErrInDoubt = errors.New("core: commit outcome in doubt")
)

// DefaultRequestTimeout bounds each client-coordinator round trip.
const DefaultRequestTimeout = 10 * time.Second

// RetryPolicy controls how a client session reacts to timed-out or
// transiently failed round trips. The zero value disables retries and
// preserves single-attempt semantics.
type RetryPolicy struct {
	// Attempts is the number of additional tries after the first failure
	// for idempotent requests (Begin, Read, Scan, Health), and the number
	// of termination probes issued for an unacknowledged commit. Commits
	// themselves are never resent — see Tx.Commit.
	Attempts int
	// Backoff is the delay before the first retry; it doubles per attempt
	// and is capped at 500ms. Zero selects 5ms.
	Backoff time.Duration
}

// retryDelay returns the backoff before retry number attempt (1-based).
func (rp RetryPolicy) retryDelay(attempt int) time.Duration {
	b := rp.Backoff
	if b <= 0 {
		b = 5 * time.Millisecond
	}
	d := b << uint(attempt-1)
	if max := 500 * time.Millisecond; d > max || d <= 0 {
		d = max
	}
	return d
}

// Conn is a pooled client connection: one session's handle on a shared
// connection pool (internal/transport/pool) that multiplexes many
// sessions over a few transport endpoints. It is declared structurally so
// the client does not depend on the pool package; *pool.Conn satisfies it.
type Conn interface {
	Call(to transport.NodeID, timeout time.Duration, build func(reqID uint64) wire.Message) (wire.Message, error)
}

// ClientConfig configures a Wren client session.
type ClientConfig struct {
	// DC is the client's local data center (clients never leave it; §II-A).
	DC int
	// ClientIndex distinguishes client processes within the DC.
	ClientIndex int
	// NumPartitions is the number of partitions per DC.
	NumPartitions int
	// Network is the messaging substrate shared with the servers. May be
	// nil when Conn is set.
	Network transport.Network
	// Conn, when non-nil, binds the session to a shared connection pool:
	// round trips are issued through it — pipelined with other sessions
	// over the pool's few endpoints — and the session does not register
	// its own NodeID on the Network. Per-session ordering is preserved by
	// the pool's endpoint affinity plus this client's sequential API; see
	// internal/transport/pool.
	Conn Conn
	// CoordinatorPartition fixes the coordinator partition; a negative
	// value picks a random coordinator per transaction (the paper's default
	// behaviour; the evaluation collocates clients with one coordinator).
	CoordinatorPartition int
	// RequestTimeout bounds each round trip. Zero selects
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Retry controls timeout-driven retries and commit termination
	// probing. The zero value keeps every request single-attempt.
	Retry RetryPolicy
	// Rand seeds coordinator selection; nil uses a time-seeded source.
	Rand *rand.Rand
}

// cacheEntry is one client-side cached write (an element of WC_c).
type cacheEntry struct {
	value []byte
	ct    hlc.Timestamp
}

// Client is a Wren client session (Algorithm 1). A session runs one
// transaction at a time; concurrent sessions use separate Clients.
type Client struct {
	cfg ClientConfig
	id  transport.NodeID
	rng *rand.Rand

	mu      sync.Mutex
	lst     hlc.Timestamp // lst_c: local snapshot time seen so far
	rst     hlc.Timestamp // rst_c: remote snapshot time seen so far
	hwt     hlc.Timestamp // hwt_c: commit time of the last update transaction
	cache   map[string]cacheEntry
	pending map[uint64]chan wire.Message
	tx      *Tx
	closed  bool

	reqSeq atomic.Uint64
}

// NewClient creates a client session and registers it on the network.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Network == nil && cfg.Conn == nil {
		return nil, fmt.Errorf("core: a network or a pooled connection is required")
	}
	if cfg.NumPartitions <= 0 {
		return nil, fmt.Errorf("core: NumPartitions must be positive")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	c := &Client{
		cfg:     cfg,
		id:      transport.ClientID(cfg.DC, cfg.ClientIndex),
		rng:     rng,
		cache:   make(map[string]cacheEntry),
		pending: make(map[uint64]chan wire.Message),
	}
	if cfg.Conn == nil {
		cfg.Network.Register(c.id, c)
	}
	return c, nil
}

// ID returns the client's node id.
func (c *Client) ID() transport.NodeID { return c.id }

// HandleMessage implements transport.Handler, routing responses to the
// round-trip that issued them.
func (c *Client) HandleMessage(_ transport.NodeID, m wire.Message) {
	var reqID uint64
	switch msg := m.(type) {
	case *wire.StartTxResp:
		reqID = msg.ReqID
	case *wire.TxReadResp:
		reqID = msg.ReqID
	case *wire.CommitResp:
		reqID = msg.ReqID
	case *wire.HealthResp:
		reqID = msg.ReqID
	case *wire.ScanResp:
		reqID = msg.ReqID
	case *wire.TxStatusResp:
		reqID = msg.ReqID
	case *wire.BusyResp:
		reqID = msg.ReqID
	default:
		return
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- m
	}
}

// Health probes the durability/admission state of one partition server in
// the client's DC: whether it has shed into read-only admission, and the
// first write-path failure it recorded (empty while healthy). This is the
// operator-facing path behind wren-cli's health command — degraded
// servers are observable without polling process-internal state.
func (c *Client) Health(partition int) (readOnly bool, detail string, err error) {
	if partition < 0 || partition >= c.cfg.NumPartitions {
		return false, "", fmt.Errorf("core: partition %d out of range [0,%d)", partition, c.cfg.NumPartitions)
	}
	resp, err := c.callRetry(transport.ServerID(c.cfg.DC, partition), func(reqID uint64) wire.Message {
		return &wire.HealthReq{ReqID: reqID}
	})
	if err != nil {
		return false, "", err
	}
	hr, ok := resp.(*wire.HealthResp)
	if !ok {
		return false, "", fmt.Errorf("core: unexpected response %T to HealthReq", resp)
	}
	return hr.ReadOnly, hr.Err, nil
}

// call performs one request/response round trip with the coordinator.
func (c *Client) call(to transport.NodeID, reqID uint64, m wire.Message) (wire.Message, error) {
	ch := make(chan wire.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.pending[reqID] = ch
	from := c.id
	c.mu.Unlock()

	if err := c.cfg.Network.Send(from, to, m); err != nil {
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, err
	}
	timer := time.NewTimer(c.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w (%v to %v)", ErrTimeout, m.Kind(), to)
	}
}

// roundTrip performs one request/response round trip: through the
// session's pooled connection when one is bound (cfg.Conn), over the
// session's own registered endpoint otherwise. build receives the
// attempt's request id and returns the message to send. A BusyResp — the
// server's admission pushback — surfaces as an error matching
// transport.ErrOverloaded, so retry loops back off and try again instead
// of hot-looping.
func (c *Client) roundTrip(to transport.NodeID, build func(reqID uint64) wire.Message) (wire.Message, error) {
	var resp wire.Message
	var err error
	if c.cfg.Conn != nil {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		resp, err = c.cfg.Conn.Call(to, c.cfg.RequestTimeout, build)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return nil, fmt.Errorf("%w (pooled request to %v)", ErrTimeout, to)
			}
			if errors.Is(err, transport.ErrClosed) {
				return nil, fmt.Errorf("%w (connection pool closed)", ErrClosed)
			}
			return nil, err
		}
	} else {
		reqID := c.reqSeq.Add(1)
		resp, err = c.call(to, reqID, build(reqID))
		if err != nil {
			return nil, err
		}
	}
	if _, busy := resp.(*wire.BusyResp); busy {
		return nil, fmt.Errorf("%w: %v shed the request at admission", transport.ErrOverloaded, to)
	}
	return resp, nil
}

// callRetry performs a round trip, retrying timed-out or transiently
// failed attempts per the session's retry policy. It is only safe for
// idempotent requests: each attempt carries a fresh request id, so a late
// response to an abandoned attempt misses the pending map and is dropped.
func (c *Client) callRetry(to transport.NodeID, build func(reqID uint64) wire.Message) (wire.Message, error) {
	var err error
	for attempt := 0; attempt <= c.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Retry.retryDelay(attempt))
		}
		var resp wire.Message
		resp, err = c.roundTrip(to, build)
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
	}
	return nil, err
}

// Begin starts an interactive transaction (Algorithm 1, START): it obtains
// the snapshot from a coordinator and prunes the client cache of entries
// already covered by the local stable snapshot.
func (c *Client) Begin() (*Tx, error) {
	return c.BeginAt(c.cfg.CoordinatorPartition)
}

// BeginAt starts a transaction on an explicit coordinator partition; a
// negative value picks a random one (the Begin default). It is the
// failover entry point: after a read-only commit refusal a session can
// retry against a different, healthy coordinator while keeping its causal
// session state — snapshot times, write cache and hwt all carry over, so
// the retried transaction still commits strictly after everything this
// session has observed.
func (c *Client) BeginAt(coordinator int) (*Tx, error) {
	if coordinator >= c.cfg.NumPartitions {
		return nil, fmt.Errorf("core: coordinator partition %d out of range [0,%d)", coordinator, c.cfg.NumPartitions)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.tx != nil {
		c.mu.Unlock()
		return nil, ErrTxOpen
	}
	lst, rst := c.lst, c.rst
	dc := c.cfg.DC
	c.mu.Unlock()

	// Begin is idempotent (an unanswered StartTxReq just leaves an expiring
	// context behind), so timeouts fail over to an alternate coordinator:
	// any partition in the DC can serve the snapshot.
	var st *wire.StartTxResp
	var coord transport.NodeID
	var coordPartition int
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retry.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Retry.retryDelay(attempt))
		}
		coordPartition = coordinator
		if coordPartition < 0 {
			c.mu.Lock()
			coordPartition = c.rng.Intn(c.cfg.NumPartitions)
			c.mu.Unlock()
		} else if attempt > 0 {
			coordPartition = (coordinator + attempt) % c.cfg.NumPartitions
		}
		coord = transport.ServerID(dc, coordPartition)
		resp, err := c.roundTrip(coord, func(reqID uint64) wire.Message {
			return &wire.StartTxReq{ReqID: reqID, LST: lst, RST: rst}
		})
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		var ok bool
		st, ok = resp.(*wire.StartTxResp)
		if !ok {
			return nil, fmt.Errorf("core: unexpected response %T to StartTxReq", resp)
		}
		break
	}
	if st == nil {
		return nil, lastErr
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if st.LST > c.lst {
		c.lst = st.LST
	}
	if st.RST > c.rst {
		c.rst = st.RST
	}
	// Prune WC_c: drop every cached write already included in the causal
	// snapshot (Algorithm 1 line 6). Safe because the coordinator enforces
	// rt < lt, so any surviving entry is fresher than anything visible.
	for k, e := range c.cache {
		if e.ct <= c.lst {
			delete(c.cache, k)
		}
	}
	tx := &Tx{
		client:    c,
		coord:     coord,
		partition: coordPartition,
		id:        st.TxID,
		lt:        st.LST,
		rt:        st.RST,
		ws:        make(map[string][]byte),
		rs:        make(map[string][]byte),
		rsMiss:    make(map[string]struct{}),
	}
	c.tx = tx
	return tx, nil
}

// Close terminates the session. An open transaction is abandoned (its
// server-side context expires via the coordinator's TTL sweep).
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.tx = nil
}

// CacheSize returns the number of entries in the client-side write cache
// (exposed for tests and the cache-ablation benchmark).
func (c *Client) CacheSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cache)
}

// SnapshotTimes returns the client's current (lst_c, rst_c).
func (c *Client) SnapshotTimes() (lst, rst hlc.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lst, c.rst
}

// Tx is an interactive read-write transaction.
type Tx struct {
	client    *Client
	coord     transport.NodeID
	partition int // coordinator partition index
	id        uint64
	lt        hlc.Timestamp
	rt        hlc.Timestamp
	ws        map[string][]byte
	rs        map[string][]byte
	rsMiss    map[string]struct{} // keys known absent in this snapshot
	done      bool

	// BlockedMicros accumulates server-reported read blocking time; always
	// zero for Wren, used by the Cure client which shares this API shape.
	BlockedMicros int64
}

// ID returns the transaction identifier assigned by the coordinator.
func (t *Tx) ID() uint64 { return t.id }

// Coordinator returns the coordinator partition this transaction ran on —
// the partition a failover retry must avoid.
func (t *Tx) Coordinator() int { return t.partition }

// Blocked returns the total time this transaction's reads spent blocked on
// servers. It is always zero in Wren — the protocol's defining property —
// and exists for API parity with the Cure baseline.
func (t *Tx) Blocked() time.Duration {
	return time.Duration(t.BlockedMicros) * time.Microsecond
}

// Snapshot returns the transaction's (local, remote) snapshot timestamps.
func (t *Tx) Snapshot() (lt, rt hlc.Timestamp) { return t.lt, t.rt }

// Read returns the values of the given keys within the transaction
// snapshot (Algorithm 1, READ). Keys never written anywhere are absent
// from the result map.
func (t *Tx) Read(keys ...string) (map[string][]byte, error) {
	if t.done {
		return nil, ErrTxDone
	}
	result := make(map[string][]byte, len(keys))
	var missing []string
	t.client.mu.Lock()
	for _, k := range keys {
		if v, ok := t.ws[k]; ok { // own uncommitted write (nil = own delete)
			if v != nil {
				result[k] = v
			}
			continue
		}
		if v, ok := t.rs[k]; ok { // repeatable read
			result[k] = v
			continue
		}
		if _, ok := t.rsMiss[k]; ok { // known absent in this snapshot
			continue
		}
		if e, ok := t.client.cache[k]; ok { // own committed write not in snapshot
			if e.value == nil {
				// Own committed delete: the key reads as absent even though
				// the tombstone may not be in the snapshot yet.
				t.rsMiss[k] = struct{}{}
				continue
			}
			result[k] = e.value
			t.rs[k] = e.value
			continue
		}
		missing = append(missing, k)
	}
	t.client.mu.Unlock()

	if len(missing) == 0 {
		return result, nil
	}
	resp, err := t.client.callRetry(t.coord, func(reqID uint64) wire.Message {
		return &wire.TxReadReq{ReqID: reqID, TxID: t.id, Keys: missing}
	})
	if err != nil {
		return nil, err
	}
	rr, ok := resp.(*wire.TxReadResp)
	if !ok {
		return nil, fmt.Errorf("core: unexpected response %T to TxReadReq", resp)
	}
	if rr.BlockedMicros > t.BlockedMicros {
		t.BlockedMicros = rr.BlockedMicros
	}
	t.client.mu.Lock()
	for i := range rr.Items {
		it := &rr.Items[i]
		result[it.Key] = it.Value
		t.rs[it.Key] = it.Value
	}
	// Large read sets arrive partly as chunks: slice buffers the fan-in
	// retained by reference instead of copying into Items.
	for _, chunk := range rr.Chunks {
		for i := range chunk {
			it := &chunk[i]
			result[it.Key] = it.Value
			t.rs[it.Key] = it.Value
		}
	}
	// Keys absent from the reply are unwritten in this snapshot: record
	// the absence so repeated reads stay stable.
	for _, k := range missing {
		if _, ok := t.rs[k]; !ok {
			t.rsMiss[k] = struct{}{}
		}
	}
	t.client.mu.Unlock()
	// The response message is pooled server-side; everything needed has
	// been copied out (values are referenced, never mutated), so the
	// session — the receiving end — releases it.
	wire.PutTxReadResp(rr)
	return result, nil
}

// ScanKV is one key/value pair yielded by Tx.Scan, in key order.
type ScanKV struct {
	Key   string
	Value []byte
}

// Scan returns every key in [start, end) visible in the transaction
// snapshot, in ascending key order, with the session's own writes
// overlaid (uncommitted writes and deletes from this transaction, plus
// committed writes from the client cache not yet covered by the
// snapshot). An empty end scans to the end of the keyspace; limit > 0
// caps the number of results. Keys are hash-sharded, so the range is
// fanned out to every partition in the client's DC and the per-partition
// sorted streams are merged; like every Wren read, the partitions answer
// from their stable snapshot without blocking.
func (t *Tx) Scan(start, end string, limit int) ([]ScanKV, error) {
	if t.done {
		return nil, ErrTxDone
	}
	c := t.client
	n := c.cfg.NumPartitions

	results := make([][]wire.Item, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			resp, err := c.callRetry(transport.ServerID(c.cfg.DC, p), func(reqID uint64) wire.Message {
				return &wire.ScanReq{
					ReqID: reqID, Start: start, End: end, Limit: uint64(limit),
					LT: t.lt, RT: t.rt,
				}
			})
			if err != nil {
				errs[p] = err
				return
			}
			sr, ok := resp.(*wire.ScanResp)
			if !ok {
				errs[p] = fmt.Errorf("core: unexpected response %T to ScanReq", resp)
				return
			}
			results[p] = sr.Items
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Session overlay: the client cache first (committed writes the
	// snapshot may not cover yet), then this transaction's write set on
	// top. A nil value is a delete and hides the key.
	inRange := func(k string) bool { return k >= start && (end == "" || k < end) }
	overlay := make(map[string][]byte)
	c.mu.Lock()
	for k, e := range c.cache {
		if inRange(k) {
			overlay[k] = e.value
		}
	}
	for k, v := range t.ws {
		if inRange(k) {
			overlay[k] = v
		}
	}
	c.mu.Unlock()
	okeys := make([]string, 0, len(overlay))
	for k := range overlay {
		okeys = append(okeys, k)
	}
	sort.Strings(okeys)

	// K-way merge of the per-partition streams (disjoint key sets, each
	// sorted) with the sorted overlay, overlay winning.
	heads := make([]int, n)
	oi := 0
	var out []ScanKV
	for {
		var minKey string
		found := false
		if oi < len(okeys) {
			minKey, found = okeys[oi], true
		}
		for p := 0; p < n; p++ {
			if heads[p] < len(results[p]) {
				if k := results[p][heads[p]].Key; !found || k < minKey {
					minKey, found = k, true
				}
			}
		}
		if !found {
			break
		}
		var val []byte
		have, fromOverlay := false, false
		if oi < len(okeys) && okeys[oi] == minKey {
			val = overlay[minKey]
			have, fromOverlay = val != nil, true
			oi++
		}
		for p := 0; p < n; p++ {
			if heads[p] < len(results[p]) && results[p][heads[p]].Key == minKey {
				if !fromOverlay {
					val, have = results[p][heads[p]].Value, true
				}
				heads[p]++
			}
		}
		if have {
			if val == nil {
				val = []byte{}
			}
			out = append(out, ScanKV{Key: minKey, Value: val})
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out, nil
}

// Write buffers updates in the transaction's write set (Algorithm 1,
// WRITE); they become visible atomically at commit. A nil value is
// normalized to an empty one — deletion is expressed via Delete.
func (t *Tx) Write(key string, value []byte) error {
	if t.done {
		return ErrTxDone
	}
	if value == nil {
		value = []byte{}
	}
	t.ws[key] = value
	return nil
}

// Delete buffers a deletion of key: at commit it installs a tombstone that
// hides every older version, and once the deletion is covered by the
// stable snapshot on all partitions, GC drops the key's chain entirely.
// Within this transaction (and this session, via the client write cache)
// the key reads as absent immediately.
func (t *Tx) Delete(key string) error {
	if t.done {
		return ErrTxDone
	}
	t.ws[key] = nil
	return nil
}

// Commit makes the write set durable and atomically visible (Algorithm 1,
// COMMIT). It returns the commit timestamp, or zero for read-only
// transactions. After Commit the transaction cannot be used.
func (t *Tx) Commit() (hlc.Timestamp, error) {
	if t.done {
		return 0, ErrTxDone
	}
	t.done = true
	defer t.client.clearTx(t)

	writes := make([]wire.KV, 0, len(t.ws))
	for k, v := range t.ws {
		writes = append(writes, wire.KV{Key: k, Value: v, Tombstone: v == nil})
	}
	t.client.mu.Lock()
	hwt := t.client.hwt
	t.client.mu.Unlock()

	var resp wire.Message
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = t.client.roundTrip(t.coord, func(reqID uint64) wire.Message {
			return &wire.CommitReq{ReqID: reqID, TxID: t.id, HWT: hwt, Writes: writes}
		})
		// Overload pushback (a BusyResp, or a full transport queue) means
		// the request was shed before any processing — unlike a timeout it
		// is provably safe to resend the CommitReq after a backoff.
		if err == nil || !errors.Is(err, transport.ErrOverloaded) || attempt >= t.client.cfg.Retry.Attempts {
			break
		}
		time.Sleep(t.client.cfg.Retry.retryDelay(attempt + 1))
	}
	if err != nil {
		if errors.Is(err, ErrClosed) || errors.Is(err, transport.ErrOverloaded) ||
			t.client.cfg.Retry.Attempts <= 0 {
			return 0, err
		}
		// The acknowledgement was lost but the commit may have landed.
		// Never resend the CommitReq — re-driving an in-doubt 2PC could
		// double-apply — resolve the outcome via termination probes.
		return t.resolveCommit(err)
	}
	cr, ok := resp.(*wire.CommitResp)
	if !ok {
		return 0, fmt.Errorf("core: unexpected response %T to CommitReq", resp)
	}
	switch cr.Code {
	case wire.CommitOK:
	case wire.CommitErrAborted:
		return 0, fmt.Errorf("%w: %s", ErrAborted, cr.Err)
	default:
		return 0, fmt.Errorf("%w: %s", ErrReadOnly, cr.Err)
	}
	if len(writes) == 0 {
		return 0, nil
	}
	t.finishCommit(cr.CT)
	return cr.CT, nil
}

// finishCommit tags the write set with the commit time and moves it into
// the client cache (Algorithm 1 lines 29–31), overwriting older
// duplicates. Shared by the direct acknowledgement path and a committed
// verdict from a termination probe.
func (t *Tx) finishCommit(ct hlc.Timestamp) {
	if ct == 0 || len(t.ws) == 0 {
		return
	}
	t.client.mu.Lock()
	if ct > t.client.hwt {
		t.client.hwt = ct
	}
	for k, v := range t.ws {
		t.client.cache[k] = cacheEntry{value: v, ct: ct}
	}
	t.client.mu.Unlock()
}

// resolveCommit settles a commit whose acknowledgement was lost by
// probing the coordinator with TxStatusReq. A committed verdict recovers
// the commit timestamp and completes the session bookkeeping; a "not
// committed" verdict is final — answering it fenced the transaction id on
// the coordinator, so the original CommitReq can never land late and the
// caller may safely re-run the transaction. If every probe also goes
// unanswered (the 2PC may still be in flight, leaving the coordinator
// deliberately silent), the outcome stays ErrInDoubt.
func (t *Tx) resolveCommit(cause error) (hlc.Timestamp, error) {
	c := t.client
	for attempt := 1; attempt <= c.cfg.Retry.Attempts; attempt++ {
		time.Sleep(c.cfg.Retry.retryDelay(attempt))
		resp, err := c.roundTrip(t.coord, func(reqID uint64) wire.Message {
			return &wire.TxStatusReq{ReqID: reqID, TxID: t.id}
		})
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return 0, err
			}
			continue
		}
		sr, ok := resp.(*wire.TxStatusResp)
		if !ok || sr.TxID != t.id {
			continue
		}
		if sr.Committed {
			t.finishCommit(sr.CT)
			return sr.CT, nil
		}
		return 0, fmt.Errorf("%w: fenced by termination probe after %v", ErrAborted, cause)
	}
	return 0, fmt.Errorf("%w: %w", ErrInDoubt, cause)
}

// Abort abandons the transaction, releasing its coordinator context.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	defer t.client.clearTx(t)
	// An empty commit releases the server-side context without a 2PC.
	_, err := t.client.roundTrip(t.coord, func(reqID uint64) wire.Message {
		return &wire.CommitReq{ReqID: reqID, TxID: t.id}
	})
	return err
}

func (c *Client) clearTx(t *Tx) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tx == t {
		c.tx = nil
	}
}
