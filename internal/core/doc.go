// Package core implements the paper's primary contribution: the Wren
// partition server and client.
//
// Wren is a Transactional Causal Consistency (TCC) key-value store with
// nonblocking reads. Three protocols cooperate:
//
//   - CANToR (Client-Assisted Nonblocking Transactional Reads): a
//     transaction's snapshot is the union of the local stable snapshot —
//     the freshest causal snapshot installed by *every* partition in the DC
//     — and a per-client cache holding the client's own writes not yet
//     covered by that snapshot. Because everything at or below the local
//     stable time (LST) is installed everywhere, reads never block; the
//     cache preserves read-your-writes (paper §III-B, Algorithm 1).
//
//   - BDT (Binary Dependency Time): every item carries exactly two scalar
//     timestamps regardless of system size — ut (the commit timestamp,
//     summarizing local dependencies) and rdt (the remote dependency time,
//     summarizing dependencies on all remote DCs) (paper §III-C).
//
//   - BiST (Binary Stable Time): partitions within a DC periodically
//     exchange two scalars (their local version clock and the minimum of
//     their remote version-vector entries); the DC-wide minima are the LST
//     and the remote stable time RST (paper §III-C, Algorithm 4).
//
// Commit uses a two-phase protocol within the DC (Algorithms 2 and 3) with
// hybrid logical clocks; updates replicate asynchronously to remote DCs and
// become visible there once stable, preserving availability under inter-DC
// network partitions.
package core
