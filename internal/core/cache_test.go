package core

import (
	"fmt"
	"testing"
	"time"

	"wren/internal/hlc"
	"wren/internal/transport"
)

// TestCacheOverwritesDuplicateEntries verifies Algorithm 1 line 31: moving
// the write set into the cache overwrites older duplicates, so the cache
// always holds the client's freshest version of each key.
func TestCacheOverwritesDuplicateEntries(t *testing.T) {
	// Glacial gossip: nothing ever leaves the cache via pruning.
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 2, gossipEvery: time.Hour})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"dup": "v1"})
	commitKV(t, c, map[string]string{"dup": "v2"})
	if c.CacheSize() != 1 {
		t.Fatalf("cache size = %d, want 1 (duplicate overwritten)", c.CacheSize())
	}
	got := readKeys(t, c, "dup")
	if string(got["dup"]) != "v2" {
		t.Fatalf("cache returned %q, want freshest own write v2", got["dup"])
	}
}

// TestCacheServesManyKeys exercises a cache holding several uninstalled
// writes at once.
func TestCacheServesManyKeys(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 4, gossipEvery: time.Hour})
	c := tc.client(0)
	want := map[string]string{}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("cache-key-%d", i)
		want[k] = fmt.Sprintf("v%d", i)
	}
	commitKV(t, c, want)
	if c.CacheSize() != len(want) {
		t.Fatalf("cache size = %d, want %d", c.CacheSize(), len(want))
	}
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	got := readKeys(t, c, keys...)
	for k, v := range want {
		if string(got[k]) != v {
			t.Fatalf("key %s: got %q, want %q", k, got[k], v)
		}
	}
}

// TestRandomCoordinatorMode checks that CoordinatorPartition < 0 (the
// paper's "picks a coordinator at random") works and still preserves
// session monotonicity across coordinators.
func TestRandomCoordinatorMode(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 1, parts: 4})
	c, err := NewClient(ClientConfig{
		DC: 0, ClientIndex: 999, NumPartitions: 4,
		Network:              tc.net,
		CoordinatorPartition: -1,
		RequestTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var prevLT, prevRT hlc.Timestamp
	for i := 0; i < 30; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		lt, rt := tx.Snapshot()
		if lt < prevLT || rt < prevRT {
			t.Fatalf("random coordinators broke snapshot monotonicity at %d", i)
		}
		prevLT, prevRT = lt, rt
		if err := tx.Write(fmt.Sprintf("rc-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Read everything back through yet another random coordinator.
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("rc-%d", i)
	}
	got := readKeys(t, c, keys...)
	if len(got) != 30 {
		t.Fatalf("read %d keys back, want 30", len(got))
	}
}

// TestBlockingCommitAblationBehaviour verifies the BlockingCommit server
// option: commits must not return before the write is covered by the local
// stable snapshot, making it instantly visible to other sessions.
func TestBlockingCommitAblationBehaviour(t *testing.T) {
	net, servers := newAblationCluster(t, 2, true)
	c, err := NewClient(ClientConfig{
		DC: 0, ClientIndex: 1, NumPartitions: 2,
		Network:              net,
		CoordinatorPartition: 0,
		RequestTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ct := commitKV(t, c, map[string]string{"bc": "v"})
	// By the time commit returned, LST must already cover ct.
	lst, _ := servers[0].StableTimes()
	if lst < ct {
		t.Fatalf("blocking commit returned before stabilization: lst=%v < ct=%v", lst, ct)
	}
	// And a different session must see the write immediately.
	other, err := NewClient(ClientConfig{
		DC: 0, ClientIndex: 2, NumPartitions: 2,
		Network:              net,
		CoordinatorPartition: 0,
		RequestTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := readKeys(t, other, "bc")
	if string(got["bc"]) != "v" {
		t.Fatalf("write not visible right after blocking commit: %q", got["bc"])
	}
}

// newAblationCluster builds a single-DC cluster with BlockingCommit set.
func newAblationCluster(t *testing.T, parts int, blockingCommit bool) (*transport.Memory, []*Server) {
	t.Helper()
	net := transport.NewMemory(transport.UniformLatency(100*time.Microsecond, time.Millisecond))
	t.Cleanup(net.Close)
	servers := make([]*Server, parts)
	for p := 0; p < parts; p++ {
		srv, err := NewServer(ServerConfig{
			DC: 0, Partition: p, NumDCs: 1, NumPartitions: parts,
			Network:        net,
			ApplyInterval:  time.Millisecond,
			GossipInterval: time.Millisecond,
			GCInterval:     -1,
			BlockingCommit: blockingCommit,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		servers[p] = srv
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Stop()
		}
	})
	return net, servers
}
