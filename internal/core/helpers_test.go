package core

import "wren/internal/sharding"

// partitionOfForTest mirrors the production key-to-partition mapping.
func partitionOfForTest(key string, parts int) int {
	return sharding.PartitionOf(key, parts)
}
