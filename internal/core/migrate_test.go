package core

import (
	"testing"
	"time"
)

// TestClientMigration exercises the paper's footnote-1 extension: a client
// moves to another DC, blocking until its causal past is installed there,
// and keeps all session guarantees.
func TestClientMigration(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	c := tc.client(0)

	// Build causal history in DC 0, ending with writes possibly not yet
	// replicated anywhere.
	commitKV(t, c, map[string]string{"mig-a": "1"})
	commitKV(t, c, map[string]string{"mig-b": "2"})

	if err := c.Migrate(1, 0); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if c.DC() != 1 {
		t.Fatalf("client DC = %d after migration, want 1", c.DC())
	}
	if c.CacheSize() != 0 {
		t.Fatalf("cache should be empty after migration, has %d entries", c.CacheSize())
	}

	// Read-your-writes must hold in the new DC *without* the cache: the
	// migration waited for the writes to be installed there.
	got := readKeys(t, c, "mig-a", "mig-b")
	if string(got["mig-a"]) != "1" || string(got["mig-b"]) != "2" {
		t.Fatalf("session lost its writes after migration: %v", got)
	}

	// The session continues: writes committed in the new DC flow back.
	ct := commitKV(t, c, map[string]string{"mig-c": "3"})
	if ct == 0 {
		t.Fatal("commit in new DC failed")
	}
	back := tc.client(0)
	eventually(t, 5*time.Second, "DC0 sees post-migration write", func() bool {
		return string(readKeys(t, back, "mig-c")["mig-c"]) == "3"
	})
}

func TestMigrateValidation(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	c := tc.client(0)

	// Same-DC migration is a no-op.
	if err := c.Migrate(0, 0); err != nil {
		t.Fatalf("same-DC migrate should be a no-op, got %v", err)
	}
	// Bad coordinator.
	if err := c.Migrate(1, 99); err == nil {
		t.Fatal("out-of-range coordinator should be rejected")
	}
	// Migration with an open transaction is refused.
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(1, 0); err != ErrTxOpen {
		t.Fatalf("Migrate with open tx = %v, want ErrTxOpen", err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// After Close, migration fails.
	c.Close()
	if err := c.Migrate(1, 0); err != ErrClosed {
		t.Fatalf("Migrate after Close = %v, want ErrClosed", err)
	}
}

// TestMigrationBlocksUntilInstalled verifies migration genuinely waits: a
// WAN partition delays replication, so Migrate must not complete until the
// link heals.
func TestMigrationBlocksUntilInstalled(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{dcs: 2, parts: 2})
	c := tc.client(0)
	commitKV(t, c, map[string]string{"mig-block": "v"})

	tc.net.SetDCLinkDown(0, 1, true)
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- c.Migrate(1, 0) }()

	select {
	case err := <-done:
		t.Fatalf("migration completed during partition (after %v, err=%v)", time.Since(start), err)
	case <-time.After(150 * time.Millisecond):
		// Still blocked: correct.
	}
	tc.net.SetDCLinkDown(0, 1, false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("migration failed after heal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("migration never completed after heal")
	}
	// And the write is readable in the new DC through the snapshot.
	got := readKeys(t, c, "mig-block")
	if string(got["mig-block"]) != "v" {
		t.Fatalf("migrated session lost its write: %q", got["mig-block"])
	}
}
