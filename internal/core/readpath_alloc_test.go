package core

import (
	"fmt"
	"testing"

	"wren/internal/hlc"
	"wren/internal/store"
	"wren/internal/store/sst"
	"wren/internal/transport"
	"wren/internal/wire"
)

// These tests pin the slice-read hot path at its post-optimization
// allocation counts. The baseline before the contention-free read path was
// 5 allocs/op for readSlice over 8 keys (visibility closure, result slice,
// grouping scratch ×2, item slice); the pooled/caller-buffer design is
// zero-alloc in steady state, and any regression fails CI's bench-smoke
// job.

func newAllocServer(tb testing.TB, backendName, dir string) *Server {
	tb.Helper()
	net := transport.NewMemory(nil)
	s, err := NewServer(ServerConfig{
		DC: 0, Partition: 0, NumDCs: 1, NumPartitions: 1, Network: net,
		GCInterval:   -1,
		StoreBackend: backendName,
		DataDir:      dir,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		if err := s.st.Close(); err != nil {
			tb.Errorf("engine close: %v", err)
		}
		net.Close()
	})
	return s
}

func fillKeys(s *Server, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("user%08d", i)
		s.st.Put(keys[i], &store.Version{
			Value: []byte("12345678"), UT: hlc.Timestamp(100 + i), RDT: 0, TxID: uint64(i), SrcDC: 0,
		})
	}
	return keys
}

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("exact allocation pins are meaningless under -race (pool instrumentation allocates)")
	}
}

func measureReadSliceAllocs(t *testing.T, s *Server) float64 {
	t.Helper()
	keys := fillKeys(s, 64)[:8]
	lt, rt := hlc.Timestamp(1<<40), hlc.Timestamp(1<<40)
	var items []wire.Item
	// Warm the pools and the dst buffer to steady-state capacity.
	for i := 0; i < 10; i++ {
		items = s.readSlice(keys, lt, rt, items[:0])
	}
	if len(items) != len(keys) {
		t.Fatalf("readSlice returned %d items, want %d", len(items), len(keys))
	}
	return testing.AllocsPerRun(200, func() {
		items = s.readSlice(keys, lt, rt, items[:0])
	})
}

func TestReadSliceAllocsMemory(t *testing.T) {
	skipUnderRace(t)
	s := newAllocServer(t, "", "")
	if allocs := measureReadSliceAllocs(t, s); allocs > 0 {
		t.Fatalf("readSlice(8 keys, memory engine) allocates %.1f/op, want 0 (baseline before this PR: 5)", allocs)
	}
}

func TestReadSliceAllocsWAL(t *testing.T) {
	skipUnderRace(t)
	s := newAllocServer(t, "wal", t.TempDir())
	if allocs := measureReadSliceAllocs(t, s); allocs > 0 {
		t.Fatalf("readSlice(8 keys, wal engine) allocates %.1f/op, want 0 (baseline before this PR: 5)", allocs)
	}
}

func TestReadSliceAllocsSST(t *testing.T) {
	skipUnderRace(t)
	s := newAllocServer(t, "sst", t.TempDir())
	// Flush the first fill into an immutable run so the measurement covers
	// the tiered path — memtable probe plus lock-free run merge — not just
	// the memtable fast path (measureReadSliceAllocs refills the same keys
	// afterwards, layering fresh memtable versions over the run).
	fillKeys(s, 64)
	if err := s.st.(*sst.Engine).Flush(); err != nil {
		t.Fatal(err)
	}
	if allocs := measureReadSliceAllocs(t, s); allocs > 0 {
		t.Fatalf("readSlice(8 keys, sst engine, run+memtable) allocates %.1f/op, want 0", allocs)
	}
}

// syncNet delivers messages synchronously on the caller's goroutine, so
// allocation measurements over a full request→handler→response cycle are
// deterministic (the real in-memory transport delivers asynchronously,
// which would race pooled messages back into the pools mid-measurement).
type syncNet struct {
	handlers map[transport.NodeID]transport.Handler
}

func newSyncNet() *syncNet { return &syncNet{handlers: make(map[transport.NodeID]transport.Handler)} }

func (n *syncNet) Register(id transport.NodeID, h transport.Handler) { n.handlers[id] = h }

func (n *syncNet) Send(from, to transport.NodeID, m wire.Message) error {
	if h := n.handlers[to]; h != nil {
		h.HandleMessage(from, m)
	}
	return nil
}

func (n *syncNet) Close() {}

// TestSliceReqServeAllocs pins the full cohort-side slice service —
// stable-time merge, pooled request/response, batched store read, response
// delivery and release — at zero steady-state allocations. Before this PR
// the same cycle cost 7 allocations (visibility closure, result slice,
// grouping scratch ×2, item slice, response message and its items).
func TestSliceReqServeAllocs(t *testing.T) {
	skipUnderRace(t)
	net := newSyncNet()
	s, err := NewServer(ServerConfig{
		DC: 0, Partition: 0, NumDCs: 1, NumPartitions: 1, Network: net,
		GCInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.st.Close() })
	keys := fillKeys(s, 64)[:8]
	sink := transport.ClientID(0, 0)
	net.Register(sink, transport.HandlerFunc(func(_ transport.NodeID, m wire.Message) {
		if resp, ok := m.(*wire.SliceResp); ok {
			wire.PutSliceResp(resp)
		}
	}))
	serve := func() {
		r := wire.GetSliceReq()
		r.ReqID, r.LT, r.RT = 1, 1<<40, 1<<40
		r.Keys = append(r.Keys[:0], keys...)
		s.handleSliceReq(sink, r)
	}
	for i := 0; i < 10; i++ {
		serve() // warm the pools
	}
	if allocs := testing.AllocsPerRun(200, serve); allocs > 0 {
		t.Fatalf("handleSliceReq end-to-end allocates %.1f/op, want 0 (baseline before this PR: 7)", allocs)
	}
}

func BenchmarkReadSlice8(b *testing.B) {
	net := transport.NewMemory(nil)
	defer net.Close()
	s, err := NewServer(ServerConfig{
		DC: 0, Partition: 0, NumDCs: 1, NumPartitions: 1, Network: net,
		GCInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.st.Close() }()
	keys := fillKeys(s, 64)[:8]
	lt, rt := hlc.Timestamp(1<<40), hlc.Timestamp(1<<40)
	var items []wire.Item
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items = s.readSlice(keys, lt, rt, items[:0])
	}
}

func BenchmarkSliceReqServe8(b *testing.B) {
	net := newSyncNet()
	s, err := NewServer(ServerConfig{
		DC: 0, Partition: 0, NumDCs: 1, NumPartitions: 1, Network: net,
		GCInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.st.Close() }()
	keys := fillKeys(s, 64)[:8]
	sink := transport.ClientID(0, 0)
	net.Register(sink, transport.HandlerFunc(func(_ transport.NodeID, m wire.Message) {
		if resp, ok := m.(*wire.SliceResp); ok {
			wire.PutSliceResp(resp)
		}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := wire.GetSliceReq()
		r.ReqID, r.LT, r.RT = 1, 1<<40, 1<<40
		r.Keys = append(r.Keys[:0], keys...)
		s.handleSliceReq(sink, r)
	}
}
